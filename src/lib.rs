//! # sqlsem
//!
//! An executable formal semantics of basic SQL — a from-scratch Rust
//! reproduction of Paolo Guagliardo and Leonid Libkin, *A Formal
//! Semantics of SQL Queries, Its Validation, and Applications*,
//! PVLDB 11(1), 2017.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — data model, annotated AST, environments, 3VL, and the
//!   denotational semantics `⟦·⟧_{D,η,x}` of Figures 1–7;
//! * [`parser`] — surface SQL: lexer, parser, the §2 annotation pass,
//!   and dialect-aware printers;
//! * [`engine`] — an independent volcano-style engine standing in for
//!   the PostgreSQL/Oracle validation oracles of §4;
//! * [`algebra`] — bag relational algebra, SQL-RA, and the provably
//!   correct SQL → RA translation of §5 (Theorem 1);
//! * [`twovl`] — the Figure 10 translations eliminating three-valued
//!   logic (§6, Theorem 2);
//! * [`generator`] — TPC-H-calibrated random query and data generation;
//! * [`validation`] — the §4 differential validation harness.
//!
//! The most common entry points are re-exported at the top level:
//!
//! ```
//! use sqlsem::{compile, table, Database, Evaluator, Schema, Value};
//!
//! // Example 1 from the paper: R = {1, NULL}, S = {NULL}.
//! let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
//! let mut db = Database::new(schema.clone());
//! db.insert("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
//! db.insert("S", table! { ["A"]; [Value::Null] }).unwrap();
//!
//! let q = compile("SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", &schema)
//!     .unwrap();
//! assert!(Evaluator::new(&db).eval(&q).unwrap().is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sqlsem_algebra as algebra;
pub use sqlsem_core as core;
pub use sqlsem_engine as engine;
pub use sqlsem_generator as generator;
pub use sqlsem_parser as parser;
pub use sqlsem_twovl as twovl;
pub use sqlsem_validation as validation;

pub use sqlsem_core::{
    row, table, AggFunc, Aggregate, CmpOp, Condition, Database, Dialect, Env, EvalError, Evaluator,
    FromItem, FullName, LogicMode, Name, PredicateRegistry, Query, Row, Schema, SelectList,
    SelectQuery, SetOp, Table, Term, Truth, Value,
};
pub use sqlsem_parser::{compile, parse_query, to_sql, to_sql_pretty};
