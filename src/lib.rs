//! # sqlsem
//!
//! An executable formal semantics of basic SQL — a from-scratch Rust
//! reproduction of Paolo Guagliardo and Leonid Libkin, *A Formal
//! Semantics of SQL Queries, Its Validation, and Applications*,
//! PVLDB 11(1), 2017.
//!
//! ## The `Session` API
//!
//! The headline entry point is [`Session`]: a stateful object that owns
//! a database and speaks SQL text end to end — DDL, DML, queries and
//! `EXPLAIN` — under a configurable dialect (§4), logic mode (§6) and
//! execution [`Backend`], returning a single result type and a single
//! error type ([`SqlsemError`]):
//!
//! ```
//! use sqlsem::Session;
//!
//! let mut session = Session::new();
//! session.execute("CREATE TABLE R (A)").unwrap();
//! session.execute("CREATE TABLE S (A)").unwrap();
//! session.execute("INSERT INTO R VALUES (1), (NULL)").unwrap();
//! session.execute("INSERT INTO S VALUES (NULL)").unwrap();
//!
//! // Example 1 from the paper: under 3VL the NOT IN never succeeds.
//! let out = session
//!     .execute("SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)")
//!     .unwrap();
//! assert!(out.rows().unwrap().is_empty());
//! ```
//!
//! Sessions are configured via [`Session::builder`] — any of the three
//! dialects × three logic modes × four backends — and support
//! [`Session::prepare`]d statements that cache the compile+optimize
//! work across executions:
//!
//! ```
//! use sqlsem::{Backend, Dialect, Session};
//!
//! let mut session = Session::builder()
//!     .with_dialect(Dialect::PostgreSql)
//!     .with_backend(Backend::OptimizedEngine)
//!     .build();
//! session.run_script("CREATE TABLE R (A, B); INSERT INTO R VALUES (1, 2), (1, NULL)").unwrap();
//!
//! let mut stmt = session.prepare("SELECT R.A AS k, COUNT(*) AS n FROM R GROUP BY R.A").unwrap();
//! let first = session.execute_prepared(&mut stmt).unwrap();
//! let again = session.execute_prepared(&mut stmt).unwrap(); // cached plan
//! assert_eq!(first, again);
//! ```
//!
//! ## Concurrency: `SharedDatabase` and `Connection`
//!
//! `Session` is an alias for [`Connection`], which can also be opened
//! over a [`SharedDatabase`] — a versioned, concurrently shared
//! database where readers take lock-free snapshots and writers
//! serialize through a group-commit queue:
//!
//! ```
//! use sqlsem::SharedDatabase;
//!
//! let shared = SharedDatabase::in_memory();
//! let mut writer = shared.connect();
//! let mut reader = shared.connect();
//! writer.run_script("CREATE TABLE R (A); INSERT INTO R VALUES (1), (2)").unwrap();
//! let out = reader.execute("SELECT COUNT(*) AS n FROM R").unwrap();
//! assert_eq!(out.rows().unwrap().len(), 1);
//! ```
//!
//! The [`server`] module serves such a database over TCP, one thread
//! and one `Connection` per client.
//!
//! ## Advanced: direct crate access
//!
//! The layers behind `Session` remain public, for consumers that work
//! with annotated ASTs, the denotational evaluator, or the translations
//! directly:
//!
//! * [`core`] — data model, annotated AST, environments, 3VL, and the
//!   denotational semantics `⟦·⟧_{D,η,x}` of Figures 1–7;
//! * [`parser`] — surface SQL: lexer, parser, the §2 annotation pass,
//!   statements, and dialect-aware printers;
//! * [`engine`] — an independent volcano-style engine standing in for
//!   the PostgreSQL/Oracle validation oracles of §4;
//! * [`storage`] — the durable storage engine: paged checkpoint files,
//!   a checksummed write-ahead log with crash recovery, and the store
//!   behind [`SessionBuilder::with_storage`] and `Backend::Persistent`;
//! * [`algebra`] — bag relational algebra, SQL-RA, and the provably
//!   correct SQL → RA translation of §5 (Theorem 1);
//! * [`twovl`] — the Figure 10 translations eliminating three-valued
//!   logic (§6, Theorem 2);
//! * [`generator`] — TPC-H-calibrated random query and data generation;
//! * [`validation`] — the §4 differential validation harness;
//! * [`session`] — the [`Session`] machinery itself, including the
//!   [`SharedDatabase`] MVCC cell behind concurrent [`Connection`]s;
//! * [`server`] — the TCP front end multiplexing remote clients over
//!   one shared database.
//!
//! The pre-`Session` wire-it-yourself flow still works, and is the
//! right tool when a consumer needs to hold the intermediate artifacts
//! (schemas, annotated queries, plans) rather than run SQL:
//!
//! ```
//! use sqlsem::{compile, table, Database, Evaluator, Schema, Value};
//!
//! // Example 1 from the paper: R = {1, NULL}, S = {NULL}.
//! let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
//! let mut db = Database::new(schema.clone());
//! db.replace_table("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
//! db.replace_table("S", table! { ["A"]; [Value::Null] }).unwrap();
//!
//! let q = compile("SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", &schema)
//!     .unwrap();
//! assert!(Evaluator::new(&db).eval(&q).unwrap().is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sqlsem_algebra as algebra;
pub use sqlsem_core as core;
pub use sqlsem_engine as engine;
pub use sqlsem_generator as generator;
pub use sqlsem_parser as parser;
pub use sqlsem_server as server;
pub use sqlsem_session as session;
pub use sqlsem_storage as storage;
pub use sqlsem_twovl as twovl;
pub use sqlsem_validation as validation;

pub use sqlsem_core::{
    row, table, AggFunc, Aggregate, CmpOp, Condition, Database, Dialect, Env, EvalError, Evaluator,
    FromItem, FullName, LogicMode, Name, PredicateRegistry, Query, Row, Schema, SelectList,
    SelectQuery, SetOp, Span, Table, Term, Truth, Value,
};
pub use sqlsem_parser::{
    compile, compile_statement, parse_query, parse_statement, statement_to_sql, to_sql,
    to_sql_pretty, Statement,
};
pub use sqlsem_session::{
    Backend, Connection, PreparedStatement, Session, SessionBuilder, SharedDatabase, SqlsemError,
    StatementResult,
};
