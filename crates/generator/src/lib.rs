//! # sqlsem-generator
//!
//! Random query and database generation for the §4 validation experiment
//! of Guagliardo & Libkin (PVLDB 2017).
//!
//! * [`query`] — the random query generator, with shape parameters
//!   calibrated on TPC-H (`tables = 6`, `nest = 3`, `attr = 3`,
//!   `cond = 8`). Queries are produced directly in the fully annotated
//!   form of §2, well-formed by construction, over any schema.
//! * [`data`] — the random database generator (the Datafiller substitute)
//!   and [`data::paper_schema`], the `R1 … R8` schema of the experiments.
//! * [`tpch`] — the TPC-H shape statistics behind the calibration and the
//!   parameters derived from them.
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use sqlsem_core::Evaluator;
//! use sqlsem_generator::{
//!     paper_schema, random_database, DataGenConfig, QueryGenConfig, QueryGenerator,
//! };
//!
//! let schema = paper_schema();
//! let gen = QueryGenerator::new(&schema, QueryGenConfig::small());
//! let mut rng = StdRng::seed_from_u64(1);
//! let query = gen.generate(&mut rng);
//! let db = random_database(&schema, &DataGenConfig::small(), &mut rng);
//! // Generated queries evaluate (or error deterministically) under the
//! // formal semantics.
//! let _ = Evaluator::new(&db).eval(&query);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod data;
pub mod query;
pub mod tpch;

pub use data::{paper_schema, random_database, DataGenConfig};
pub use query::{is_data_manipulation, QueryGenConfig, QueryGenerator};
