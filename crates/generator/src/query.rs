//! The random query generator of §4.
//!
//! The paper validates its semantics against 100,000 randomly generated
//! queries whose *shape* is calibrated on the TPC-H benchmark: at most 6
//! tables mentioned per query (counting repetitions and nested
//! subqueries), nesting depth at most 3, at most 3 output attributes per
//! `SELECT`, and at most 8 atomic conditions per `WHERE`
//! ([`QueryGenConfig::tpch_calibrated`]).
//!
//! Queries are generated directly in the fully annotated form of §2, well
//! formed by construction: aliases are fresh, every reference resolves,
//! set operands have matching arity, and correlated references only point
//! at enclosing scopes. Two knobs deliberately generate *problematic*
//! queries:
//!
//! * `ambiguous_star_prob` produces Example 2-shaped blocks
//!   (`SELECT * FROM (SELECT x.A, x.A FROM …) AS t`) so the validation
//!   harness can confirm that the Oracle-adjusted semantics errors in
//!   exactly the same cases as the engine does — the paper reports this
//!   agreement explicitly;
//! * `repeated_output_prob` gives two `SELECT` items the same output
//!   name, exercising repeated column names in subquery results.
//!
//! [`QueryGenConfig::data_manipulation`] restricts generation to the
//! *data manipulation queries* of Definition 1 (§5): explicit `SELECT`
//! lists of full names drawn from the local `FROM`, no repeated output
//! names, no stars — the fragment for which Theorem 1 gives an equivalent
//! relational algebra query.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use sqlsem_core::ast::{
    Condition, FromExpr, FromItem, JoinKind, Query, SelectItem, SelectList, SelectQuery, Term,
};
use sqlsem_core::{AggFunc, CmpOp, FullName, Name, Schema, SetOp, Value};

/// Shape parameters for random query generation.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryGenConfig {
    /// Maximum number of tables mentioned in the whole query, counting
    /// repetitions and nested subqueries (paper: 6).
    pub max_tables: usize,
    /// Maximum nesting depth of subqueries in `FROM` and `WHERE`
    /// (paper: 3).
    pub max_nest: usize,
    /// Maximum number of attributes in a `SELECT` clause (paper: 3).
    pub max_attrs: usize,
    /// Maximum number of atomic conditions in a `WHERE` clause
    /// (paper: 8).
    pub max_conds: usize,
    /// Probability that a block's `SELECT` list is `*`.
    pub star_prob: f64,
    /// Probability that a block is `DISTINCT`.
    pub distinct_prob: f64,
    /// Probability that a query node is a set operation (halved at each
    /// nesting level).
    pub setop_prob: f64,
    /// Probability that a `FROM` item is a subquery rather than a base
    /// table.
    pub from_subquery_prob: f64,
    /// Probability that a condition atom is `IN`/`EXISTS` (budget
    /// permitting).
    pub subquery_cond_prob: f64,
    /// Probability that a generated term references an *enclosing* scope
    /// (a correlated parameter) when one is available.
    pub correlated_prob: f64,
    /// Probability that a term is a constant rather than a column.
    pub constant_prob: f64,
    /// Probability that a constant is `NULL` rather than an integer.
    pub null_const_prob: f64,
    /// Integer constants are drawn from `0..domain` (matching the data
    /// generator's domain so comparisons hit).
    pub domain: i64,
    /// Probability of producing an Example 2-shaped ambiguous-star block.
    pub ambiguous_star_prob: f64,
    /// Probability that two `SELECT` items share an output name.
    pub repeated_output_prob: f64,
    /// Probability that a block is a *grouped* aggregate block
    /// (`GROUP BY` keys, a `SELECT` list of keys and aggregates, and —
    /// half the time — a `HAVING` clause). Gated like
    /// `ambiguous_star_prob`; `0.0` disables the aggregation fragment.
    pub aggregate_prob: f64,
    /// Probability (per fold opportunity) that two adjacent `FROM`
    /// items are folded into an outer join — kind uniform over
    /// `LEFT`/`RIGHT`/`FULL`, `ON` either a plain equality between one
    /// column of each operand (the shape the engines' hash fast paths
    /// key on) or general condition atoms (non-equi comparisons,
    /// `IS NULL`, nested and correlated subqueries). Folding repeats
    /// while the coin keeps landing, so left-deep join chains occur.
    /// `0.0` disables the outer-join fragment.
    pub outer_join_prob: f64,
    /// Probability that a generated term is a null combinator — a
    /// searched `CASE`, `COALESCE` or `NULLIF` over simple operand
    /// terms. `0.0` disables the combinator fragment (and
    /// data-manipulation mode always does: Definition 1's RA
    /// translation has no term for them).
    pub combinator_prob: f64,
    /// Probability that the *outermost* block carries the ordering
    /// fragment: `ORDER BY` over its output columns (1–2 keys, random
    /// direction and `NULLS` placement), usually with a `LIMIT` and
    /// sometimes an `OFFSET`. Only the outermost block is ordered, so
    /// the differential harness can compare the result *as a list*
    /// (prefix-equality under ties). `0.0` disables the fragment.
    pub order_prob: f64,
    /// Restrict to Definition 1 data manipulation queries (§5).
    pub data_manipulation_only: bool,
}

impl QueryGenConfig {
    /// The paper's TPC-H-calibrated parameters: `tables = 6`, `nest = 3`,
    /// `attr = 3`, `cond = 8` (§4).
    pub fn tpch_calibrated() -> Self {
        QueryGenConfig {
            max_tables: 6,
            max_nest: 3,
            max_attrs: 3,
            max_conds: 8,
            star_prob: 0.2,
            distinct_prob: 0.3,
            setop_prob: 0.15,
            from_subquery_prob: 0.25,
            subquery_cond_prob: 0.3,
            correlated_prob: 0.35,
            constant_prob: 0.35,
            null_const_prob: 0.1,
            domain: 10,
            ambiguous_star_prob: 0.01,
            repeated_output_prob: 0.05,
            aggregate_prob: 0.2,
            outer_join_prob: 0.2,
            combinator_prob: 0.1,
            order_prob: 0.25,
            data_manipulation_only: false,
        }
    }

    /// Smaller shapes for fast in-tree randomised tests. The
    /// ambiguous-star probability is raised well above the calibrated
    /// 0.01 so short runs (a few hundred queries) reliably exercise the
    /// Example 2 dialect divergence.
    pub fn small() -> Self {
        QueryGenConfig {
            max_tables: 3,
            max_nest: 2,
            max_conds: 4,
            ambiguous_star_prob: 0.08,
            ..QueryGenConfig::tpch_calibrated()
        }
    }

    /// Definition 1 data manipulation queries (§5): explicit select lists
    /// of local full names, distinct output names, no stars, no
    /// ambiguous-star blocks.
    pub fn data_manipulation() -> Self {
        QueryGenConfig {
            star_prob: 0.0,
            ambiguous_star_prob: 0.0,
            repeated_output_prob: 0.0,
            aggregate_prob: 0.0,
            combinator_prob: 0.0,
            order_prob: 0.0,
            data_manipulation_only: true,
            ..QueryGenConfig::small()
        }
    }

    /// An outer-join-heavy preset for targeted sweeps: most multi-item
    /// `FROM` clauses fold into `LEFT`/`RIGHT`/`FULL` join trees and a
    /// quarter of all terms are null combinators, so a few hundred
    /// queries exercise dangling-tuple padding, `ON` evaluation under
    /// every logic mode, and `CASE`/`COALESCE`/`NULLIF` over padded
    /// columns far more densely than the calibrated shape does.
    pub fn outer_join_heavy() -> Self {
        QueryGenConfig {
            outer_join_prob: 0.75,
            combinator_prob: 0.25,
            ..QueryGenConfig::tpch_calibrated()
        }
    }
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig::tpch_calibrated()
    }
}

/// A random query generator over a fixed schema.
#[derive(Clone, Debug)]
pub struct QueryGenerator<'a> {
    schema: &'a Schema,
    config: QueryGenConfig,
}

/// One visible `FROM` entry during generation.
#[derive(Clone, Debug)]
struct ScopeEntry {
    alias: Name,
    columns: Vec<Name>,
}

type Scope = Vec<ScopeEntry>;

impl<'a> QueryGenerator<'a> {
    /// Creates a generator for `schema` with the given shape parameters.
    pub fn new(schema: &'a Schema, config: QueryGenConfig) -> Self {
        assert!(!schema.is_empty(), "query generation needs at least one base table");
        QueryGenerator { schema, config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &QueryGenConfig {
        &self.config
    }

    /// Generates one closed, well-formed query.
    pub fn generate(&self, rng: &mut StdRng) -> Query {
        let mut state = Gen {
            schema: self.schema,
            config: &self.config,
            tables_budget: self.config.max_tables,
            alias_counter: 0,
        };
        let mut query = state.query(rng, 0, &mut Vec::new(), None);
        if !self.config.data_manipulation_only
            && self.config.order_prob > 0.0
            && rng.gen_bool(self.config.order_prob)
        {
            attach_ordering(&mut query, rng);
        }
        query
    }
}

struct Gen<'a> {
    schema: &'a Schema,
    config: &'a QueryGenConfig,
    /// Remaining tables (counting repetitions, across nesting) this query
    /// may still mention.
    tables_budget: usize,
    alias_counter: usize,
}

impl Gen<'_> {
    fn fresh_alias(&mut self) -> Name {
        self.alias_counter += 1;
        Name::new(format!("t{}", self.alias_counter))
    }

    /// Generates a query node; `required_arity` forces the output arity
    /// (for set operands and `IN` subqueries).
    fn query(
        &mut self,
        rng: &mut StdRng,
        depth: usize,
        scopes: &mut Vec<Scope>,
        required_arity: Option<usize>,
    ) -> Query {
        let setop_prob = self.config.setop_prob / (1 << depth) as f64;
        if depth < self.config.max_nest && self.tables_budget >= 2 && rng.gen_bool(setop_prob) {
            // Fix the arity up front so both operands conform (and stay
            // within the attr limit — a star operand could not be matched
            // by the other side in general).
            let arity = required_arity.unwrap_or_else(|| rng.gen_range(1..=self.config.max_attrs));
            let (left, _) = self.select(rng, depth, scopes, Some(arity));
            // The left operand may have drained the budget with nested
            // subqueries; only attach a right operand if one more table
            // can be paid for, so the budget stays a hard cap.
            if self.tables_budget >= 1 {
                let (right, _) = self.select(rng, depth, scopes, Some(arity));
                let op = *[SetOp::Union, SetOp::Intersect, SetOp::Except]
                    .choose(rng)
                    .expect("non-empty slice");
                let all = rng.gen_bool(0.5);
                return Query::SetOp { op, all, left: Box::new(left), right: Box::new(right) };
            }
            return left;
        }
        self.select(rng, depth, scopes, required_arity).0
    }

    /// Generates a `SELECT` block, returning it with its output arity.
    fn select(
        &mut self,
        rng: &mut StdRng,
        depth: usize,
        scopes: &mut Vec<Scope>,
        required_arity: Option<usize>,
    ) -> (Query, usize) {
        // Example 2-shaped block: SELECT * over a subquery with repeated
        // output names. Ambiguous on Standard/Oracle, fine on PostgreSQL.
        if !self.config.data_manipulation_only
            && required_arity.is_none()
            && self.tables_budget >= 1
            && rng.gen_bool(self.config.ambiguous_star_prob)
        {
            return self.ambiguous_star_block(rng, scopes);
        }

        // FROM clause: 1..=k items within budget. Every call site
        // guarantees at least one table is still affordable.
        debug_assert!(self.tables_budget >= 1, "select() entered with an empty table budget");
        self.tables_budget = self.tables_budget.saturating_sub(1);
        let max_items = (self.tables_budget + 1).min(3);
        let n_items = rng.gen_range(1..=max_items.max(1));
        // The first item was already budgeted; the rest consume as added.
        let mut from: Vec<FromExpr> = Vec::with_capacity(n_items);
        let mut groups: Vec<Scope> = Vec::with_capacity(n_items);
        for i in 0..n_items {
            if i > 0 {
                if self.tables_budget == 0 {
                    break;
                }
                self.tables_budget -= 1;
            }
            let (item, entry) = self.from_item(rng, depth, scopes);
            from.push(FromExpr::from(item));
            groups.push(vec![entry]);
        }
        // Fold adjacent FROM entries into outer-join trees while the coin
        // keeps landing (left-deep chains occur). The visible columns of
        // the block are the same whether items stay comma-separated or
        // fold, so the local scope is just the flattened groups.
        while from.len() >= 2
            && self.config.outer_join_prob > 0.0
            && rng.gen_bool(self.config.outer_join_prob)
        {
            let right = from.pop().expect("len checked");
            let left = from.pop().expect("len checked");
            let rgroup = groups.pop().expect("len checked");
            let lgroup = groups.pop().expect("len checked");
            let kind = *JoinKind::ALL.choose(rng).expect("non-empty");
            // Half the time the ON is the single-equality shape the
            // vectorized hash path keys on; otherwise general condition
            // atoms over the joined scope (only the join operands are
            // visible to ON, plus enclosing scopes for correlation).
            let equi = (Self::column_in(&lgroup, rng), Self::column_in(&rgroup, rng));
            let on = match equi {
                (Some(l), Some(r)) if rng.gen_bool(0.5) => Condition::eq(l, r),
                _ => {
                    let mut joined = lgroup.clone();
                    joined.extend(rgroup.iter().cloned());
                    scopes.push(joined);
                    let n = rng.gen_range(1..=2);
                    let on = self.condition(rng, depth, scopes, n);
                    scopes.pop();
                    on
                }
            };
            from.push(FromExpr::join(kind, left, right, on));
            groups.push(lgroup.into_iter().chain(rgroup).collect());
        }
        let scope: Scope = groups.into_iter().flatten().collect();

        scopes.push(scope);
        // A block is grouped with `aggregate_prob`, provided the local
        // scope offers at least one referencable key column.
        let group_keys = self.group_keys(rng, scopes);
        let select = match &group_keys {
            Some(keys) => {
                let m = required_arity.unwrap_or_else(|| rng.gen_range(1..=self.config.max_attrs));
                SelectList::Items(self.grouped_items(rng, scopes, keys, m))
            }
            None => self.select_list(rng, scopes, required_arity),
        };
        let arity = match &select {
            SelectList::Items(items) => items.len(),
            SelectList::Star => {
                scopes.last().expect("pushed").iter().map(|e| e.columns.len()).sum()
            }
        };
        let n_atoms = rng.gen_range(0..=self.config.max_conds);
        let where_ = if n_atoms == 0 {
            Condition::True
        } else {
            self.condition(rng, depth, scopes, n_atoms)
        };
        let (group_by, having) = match &group_keys {
            None => (Vec::new(), Condition::True),
            Some(keys) => {
                let having = self.having(rng, depth, scopes, keys);
                (keys.iter().cloned().map(Term::Col).collect(), having)
            }
        };
        scopes.pop();

        let distinct = rng.gen_bool(self.config.distinct_prob);
        let mut block =
            SelectQuery::new(select, from).filter(where_).group_by(group_by).having(having);
        block.distinct = distinct;
        (Query::Select(block), arity)
    }

    /// The `GROUP BY` keys of a grouped block: 1–2 distinct referencable
    /// columns of the local scope — or, a quarter of the time, *no* keys
    /// at all (the implicit single group of `SELECT COUNT(*) FROM R`,
    /// which exists even over an empty input and has its own optimizer
    /// pitfalls). `None` when the block stays ungrouped.
    fn group_keys(&mut self, rng: &mut StdRng, scopes: &[Scope]) -> Option<Vec<FullName>> {
        if self.config.data_manipulation_only
            || self.config.aggregate_prob <= 0.0
            || !rng.gen_bool(self.config.aggregate_prob)
        {
            return None;
        }
        if rng.gen_bool(0.25) {
            return Some(Vec::new());
        }
        let local = scopes.last().expect("inside a block");
        let mut keys = Vec::new();
        for _ in 0..rng.gen_range(1..=2usize) {
            if let Some(name) = Self::column_in(local, rng) {
                if !keys.contains(&name) {
                    keys.push(name);
                }
            }
        }
        (!keys.is_empty()).then_some(keys)
    }

    /// The `SELECT` list of a grouped block: a mix of key references and
    /// aggregates, with fresh output names.
    fn grouped_items(
        &mut self,
        rng: &mut StdRng,
        scopes: &[Scope],
        keys: &[FullName],
        m: usize,
    ) -> Vec<SelectItem> {
        (0..m)
            .map(|i| {
                let term = match keys.choose(rng) {
                    Some(key) if rng.gen_bool(0.5) => Term::Col(key.clone()),
                    // Keyless blocks select aggregates only.
                    _ => self.aggregate_term(rng, scopes),
                };
                SelectItem::new(term, format!("c{}", i + 1))
            })
            .collect()
    }

    /// A random aggregate over the local scope: `COUNT(*)`, or
    /// `F([DISTINCT] col)` over any referencable column (aggregates may
    /// range over non-key columns), falling back to a constant argument
    /// when every local column name is ambiguous.
    fn aggregate_term(&mut self, rng: &mut StdRng, scopes: &[Scope]) -> Term {
        let func = *AggFunc::ALL.choose(rng).expect("non-empty");
        if func == AggFunc::Count && rng.gen_bool(0.3) {
            return Term::count_star();
        }
        let arg = match Self::column_in(scopes.last().expect("inside a block"), rng) {
            Some(name) => Term::Col(name),
            None => Term::Const(Value::Int(rng.gen_range(0..self.config.domain))),
        };
        if rng.gen_bool(0.2) {
            Term::agg_distinct(func, arg)
        } else {
            Term::agg(func, arg)
        }
    }

    /// A term legal in a grouped `SELECT`/`HAVING`: a key, an aggregate,
    /// or a constant.
    fn grouped_term(&mut self, rng: &mut StdRng, scopes: &[Scope], keys: &[FullName]) -> Term {
        match rng.gen_range(0..4) {
            0 => Term::Const(Value::Int(rng.gen_range(0..self.config.domain))),
            1 | 2 => self.aggregate_term(rng, scopes),
            _ => match keys.choose(rng) {
                Some(key) => Term::Col(key.clone()),
                None => self.aggregate_term(rng, scopes),
            },
        }
    }

    /// A `HAVING` clause (absent half the time): 1–2 atoms over keys,
    /// aggregates and constants, occasionally with an `EXISTS`/`IN`
    /// subquery — generated with the local scope swapped for the *key
    /// scope*, since the grouped environment binds exactly the keys.
    fn having(
        &mut self,
        rng: &mut StdRng,
        depth: usize,
        scopes: &mut Vec<Scope>,
        keys: &[FullName],
    ) -> Condition {
        if !rng.gen_bool(0.5) {
            return Condition::True;
        }
        let n = rng.gen_range(1..=2usize);
        let mut cond = self.having_atom(rng, depth, scopes, keys);
        for _ in 1..n {
            let next = self.having_atom(rng, depth, scopes, keys);
            cond = if rng.gen_bool(0.5) { cond.and(next) } else { cond.or(next) };
        }
        if rng.gen_bool(0.2) {
            cond.not()
        } else {
            cond
        }
    }

    fn having_atom(
        &mut self,
        rng: &mut StdRng,
        depth: usize,
        scopes: &mut Vec<Scope>,
        keys: &[FullName],
    ) -> Condition {
        let can_nest = depth < self.config.max_nest && self.tables_budget >= 1;
        if can_nest && rng.gen_bool(self.config.subquery_cond_prob / 2.0) {
            // Subqueries in HAVING see the key scope in place of the
            // block's scope.
            let mut key_scope: Scope = Vec::new();
            for key in keys {
                match key_scope.iter_mut().find(|e| e.alias == key.table) {
                    Some(entry) => entry.columns.push(key.column.clone()),
                    None => key_scope.push(ScopeEntry {
                        alias: key.table.clone(),
                        columns: vec![key.column.clone()],
                    }),
                }
            }
            let saved = std::mem::replace(scopes.last_mut().expect("pushed"), key_scope);
            let cond = if rng.gen_bool(0.5) {
                let sub = self.query(rng, depth + 1, scopes, None);
                let exists = Condition::exists(sub);
                if rng.gen_bool(0.5) {
                    exists.not()
                } else {
                    exists
                }
            } else {
                // IN members are keys or constants only: an aggregate on
                // the left of IN has no Figure 10 two-valued rewriting.
                let term = match keys.choose(rng) {
                    Some(key) if rng.gen_bool(0.7) => Term::Col(key.clone()),
                    _ => Term::Const(Value::Int(rng.gen_range(0..self.config.domain))),
                };
                let sub = self.query(rng, depth + 1, scopes, Some(1));
                Condition::In {
                    terms: vec![term],
                    query: Box::new(sub),
                    negated: rng.gen_bool(0.5),
                }
            };
            *scopes.last_mut().expect("pushed") = saved;
            return cond;
        }
        match rng.gen_range(0..6) {
            0 => Condition::IsNull {
                term: self.grouped_term(rng, scopes, keys),
                negated: rng.gen_bool(0.5),
            },
            1 => Condition::IsDistinct {
                left: self.grouped_term(rng, scopes, keys),
                right: self.grouped_term(rng, scopes, keys),
                negated: rng.gen_bool(0.5),
            },
            _ => {
                let op = *CmpOp::ALL.choose(rng).expect("non-empty");
                Condition::Cmp {
                    left: self.grouped_term(rng, scopes, keys),
                    op,
                    right: self.grouped_term(rng, scopes, keys),
                }
            }
        }
    }

    /// `SELECT * FROM (SELECT x.A1 AS A, x.A1 AS A FROM R AS x) AS t`.
    fn ambiguous_star_block(
        &mut self,
        rng: &mut StdRng,
        scopes: &mut Vec<Scope>,
    ) -> (Query, usize) {
        self.tables_budget = self.tables_budget.saturating_sub(1);
        let (base, columns) = self.random_base_table(rng);
        let inner_alias = self.fresh_alias();
        let col = columns.choose(rng).expect("base tables are non-empty").clone();
        let term = Term::Col(FullName::new(inner_alias.clone(), col));
        let dup = Name::new("A");
        let inner = Query::Select(SelectQuery::new(
            SelectList::Items(vec![
                SelectItem { term: term.clone(), alias: dup.clone() },
                SelectItem { term, alias: dup },
            ]),
            vec![FromItem::base(base, inner_alias)],
        ));
        let outer_alias = self.fresh_alias();
        let q = Query::Select(SelectQuery::new(
            SelectList::Star,
            vec![FromItem::subquery(inner, outer_alias)],
        ));
        let _ = scopes; // the block is self-contained
        (q, 2)
    }

    // `from_*` here is the FROM clause, not a conversion constructor.
    #[allow(clippy::wrong_self_convention)]
    fn from_item(
        &mut self,
        rng: &mut StdRng,
        depth: usize,
        scopes: &mut Vec<Scope>,
    ) -> (FromItem, ScopeEntry) {
        let alias = self.fresh_alias();
        if depth < self.config.max_nest
            && self.tables_budget >= 1
            && rng.gen_bool(self.config.from_subquery_prob)
        {
            // FROM subqueries see only the *enclosing* scopes, which is
            // exactly what `scopes` currently holds (the local scope is
            // pushed after the FROM clause is complete).
            let (sub, _) = self.select(rng, depth + 1, scopes, None);
            let columns = sqlsem_core::sig::output_columns(&sub, self.schema)
                .expect("generated queries are well-formed");
            let item = FromItem::subquery(sub, alias.clone());
            (item, ScopeEntry { alias, columns })
        } else {
            let (base, columns) = self.random_base_table(rng);
            let item = FromItem {
                table: sqlsem_core::ast::TableRef::Base(base),
                alias: alias.clone(),
                columns: None,
            };
            (item, ScopeEntry { alias, columns })
        }
    }

    fn random_base_table(&self, rng: &mut StdRng) -> (Name, Vec<Name>) {
        let idx = rng.gen_range(0..self.schema.len());
        let (name, attrs) = self.schema.iter().nth(idx).expect("index in range");
        (name.clone(), attrs.to_vec())
    }

    fn select_list(
        &mut self,
        rng: &mut StdRng,
        scopes: &[Scope],
        required_arity: Option<usize>,
    ) -> SelectList {
        if required_arity.is_none()
            && !self.config.data_manipulation_only
            && rng.gen_bool(self.config.star_prob)
        {
            return SelectList::Star;
        }
        let m = required_arity.unwrap_or_else(|| rng.gen_range(1..=self.config.max_attrs));
        let mut items = Vec::with_capacity(m);
        for i in 0..m {
            let term = if self.config.data_manipulation_only {
                // Definition 1: only full names from the local FROM.
                Term::Col(self.local_column(rng, scopes))
            } else {
                self.term(rng, scopes)
            };
            let alias = Name::new(format!("c{}", i + 1));
            items.push(SelectItem { term, alias });
        }
        // Occasionally repeat an output name (outside Definition 1).
        if items.len() >= 2 && rng.gen_bool(self.config.repeated_output_prob) {
            let a = items[0].alias.clone();
            items[1].alias = a;
        }
        SelectList::Items(items)
    }

    fn condition(
        &mut self,
        rng: &mut StdRng,
        depth: usize,
        scopes: &mut Vec<Scope>,
        n_atoms: usize,
    ) -> Condition {
        debug_assert!(n_atoms >= 1);
        let node = if n_atoms == 1 {
            self.atom(rng, depth, scopes)
        } else {
            let left_n = rng.gen_range(1..n_atoms);
            let left = self.condition(rng, depth, scopes, left_n);
            let right = self.condition(rng, depth, scopes, n_atoms - left_n);
            if rng.gen_bool(0.5) {
                left.and(right)
            } else {
                left.or(right)
            }
        };
        if rng.gen_bool(0.2) {
            node.not()
        } else {
            node
        }
    }

    fn atom(&mut self, rng: &mut StdRng, depth: usize, scopes: &mut Vec<Scope>) -> Condition {
        let can_nest = depth < self.config.max_nest && self.tables_budget >= 1;
        if can_nest && rng.gen_bool(self.config.subquery_cond_prob) {
            if rng.gen_bool(0.5) {
                // t̄ [NOT] IN (Q)
                let width = if rng.gen_bool(0.8) { 1 } else { 2 };
                let terms: Vec<Term> = (0..width).map(|_| self.term(rng, scopes)).collect();
                let sub = self.query(rng, depth + 1, scopes, Some(width));
                return Condition::In { terms, query: Box::new(sub), negated: rng.gen_bool(0.5) };
            }
            // [NOT] EXISTS (Q)
            let sub = self.query(rng, depth + 1, scopes, None);
            let exists = Condition::exists(sub);
            return if rng.gen_bool(0.5) { exists.not() } else { exists };
        }
        match rng.gen_range(0..12) {
            0 => Condition::IsNull { term: self.term(rng, scopes), negated: rng.gen_bool(0.5) },
            1 => {
                if rng.gen_bool(0.5) {
                    Condition::True
                } else {
                    Condition::False
                }
            }
            // Syntactic (in)equality — Definition 2 in surface syntax.
            2 => Condition::IsDistinct {
                left: self.term(rng, scopes),
                right: self.term(rng, scopes),
                negated: rng.gen_bool(0.5),
            },
            _ => {
                let op = *CmpOp::ALL.choose(rng).expect("non-empty");
                Condition::Cmp { left: self.term(rng, scopes), op, right: self.term(rng, scopes) }
            }
        }
    }

    /// A term over the visible scopes: with `combinator_prob` a null
    /// combinator over simple operands, otherwise a [`Self::simple_term`].
    fn term(&mut self, rng: &mut StdRng, scopes: &[Scope]) -> Term {
        if !self.config.data_manipulation_only
            && self.config.combinator_prob > 0.0
            && rng.gen_bool(self.config.combinator_prob)
        {
            return self.combinator_term(rng, scopes);
        }
        self.simple_term(rng, scopes)
    }

    /// A null combinator: a searched `CASE` (1–2 branches, `ELSE` most
    /// of the time), a `COALESCE` of 2–3 operands, or a `NULLIF`.
    /// Operands are [`Self::simple_term`]s and `CASE` branch conditions
    /// are comparison / `IS NULL` atoms — the combinator fragment
    /// stresses null propagation, not recursion, so combinators never
    /// nest inside each other here (nesting still happens through
    /// subqueries whose select lists carry their own combinators).
    fn combinator_term(&mut self, rng: &mut StdRng, scopes: &[Scope]) -> Term {
        match rng.gen_range(0..3) {
            0 => {
                let branches: Vec<(Condition, Term)> = (0..rng.gen_range(1..=2usize))
                    .map(|_| {
                        let cond = if rng.gen_bool(0.3) {
                            Condition::IsNull {
                                term: self.simple_term(rng, scopes),
                                negated: rng.gen_bool(0.5),
                            }
                        } else {
                            let op = *CmpOp::ALL.choose(rng).expect("non-empty");
                            Condition::cmp(
                                self.simple_term(rng, scopes),
                                op,
                                self.simple_term(rng, scopes),
                            )
                        };
                        (cond, self.simple_term(rng, scopes))
                    })
                    .collect();
                let else_ = rng.gen_bool(0.6).then(|| self.simple_term(rng, scopes));
                Term::case(branches, else_)
            }
            1 => {
                let n = rng.gen_range(2..=3usize);
                Term::coalesce((0..n).map(|_| self.simple_term(rng, scopes)).collect::<Vec<_>>())
            }
            _ => Term::nullif(self.simple_term(rng, scopes), self.simple_term(rng, scopes)),
        }
    }

    /// A simple term over the visible scopes: a constant, a local
    /// column, or (with `correlated_prob`) a column of an enclosing
    /// scope.
    fn simple_term(&mut self, rng: &mut StdRng, scopes: &[Scope]) -> Term {
        if rng.gen_bool(self.config.constant_prob) {
            return if rng.gen_bool(self.config.null_const_prob) {
                Term::Const(Value::Null)
            } else {
                Term::Const(Value::Int(rng.gen_range(0..self.config.domain)))
            };
        }
        let use_outer = scopes.len() > 1 && rng.gen_bool(self.config.correlated_prob);
        if use_outer {
            let outer_idx = rng.gen_range(0..scopes.len() - 1);
            if let Some(name) = Self::column_in(&scopes[outer_idx], rng) {
                return Term::Col(name);
            }
        }
        match Self::column_in(scopes.last().expect("inside a block"), rng) {
            Some(name) => Term::Col(name),
            // Every local column is a repeated (ambiguous) name — fall
            // back to a constant rather than produce a reference that
            // cannot resolve.
            None => Term::Const(Value::Int(rng.gen_range(0..self.config.domain))),
        }
    }

    /// A random column of the innermost scope; only names that are
    /// referencable (unique within their entry) are candidates.
    fn local_column(&self, rng: &mut StdRng, scopes: &[Scope]) -> FullName {
        let local = scopes.last().expect("inside a block");
        Self::column_in(local, rng)
            .expect("data-manipulation scopes always have unique column names")
    }

    /// A random *unambiguous* column reference into `scope`: a repeated
    /// column name within one entry cannot be referenced (it would be the
    /// Example 2 ambiguity), so such names are excluded.
    fn column_in(scope: &Scope, rng: &mut StdRng) -> Option<FullName> {
        let mut candidates: Vec<FullName> = Vec::new();
        for entry in scope {
            for col in &entry.columns {
                let unique = entry.columns.iter().filter(|c| *c == col).count() == 1;
                if unique {
                    candidates.push(FullName::new(entry.alias.clone(), col.clone()));
                }
            }
        }
        candidates.choose(rng).cloned()
    }
}

/// Attaches the ordering fragment to the outermost block of a generated
/// query: 1–2 `ORDER BY` keys drawn from the block's *uniquely named*
/// output columns (a repeated output name would be the ambiguous-key
/// error — the ambiguity gadget covers that class separately), with
/// random direction and `NULLS` placement; a `LIMIT` most of the time
/// and an `OFFSET` sometimes, so pagination shapes (offset past the
/// end, limit cutting inside a tie group, `LIMIT 0`) all occur.
///
/// Only explicit-select outermost blocks are ordered; set operations
/// and star blocks are left bag-valued (the fragment attaches ordering
/// to `SELECT` blocks only).
fn attach_ordering(query: &mut Query, rng: &mut StdRng) {
    let Query::Select(s) = query else { return };
    let SelectList::Items(items) = &s.select else { return };
    let candidates: Vec<Name> = items
        .iter()
        .map(|i| i.alias.clone())
        .filter(|a| items.iter().filter(|i| &i.alias == a).count() == 1)
        .collect();
    let mut order_by = Vec::new();
    for _ in 0..rng.gen_range(1..=2usize) {
        if let Some(column) = candidates.choose(rng) {
            if order_by.iter().any(|k: &sqlsem_core::OrderKey| &k.column == column) {
                continue;
            }
            order_by.push(sqlsem_core::OrderKey {
                column: column.clone(),
                desc: rng.gen_bool(0.4),
                nulls_first: match rng.gen_range(0..3) {
                    0 => Some(true),
                    1 => Some(false),
                    _ => None,
                },
            });
        }
    }
    let limit = rng.gen_bool(0.7).then(|| rng.gen_range(0..=12u64));
    let offset = rng.gen_bool(0.35).then(|| rng.gen_range(0..=5u64));
    if order_by.is_empty() && limit.is_none() && offset.is_none() {
        return;
    }
    s.order_by = order_by;
    s.limit = limit;
    s.offset = offset;
}

/// Whether a query is a *data manipulation query* in the sense of
/// Definition 1 (§5): the query and every subquery use explicit `SELECT`
/// lists whose output names do not repeat, and every selected term is a
/// full name whose qualifier is bound by the local `FROM` clause.
pub fn is_data_manipulation(query: &Query) -> bool {
    match query {
        Query::SetOp { left, right, .. } => {
            is_data_manipulation(left) && is_data_manipulation(right)
        }
        Query::Select(s) => {
            let SelectList::Items(items) = &s.select else {
                return false; // stars are not allowed
            };
            // Output names must not repeat.
            let mut seen = std::collections::HashSet::with_capacity(items.len());
            if !items.iter().all(|i| seen.insert(&i.alias)) {
                return false;
            }
            // Every selected term is a full name over the local FROM.
            // Grouped blocks fall outside Definition 1 (§5 predates the
            // aggregation fragment).
            if s.is_grouped() {
                return false;
            }
            let local: std::collections::HashSet<&Name> =
                s.from.iter().flat_map(FromExpr::leaves).map(|f| &f.alias).collect();
            if !items.iter().all(|i| match &i.term {
                Term::Col(n) => local.contains(&n.table),
                _ => false,
            }) {
                return false;
            }
            // ON conditions translate like WHERE conditions, but the null
            // combinators have no RA term to map to.
            if !s.from.iter().all(from_expr_on_conditions_in_fragment) {
                return false;
            }
            // Recurse into FROM and WHERE subqueries.
            let from_ok = s.from.iter().flat_map(FromExpr::leaves).all(|f| match &f.table {
                sqlsem_core::ast::TableRef::Base(_) => true,
                sqlsem_core::ast::TableRef::Query(q) => is_data_manipulation(q),
            });
            let mut cond_ok = true;
            let mut check = |q: &Query| {
                // visit_queries visits nested queries of subqueries too;
                // is_data_manipulation recursion already covers those, but
                // re-checking is harmless and keeps this simple.
                cond_ok &= is_data_manipulation_block_shape(q);
            };
            for fe in &s.from {
                if matches!(fe, FromExpr::Join { .. }) {
                    fe.visit_queries(&mut check);
                }
            }
            s.where_.visit_queries(&mut check);
            from_ok && cond_ok
        }
    }
}

/// `true` iff every `ON` condition in the `FROM` expression stays inside
/// the fragment: no aggregates, no `CASE`/`COALESCE`/`NULLIF` terms.
fn from_expr_on_conditions_in_fragment(fe: &FromExpr) -> bool {
    match fe {
        FromExpr::Item(_) => true,
        FromExpr::Join { left, right, on, .. } => {
            let mut ok = true;
            on.visit_terms(&mut |t| {
                ok &= matches!(t, Term::Col(_) | Term::Const(_));
            });
            ok && from_expr_on_conditions_in_fragment(left)
                && from_expr_on_conditions_in_fragment(right)
        }
    }
}

/// The non-recursive part of the Definition 1 check (used when a visitor
/// already provides the recursion).
fn is_data_manipulation_block_shape(query: &Query) -> bool {
    match query {
        Query::SetOp { .. } => true, // operands are visited separately
        Query::Select(s) => {
            if s.is_grouped() {
                return false;
            }
            let SelectList::Items(items) = &s.select else { return false };
            let mut seen = std::collections::HashSet::with_capacity(items.len());
            if !items.iter().all(|i| seen.insert(&i.alias)) {
                return false;
            }
            let local: std::collections::HashSet<&Name> =
                s.from.iter().flat_map(FromExpr::leaves).map(|f| &f.alias).collect();
            if !s.from.iter().all(from_expr_on_conditions_in_fragment) {
                return false;
            }
            items.iter().all(|i| match &i.term {
                Term::Col(n) => local.contains(&n.table),
                _ => false,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::paper_schema;
    use rand::SeedableRng;
    use sqlsem_core::check::check_query;
    use sqlsem_core::Dialect;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let schema = paper_schema();
        let g = QueryGenerator::new(&schema, QueryGenConfig::small());
        let a = g.generate(&mut StdRng::seed_from_u64(42));
        let b = g.generate(&mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn generated_queries_resolve_statically() {
        // Every generated query must pass the static resolution check in
        // the PostgreSQL dialect (which allows ambiguous stars); the only
        // Oracle failures must be ambiguity errors from the Example 2
        // gadget.
        let schema = paper_schema();
        let g = QueryGenerator::new(&schema, QueryGenConfig::tpch_calibrated());
        let mut rng = StdRng::seed_from_u64(1);
        let mut oracle_ambiguous = 0;
        for i in 0..500 {
            let q = g.generate(&mut rng);
            check_query(&q, &schema, Dialect::PostgreSql)
                .unwrap_or_else(|e| panic!("query {i} fails PostgreSQL check: {e}\n{q}"));
            if let Err(e) = check_query(&q, &schema, Dialect::Oracle) {
                assert!(e.is_ambiguity(), "query {i}: unexpected Oracle error {e}\n{q}");
                oracle_ambiguous += 1;
            }
        }
        assert!(oracle_ambiguous > 0, "the ambiguous-star gadget never fired in 500 queries");
    }

    #[test]
    fn respects_table_budget() {
        let schema = paper_schema();
        let config = QueryGenConfig::tpch_calibrated();
        let g = QueryGenerator::new(&schema, config.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..300 {
            let q = g.generate(&mut rng);
            let mut tables = 0;
            q.visit(&mut |node| {
                if let Query::Select(s) = node {
                    tables += s
                        .from
                        .iter()
                        .flat_map(sqlsem_core::ast::FromExpr::leaves)
                        .filter(|f| matches!(f.table, sqlsem_core::ast::TableRef::Base(_)))
                        .count();
                }
            });
            assert!(tables <= config.max_tables, "query mentions {tables} base tables:\n{q}");
        }
    }

    #[test]
    fn respects_nesting_and_attr_limits() {
        let schema = paper_schema();
        let config = QueryGenConfig::tpch_calibrated();
        let g = QueryGenerator::new(&schema, config.clone());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let q = g.generate(&mut rng);
            q.visit(&mut |node| {
                if let Query::Select(s) = node {
                    if let SelectList::Items(items) = &s.select {
                        assert!(items.len() <= config.max_attrs.max(2));
                    }
                    assert!(s.where_.atom_count() <= config.max_conds);
                }
            });
        }
    }

    #[test]
    fn grouped_blocks_are_generated_and_resolve_statically() {
        // With the default aggregate_prob a healthy share of blocks
        // group; every one must pass the static grouped typing rules
        // (PostgreSQL dialect — ambiguous stars aside, which cannot
        // occur inside grouped blocks).
        let schema = paper_schema();
        let g = QueryGenerator::new(&schema, QueryGenConfig::small());
        let mut rng = StdRng::seed_from_u64(11);
        let mut grouped = 0usize;
        let mut keyless = 0usize;
        let mut with_having = 0usize;
        for _ in 0..300 {
            let q = g.generate(&mut rng);
            q.visit(&mut |node| {
                if let Query::Select(s) = node {
                    if s.is_grouped() {
                        grouped += 1;
                        keyless += usize::from(s.group_by.is_empty());
                        with_having += usize::from(s.having != Condition::True);
                        if s.group_by.is_empty() {
                            // Implicit single group: every item aggregates.
                            let SelectList::Items(items) = &s.select else { panic!() };
                            assert!(items.iter().all(|i| i.term.is_aggregate()));
                        }
                    }
                }
            });
        }
        assert!(grouped >= 50, "only {grouped} grouped blocks in 300 queries");
        assert!(keyless >= 10, "only {keyless} keyless aggregations in 300 queries");
        assert!(with_having >= 10, "only {with_having} HAVING clauses in 300 queries");
    }

    #[test]
    fn outer_joins_and_combinators_are_generated_and_resolve_statically() {
        // The heavy preset must actually emit the new fragment — every
        // join kind, equi and non-equi ON shapes, and all three
        // combinators — and each such query already passed the static
        // check inside generated_queries_resolve_statically's sweep; here
        // we pin the coverage counts so a probability regression shows up.
        let schema = paper_schema();
        let g = QueryGenerator::new(&schema, QueryGenConfig::outer_join_heavy());
        let mut rng = StdRng::seed_from_u64(31);
        let mut kinds = std::collections::HashSet::new();
        let mut equi = 0usize;
        let mut general = 0usize;
        let (mut cases, mut coalesces, mut nullifs) = (0usize, 0usize, 0usize);
        for i in 0..300 {
            let q = g.generate(&mut rng);
            check_query(&q, &schema, Dialect::PostgreSql)
                .unwrap_or_else(|e| panic!("query {i} fails PostgreSQL check: {e}\n{q}"));
            q.visit(&mut |node| {
                let Query::Select(s) = node else { return };
                for fe in &s.from {
                    visit_joins(fe, &mut |kind, on| {
                        kinds.insert(kind);
                        match on {
                            Condition::Cmp {
                                left: Term::Col(_),
                                op: CmpOp::Eq,
                                right: Term::Col(_),
                            } => {
                                equi += 1;
                            }
                            _ => general += 1,
                        }
                    });
                }
                let mut count = |t: &Term| match t {
                    Term::Case { .. } => cases += 1,
                    Term::Coalesce(_) => coalesces += 1,
                    Term::Nullif(..) => nullifs += 1,
                    _ => {}
                };
                if let SelectList::Items(items) = &s.select {
                    items.iter().for_each(|i| count(&i.term));
                }
                s.where_.visit_terms(&mut count);
                s.having.visit_terms(&mut count);
            });
        }
        assert_eq!(kinds.len(), JoinKind::ALL.len(), "missing join kinds: saw {kinds:?}");
        assert!(equi >= 20, "only {equi} equi ON clauses in 300 queries");
        assert!(general >= 20, "only {general} general ON clauses in 300 queries");
        assert!(cases >= 20, "only {cases} CASE terms in 300 queries");
        assert!(coalesces >= 20, "only {coalesces} COALESCE terms in 300 queries");
        assert!(nullifs >= 20, "only {nullifs} NULLIF terms in 300 queries");
    }

    fn visit_joins(fe: &FromExpr, f: &mut impl FnMut(JoinKind, &Condition)) {
        if let FromExpr::Join { kind, left, right, on } = fe {
            f(*kind, on);
            visit_joins(left, f);
            visit_joins(right, f);
        }
    }

    #[test]
    fn ordered_blocks_are_generated_and_resolve_statically() {
        let schema = paper_schema();
        let g = QueryGenerator::new(&schema, QueryGenConfig::small());
        let mut rng = StdRng::seed_from_u64(21);
        let mut ordered = 0usize;
        let mut limited = 0usize;
        let mut with_offset = 0usize;
        for _ in 0..300 {
            let q = g.generate(&mut rng);
            let Query::Select(s) = &q else { continue };
            if !s.is_ordered() {
                continue;
            }
            ordered += 1;
            limited += usize::from(s.limit.is_some());
            with_offset += usize::from(s.offset.is_some());
            // Ordered queries must still pass the static checks (keys
            // are drawn from uniquely named output columns).
            check_query(&q, &schema, Dialect::PostgreSql)
                .unwrap_or_else(|e| panic!("ordered query fails PostgreSQL check: {e}\n{q}"));
        }
        assert!(ordered >= 40, "only {ordered} ordered queries in 300");
        assert!(limited >= 20, "only {limited} limited queries in 300");
        assert!(with_offset >= 5, "only {with_offset} offset queries in 300");
    }

    #[test]
    fn data_manipulation_preset_generates_definition1_queries() {
        let schema = paper_schema();
        let g = QueryGenerator::new(&schema, QueryGenConfig::data_manipulation());
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..300 {
            let q = g.generate(&mut rng);
            assert!(is_data_manipulation(&q), "query {i} violates Definition 1:\n{q}");
            check_query(&q, &schema, Dialect::Oracle)
                .unwrap_or_else(|e| panic!("query {i} fails static check: {e}\n{q}"));
        }
    }

    #[test]
    fn is_data_manipulation_rejects_counterexamples() {
        let schema = paper_schema();
        let _ = &schema;
        // Star select.
        let star =
            Query::Select(SelectQuery::new(SelectList::Star, vec![FromItem::base("R1", "x")]));
        assert!(!is_data_manipulation(&star));
        // Constant in SELECT.
        let konst = Query::Select(SelectQuery::new(
            SelectList::items([(Term::Const(Value::Int(1)), "c1")]),
            vec![FromItem::base("R1", "x")],
        ));
        assert!(!is_data_manipulation(&konst));
        // Repeated output names.
        let dup = Query::Select(SelectQuery::new(
            SelectList::Items(vec![
                SelectItem::new(Term::col("x", "A1"), "c"),
                SelectItem::new(Term::col("x", "A2"), "c"),
            ]),
            vec![FromItem::base("R1", "x")],
        ));
        assert!(!is_data_manipulation(&dup));
        // Correlated name in SELECT (qualifier not in local FROM).
        let correlated = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("outer", "A1"), "c1")]),
            vec![FromItem::base("R1", "x")],
        ));
        assert!(!is_data_manipulation(&correlated));
        // A good one.
        let ok = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("x", "A1"), "c1")]),
            vec![FromItem::base("R1", "x")],
        ));
        assert!(is_data_manipulation(&ok));
    }

    #[test]
    fn generated_queries_roundtrip_through_the_parser() {
        // print → parse → annotate must reproduce the AST exactly.
        let schema = paper_schema();
        let g = QueryGenerator::new(&schema, QueryGenConfig::small());
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..200 {
            let q = g.generate(&mut rng);
            for dialect in Dialect::ALL {
                let text = sqlsem_parser::to_sql(&q, dialect);
                let back = sqlsem_parser::compile(&text, &schema).unwrap_or_else(|e| {
                    panic!("query {i} does not re-parse [{dialect}]: {e}\n{text}")
                });
                assert_eq!(back, q, "query {i} round-trip mismatch [{dialect}]:\n{text}");
            }
        }
    }
}
