//! Random database instances — the reproduction's stand-in for the
//! Datafiller tool the paper used (§4).
//!
//! Datafiller fills tables with random values given a schema; this module
//! does the same, seeded and with a configurable null rate and value
//! domain. Two presets matter:
//!
//! * [`DataGenConfig::paper`] — base tables capped at 50 rows, the cap the
//!   paper chose "to speed up our implementation of the semantics (which
//!   computes Cartesian products)";
//! * [`DataGenConfig::small`] — an 8-row cap for the in-tree randomised
//!   tests, where tens of thousands of cases run per build.
//!
//! The value domain is deliberately tiny (single digits by default) so
//! that joins, `IN` and set operations actually hit: with a large domain
//! almost every comparison would be false and the interesting code paths
//! would go unexercised.

use rand::rngs::StdRng;
use rand::Rng;

use sqlsem_core::{Database, Row, Schema, Table, Value};

/// Configuration for random database generation.
#[derive(Clone, Debug, PartialEq)]
pub struct DataGenConfig {
    /// Minimum rows per base table.
    pub min_rows: usize,
    /// Maximum rows per base table (inclusive).
    pub max_rows: usize,
    /// Probability that any given cell is `NULL`.
    pub null_rate: f64,
    /// Non-null integer cells are drawn uniformly from `0..domain`.
    pub domain: i64,
}

impl DataGenConfig {
    /// The paper's §4 setup: tables capped at 50 rows.
    pub fn paper() -> Self {
        DataGenConfig { min_rows: 0, max_rows: 50, null_rate: 0.2, domain: 10 }
    }

    /// A small preset for fast in-tree randomised testing.
    pub fn small() -> Self {
        DataGenConfig { min_rows: 0, max_rows: 8, null_rate: 0.25, domain: 5 }
    }

    /// Like [`DataGenConfig::small`] but with no nulls — used to check
    /// that the three logic modes coincide on null-free data (§6).
    pub fn small_null_free() -> Self {
        DataGenConfig { null_rate: 0.0, ..DataGenConfig::small() }
    }
}

impl Default for DataGenConfig {
    fn default() -> Self {
        DataGenConfig::small()
    }
}

/// Generates a random instance of `schema`.
pub fn random_database(schema: &Schema, config: &DataGenConfig, rng: &mut StdRng) -> Database {
    let mut db = Database::new(schema.clone());
    for (name, attrs) in schema.iter() {
        let rows = rng.gen_range(config.min_rows..=config.max_rows);
        let mut table = Table::new(attrs.to_vec()).expect("schema attrs are non-empty");
        for _ in 0..rows {
            let row: Row = (0..attrs.len()).map(|_| random_value(config, rng)).collect();
            table.push(row).expect("row arity matches by construction");
        }
        db.replace_table(name.clone(), table).expect("table matches schema by construction");
    }
    db
}

fn random_value(config: &DataGenConfig, rng: &mut StdRng) -> Value {
    if config.null_rate > 0.0 && rng.gen_bool(config.null_rate) {
        Value::Null
    } else {
        Value::Int(rng.gen_range(0..config.domain))
    }
}

/// The fixed schema of the §4 experiments: base tables `R1 … R8`, where
/// `Ri` has `i + 1` integer attributes named `A1 … A(i+1)`.
pub fn paper_schema() -> Schema {
    let mut b = Schema::builder();
    for i in 1..=8usize {
        let attrs: Vec<String> = (1..=i + 1).map(|j| format!("A{j}")).collect();
        b = b.table(format!("R{i}"), attrs);
    }
    b.build().expect("the paper schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_schema_has_eight_tables_with_growing_arity() {
        let s = paper_schema();
        assert_eq!(s.len(), 8);
        for i in 1..=8usize {
            let attrs = s.attributes(format!("R{i}")).unwrap();
            assert_eq!(attrs.len(), i + 1, "R{i}");
            assert_eq!(attrs[0].as_str(), "A1");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = paper_schema();
        let cfg = DataGenConfig::small();
        let a = random_database(&s, &cfg, &mut StdRng::seed_from_u64(7));
        let b = random_database(&s, &cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = random_database(&s, &cfg, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn respects_row_bounds() {
        let s = paper_schema();
        let cfg = DataGenConfig { min_rows: 2, max_rows: 5, null_rate: 0.2, domain: 10 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let db = random_database(&s, &cfg, &mut rng);
            for (name, _) in s.iter() {
                let n = db.table(name).unwrap().len();
                assert!((2..=5).contains(&n), "{name} has {n} rows");
            }
        }
    }

    #[test]
    fn null_rate_zero_means_no_nulls() {
        let s = paper_schema();
        let cfg = DataGenConfig::small_null_free();
        let db = random_database(&s, &cfg, &mut StdRng::seed_from_u64(3));
        for (name, _) in s.iter() {
            for row in db.table(name).unwrap().rows() {
                assert!(!row.has_null());
            }
        }
    }

    #[test]
    fn values_stay_in_domain() {
        let s = paper_schema();
        let cfg = DataGenConfig { min_rows: 1, max_rows: 8, null_rate: 0.3, domain: 4 };
        let db = random_database(&s, &cfg, &mut StdRng::seed_from_u64(3));
        for (name, _) in s.iter() {
            for row in db.table(name).unwrap().rows() {
                for v in row.iter() {
                    match v {
                        Value::Null => {}
                        Value::Int(n) => assert!((0..4).contains(n)),
                        other => panic!("unexpected value {other}"),
                    }
                }
            }
        }
    }
}
