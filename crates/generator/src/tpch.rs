//! TPC-H shape statistics used to calibrate the query generator (§4).
//!
//! The paper does not *run* TPC-H — benchmarks measure performance, and
//! with only 22 queries they are far too small for validating a
//! semantics. Instead it inspects the **shape** of the TPC-H queries and
//! derives four generator parameters from them: `tables = 6`, `nest = 3`,
//! `attr = 3`, `cond = 8`. This module records the supporting statistics
//! so that the calibration is reproducible.
//!
//! The per-query numbers below are reconstructed from the query
//! definitions of the TPC-H 2.17.1 specification (the revision the paper
//! cites). Counted are: base tables mentioned in the query including
//! repetitions and nested subqueries, the deepest subquery nesting, and
//! atomic conditions in the largest `WHERE` clause. Aggregates match the
//! figures the paper quotes: eight base tables; on average 3.2 tables per
//! query with all but one query using 6 or fewer; only three queries with
//! more than 8 conditions; no query nesting deeper than 3.

/// Shape statistics of one TPC-H query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryShape {
    /// Query number (1–22).
    pub query: u8,
    /// Base tables mentioned, counting repetitions and subqueries.
    pub tables: u8,
    /// Maximum nesting depth of subqueries.
    pub nesting: u8,
    /// Atomic conditions in the largest `WHERE` clause.
    pub conditions: u8,
    /// Whether the query groups (`GROUP BY`, usually with `HAVING`).
    /// Until the aggregation fragment landed, none of these shapes were
    /// expressible; see [`simplest_grouped_shape`] for the entry point.
    pub grouped: bool,
}

/// Reconstructed shape statistics for the 22 TPC-H queries.
pub const TPCH_SHAPES: [QueryShape; 22] = [
    QueryShape { query: 1, tables: 1, nesting: 0, conditions: 1, grouped: true },
    QueryShape { query: 2, tables: 4, nesting: 1, conditions: 8, grouped: false },
    QueryShape { query: 3, tables: 3, nesting: 0, conditions: 4, grouped: true },
    QueryShape { query: 4, tables: 2, nesting: 1, conditions: 3, grouped: true },
    QueryShape { query: 5, tables: 6, nesting: 0, conditions: 7, grouped: true },
    QueryShape { query: 6, tables: 1, nesting: 0, conditions: 3, grouped: false },
    QueryShape { query: 7, tables: 4, nesting: 1, conditions: 7, grouped: true },
    QueryShape { query: 8, tables: 8, nesting: 1, conditions: 9, grouped: true },
    QueryShape { query: 9, tables: 6, nesting: 1, conditions: 5, grouped: true },
    QueryShape { query: 10, tables: 4, nesting: 0, conditions: 5, grouped: true },
    QueryShape { query: 11, tables: 3, nesting: 1, conditions: 3, grouped: true },
    QueryShape { query: 12, tables: 2, nesting: 0, conditions: 6, grouped: true },
    QueryShape { query: 13, tables: 2, nesting: 1, conditions: 2, grouped: true },
    QueryShape { query: 14, tables: 2, nesting: 0, conditions: 2, grouped: false },
    QueryShape { query: 15, tables: 2, nesting: 1, conditions: 2, grouped: true },
    QueryShape { query: 16, tables: 3, nesting: 1, conditions: 4, grouped: true },
    QueryShape { query: 17, tables: 2, nesting: 1, conditions: 3, grouped: false },
    QueryShape { query: 18, tables: 3, nesting: 1, conditions: 3, grouped: true },
    QueryShape { query: 19, tables: 2, nesting: 0, conditions: 12, grouped: false },
    QueryShape { query: 20, tables: 4, nesting: 3, conditions: 4, grouped: false },
    QueryShape { query: 21, tables: 4, nesting: 2, conditions: 9, grouped: true },
    QueryShape { query: 22, tables: 2, nesting: 2, conditions: 4, grouped: true },
];

/// Number of base tables in the TPC-H schema.
pub const TPCH_BASE_TABLES: usize = 8;

/// The generator parameters the paper derives from the statistics.
pub const CALIBRATED: (usize, usize, usize, usize) = (6, 3, 3, 8);

/// Aggregate statistics over [`TPCH_SHAPES`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aggregates {
    /// Mean number of tables per query.
    pub mean_tables: f64,
    /// Queries using more than 6 tables.
    pub queries_over_6_tables: usize,
    /// Queries with more than 8 conditions.
    pub queries_over_8_conditions: usize,
    /// Maximum nesting depth observed.
    pub max_nesting: u8,
    /// Queries that use `GROUP BY` — the workload class the aggregation
    /// fragment opens up.
    pub grouped_queries: usize,
}

/// Computes the aggregates the paper quotes.
pub fn aggregates() -> Aggregates {
    let n = TPCH_SHAPES.len() as f64;
    Aggregates {
        mean_tables: TPCH_SHAPES.iter().map(|s| s.tables as f64).sum::<f64>() / n,
        queries_over_6_tables: TPCH_SHAPES.iter().filter(|s| s.tables > 6).count(),
        queries_over_8_conditions: TPCH_SHAPES.iter().filter(|s| s.conditions > 8).count(),
        max_nesting: TPCH_SHAPES.iter().map(|s| s.nesting).max().unwrap_or(0),
        grouped_queries: TPCH_SHAPES.iter().filter(|s| s.grouped).count(),
    }
}

/// The simplest TPC-H-like grouped shape, over the experiments' `R1 … R8`
/// schema (the Q1 skeleton: one table, one grouping key, the whole
/// aggregate battery, a `HAVING` filter). Used by the smoke test that
/// runs it identically through the semantics and the engine.
pub fn simplest_grouped_shape() -> &'static str {
    "SELECT R1.A1 AS key, COUNT(*) AS n, SUM(R1.A2) AS total, AVG(R1.A2) AS mean, \
     MIN(R1.A2) AS lo, MAX(R1.A2) AS hi \
     FROM R1 GROUP BY R1.A1 HAVING COUNT(*) >= 1"
}

/// Renders the calibration table and the derived parameters, for the
/// `tpch_calibration` experiment binary.
pub fn calibration_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "TPC-H query shape statistics (reconstructed from TPC-H 2.17.1)");
    let _ = writeln!(
        out,
        "{:>5} {:>7} {:>8} {:>11} {:>8}",
        "query", "tables", "nesting", "conditions", "grouped"
    );
    for s in TPCH_SHAPES {
        let _ = writeln!(
            out,
            "{:>5} {:>7} {:>8} {:>11} {:>8}",
            s.query,
            s.tables,
            s.nesting,
            s.conditions,
            if s.grouped { "yes" } else { "" }
        );
    }
    let a = aggregates();
    let _ = writeln!(out);
    let _ = writeln!(out, "base tables in schema:          {TPCH_BASE_TABLES} (paper: 8)");
    let _ = writeln!(out, "mean tables per query:          {:.1} (paper: 3.2)", a.mean_tables);
    let _ = writeln!(out, "queries using more than 6:      {} (paper: 1)", a.queries_over_6_tables);
    let _ =
        writeln!(out, "queries with more than 8 conds: {} (paper: 3)", a.queries_over_8_conditions);
    let _ = writeln!(out, "maximum nesting depth:          {} (paper: ≤ 3)", a.max_nesting);
    let _ = writeln!(
        out,
        "queries that group/aggregate:   {} (expressible since the aggregation fragment)",
        a.grouped_queries
    );
    let (t, n, at, c) = CALIBRATED;
    let _ = writeln!(out);
    let _ = writeln!(out, "derived generator parameters: tables={t} nest={n} attr={at} cond={c}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_match_the_papers_quotes() {
        let a = aggregates();
        // "on average each benchmark query uses only 3.2"
        assert!((a.mean_tables - 3.2).abs() < 0.05, "mean {}", a.mean_tables);
        // "all queries but one use 6 or fewer"
        assert_eq!(a.queries_over_6_tables, 1);
        // "only three queries use more than 8 conditions"
        assert_eq!(a.queries_over_8_conditions, 3);
        // "no query exceeds 3 levels of nesting"
        assert!(a.max_nesting <= 3);
    }

    #[test]
    fn calibrated_parameters_are_the_papers() {
        assert_eq!(CALIBRATED, (6, 3, 3, 8));
        let cfg = crate::QueryGenConfig::tpch_calibrated();
        assert_eq!((cfg.max_tables, cfg.max_nest, cfg.max_attrs, cfg.max_conds), CALIBRATED);
    }

    #[test]
    fn report_mentions_all_queries() {
        let r = calibration_report();
        assert!(r.contains("tables=6 nest=3 attr=3 cond=8"));
        for q in 1..=22 {
            assert!(r.contains(&format!("\n{q:>5} ")), "missing query {q}");
        }
    }
}
