//! Property-based tests for the core data model: Kleene-logic laws
//! (Figure 1), bag-operation laws (§3), and environment laws (§3).

use proptest::prelude::*;
use sqlsem_core::{Env, FullName, Name, Row, Table, Truth, Value};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn truth() -> impl Strategy<Value = Truth> {
    prop_oneof![Just(Truth::True), Just(Truth::False), Just(Truth::Unknown)]
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => Just(Value::Null),
        5 => (0i64..5).prop_map(Value::Int),
        2 => (0i64..500).prop_map(Value::Int),
    ]
}

fn row(arity: usize) -> impl Strategy<Value = Row> {
    proptest::collection::vec(value(), arity).prop_map(Row::new)
}

/// A table with `arity` columns named C0..C{arity-1} and up to 12 rows.
fn table(arity: usize) -> impl Strategy<Value = Table> {
    proptest::collection::vec(row(arity), 0..12).prop_map(move |rows| {
        let cols = (0..arity).map(|i| Name::new(format!("C{i}"))).collect();
        Table::with_rows(cols, rows).unwrap()
    })
}

fn full_names(max: usize) -> impl Strategy<Value = Vec<FullName>> {
    proptest::collection::vec((0usize..3, 0usize..3), 1..=max).prop_map(|v| {
        v.into_iter().map(|(t, c)| FullName::new(format!("T{t}"), format!("C{c}"))).collect()
    })
}

// ---------------------------------------------------------------------------
// Kleene logic laws (Figure 1)
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn and_is_commutative(a in truth(), b in truth()) {
        prop_assert_eq!(a.and(b), b.and(a));
    }

    #[test]
    fn or_is_commutative(a in truth(), b in truth()) {
        prop_assert_eq!(a.or(b), b.or(a));
    }

    #[test]
    fn and_is_associative(a in truth(), b in truth(), c in truth()) {
        prop_assert_eq!(a.and(b).and(c), a.and(b.and(c)));
    }

    #[test]
    fn or_is_associative(a in truth(), b in truth(), c in truth()) {
        prop_assert_eq!(a.or(b).or(c), a.or(b.or(c)));
    }

    #[test]
    fn and_distributes_over_or(a in truth(), b in truth(), c in truth()) {
        prop_assert_eq!(a.and(b.or(c)), a.and(b).or(a.and(c)));
    }

    #[test]
    fn de_morgan(a in truth(), b in truth()) {
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }

    #[test]
    fn negation_is_involutive(a in truth()) {
        prop_assert_eq!(a.not().not(), a);
    }

    #[test]
    fn units_and_absorbing_elements(a in truth()) {
        prop_assert_eq!(a.and(Truth::True), a);
        prop_assert_eq!(a.or(Truth::False), a);
        prop_assert_eq!(a.and(Truth::False), Truth::False);
        prop_assert_eq!(a.or(Truth::True), Truth::True);
    }

    #[test]
    fn kleene_has_no_excluded_middle_only_for_unknown(a in truth()) {
        // a ∨ ¬a = t exactly when a is not u — the signature difference
        // between Kleene 3VL and Boolean logic.
        let lem = a.or(a.not());
        if a.is_unknown() {
            prop_assert_eq!(lem, Truth::Unknown);
        } else {
            prop_assert_eq!(lem, Truth::True);
        }
    }

    #[test]
    fn folds_agree_with_binary_ops(v in proptest::collection::vec(truth(), 0..6)) {
        let all = Truth::all(v.clone());
        let any = Truth::any(v.clone());
        prop_assert_eq!(all, v.iter().fold(Truth::True, |acc, &t| acc.and(t)));
        prop_assert_eq!(any, v.iter().fold(Truth::False, |acc, &t| acc.or(t)));
    }
}

// ---------------------------------------------------------------------------
// Bag-operation laws (§3)
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn union_counts_add(a in table(2), b in table(2), probe in row(2)) {
        let u = a.union_all(&b).unwrap();
        prop_assert_eq!(u.multiplicity(&probe), a.multiplicity(&probe) + b.multiplicity(&probe));
    }

    #[test]
    fn intersection_counts_min(a in table(2), b in table(2), probe in row(2)) {
        let i = a.intersect_all(&b).unwrap();
        prop_assert_eq!(i.multiplicity(&probe), a.multiplicity(&probe).min(b.multiplicity(&probe)));
    }

    #[test]
    fn difference_counts_saturating_sub(a in table(2), b in table(2), probe in row(2)) {
        let d = a.except_all(&b).unwrap();
        prop_assert_eq!(
            d.multiplicity(&probe),
            a.multiplicity(&probe).saturating_sub(b.multiplicity(&probe))
        );
    }

    #[test]
    fn product_counts_multiply(a in table(1), b in table(1), pa in row(1), pb in row(1)) {
        let p = a.product(&b);
        let probe = pa.concat(&pb);
        prop_assert_eq!(p.multiplicity(&probe), a.multiplicity(&pa) * b.multiplicity(&pb));
    }

    #[test]
    fn distinct_caps_at_one(a in table(2), probe in row(2)) {
        let d = a.distinct();
        prop_assert_eq!(d.multiplicity(&probe), a.multiplicity(&probe).min(1));
    }

    #[test]
    fn distinct_is_idempotent(a in table(2)) {
        prop_assert!(a.distinct().multiset_eq(&a.distinct().distinct()));
    }

    #[test]
    fn union_is_commutative_as_multiset(a in table(2), b in table(2)) {
        let ab = a.union_all(&b).unwrap();
        let ba = b.union_all(&a).unwrap();
        prop_assert!(ab.multiset_eq(&ba));
    }

    #[test]
    fn intersection_is_commutative_as_multiset(a in table(2), b in table(2)) {
        let ab = a.intersect_all(&b).unwrap();
        let ba = b.intersect_all(&a).unwrap();
        prop_assert!(ab.multiset_eq(&ba));
    }

    #[test]
    fn inclusion_exclusion_of_counts(a in table(1), b in table(1), probe in row(1)) {
        // m_a + m_b = 2·min(m_a,m_b) + (m_a−m_b)⁺ + (m_b−m_a)⁺, i.e.
        // #(a∪b) = 2·#(a∩b) + #(a−b) + #(b−a) on each record.
        let lhs = a.union_all(&b).unwrap().multiplicity(&probe);
        let rhs = 2 * a.intersect_all(&b).unwrap().multiplicity(&probe)
            + a.except_all(&b).unwrap().multiplicity(&probe)
            + b.except_all(&a).unwrap().multiplicity(&probe);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn except_self_is_empty(a in table(2)) {
        prop_assert!(a.except_all(&a).unwrap().is_empty());
    }

    #[test]
    fn coincides_is_an_equivalence_on_shuffles(a in table(2), seed in 0u64..1000) {
        // Shuffling rows never changes coincidence.
        let mut rows = a.rows().cloned().collect::<Vec<_>>();
        // Cheap deterministic shuffle.
        let n = rows.len();
        if n > 1 {
            for i in 0..n {
                let j = (seed as usize + i * 7) % n;
                rows.swap(i, j);
            }
        }
        let shuffled = Table::with_rows(a.columns().to_vec(), rows).unwrap();
        prop_assert!(a.coincides(&shuffled));
    }
}

// ---------------------------------------------------------------------------
// Environment laws (§3)
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn update_binds_every_unrepeated_name(names in full_names(5), seed in 0i64..100) {
        let vals: Vec<Value> = (0..names.len()).map(|i| Value::Int(seed + i as i64)).collect();
        let row = Row::new(vals.clone());
        let env = Env::empty().update(&names, &row).unwrap();
        for (i, n) in names.iter().enumerate() {
            let occurrences = names.iter().filter(|m| *m == n).count();
            if occurrences == 1 {
                prop_assert_eq!(env.lookup(n).unwrap(), &vals[i]);
            } else {
                prop_assert!(env.lookup(n).unwrap_err().is_ambiguity());
            }
        }
    }

    #[test]
    fn update_never_consults_outer_for_scoped_names(names in full_names(5)) {
        // Pre-bind every name in an outer env to a sentinel; after the
        // update, no lookup of a scoped name may return the sentinel.
        let sentinel = Value::Int(-999);
        let mut outer = Env::empty();
        for n in &names {
            outer = outer.bind(n.clone(), sentinel.clone());
        }
        let row = Row::new(vec![Value::Int(0); names.len()]);
        let env = outer.update(&names, &row).unwrap();
        for n in &names {
            if let Ok(v) = env.lookup(n) {
                prop_assert_ne!(v, &sentinel);
            }
        }
    }

    #[test]
    fn override_is_associative(names in full_names(4)) {
        // (η₁;η₂);η₃ = η₁;(η₂;η₃) pointwise.
        let mk = |offset: i64| {
            let mut e = Env::empty();
            for (i, n) in names.iter().enumerate() {
                if (i as i64 + offset) % 2 == 0 {
                    e = e.bind(n.clone(), Value::Int(offset * 100 + i as i64));
                }
            }
            e
        };
        let (e1, e2, e3) = (mk(0), mk(1), mk(2));
        let left = e1.override_with(&e2).override_with(&e3);
        let right = e1.override_with(&e2.override_with(&e3));
        for n in &names {
            prop_assert_eq!(left.lookup(n).ok(), right.lookup(n).ok());
        }
    }

    #[test]
    fn unbind_then_lookup_fails(names in full_names(4)) {
        let row = Row::new(vec![Value::Int(1); names.len()]);
        let env = Env::empty().update(&names, &row).unwrap();
        let cleared = env.unbind(&names);
        for n in &names {
            prop_assert!(cleared.lookup(n).is_err());
        }
    }
}
