//! Names and full names (the sets `N` and `N²` of the paper, §2).
//!
//! SQL column references in the *fully annotated* form of queries are always
//! *full names* `T.A`: a pair of a table (or alias) name and an attribute
//! name. Plain [`Name`]s name base tables, aliases, and output columns.
//!
//! Names are immutable and cheaply cloneable (`Arc<str>` internally), since
//! the evaluator copies scopes per row.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An SQL identifier: the name of a table, alias, or column (an element of
/// the countable set `N` of the paper).
///
/// Comparison, hashing and ordering are by the underlying string.
///
/// ```
/// use sqlsem_core::Name;
/// let a = Name::new("A");
/// assert_eq!(a.as_str(), "A");
/// assert_eq!(a, Name::from("A"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(Arc<str>);

impl Name {
    /// Creates a name from any string-like value.
    pub fn new(s: impl AsRef<str>) -> Self {
        Name(Arc::from(s.as_ref()))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Builds the full name `self.column` (the prefixing operation
    /// `N.(N₁,…,Nₙ)` of §3 applied to a single attribute).
    pub fn dot(&self, column: impl Into<Name>) -> FullName {
        FullName { table: self.clone(), column: column.into() }
    }

    /// Prefixes every name in `columns` with `self`, yielding the tuple of
    /// full names `(self.N₁, …, self.Nₖ)` — the operation `N.(N₁,…,Nₖ)`
    /// of §3 used to build the scope `ℓ(τ:β)`.
    pub fn prefix(&self, columns: &[Name]) -> Vec<FullName> {
        columns.iter().map(|c| self.dot(c.clone())).collect()
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({})", self.0)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name(Arc::from(s))
    }
}

impl From<&Name> for Name {
    fn from(n: &Name) -> Self {
        n.clone()
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A *full name* `T.A` — an element of `N²` in the paper, written `N₁.N₂`.
///
/// Full names are what the environment binds to values, and what the
/// `SELECT` and `WHERE` clauses of annotated queries refer to.
///
/// ```
/// use sqlsem_core::{FullName, Name};
/// let fnm = Name::new("R").dot("A");
/// assert_eq!(fnm.to_string(), "R.A");
/// assert_eq!(fnm, FullName::new("R", "A"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FullName {
    /// The qualifier: a table name or alias introduced in a `FROM` clause.
    pub table: Name,
    /// The attribute name within that table.
    pub column: Name,
}

impl FullName {
    /// Creates the full name `table.column`.
    pub fn new(table: impl Into<Name>, column: impl Into<Name>) -> Self {
        FullName { table: table.into(), column: column.into() }
    }
}

impl fmt::Debug for FullName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FullName({}.{})", self.table, self.column)
    }
}

impl fmt::Display for FullName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

impl From<(&str, &str)> for FullName {
    fn from((t, c): (&str, &str)) -> Self {
        FullName::new(t, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn name_equality_is_by_string() {
        assert_eq!(Name::new("abc"), Name::from("abc".to_string()));
        assert_ne!(Name::new("abc"), Name::new("ABC"));
    }

    #[test]
    fn name_ordering_is_lexicographic() {
        let mut v = vec![Name::new("b"), Name::new("a"), Name::new("c")];
        v.sort();
        assert_eq!(v, vec![Name::new("a"), Name::new("b"), Name::new("c")]);
    }

    #[test]
    fn names_hash_like_strings() {
        let mut set = HashSet::new();
        set.insert(Name::new("x"));
        assert!(set.contains("x"));
        assert!(!set.contains("y"));
    }

    #[test]
    fn prefix_builds_scope_names() {
        let r = Name::new("R");
        let cols = [Name::new("A"), Name::new("B")];
        let scope = r.prefix(&cols);
        assert_eq!(scope, vec![FullName::new("R", "A"), FullName::new("R", "B")]);
    }

    #[test]
    fn full_name_display() {
        assert_eq!(FullName::new("T", "C").to_string(), "T.C");
    }

    #[test]
    fn full_name_from_pair() {
        let f: FullName = ("S", "B").into();
        assert_eq!(f, FullName::new("S", "B"));
    }

    #[test]
    fn dot_builds_full_name() {
        assert_eq!(Name::new("R").dot("A"), FullName::new("R", "A"));
    }
}
