//! Tables as bags of records, and the bag operations of §3.
//!
//! A table of arity `k > 0` is a *bag* of records of length `k` (§2): the
//! same record can occur multiple times, and the multiplicity `#(r̄, T)` is
//! part of the data. A [`Table`] also carries the tuple of column names of
//! its output — possibly with repetitions, since SQL queries can produce
//! tables with repeated column names (`SELECT R.A, R.A FROM R`).
//!
//! The bag operations implemented here are exactly those of §3
//! ("Operations on tables"), keyed on *syntactic* record identity
//! (`NULL` equals `NULL`):
//!
//! ```text
//! #(t̄, T₁ ∪ T₂) = #(t̄, T₁) + #(t̄, T₂)
//! #(t̄, T₁ ∩ T₂) = min(#(t̄, T₁), #(t̄, T₂))
//! #(t̄, T₁ − T₂) = max(#(t̄, T₁) − #(t̄, T₂), 0)
//! #((t̄₁,t̄₂), T₁ × T₂) = #(t̄₁, T₁) · #(t̄₂, T₂)
//! #(t̄, ε(T)) = min(#(t̄, T), 1)
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::error::EvalError;
use crate::name::Name;
use crate::row::Row;

/// A table: a tuple of column names plus a bag of records of matching
/// arity.
///
/// Row order is internally preserved (insertion order) but is *not* part
/// of the table's identity: the §4 correctness criterion compares tables
/// by column names and row multiplicities only, which is what
/// [`Table::coincides`] implements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    columns: Vec<Name>,
    rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table with the given column names.
    ///
    /// Errors with [`EvalError::ZeroArity`] if `columns` is empty: the
    /// data model requires arity `k > 0` (§2).
    pub fn new(columns: Vec<Name>) -> Result<Self, EvalError> {
        if columns.is_empty() {
            return Err(EvalError::ZeroArity);
        }
        Ok(Table { columns, rows: Vec::new() })
    }

    /// Creates a table with the given columns and rows, validating that
    /// every row has the right arity.
    pub fn with_rows(columns: Vec<Name>, rows: Vec<Row>) -> Result<Self, EvalError> {
        let mut t = Table::new(columns)?;
        for r in rows {
            t.push(r)?;
        }
        Ok(t)
    }

    /// Appends one occurrence of a record to the bag.
    pub fn push(&mut self, row: Row) -> Result<(), EvalError> {
        if row.arity() != self.arity() {
            return Err(EvalError::RowArity { expected: self.arity(), got: row.arity() });
        }
        self.rows.push(row);
        Ok(())
    }

    /// The tuple of column names (possibly with repetitions).
    pub fn columns(&self) -> &[Name] {
        &self.columns
    }

    /// Renames the columns, keeping the rows. Used by set operations
    /// (which adopt the left operand's names, Figure 3) and by the
    /// algebra's ρ.
    pub fn with_columns(mut self, columns: Vec<Name>) -> Result<Self, EvalError> {
        if columns.len() != self.arity() {
            return Err(EvalError::ArityMismatch {
                context: "column rename",
                left: self.arity(),
                right: columns.len(),
            });
        }
        self.columns = columns;
        Ok(self)
    }

    /// The arity `k` of the table.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Total number of records counted with multiplicity, `Σ_r̄ #(r̄, T)`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the bag has no records — the test `EXISTS` performs
    /// (Figure 6).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over the records, with multiplicity (each occurrence is
    /// yielded separately).
    pub fn rows(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// Consumes the table, returning its rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// The multiplicity `#(r̄, T)` of a record in the bag; `0` if the
    /// record does not occur.
    pub fn multiplicity(&self, row: &Row) -> usize {
        self.rows.iter().filter(|r| *r == row).count()
    }

    /// `true` iff `r̄ ∈ T`, i.e. `#(r̄, T) > 0`.
    pub fn contains(&self, row: &Row) -> bool {
        self.rows.iter().any(|r| r == row)
    }

    /// The multiplicity map of the bag: each distinct record with its
    /// count. Keyed on syntactic record identity.
    pub fn counts(&self) -> HashMap<&Row, usize> {
        let mut m: HashMap<&Row, usize> = HashMap::with_capacity(self.rows.len());
        for r in &self.rows {
            *m.entry(r).or_insert(0) += 1;
        }
        m
    }

    /// Bag union `T₁ ∪ T₂`: multiplicities add. Column names are taken
    /// from the left operand (Figure 3: `ℓ(Q₁ UNION ALL Q₂) = ℓ(Q₁)`).
    pub fn union_all(&self, other: &Table) -> Result<Table, EvalError> {
        self.check_compatible(other, "UNION ALL")?;
        let mut rows = Vec::with_capacity(self.rows.len() + other.rows.len());
        rows.extend_from_slice(&self.rows);
        rows.extend_from_slice(&other.rows);
        Ok(Table { columns: self.columns.clone(), rows })
    }

    /// Bag intersection `T₁ ∩ T₂`: multiplicities take the minimum.
    pub fn intersect_all(&self, other: &Table) -> Result<Table, EvalError> {
        self.check_compatible(other, "INTERSECT ALL")?;
        let mut budget = other.counts();
        let rows = self
            .rows
            .iter()
            .filter(|r| match budget.get_mut(*r) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            })
            .cloned()
            .collect();
        Ok(Table { columns: self.columns.clone(), rows })
    }

    /// Bag difference `T₁ − T₂`: multiplicities subtract, floored at zero.
    pub fn except_all(&self, other: &Table) -> Result<Table, EvalError> {
        self.check_compatible(other, "EXCEPT ALL")?;
        let mut budget = other.counts();
        let rows = self
            .rows
            .iter()
            .filter(|r| match budget.get_mut(*r) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    false
                }
                _ => true,
            })
            .cloned()
            .collect();
        Ok(Table { columns: self.columns.clone(), rows })
    }

    /// Cartesian product `T₁ × T₂`: multiplicities multiply, records
    /// concatenate, column tuples concatenate.
    #[must_use]
    pub fn product(&self, other: &Table) -> Table {
        let mut columns = Vec::with_capacity(self.arity() + other.arity());
        columns.extend_from_slice(&self.columns);
        columns.extend_from_slice(&other.columns);
        let mut rows = Vec::with_capacity(self.rows.len() * other.rows.len());
        for left in &self.rows {
            for right in &other.rows {
                rows.push(left.concat(right));
            }
        }
        Table { columns, rows }
    }

    /// Duplicate elimination `ε(T)`: keeps one occurrence of each record
    /// (the first, preserving encounter order).
    #[must_use]
    pub fn distinct(&self) -> Table {
        let mut seen = std::collections::HashSet::with_capacity(self.rows.len());
        let rows = self.rows.iter().filter(|r| seen.insert((*r).clone())).cloned().collect();
        Table { columns: self.columns.clone(), rows }
    }

    /// `true` iff the two bags contain the same records with the same
    /// multiplicities, ignoring column names and row order.
    pub fn multiset_eq(&self, other: &Table) -> bool {
        self.arity() == other.arity()
            && self.rows.len() == other.rows.len()
            && self.counts() == other.counts()
    }

    /// The §4 correctness criterion: the tables *coincide* iff they have
    /// the same number of columns, with the same names in the same order,
    /// and the same rows with the same multiplicities (row order is
    /// arbitrary).
    pub fn coincides(&self, other: &Table) -> bool {
        self.columns == other.columns && self.multiset_eq(other)
    }

    /// The rows sorted by syntactic value order; used by golden tests
    /// that want a canonical *bag* rendering. `Display` deliberately
    /// does **not** use this: with the ordering fragment, row order is
    /// the list semantics' output and re-sorting it for display would
    /// misreport `ORDER BY` results.
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

impl Table {
    fn check_compatible(&self, other: &Table, context: &'static str) -> Result<(), EvalError> {
        if self.arity() != other.arity() {
            return Err(EvalError::ArityMismatch {
                context,
                left: self.arity(),
                right: other.arity(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Table {
    /// Renders the table with a header row and the records **in list
    /// order** (the insertion order of the table, which for ordered
    /// queries *is* the `ORDER BY` semantics — no re-sorting), e.g.:
    ///
    /// ```text
    ///  A | B
    /// ---+---
    ///  1 | NULL
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let header: Vec<String> = self.columns.iter().map(|c| c.to_string()).collect();
        let rows: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect();
        let mut widths: Vec<usize> = header.iter().map(String::len).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    f.write_str(" | ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_line(f, &header)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                f.write_str("-+-")?;
            }
            f.write_str(&"-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &rows {
            write_line(f, row)?;
        }
        write!(f, "({} row{})", self.len(), if self.len() == 1 { "" } else { "s" })
    }
}

/// Builds a [`Table`] from column names and rows.
///
/// ```
/// use sqlsem_core::{table, Value};
/// let t = table! {
///     ["A", "B"];
///     [1, Value::Null],
///     [2, 5],
/// };
/// assert_eq!(t.arity(), 2);
/// assert_eq!(t.len(), 2);
/// ```
#[macro_export]
macro_rules! table {
    ([$($col:expr),* $(,)?] $(; $([$($v:expr),* $(,)?]),* $(,)?)?) => {
        $crate::Table::with_rows(
            vec![$($crate::Name::new($col)),*],
            vec![$($($crate::row![$($v),*]),*)?],
        )
        .expect("table! literal is well-formed")
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::Value;

    fn names(cs: &[&str]) -> Vec<Name> {
        cs.iter().map(Name::new).collect()
    }

    #[test]
    fn zero_arity_rejected() {
        assert_eq!(Table::new(vec![]).unwrap_err(), EvalError::ZeroArity);
    }

    #[test]
    fn push_checks_arity() {
        let mut t = Table::new(names(&["A"])).unwrap();
        assert!(t.push(row![1]).is_ok());
        assert_eq!(t.push(row![1, 2]).unwrap_err(), EvalError::RowArity { expected: 1, got: 2 });
    }

    #[test]
    fn multiplicity_counts_occurrences() {
        let t = table! { ["A"]; [1], [2], [1], [1] };
        assert_eq!(t.multiplicity(&row![1]), 3);
        assert_eq!(t.multiplicity(&row![2]), 1);
        assert_eq!(t.multiplicity(&row![3]), 0);
        assert!(t.contains(&row![2]));
        assert!(!t.contains(&row![9]));
    }

    #[test]
    fn union_adds_multiplicities() {
        let a = table! { ["A"]; [1], [1] };
        let b = table! { ["A"]; [1], [2] };
        let u = a.union_all(&b).unwrap();
        assert_eq!(u.multiplicity(&row![1]), 3);
        assert_eq!(u.multiplicity(&row![2]), 1);
        assert_eq!(u.len(), 4);
    }

    #[test]
    fn intersection_takes_minimum() {
        let a = table! { ["A"]; [1], [1], [1], [2] };
        let b = table! { ["A"]; [1], [1], [3] };
        let i = a.intersect_all(&b).unwrap();
        assert_eq!(i.multiplicity(&row![1]), 2);
        assert_eq!(i.multiplicity(&row![2]), 0);
        assert_eq!(i.multiplicity(&row![3]), 0);
    }

    #[test]
    fn difference_floors_at_zero() {
        let a = table! { ["A"]; [1], [1], [1], [2] };
        let b = table! { ["A"]; [1], [1], [2], [2] };
        let d = a.except_all(&b).unwrap();
        assert_eq!(d.multiplicity(&row![1]), 1);
        assert_eq!(d.multiplicity(&row![2]), 0);
    }

    #[test]
    fn bag_ops_use_syntactic_identity_on_nulls() {
        let a = table! { ["A"]; [Value::Null], [Value::Null], [1] };
        let b = table! { ["A"]; [Value::Null] };
        assert_eq!(a.intersect_all(&b).unwrap().multiplicity(&row![Value::Null]), 1);
        assert_eq!(a.except_all(&b).unwrap().multiplicity(&row![Value::Null]), 1);
        assert_eq!(a.union_all(&b).unwrap().multiplicity(&row![Value::Null]), 3);
    }

    #[test]
    fn product_multiplies_multiplicities() {
        let a = table! { ["A"]; [1], [1] };
        let b = table! { ["B"]; [5], [5], [6] };
        let p = a.product(&b);
        assert_eq!(p.columns(), names(&["A", "B"]).as_slice());
        assert_eq!(p.len(), 6);
        assert_eq!(p.multiplicity(&row![1, 5]), 4);
        assert_eq!(p.multiplicity(&row![1, 6]), 2);
    }

    #[test]
    fn distinct_caps_multiplicity_at_one() {
        let t = table! { ["A"]; [1], [1], [2], [1] };
        let d = t.distinct();
        assert_eq!(d.multiplicity(&row![1]), 1);
        assert_eq!(d.multiplicity(&row![2]), 1);
        assert_eq!(d.len(), 2);
        // ε is idempotent.
        assert!(d.distinct().multiset_eq(&d));
    }

    #[test]
    fn set_ops_reject_arity_mismatch() {
        let a = table! { ["A"]; [1] };
        let b = table! { ["A", "B"]; [1, 2] };
        assert!(a.union_all(&b).is_err());
        assert!(a.intersect_all(&b).is_err());
        assert!(a.except_all(&b).is_err());
    }

    #[test]
    fn set_ops_keep_left_column_names() {
        let a = table! { ["A"]; [1] };
        let b = table! { ["X"]; [2] };
        assert_eq!(a.union_all(&b).unwrap().columns(), names(&["A"]).as_slice());
        assert_eq!(a.intersect_all(&b).unwrap().columns(), names(&["A"]).as_slice());
        assert_eq!(a.except_all(&b).unwrap().columns(), names(&["A"]).as_slice());
    }

    #[test]
    fn coincides_is_the_section4_criterion() {
        let a = table! { ["A", "B"]; [1, 2], [1, 2], [3, 4] };
        let shuffled = table! { ["A", "B"]; [3, 4], [1, 2], [1, 2] };
        assert!(a.coincides(&shuffled));
        // Different multiplicity.
        let fewer = table! { ["A", "B"]; [1, 2], [3, 4] };
        assert!(!a.coincides(&fewer));
        // Same rows, different column names.
        let renamed = table! { ["A", "C"]; [1, 2], [1, 2], [3, 4] };
        assert!(!a.coincides(&renamed));
        assert!(a.multiset_eq(&renamed));
    }

    #[test]
    fn repeated_column_names_are_allowed() {
        let t = table! { ["A", "A"]; [1, 1] };
        assert_eq!(t.columns(), names(&["A", "A"]).as_slice());
    }

    #[test]
    fn display_renders_header_and_rows() {
        let t = table! { ["A", "B"]; [2, 1], [1, Value::Null] };
        let s = t.to_string();
        assert!(s.contains("A | B"), "{s}");
        assert!(s.contains("NULL"), "{s}");
        assert!(s.contains("(2 rows)"), "{s}");
    }

    #[test]
    fn display_preserves_list_order() {
        // No re-sorting for display: [2,…] was produced first, so it
        // prints first — essential for ordered (ORDER BY) results.
        let t = table! { ["A", "B"]; [2, 1], [1, 3] };
        let s = t.to_string();
        let first = s.find("2 | 1").expect("first row rendered");
        let second = s.find("1 | 3").expect("second row rendered");
        assert!(first < second, "{s}");
    }

    #[test]
    fn empty_product_is_empty() {
        let a = table! { ["A"]; [1] };
        let empty = table! { ["B"]; };
        assert!(a.product(&empty).is_empty());
        assert!(empty.product(&a).is_empty());
    }
}
