//! # sqlsem-core
//!
//! An executable rendering of the formal semantics of basic SQL from
//! Paolo Guagliardo and Leonid Libkin, *A Formal Semantics of SQL Queries,
//! Its Validation, and Applications*, PVLDB 11(1), 2017.
//!
//! The crate contains, module by module, the paper's definitional figures:
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`name`] | the sets `N` of names and `N²` of full names (§2) |
//! | [`value`] | the set `C` of constants plus `NULL`; SQL vs syntactic equality (§2, Def. 2) |
//! | [`truth`] | SQL's three-valued Kleene logic (Figure 1) |
//! | [`row`](mod@row), [`table`](mod@table) | records, bags, and the bag operations `∪ ∩ − × ε` (§2–3) |
//! | [`schema`] | schemas and database instances (§2) |
//! | [`ast`] | the syntax of basic SQL in fully annotated form (Figure 2) |
//! | [`sig`] | output attributes `ℓ(Q)` and scopes `ℓ(τ:β)` (Figure 3) |
//! | [`env`](mod@env) | environments and the operations `η_{Ā,r̄}`, `⇑`, `;`, `r̄⊕` (§3) |
//! | [`pred`] | the open collection `P` of predicates (§2) |
//! | [`eval`] | the denotational semantics `⟦·⟧_{D,η,x}` (Figures 4–7) |
//! | [`dialect`] | the §4 per-system adjustments and the §6 logic modes |
//! | [`check`] | static name resolution (compile-time RDBMS behaviour) |
//!
//! The quickest way in is [`Evaluator`]:
//!
//! ```
//! use sqlsem_core::ast::{Condition, FromItem, Query, SelectList, SelectQuery, Term};
//! use sqlsem_core::{table, Database, Evaluator, Schema, Value};
//!
//! // Schema and data of the paper's Example 1: R = {1, NULL}, S = {NULL}.
//! let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
//! let mut db = Database::new(schema);
//! db.replace_table("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
//! db.replace_table("S", table! { ["A"]; [Value::Null] }).unwrap();
//!
//! // Q1: SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)
//! let sub = Query::Select(SelectQuery::new(
//!     SelectList::items([(Term::col("S", "A"), "A")]),
//!     vec![FromItem::base("S", "S")],
//! ));
//! let q1 = Query::Select(
//!     SelectQuery::new(
//!         SelectList::items([(Term::col("R", "A"), "A")]),
//!         vec![FromItem::base("R", "R")],
//!     )
//!     .distinct()
//!     .filter(Condition::not_in([Term::col("R", "A")], sub)),
//! );
//!
//! // Under SQL's 3VL the NOT IN never succeeds: the answer is empty.
//! let out = Evaluator::new(&db).eval(&q1).unwrap();
//! assert!(out.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod check;
pub mod dialect;
pub mod env;
pub mod error;
pub mod eval;
pub mod index;
pub mod name;
pub mod order;
pub mod pred;
pub mod row;
pub mod schema;
pub mod sig;
pub mod table;
pub mod truth;
pub mod value;

pub use ast::{
    AggFunc, Aggregate, Condition, FromItem, OrderKey, Query, SelectItem, SelectList, SelectQuery,
    SetOp, Term,
};
pub use dialect::{Dialect, LogicMode};
pub use env::{Binding, Env};
pub use error::{EvalError, Span};
pub use eval::{aggregate, Evaluator, STAR_EXISTS_COLUMN, STAR_EXISTS_CONSTANT};
pub use index::{Index, IndexDef, IndexKey};
pub use name::{FullName, Name};
pub use pred::{Predicate, PredicateRegistry};
pub use row::Row;
pub use schema::{Database, Schema, SchemaBuilder, SchemaError};
pub use table::Table;
pub use truth::Truth;
pub use value::{CmpOp, Value};
