//! The collection `P` of predicates on base types (§2).
//!
//! The fragment is parameterised by a collection `P` of predicates, of
//! which equality is always present; comparisons and `LIKE` are the
//! paper's examples of type-specific members. Those are built into the
//! AST ([`crate::ast::Condition::Cmp`], [`crate::ast::Condition::Like`]);
//! this module provides the *open* part of `P`: a registry of named
//! user predicates over non-null values.
//!
//! Per Figure 6, the evaluator applies a registered predicate only when
//! all arguments are non-null; a `NULL` argument short-circuits to
//! *unknown* (three-valued modes) or *false* (two-valued modes) before the
//! predicate function is ever called, so predicate implementations never
//! see nulls.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::EvalError;
use crate::value::Value;

/// The function type of a registered predicate: total on non-null values
/// of the right types, erroring on type mismatches.
pub type PredicateFn = dyn Fn(&[Value]) -> Result<bool, EvalError> + Send + Sync;

/// A named predicate with a declared arity.
#[derive(Clone)]
pub struct Predicate {
    arity: usize,
    func: Arc<PredicateFn>,
}

impl Predicate {
    /// Wraps a function as a predicate of the given arity.
    pub fn new(
        arity: usize,
        func: impl Fn(&[Value]) -> Result<bool, EvalError> + Send + Sync + 'static,
    ) -> Self {
        Predicate { arity, func: Arc::new(func) }
    }

    /// Declared arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Applies the predicate to non-null arguments.
    pub fn apply(&self, args: &[Value]) -> Result<bool, EvalError> {
        (self.func)(args)
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Predicate(arity={})", self.arity)
    }
}

/// A registry resolving predicate names used in
/// [`crate::ast::Condition::Pred`] conditions.
#[derive(Clone, Debug, Default)]
pub struct PredicateRegistry {
    preds: HashMap<String, Predicate>,
}

impl PredicateRegistry {
    /// An empty registry — sufficient for all queries that stick to the
    /// built-in comparisons and `LIKE`.
    pub fn new() -> Self {
        PredicateRegistry::default()
    }

    /// A registry with a few integer predicates used by tests, examples
    /// and documentation: `even(x)`, `positive(x)` and `divides(d, x)`.
    pub fn with_examples() -> Self {
        let mut r = PredicateRegistry::new();
        r.register("even", 1, |args| match &args[0] {
            Value::Int(n) => Ok(n % 2 == 0),
            v => {
                Err(EvalError::TypeMismatch { op: "even".into(), left: v.type_name(), right: "-" })
            }
        });
        r.register("positive", 1, |args| match &args[0] {
            Value::Int(n) => Ok(*n > 0),
            v => Err(EvalError::TypeMismatch {
                op: "positive".into(),
                left: v.type_name(),
                right: "-",
            }),
        });
        r.register("divides", 2, |args| match (&args[0], &args[1]) {
            (Value::Int(d), Value::Int(n)) => Ok(*d != 0 && n % d == 0),
            (a, b) => Err(EvalError::TypeMismatch {
                op: "divides".into(),
                left: a.type_name(),
                right: b.type_name(),
            }),
        });
        r
    }

    /// Registers (or replaces) a predicate under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        func: impl Fn(&[Value]) -> Result<bool, EvalError> + Send + Sync + 'static,
    ) {
        self.preds.insert(name.into(), Predicate::new(arity, func));
    }

    /// Resolves and applies a predicate, checking arity. Arguments must
    /// already be non-null (the Figure 6 null rule is the caller's job).
    pub fn apply(&self, name: &str, args: &[Value]) -> Result<bool, EvalError> {
        let Some(p) = self.preds.get(name) else {
            return Err(EvalError::UnknownPredicate(name.to_string()));
        };
        if args.len() != p.arity() {
            return Err(EvalError::PredicateArity {
                name: name.to_string(),
                expected: p.arity(),
                got: args.len(),
            });
        }
        p.apply(args)
    }

    /// `true` iff a predicate with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.preds.contains_key(name)
    }

    /// Number of registered predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// `true` iff no predicates are registered.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn examples_registry_works() {
        let r = PredicateRegistry::with_examples();
        assert!(r.apply("even", &[Value::Int(4)]).unwrap());
        assert!(!r.apply("even", &[Value::Int(3)]).unwrap());
        assert!(r.apply("positive", &[Value::Int(1)]).unwrap());
        assert!(!r.apply("positive", &[Value::Int(-1)]).unwrap());
        assert!(r.apply("divides", &[Value::Int(3), Value::Int(9)]).unwrap());
        assert!(!r.apply("divides", &[Value::Int(0), Value::Int(9)]).unwrap());
    }

    #[test]
    fn unknown_predicate_errors() {
        let r = PredicateRegistry::new();
        assert_eq!(
            r.apply("nope", &[Value::Int(1)]).unwrap_err(),
            EvalError::UnknownPredicate("nope".into())
        );
    }

    #[test]
    fn arity_is_checked() {
        let r = PredicateRegistry::with_examples();
        assert_eq!(
            r.apply("even", &[Value::Int(1), Value::Int(2)]).unwrap_err(),
            EvalError::PredicateArity { name: "even".into(), expected: 1, got: 2 }
        );
    }

    #[test]
    fn type_errors_propagate() {
        let r = PredicateRegistry::with_examples();
        assert!(r.apply("even", &[Value::str("x")]).is_err());
    }

    #[test]
    fn registration_replaces() {
        let mut r = PredicateRegistry::new();
        r.register("p", 1, |_| Ok(true));
        assert!(r.apply("p", &[Value::Int(0)]).unwrap());
        r.register("p", 1, |_| Ok(false));
        assert!(!r.apply("p", &[Value::Int(0)]).unwrap());
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }
}
