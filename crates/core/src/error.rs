//! Errors raised while evaluating basic SQL queries.
//!
//! The paper assumes queries have been successfully compiled (§2), so most
//! of these errors correspond to queries *outside* the well-typed fragment.
//! Two of them, however, are load-bearing for the semantics itself:
//!
//! * [`EvalError::AmbiguousReference`] is the error the Standard (and
//!   Oracle) raise when a query refers to a full name that is repeated in
//!   the scope it resolves against — the situation of Example 2 of the
//!   paper. The §4 experiments explicitly check that the Oracle-adjusted
//!   semantics errors in exactly the same cases as Oracle does.
//! * [`EvalError::UnboundReference`] corresponds to the environment being
//!   undefined on a full name (the query "does not compile", §3).

use std::fmt;

use crate::name::{FullName, Name};

/// A half-open byte range `start..end` into a piece of SQL source text.
///
/// Spans originate in the parser (every token records its byte offset)
/// and are threaded through the higher layers so that errors can point
/// back at the offending SQL — the `Session` API wraps every layer's
/// error together with the span of the statement that caused it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character covered.
    pub start: usize,
    /// Byte offset one past the last character covered.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A span covering all of `text`.
    pub fn of(text: &str) -> Span {
        Span { start: 0, end: text.len() }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// `true` iff the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The covered slice of `source`, if the span is in bounds.
    pub fn slice<'a>(&self, source: &'a str) -> Option<&'a str> {
        source.get(self.start..self.end.min(source.len()))
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes {}..{}", self.start, self.end)
    }
}

/// An error produced by the semantics, the independent engine, or the
/// algebra evaluator.
///
/// The enum is `#[non_exhaustive]`: future SQL fragments will add error
/// classes, and downstream matches must keep a wildcard arm.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// A full name has no binding in the environment: resolution walked all
    /// enclosing scopes without finding a match (§3, "Scopes and bindings").
    UnboundReference(FullName),
    /// A full name resolves against a scope in which it occurs more than
    /// once, so the reference is ambiguous. This is the behaviour
    /// prescribed by the Standard and implemented by Oracle (Example 2).
    AmbiguousReference(FullName),
    /// A plain name has no binding (relational-algebra environments bind
    /// plain names rather than full names, §5).
    UnboundName(Name),
    /// A plain name is ambiguous in a relational-algebra scope.
    AmbiguousName(Name),
    /// A `FROM` clause mentions a base table not present in the schema.
    UnknownTable(Name),
    /// A condition uses a predicate that is not registered in the
    /// collection `P` (§2 parameterises the language by `P`).
    UnknownPredicate(String),
    /// A registered predicate was applied to the wrong number of terms.
    PredicateArity {
        /// Predicate name.
        name: String,
        /// Arity the registry declares.
        expected: usize,
        /// Number of argument terms in the condition.
        got: usize,
    },
    /// A comparison or predicate was applied to constants of incompatible
    /// types. The paper assumes type-checked queries (§2), so this marks a
    /// query outside the fragment.
    TypeMismatch {
        /// The operator or predicate being applied.
        op: String,
        /// Type name of the left argument.
        left: &'static str,
        /// Type name of the right argument.
        right: &'static str,
    },
    /// Two row tuples (or a tuple of terms and a row) have different
    /// lengths, e.g. in `t̄ IN Q` or in a set operation.
    ArityMismatch {
        /// What was being evaluated (for diagnostics).
        context: &'static str,
        /// Arity of the left operand.
        left: usize,
        /// Arity of the right operand.
        right: usize,
    },
    /// A table (or projection list) would have zero columns; the data
    /// model requires arity `k > 0` (§2).
    ZeroArity,
    /// A row was inserted into a table with mismatching arity.
    RowArity {
        /// Arity of the table.
        expected: usize,
        /// Arity of the offending row.
        got: usize,
    },
    /// Two tables in a `FROM` clause were given the same alias; RDBMSs
    /// reject this at compile time.
    DuplicateAlias(Name),
    /// A `FROM` item of the form `T AS N(A₁,…,Aₙ)` renamed the wrong number
    /// of columns (the construct is used by the Figure 10 translation).
    ColumnRenameArity {
        /// The alias `N`.
        alias: Name,
        /// Number of columns of `T`.
        expected: usize,
        /// Number of names provided.
        got: usize,
    },
    /// An aggregate application appeared where aggregates are not
    /// allowed: in a `WHERE` clause, in `GROUP BY` keys, nested inside
    /// another aggregate's argument, or in an ungrouped context that is
    /// not a `SELECT` list / `HAVING` clause.
    MisplacedAggregate(&'static str),
    /// A column reference in the `SELECT` list or `HAVING` clause of a
    /// grouped block is neither aggregated nor one of the `GROUP BY`
    /// keys — the Standard's "column must appear in the GROUP BY clause
    /// or be used in an aggregate function" error.
    UngroupedColumn(FullName),
    /// A relational-algebra expression is not well-formed (§5 lists the
    /// side conditions for each operation).
    Malformed(String),
}

impl EvalError {
    /// Convenience constructor for [`EvalError::Malformed`].
    pub fn malformed(msg: impl Into<String>) -> Self {
        EvalError::Malformed(msg.into())
    }

    /// `true` iff the error is the ambiguous-reference error of the
    /// Standard/Oracle (used by the §4 validation harness, which counts a
    /// run as agreeing when *both* sides raise this error).
    pub fn is_ambiguity(&self) -> bool {
        matches!(self, EvalError::AmbiguousReference(_) | EvalError::AmbiguousName(_))
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundReference(n) => {
                write!(f, "reference {n} is not bound in any enclosing scope")
            }
            EvalError::AmbiguousReference(n) => write!(f, "reference {n} is ambiguous"),
            EvalError::UnboundName(n) => write!(f, "name {n} is not bound"),
            EvalError::AmbiguousName(n) => write!(f, "name {n} is ambiguous"),
            EvalError::UnknownTable(n) => write!(f, "unknown base table {n}"),
            EvalError::UnknownPredicate(p) => write!(f, "unknown predicate {p}"),
            EvalError::PredicateArity { name, expected, got } => {
                write!(f, "predicate {name} expects {expected} argument(s), got {got}")
            }
            EvalError::TypeMismatch { op, left, right } => {
                write!(f, "type mismatch: cannot apply {op} to {left} and {right}")
            }
            EvalError::ArityMismatch { context, left, right } => {
                write!(f, "arity mismatch in {context}: {left} vs {right}")
            }
            EvalError::ZeroArity => write!(f, "tables must have at least one column"),
            EvalError::RowArity { expected, got } => {
                write!(f, "row arity {got} does not match table arity {expected}")
            }
            EvalError::DuplicateAlias(n) => {
                write!(f, "table alias {n} specified more than once in FROM")
            }
            EvalError::ColumnRenameArity { alias, expected, got } => {
                write!(f, "alias {alias}(...) renames {got} column(s), table has {expected}")
            }
            EvalError::MisplacedAggregate(context) => {
                write!(f, "aggregate functions are not allowed in {context}")
            }
            EvalError::UngroupedColumn(n) => {
                write!(
                    f,
                    "column {n} must appear in the GROUP BY clause or be used in an \
                     aggregate function"
                )
            }
            EvalError::Malformed(msg) => write!(f, "malformed expression: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_offending_name() {
        let e = EvalError::UnboundReference(FullName::new("R", "A"));
        assert!(e.to_string().contains("R.A"));
        let e = EvalError::AmbiguousReference(FullName::new("T", "A"));
        assert!(e.to_string().contains("ambiguous"));
    }

    #[test]
    fn ambiguity_classification() {
        assert!(EvalError::AmbiguousReference(FullName::new("T", "A")).is_ambiguity());
        assert!(EvalError::AmbiguousName(Name::new("A")).is_ambiguity());
        assert!(!EvalError::UnboundReference(FullName::new("T", "A")).is_ambiguity());
        assert!(!EvalError::ZeroArity.is_ambiguity());
    }

    #[test]
    fn span_accessors() {
        let s = Span::new(4, 9);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.slice("SELECT A FROM R"), Some("CT A "));
        assert_eq!(Span::of("abc"), Span::new(0, 3));
        assert_eq!(s.to_string(), "bytes 4..9");
        // Out-of-bounds spans degrade gracefully.
        assert_eq!(Span::new(100, 200).slice("abc"), None);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            EvalError::UnknownTable(Name::new("R")),
            EvalError::UnknownTable(Name::new("R"))
        );
        assert_ne!(
            EvalError::UnknownTable(Name::new("R")),
            EvalError::UnknownTable(Name::new("S"))
        );
    }
}
