//! The denotational semantics of basic SQL (Figures 4–7).
//!
//! [`Evaluator`] implements the semantic function `⟦Q⟧_{D,η,x}`: given a
//! database `D`, an environment `η` for the query's parameters, and the
//! Boolean switch `x` (set exactly when the query is the outermost query
//! nested inside an `EXISTS` condition), it produces the output table.
//! The top-level entry point [`Evaluator::eval`] computes
//! `⟦Q⟧_D = ⟦Q⟧_{D,∅,0}`.
//!
//! This evaluator is intentionally a *direct transcription* of the
//! figures — Cartesian products are materialised, subqueries are
//! re-evaluated for every environment, conditions are interpreted
//! recursively. It is the executable specification; the optimised,
//! independently structured implementation used as a validation oracle
//! lives in the `sqlsem-engine` crate.
//!
//! Two orthogonal switches adjust the semantics:
//!
//! * [`Dialect`] — the §4 per-system adjustments (PostgreSQL's
//!   compositional `*`, Oracle's static ambiguity errors);
//! * [`LogicMode`] — the §6 two-valued semantics `⟦·⟧₂ᵥ`, under either
//!   interpretation of equality.

use std::collections::{HashMap, HashSet};

use crate::ast::{
    AggFunc, Aggregate, Condition, FromExpr, FromItem, Query, SelectList, SelectQuery, SetOp,
    TableRef, Term,
};
use crate::check;
use crate::dialect::{Dialect, LogicMode};
use crate::env::Env;
use crate::error::EvalError;
use crate::name::{FullName, Name};
use crate::pred::PredicateRegistry;
use crate::row::Row;
use crate::schema::Database;
use crate::sig;
use crate::table::Table;
use crate::truth::Truth;
use crate::value::{CmpOp, Value};

/// The arbitrary constant `c` substituted for `*` in queries directly
/// under `EXISTS` (Figure 5). Any constant gives the same semantics,
/// since only emptiness of the result matters; fixing one makes results
/// reproducible byte-for-byte.
pub const STAR_EXISTS_CONSTANT: Value = Value::Int(1);

/// The arbitrary output name `N` paired with [`STAR_EXISTS_CONSTANT`].
pub const STAR_EXISTS_COLUMN: &str = "c";

/// The semantic function `⟦·⟧` of Figures 4–7, packaged with its fixed
/// inputs: the database, the dialect adjustment and the logic mode.
///
/// ```
/// use sqlsem_core::ast::{FromItem, Query, SelectList, SelectQuery, Term};
/// use sqlsem_core::{Database, Evaluator, Schema, table};
///
/// let schema = Schema::builder().table("R", ["A"]).build().unwrap();
/// let mut db = Database::new(schema);
/// db.replace_table("R", table! { ["A"]; [1], [2] }).unwrap();
///
/// // SELECT R.A AS A FROM R AS R
/// let q = Query::Select(SelectQuery::new(
///     SelectList::items([(Term::col("R", "A"), "A")]),
///     vec![FromItem::base("R", "R")],
/// ));
/// let out = Evaluator::new(&db).eval(&q).unwrap();
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Evaluator<'a> {
    db: &'a Database,
    dialect: Dialect,
    logic: LogicMode,
    preds: PredicateRegistry,
}

impl<'a> Evaluator<'a> {
    /// An evaluator for the Standard semantics under three-valued logic,
    /// with no user predicates registered.
    pub fn new(db: &'a Database) -> Self {
        Evaluator {
            db,
            dialect: Dialect::Standard,
            logic: LogicMode::ThreeValued,
            preds: PredicateRegistry::new(),
        }
    }

    /// Selects the dialect adjustment (§4).
    #[must_use]
    pub fn with_dialect(mut self, dialect: Dialect) -> Self {
        self.dialect = dialect;
        self
    }

    /// Selects the logic mode (§6).
    #[must_use]
    pub fn with_logic(mut self, logic: LogicMode) -> Self {
        self.logic = logic;
        self
    }

    /// Provides the open part of the predicate collection `P`.
    #[must_use]
    pub fn with_predicates(mut self, preds: PredicateRegistry) -> Self {
        self.preds = preds;
        self
    }

    /// The database the evaluator reads.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    /// The dialect in effect.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// The logic mode in effect.
    pub fn logic(&self) -> LogicMode {
        self.logic
    }

    /// Evaluates a closed query: `⟦Q⟧_D = ⟦Q⟧_{D,∅,0}`.
    ///
    /// For the dialects that model compile-time behaviour (PostgreSQL,
    /// Oracle) a static resolution check runs first, so ambiguous or
    /// unbound references error even when no data would be touched.
    pub fn eval(&self, query: &Query) -> Result<Table, EvalError> {
        if self.dialect.checks_ambiguity_statically() {
            check::check_query(query, self.db.schema(), self.dialect)?;
        }
        self.eval_query(query, &Env::empty(), false)
    }

    /// The full semantic function `⟦Q⟧_{D,η,x}`; `exists` is the Boolean
    /// switch `x`, set exactly when `query` is the outermost query nested
    /// inside an `EXISTS` condition.
    pub fn eval_query(&self, query: &Query, env: &Env, exists: bool) -> Result<Table, EvalError> {
        match query {
            Query::Select(s) => self.eval_select(s, env, exists),
            Query::SetOp { op, all, left, right } => {
                // Figure 7: operands are always evaluated with x = 0.
                let l = self.eval_query(left, env, false)?;
                let r = self.eval_query(right, env, false)?;
                match (op, all) {
                    (SetOp::Union, true) => l.union_all(&r),
                    (SetOp::Union, false) => Ok(l.union_all(&r)?.distinct()),
                    (SetOp::Intersect, true) => l.intersect_all(&r),
                    (SetOp::Intersect, false) => Ok(l.intersect_all(&r)?.distinct()),
                    (SetOp::Except, true) => l.except_all(&r),
                    // Figure 7: ⟦Q₁ EXCEPT Q₂⟧ = ε(⟦Q₁⟧) − ⟦Q₂⟧; note the
                    // ε applies to the *left* operand only.
                    (SetOp::Except, false) => l.distinct().except_all(&r),
                }
            }
        }
    }

    /// `⟦SELECT … FROM τ:β WHERE θ⟧_{D,η,x}` (Figure 5), extended with
    /// the grouping fragment (`GROUP BY`/`HAVING`/aggregates).
    fn eval_select(&self, s: &SelectQuery, env: &Env, exists: bool) -> Result<Table, EvalError> {
        if s.from.is_empty() {
            return Err(EvalError::malformed("FROM clause must reference at least one table"));
        }
        if s.is_grouped() && s.select.is_star() {
            // `SELECT *` has no meaning over groups; rejected before any
            // data is touched, in every dialect, so the engine's
            // compile-time rejection coincides with this semantics.
            return Err(EvalError::malformed(
                "SELECT * cannot be combined with GROUP BY, HAVING or aggregates",
            ));
        }
        sig::check_distinct_aliases(&s.from)?;

        // ⟦τ:β⟧_{D,η,x} = ⟦T₁⟧_{D,η,0} × ⋯ × ⟦Tₖ⟧_{D,η,0}: each element of
        // the FROM clause — a plain item or an outer-join tree — is
        // evaluated under the *outer* environment, producing its table
        // and its slice of the scope ℓ(τ:β).
        let mut tables: Vec<Table> = Vec::with_capacity(s.from.len());
        let mut scope = Vec::new();
        for fe in &s.from {
            let (t, names) = self.eval_from_expr(fe, env)?;
            scope.extend(names);
            tables.push(t);
        }

        // The Cartesian product, with ℓ(τ) as its column tuple.
        let mut product = tables[0].clone();
        for t in &tables[1..] {
            product = product.product(t);
        }

        // ⟦FROM τ:β WHERE θ⟧: keep each record r̄ whose revised environment
        // η′ = η r̄⊕ ℓ(τ:β) makes θ true. The revised environment is kept
        // alongside, because the SELECT list is evaluated under it.
        let mut kept: Vec<(Row, Env)> = Vec::new();
        for row in product.rows() {
            let env1 = env.update(&scope, row)?;
            if self.eval_condition(&s.where_, &env1)?.is_true() {
                kept.push((row.clone(), env1));
            }
        }

        let result = if s.is_grouped() {
            self.eval_grouped(s, &kept, env)?
        } else {
            self.eval_plain_select(s, &kept, product.columns(), &scope, exists)?
        };

        let result = if s.distinct { result.distinct() } else { result };
        // The list layer (ORDER BY / LIMIT / OFFSET) sits on top of the
        // bag semantics: the bag's deterministic production order is
        // stably sorted by the keys, then sliced.
        if s.is_ordered() {
            crate::order::sort_and_slice(result, &s.order_by, s.limit, s.offset)
        } else {
            Ok(result)
        }
    }

    /// The ungrouped projection of Figure 5 over the surviving
    /// `FROM`–`WHERE` records (`DISTINCT` and the list layer are applied
    /// by the caller).
    fn eval_plain_select(
        &self,
        s: &SelectQuery,
        kept: &[(Row, Env)],
        product_columns: &[Name],
        scope: &[crate::FullName],
        exists: bool,
    ) -> Result<Table, EvalError> {
        match &s.select {
            SelectList::Items(items) => {
                if items.is_empty() {
                    return Err(EvalError::ZeroArity);
                }
                let columns = items.iter().map(|i| i.alias.clone()).collect();
                let mut out = Table::new(columns)?;
                for (_, env1) in kept {
                    let row: Row = items
                        .iter()
                        .map(|i| self.eval_term(&i.term, env1))
                        .collect::<Result<_, _>>()?;
                    out.push(row)?;
                }
                Ok(out)
            }
            SelectList::Star if self.dialect.star_is_compositional() => {
                // PostgreSQL adjustment (§4): ⟦SELECT *⟧ is the FROM–WHERE
                // result itself, in every context.
                let mut out = Table::new(product_columns.to_vec())?;
                for (row, _) in kept {
                    out.push(row.clone())?;
                }
                Ok(out)
            }
            SelectList::Star if exists => {
                // Figure 5, x = 1: replace * by an arbitrary constant.
                let mut out = Table::new(vec![Name::new(STAR_EXISTS_COLUMN)])?;
                for _ in kept {
                    out.push(Row::new(vec![STAR_EXISTS_CONSTANT]))?;
                }
                Ok(out)
            }
            SelectList::Star => {
                // Figure 5, x = 0: expand * to SELECT ℓ(τ:β) : ℓ(τ). The
                // expansion *references* each full name of the scope, so a
                // repeated full name errors here — exactly Example 2.
                let mut out = Table::new(product_columns.to_vec())?;
                for (_, env1) in kept {
                    let row: Row =
                        scope.iter().map(|n| env1.lookup(n).cloned()).collect::<Result<_, _>>()?;
                    out.push(row)?;
                }
                Ok(out)
            }
        }
    }

    /// `⟦T⟧_{D,η,0}` for one element of a `FROM` clause, applying the
    /// optional column renaming `AS N(A₁,…,Aₙ)`.
    fn eval_from_item(&self, item: &FromItem, env: &Env) -> Result<Table, EvalError> {
        let table = match &item.table {
            TableRef::Base(r) => self.db.table(r)?,
            TableRef::Query(q) => self.eval_query(q, env, false)?,
        };
        match &item.columns {
            None => Ok(table),
            Some(cols) => {
                if cols.len() != table.arity() {
                    return Err(EvalError::ColumnRenameArity {
                        alias: item.alias.clone(),
                        expected: table.arity(),
                        got: cols.len(),
                    });
                }
                table.with_columns(cols.clone())
            }
        }
    }

    /// `⟦F⟧_{D,η,0}` for one `FROM` expression — a plain item or an
    /// outer-join tree — returning the table together with its slice of
    /// the scope `ℓ(τ:β)`.
    ///
    /// The outer-join rule (after Ricciotti & Cheney's formalization): the
    /// inner part is every concatenation `r̄·s̄` whose `ON` condition is
    /// *true* under the active logic mode; a row is *dangling* iff **no**
    /// counterpart makes `ON` true — `unknown` neither matches nor blocks
    /// padding — and dangling rows on a preserved side are padded with
    /// `NULL`s on the other side.
    ///
    /// Row order is canonical (the engines reproduce it exactly): for each
    /// left row in order, its matches in right order, with its null-padded
    /// row inline if dangling and the left side is preserved; dangling
    /// right rows trail in right order if the right side is preserved. The
    /// `ON` condition is evaluated in left-major pair order, so errors
    /// surface identically everywhere.
    fn eval_from_expr(
        &self,
        fe: &FromExpr,
        env: &Env,
    ) -> Result<(Table, Vec<FullName>), EvalError> {
        match fe {
            FromExpr::Item(item) => {
                let t = self.eval_from_item(item, env)?;
                let scope = item.alias.prefix(t.columns());
                Ok((t, scope))
            }
            FromExpr::Join { kind, left, right, on } => {
                let (lt, lscope) = self.eval_from_expr(left, env)?;
                let (rt, rscope) = self.eval_from_expr(right, env)?;
                // The join's scope is the concatenation of its operands' —
                // `ON` sees both sides (plus the outer η), nothing else.
                let mut scope = lscope;
                scope.extend(rscope);
                let mut columns = lt.columns().to_vec();
                columns.extend_from_slice(rt.columns());
                let mut out = Table::new(columns)?;
                let left_pad = Row::new(vec![Value::Null; lt.arity()]);
                let right_pad = Row::new(vec![Value::Null; rt.arity()]);
                let mut right_matched = vec![false; rt.len()];
                for lrow in lt.rows() {
                    let mut matched = false;
                    for (j, rrow) in rt.rows().enumerate() {
                        let joined = lrow.concat(rrow);
                        let env1 = env.update(&scope, &joined)?;
                        if self.eval_condition(on, &env1)?.is_true() {
                            matched = true;
                            right_matched[j] = true;
                            out.push(joined)?;
                        }
                    }
                    if !matched && kind.keeps_left() {
                        out.push(lrow.concat(&right_pad))?;
                    }
                }
                if kind.keeps_right() {
                    for (j, rrow) in rt.rows().enumerate() {
                        if !right_matched[j] {
                            out.push(left_pad.concat(rrow))?;
                        }
                    }
                }
                Ok((out, scope))
            }
        }
    }

    /// The grouping fragment's semantics: partition the surviving
    /// `FROM`–`WHERE` records by the (null-safe) `GROUP BY` key tuple,
    /// compute every aggregate of the block eagerly per group, keep the
    /// groups whose `HAVING` condition is true under the *grouped
    /// environment* (outer bindings plus the group's key bindings), and
    /// project one output record per surviving group.
    ///
    /// Null discipline (the Standard's): aggregates skip `NULL` inputs;
    /// `COUNT(*)` counts records; over an empty collection `COUNT` is `0`
    /// while `SUM`/`AVG`/`MIN`/`MAX` are `NULL`; `DISTINCT` aggregates
    /// deduplicate under syntactic value identity (nulls are already
    /// gone, so the SQL and syntactic equalities coincide there); and
    /// grouping keys compare null-safely — `NULL` keys form one group.
    fn eval_grouped(
        &self,
        s: &SelectQuery,
        kept: &[(Row, Env)],
        env: &Env,
    ) -> Result<Table, EvalError> {
        // Partition by key tuple, preserving first-appearance order so
        // results are reproducible byte-for-byte.
        let mut keys_in_order: Vec<Vec<Value>> = Vec::new();
        let mut members: Vec<Vec<&Env>> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for (_, env1) in kept {
            let key: Vec<Value> =
                s.group_by.iter().map(|t| self.eval_term(t, env1)).collect::<Result<_, _>>()?;
            match index.get(&key) {
                Some(&i) => members[i].push(env1),
                None => {
                    index.insert(key.clone(), keys_in_order.len());
                    keys_in_order.push(key);
                    members.push(vec![env1]);
                }
            }
        }
        // Implicit grouping (`SELECT COUNT(*) FROM R` and friends): with
        // no GROUP BY keys there is always exactly one — possibly empty —
        // group, which is how `COUNT(*)` over an empty table yields 0.
        if s.group_by.is_empty() && keys_in_order.is_empty() {
            keys_in_order.push(Vec::new());
            members.push(Vec::new());
        }

        let SelectList::Items(items) = &s.select else {
            unreachable!("grouped star rejected in eval_select");
        };
        if items.is_empty() {
            return Err(EvalError::ZeroArity);
        }
        let aggs = s.aggregates();
        let mut local_aliases: HashSet<&Name> = HashSet::new();
        for fe in &s.from {
            for item in fe.leaves() {
                local_aliases.insert(&item.alias);
            }
        }

        let columns = items.iter().map(|i| i.alias.clone()).collect();
        let mut out = Table::new(columns)?;
        for (key, group) in keys_in_order.iter().zip(&members) {
            // Every aggregate of the block is computed for every group —
            // the γ view of grouping — so error behaviour does not
            // depend on which groups HAVING later discards.
            let agg_values: Vec<Value> =
                aggs.iter().map(|a| self.compute_aggregate(a, group)).collect::<Result<_, _>>()?;
            // The grouped environment: the outer η extended with the
            // group's key bindings (named keys only).
            let mut genv = env.clone();
            for (t, v) in s.group_by.iter().zip(key) {
                if let Term::Col(n) = t {
                    genv = genv.bind(n.clone(), v.clone());
                }
            }
            let ctx = GroupCtx {
                keys: &s.group_by,
                key_values: key,
                aggs: &aggs,
                agg_values: &agg_values,
                env: &genv,
                local_aliases: &local_aliases,
            };
            if !self.eval_grouped_condition(&s.having, &ctx)?.is_true() {
                continue;
            }
            let row: Row = items
                .iter()
                .map(|i| self.eval_grouped_term(&i.term, &ctx))
                .collect::<Result<_, _>>()?;
            out.push(row)?;
        }
        // `DISTINCT` and the list layer are applied by `eval_select`.
        Ok(out)
    }

    /// One aggregate over one group: evaluate the argument per member
    /// record, drop `NULL`s, deduplicate if `DISTINCT`, fold.
    fn compute_aggregate(&self, agg: &Aggregate, group: &[&Env]) -> Result<Value, EvalError> {
        let Some(arg) = &agg.arg else {
            if agg.func != AggFunc::Count {
                return Err(EvalError::malformed("only COUNT may be applied to *"));
            }
            // COUNT(*): records counted regardless of nulls.
            return Ok(Value::Int(group.len() as i64));
        };
        let mut values = Vec::with_capacity(group.len());
        for env1 in group {
            // Nested aggregates in the argument error here: the plain
            // term evaluation rejects `Term::Agg`.
            values.push(self.eval_term(arg, env1)?);
        }
        aggregate(agg.func, agg.distinct, values)
    }

    /// `⟦θ⟧` under a grouped environment: terms resolve against the
    /// group (keys, aggregates), subqueries run under the grouped
    /// environment `η_G`.
    fn eval_grouped_condition(
        &self,
        cond: &Condition,
        ctx: &GroupCtx<'_>,
    ) -> Result<Truth, EvalError> {
        self.eval_condition_scoped(cond, &TermScope::Grouped(ctx))
    }

    /// `⟦t⟧` under a grouped environment: a term that *is* one of the
    /// `GROUP BY` keys denotes the group's key value; an aggregate
    /// denotes its precomputed per-group value; any other reference to a
    /// local (`FROM`-bound) alias is the Standard's "must appear in the
    /// GROUP BY clause" error; outer references resolve in `η_G`.
    fn eval_grouped_term(&self, term: &Term, ctx: &GroupCtx<'_>) -> Result<Value, EvalError> {
        if let Some(i) = ctx.keys.iter().position(|k| k == term) {
            return Ok(ctx.key_values[i].clone());
        }
        match term {
            Term::Const(v) => Ok(v.clone()),
            Term::Agg(a) => match ctx.aggs.iter().position(|seen| *seen == &**a) {
                Some(i) => Ok(ctx.agg_values[i].clone()),
                None => Err(EvalError::malformed("aggregate not collected for its block")),
            },
            Term::Col(n) => {
                if ctx.local_aliases.contains(&n.table) {
                    Err(EvalError::UngroupedColumn(n.clone()))
                } else {
                    ctx.env.lookup(n).cloned()
                }
            }
            // The null combinators keep their plain semantics, with every
            // part resolved under the grouped scope — so a branch may mix
            // keys, aggregates, and outer references.
            Term::Case { branches, else_ } => {
                for (cond, result) in branches {
                    if self.eval_grouped_condition(cond, ctx)?.is_true() {
                        return self.eval_grouped_term(result, ctx);
                    }
                }
                match else_ {
                    Some(e) => self.eval_grouped_term(e, ctx),
                    None => Ok(Value::Null),
                }
            }
            Term::Coalesce(terms) => {
                for t in terms {
                    let v = self.eval_grouped_term(t, ctx)?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
            Term::Nullif(a, b) => {
                let l = self.eval_grouped_term(a, ctx)?;
                let r = self.eval_grouped_term(b, ctx)?;
                if self.cmp_values(&l, CmpOp::Eq, &r)?.is_true() {
                    Ok(Value::Null)
                } else {
                    Ok(l)
                }
            }
        }
    }

    /// `⟦θ⟧_{D,η}` (Figure 6), under the evaluator's logic mode.
    pub fn eval_condition(&self, cond: &Condition, env: &Env) -> Result<Truth, EvalError> {
        self.eval_condition_scoped(cond, &TermScope::Plain(env))
    }

    /// The one condition walker behind both `eval_condition` (Figure 6)
    /// and the grouped `HAVING` semantics: the scope decides how terms
    /// resolve and which environment subqueries run under; everything
    /// else — logic-mode conflation, Kleene connectives, the `IN`
    /// disjunction — is identical in both settings by construction.
    fn eval_condition_scoped(
        &self,
        cond: &Condition,
        scope: &TermScope<'_>,
    ) -> Result<Truth, EvalError> {
        let term = |t: &Term| match scope {
            TermScope::Plain(env) => self.eval_term(t, env),
            TermScope::Grouped(ctx) => self.eval_grouped_term(t, ctx),
        };
        match cond {
            Condition::True => Ok(Truth::True),
            Condition::False => Ok(Truth::False),
            Condition::Cmp { left, op, right } => {
                let l = term(left)?;
                let r = term(right)?;
                self.cmp_values(&l, *op, &r)
            }
            Condition::Like { term: t, pattern, negated } => {
                let t = term(t)?;
                let p = term(pattern)?;
                let truth = match self.logic {
                    LogicMode::ThreeValued => t.sql_like(&p)?,
                    // §6: every predicate conflates u with f.
                    _ => conflate(t.sql_like(&p)?),
                };
                Ok(if *negated { truth.not() } else { truth })
            }
            Condition::Pred { name, args } => {
                let values: Vec<Value> = args.iter().map(term).collect::<Result<_, _>>()?;
                if values.iter().any(Value::is_null) {
                    // Figure 6: u when an argument is NULL; the §6
                    // two-valued semantics conflates that to f.
                    return Ok(match self.logic {
                        LogicMode::ThreeValued => Truth::Unknown,
                        _ => Truth::False,
                    });
                }
                Ok(Truth::from_bool(self.preds.apply(name, &values)?))
            }
            Condition::IsNull { term: t, negated } => {
                // Already two-valued in every mode (Figure 6).
                let truth = Truth::from_bool(term(t)?.is_null());
                Ok(if *negated { truth.not() } else { truth })
            }
            Condition::IsDistinct { left, right, negated } => {
                // Syntactic equality ≐ (Definition 2): two-valued in
                // every logic mode; IS NOT DISTINCT FROM *is* ≐.
                let same = term(left)?.syntactic_eq(&term(right)?);
                Ok(if *negated { same } else { same.not() })
            }
            Condition::In { terms, query, negated } => {
                let values: Vec<Value> = terms.iter().map(term).collect::<Result<_, _>>()?;
                let truth = self.eval_in_values(values, query, scope.env())?;
                Ok(if *negated { truth.not() } else { truth })
            }
            Condition::Exists(query) => {
                // ⟦EXISTS Q⟧: non-emptiness of ⟦Q⟧_{D,η,1}.
                let t = self.eval_query(query, scope.env(), true)?;
                Ok(Truth::from_bool(!t.is_empty()))
            }
            Condition::And(a, b) => {
                Ok(self.eval_condition_scoped(a, scope)?.and(self.eval_condition_scoped(b, scope)?))
            }
            Condition::Or(a, b) => {
                Ok(self.eval_condition_scoped(a, scope)?.or(self.eval_condition_scoped(b, scope)?))
            }
            Condition::Not(c) => Ok(self.eval_condition_scoped(c, scope)?.not()),
        }
    }

    /// The membership test of `IN` once the left tuple is evaluated
    /// (shared between the plain and the grouped condition semantics).
    fn eval_in_values(
        &self,
        values: Vec<Value>,
        query: &Query,
        env: &Env,
    ) -> Result<Truth, EvalError> {
        let sub = self.eval_query(query, env, false)?;
        if sub.arity() != values.len() {
            return Err(EvalError::ArityMismatch {
                context: "IN",
                left: values.len(),
                right: sub.arity(),
            });
        }
        let mut acc = Truth::False;
        for row in sub.rows() {
            acc = acc.or(self.tuple_eq(&values, row.values())?);
            if acc.is_true() {
                // t absorbs the Kleene disjunction; stopping early cannot
                // change the result.
                break;
            }
        }
        Ok(acc)
    }

    /// The tuple equality `(t₁,…,tₙ) = (t′₁,…,t′ₙ) = ⋀ᵢ tᵢ = t′ᵢ`
    /// (Figure 6), under the evaluator's interpretation of `=`.
    pub fn tuple_eq(&self, left: &[Value], right: &[Value]) -> Result<Truth, EvalError> {
        debug_assert_eq!(left.len(), right.len());
        let mut acc = Truth::True;
        for (l, r) in left.iter().zip(right) {
            acc = acc.and(self.cmp_values(l, CmpOp::Eq, r)?);
            if acc.is_false() {
                break;
            }
        }
        Ok(acc)
    }

    /// A single comparison under the evaluator's logic mode.
    fn cmp_values(&self, left: &Value, op: CmpOp, right: &Value) -> Result<Truth, EvalError> {
        match self.logic {
            LogicMode::ThreeValued => left.sql_cmp(right, op),
            LogicMode::TwoValuedConflate => Ok(conflate(left.sql_cmp(right, op)?)),
            LogicMode::TwoValuedSyntacticEq => match op {
                // §6's alternative: `=` means syntactic equality ≐.
                CmpOp::Eq => Ok(left.syntactic_eq(right)),
                _ => Ok(conflate(left.sql_cmp(right, op)?)),
            },
        }
    }

    /// `⟦t⟧_η` (Figure 4). Aggregate terms have no meaning outside the
    /// `SELECT` list / `HAVING` clause of a grouped block and error here.
    pub fn eval_term(&self, term: &Term, env: &Env) -> Result<Value, EvalError> {
        match term {
            Term::Const(v) => Ok(v.clone()),
            Term::Col(name) => env.lookup(name).cloned(),
            Term::Agg(_) => Err(EvalError::MisplacedAggregate("this context")),
            // CASE takes the first branch whose condition is *true* under
            // the active logic mode — `unknown` falls through — and a
            // missing ELSE is the Standard's implicit `ELSE NULL`. Later
            // branches are not evaluated, so their errors are not raised.
            Term::Case { branches, else_ } => {
                for (cond, result) in branches {
                    if self.eval_condition(cond, env)?.is_true() {
                        return self.eval_term(result, env);
                    }
                }
                match else_ {
                    Some(e) => self.eval_term(e, env),
                    None => Ok(Value::Null),
                }
            }
            // COALESCE is lazy left-to-right: operands after the first
            // non-null are not evaluated, so their errors are not raised.
            Term::Coalesce(terms) => {
                for t in terms {
                    let v = self.eval_term(t, env)?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
            // NULLIF(a, b) = CASE WHEN a = b THEN NULL ELSE a END, with
            // `=` read under the active logic mode.
            Term::Nullif(a, b) => {
                let l = self.eval_term(a, env)?;
                let r = self.eval_term(b, env)?;
                if self.cmp_values(&l, CmpOp::Eq, &r)?.is_true() {
                    Ok(Value::Null)
                } else {
                    Ok(l)
                }
            }
        }
    }
}

/// How condition terms resolve: against an ordinary environment
/// (Figure 6) or against a group (keys, aggregates, `η_G`).
enum TermScope<'a> {
    Plain(&'a Env),
    Grouped(&'a GroupCtx<'a>),
}

impl TermScope<'_> {
    /// The environment subqueries of the condition run under.
    fn env(&self) -> &Env {
        match self {
            TermScope::Plain(env) => env,
            TermScope::Grouped(ctx) => ctx.env,
        }
    }
}

/// The per-group state grouped terms and conditions resolve against.
struct GroupCtx<'a> {
    /// The `GROUP BY` key terms, in clause order.
    keys: &'a [Term],
    /// The group's key values, parallel to `keys`.
    key_values: &'a [Value],
    /// The block's collected aggregates (select list + having, deduped).
    aggs: &'a [&'a Aggregate],
    /// The group's aggregate values, parallel to `aggs`.
    agg_values: &'a [Value],
    /// The grouped environment `η_G`: outer bindings + key bindings.
    env: &'a Env,
    /// Aliases bound by the block's own `FROM` clause.
    local_aliases: &'a HashSet<&'a Name>,
}

/// The value-level semantics of one aggregate over one group's argument
/// values: `NULL` inputs are skipped, `DISTINCT` deduplicates the
/// survivors under syntactic value identity, then the function folds.
/// `COUNT` of the empty surviving collection is `0`; the other four are
/// `NULL`. (`COUNT(*)` does not go through here — it counts records,
/// not values.)
///
/// Shared by the denotational interpreter and the relational-algebra
/// evaluator, the way [`Value::sql_cmp`] already is; the engine's
/// incremental accumulators implement the same discipline independently.
pub fn aggregate(
    func: AggFunc,
    distinct: bool,
    values: impl IntoIterator<Item = Value>,
) -> Result<Value, EvalError> {
    let mut values: Vec<Value> = values.into_iter().filter(|v| !v.is_null()).collect();
    if distinct {
        let mut seen = HashSet::with_capacity(values.len());
        values.retain(|v| seen.insert(v.clone()));
    }
    fold_aggregate(func, &values)
}

/// Folds a collection of non-`NULL` values with an aggregate function.
fn fold_aggregate(func: AggFunc, values: &[Value]) -> Result<Value, EvalError> {
    match func {
        AggFunc::Count => Ok(Value::Int(values.len() as i64)),
        AggFunc::Sum => Ok(sum_ints("SUM", values)?.map_or(Value::Null, Value::Int)),
        AggFunc::Avg => Ok(match sum_ints("AVG", values)? {
            None => Value::Null,
            // Integer average, truncating towards zero — `AVG = SUM/COUNT`
            // holds exactly in `i64` arithmetic.
            Some(sum) => Value::Int(sum / values.len() as i64),
        }),
        AggFunc::Min => fold_extremum(values, CmpOp::Lt),
        AggFunc::Max => fold_extremum(values, CmpOp::Gt),
    }
}

/// Sums integer values; `None` for the empty collection. Non-integer
/// inputs are a type error, overflow is a (deterministic) runtime error.
fn sum_ints(op: &'static str, values: &[Value]) -> Result<Option<i64>, EvalError> {
    let mut acc: Option<i64> = None;
    for v in values {
        let Value::Int(n) = v else {
            return Err(EvalError::TypeMismatch {
                op: op.to_string(),
                left: "integer",
                right: v.type_name(),
            });
        };
        acc = Some(match acc.unwrap_or(0).checked_add(*n) {
            Some(total) => total,
            None => return Err(EvalError::malformed(format!("integer overflow in {op}"))),
        });
    }
    Ok(acc)
}

/// `MIN`/`MAX` via the SQL order; mixed-type collections surface the
/// comparison's type error. `NULL` for the empty collection.
fn fold_extremum(values: &[Value], keep_if: CmpOp) -> Result<Value, EvalError> {
    let mut iter = values.iter();
    let Some(first) = iter.next() else { return Ok(Value::Null) };
    let mut acc = first.clone();
    for v in iter {
        // Values are non-null, so the comparison is never unknown.
        if v.sql_cmp(&acc, keep_if)?.is_true() {
            acc = v.clone();
        }
    }
    Ok(acc)
}

/// Conflates `u` with `f` — the passage from Figure 6 to the §6
/// two-valued predicate rules.
fn conflate(t: Truth) -> Truth {
    if t.is_true() {
        Truth::True
    } else {
        Truth::False
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SelectItem;
    use crate::schema::Schema;
    use crate::{row, table};

    /// The Example 1 database: R = {1, NULL}, S = {NULL}.
    fn example1_db() -> Database {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
        db.replace_table("S", table! { ["A"]; [Value::Null] }).unwrap();
        db
    }

    /// Q1: SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)
    fn q1() -> Query {
        let sub = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .distinct()
            .filter(Condition::not_in([Term::col("R", "A")], sub)),
        )
    }

    /// Q2: SELECT DISTINCT R.A FROM R WHERE NOT EXISTS
    ///     (SELECT * FROM S WHERE S.A = R.A)
    fn q2() -> Query {
        let sub = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("S", "S")])
                .filter(Condition::eq(Term::col("S", "A"), Term::col("R", "A"))),
        );
        Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .distinct()
            .filter(Condition::not(Condition::exists(sub))),
        )
    }

    /// Q3: SELECT R.A FROM R EXCEPT SELECT S.A FROM S
    fn q3() -> Query {
        let left = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        let right = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        left.except(right, false)
    }

    #[test]
    fn example1_q1_is_empty() {
        // R.A NOT IN (NULL) is never true: 1 <> NULL is u, NULL <> NULL
        // is u, so no row survives.
        let db = example1_db();
        let out = Evaluator::new(&db).eval(&q1()).unwrap();
        assert!(out.is_empty(), "got:\n{out}");
    }

    #[test]
    fn example1_q2_returns_both_rows() {
        // The subquery's S.A = R.A is u for every row, so EXISTS is false
        // and NOT EXISTS is true for both rows of R.
        let db = example1_db();
        let out = Evaluator::new(&db).eval(&q2()).unwrap();
        assert!(out.coincides(&table! { ["A"]; [1], [Value::Null] }), "got:\n{out}");
    }

    #[test]
    fn example1_q3_returns_one() {
        // EXCEPT compares syntactically: NULL is removed by the NULL in
        // S, and 1 survives.
        let db = example1_db();
        let out = Evaluator::new(&db).eval(&q3()).unwrap();
        assert!(out.coincides(&table! { ["A"]; [1] }), "got:\n{out}");
    }

    #[test]
    fn example1_all_dialects_agree() {
        let db = example1_db();
        for d in Dialect::ALL {
            let ev = Evaluator::new(&db).with_dialect(d);
            assert!(ev.eval(&q1()).unwrap().is_empty());
            assert_eq!(ev.eval(&q2()).unwrap().len(), 2);
            assert_eq!(ev.eval(&q3()).unwrap().len(), 1);
        }
    }

    fn example2_db() -> Database {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [2] }).unwrap();
        db
    }

    /// SELECT * FROM (SELECT R.A AS A, R.A AS A FROM R AS R) AS T
    fn example2_standalone() -> Query {
        let inner = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A"), (Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        Query::Select(SelectQuery::new(SelectList::Star, vec![FromItem::subquery(inner, "T")]))
    }

    /// SELECT * FROM R AS R WHERE EXISTS (example2_standalone)
    fn example2_under_exists() -> Query {
        Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("R", "R")])
                .filter(Condition::exists(example2_standalone())),
        )
    }

    #[test]
    fn example2_standalone_errors_on_standard_and_oracle() {
        let db = example2_db();
        for d in [Dialect::Standard, Dialect::Oracle] {
            let err = Evaluator::new(&db).with_dialect(d).eval(&example2_standalone()).unwrap_err();
            assert!(err.is_ambiguity(), "dialect {d}: {err}");
        }
    }

    #[test]
    fn example2_standalone_works_on_postgres() {
        let db = example2_db();
        let out = Evaluator::new(&db)
            .with_dialect(Dialect::PostgreSql)
            .eval(&example2_standalone())
            .unwrap();
        assert!(out.coincides(&table! { ["A", "A"]; [1, 1], [2, 2] }), "got:\n{out}");
    }

    #[test]
    fn example2_under_exists_works_everywhere() {
        // "… then suddenly it is fine": the ambiguous * sits directly
        // under EXISTS, so it is replaced by a constant and never
        // dereferenced. The outer query returns R whenever R is nonempty.
        let db = example2_db();
        for d in Dialect::ALL {
            let out = Evaluator::new(&db).with_dialect(d).eval(&example2_under_exists()).unwrap();
            assert!(out.coincides(&table! { ["A"]; [1], [2] }), "dialect {d}: got\n{out}");
        }
    }

    #[test]
    fn standard_ambiguity_is_runtime_only() {
        // The Standard semantics of Figures 4–7 raises ambiguity when the
        // environment is consulted; with an empty R there is no record to
        // consult it for, so the query succeeds (with an empty output).
        // The Oracle adjustment checks statically and still errors.
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let db = Database::new(schema); // R is empty
        let q = example2_standalone();
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(out.is_empty());
        assert!(Evaluator::new(&db)
            .with_dialect(Dialect::Oracle)
            .eval(&q)
            .unwrap_err()
            .is_ambiguity());
    }

    #[test]
    fn multiplicities_flow_through_products() {
        // SELECT R.A AS A FROM R AS R, S AS S — each row of R repeated
        // |S| times, with S's own multiplicities.
        let schema = Schema::builder().table("R", ["A"]).table("S", ["B"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [1] }).unwrap();
        db.replace_table("S", table! { ["B"]; [7], [7], [8] }).unwrap();
        let q = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R"), FromItem::base("S", "S")],
        ));
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert_eq!(out.multiplicity(&row![1]), 6);
    }

    #[test]
    fn where_uses_revised_environment() {
        // Correlated subquery: the inner S.B = R.A resolves R.A from the
        // outer scope per record.
        let schema = Schema::builder().table("R", ["A"]).table("S", ["B"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [2], [3] }).unwrap();
        db.replace_table("S", table! { ["B"]; [2], [3], [3] }).unwrap();
        let sub = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("S", "S")])
                .filter(Condition::eq(Term::col("S", "B"), Term::col("R", "A"))),
        );
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::exists(sub)),
        );
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(out.coincides(&table! { ["A"]; [2], [3] }), "got:\n{out}");
    }

    #[test]
    fn select_can_output_constants_and_nulls() {
        let db = example2_db();
        let q = Query::Select(SelectQuery::new(
            SelectList::items([
                (Term::Const(Value::Int(9)), "X"),
                (Term::Const(Value::Null), "Y"),
                (Term::col("R", "A"), "Z"),
            ]),
            vec![FromItem::base("R", "R")],
        ));
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(
            out.coincides(&table! { ["X", "Y", "Z"]; [9, Value::Null, 1], [9, Value::Null, 2] })
        );
    }

    #[test]
    fn distinct_eliminates_duplicates() {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [1], [2] }).unwrap();
        let q = |distinct: bool| {
            let base = SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            );
            Query::Select(if distinct { base.distinct() } else { base })
        };
        let ev = Evaluator::new(&db);
        assert_eq!(ev.eval(&q(false)).unwrap().len(), 3);
        assert_eq!(ev.eval(&q(true)).unwrap().len(), 2);
    }

    #[test]
    fn set_operations_match_figure7() {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [1], [2] }).unwrap();
        db.replace_table("S", table! { ["A"]; [1], [3] }).unwrap();
        let sel = |t: &str| {
            Query::Select(SelectQuery::new(
                SelectList::items([(Term::col(t, "A"), "A")]),
                vec![FromItem::base(t, t)],
            ))
        };
        let ev = Evaluator::new(&db);

        let u_all = ev.eval(&sel("R").union(sel("S"), true)).unwrap();
        assert!(u_all.multiset_eq(&table! { ["A"]; [1], [1], [1], [2], [3] }));
        let u = ev.eval(&sel("R").union(sel("S"), false)).unwrap();
        assert!(u.multiset_eq(&table! { ["A"]; [1], [2], [3] }));

        let i_all = ev.eval(&sel("R").intersect(sel("S"), true)).unwrap();
        assert!(i_all.multiset_eq(&table! { ["A"]; [1] }));
        let i = ev.eval(&sel("R").intersect(sel("S"), false)).unwrap();
        assert!(i.multiset_eq(&table! { ["A"]; [1] }));

        let e_all = ev.eval(&sel("R").except(sel("S"), true)).unwrap();
        assert!(e_all.multiset_eq(&table! { ["A"]; [1], [2] }));
        // ε(R) − S: ε gives {1,2}, minus {1,3} leaves {2}.
        let e = ev.eval(&sel("R").except(sel("S"), false)).unwrap();
        assert!(e.multiset_eq(&table! { ["A"]; [2] }));
    }

    #[test]
    fn except_deduplicates_left_before_subtracting() {
        // The asymmetry of Figure 7's EXCEPT: ε applies to the left only.
        // R = {1,1}, S = {} : EXCEPT gives {1} not {1,1}.
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [1] }).unwrap();
        let r = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        let s = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        let out = Evaluator::new(&db).eval(&r.except(s, false)).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn in_with_nulls_follows_kleene_disjunction() {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1] }).unwrap();
        db.replace_table("S", table! { ["A"]; [Value::Null], [2] }).unwrap();
        let sub = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        let ev = Evaluator::new(&db);
        let env = Env::empty();
        // 1 IN (NULL, 2): u ∨ f = u.
        let c = Condition::in_query([Term::from(1i64)], sub.clone());
        assert_eq!(ev.eval_condition(&c, &env).unwrap(), Truth::Unknown);
        // 2 IN (NULL, 2): u ∨ t = t.
        let c = Condition::in_query([Term::from(2i64)], sub.clone());
        assert_eq!(ev.eval_condition(&c, &env).unwrap(), Truth::True);
        // 1 NOT IN (NULL, 2) = ¬u = u.
        let c = Condition::not_in([Term::from(1i64)], sub.clone());
        assert_eq!(ev.eval_condition(&c, &env).unwrap(), Truth::Unknown);
        // IN over an empty result is f.
        let empty_sub = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("S", "A"), "A")]),
                vec![FromItem::base("S", "S")],
            )
            .filter(Condition::False),
        );
        let c = Condition::in_query([Term::from(1i64)], empty_sub);
        assert_eq!(ev.eval_condition(&c, &env).unwrap(), Truth::False);
    }

    #[test]
    fn in_checks_arity() {
        let db = example2_db();
        let sub = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        let c = Condition::in_query([Term::from(1i64), Term::from(2i64)], sub);
        assert!(matches!(
            Evaluator::new(&db).eval_condition(&c, &Env::empty()).unwrap_err(),
            EvalError::ArityMismatch { context: "IN", .. }
        ));
    }

    #[test]
    fn two_valued_conflate_changes_not_in() {
        // Under ⟦·⟧₂ᵥ Example 1's Q1 returns {1, NULL}: every equality
        // with NULL is f, so NOT IN succeeds for both rows.
        let db = example1_db();
        let out = Evaluator::new(&db).with_logic(LogicMode::TwoValuedConflate).eval(&q1()).unwrap();
        assert!(out.coincides(&table! { ["A"]; [1], [Value::Null] }), "got:\n{out}");
    }

    #[test]
    fn two_valued_syntactic_eq_changes_not_in_differently() {
        // With = as ≐, NULL = NULL is t, so NULL IN (SELECT S.A …) is t
        // and only the row 1 survives NOT IN.
        let db = example1_db();
        let out =
            Evaluator::new(&db).with_logic(LogicMode::TwoValuedSyntacticEq).eval(&q1()).unwrap();
        assert!(out.coincides(&table! { ["A"]; [1] }), "got:\n{out}");
    }

    #[test]
    fn two_valued_modes_agree_with_3vl_on_null_free_data() {
        // On databases without nulls the three semantics coincide (§6:
        // the differences all come from u).
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [2] }).unwrap();
        db.replace_table("S", table! { ["A"]; [2] }).unwrap();
        for logic in LogicMode::ALL {
            let out = Evaluator::new(&db).with_logic(logic).eval(&q1()).unwrap();
            assert!(out.coincides(&table! { ["A"]; [1] }), "mode {logic}: got\n{out}");
        }
    }

    #[test]
    fn user_predicates_follow_figure6_null_rule() {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [2], [3], [Value::Null] }).unwrap();
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::Pred { name: "even".into(), args: vec![Term::col("R", "A")] }),
        );
        let ev = Evaluator::new(&db).with_predicates(PredicateRegistry::with_examples());
        let out = ev.eval(&q).unwrap();
        assert!(out.coincides(&table! { ["A"]; [2] }), "got:\n{out}");
        // NOT even(A): NULL row still excluded (¬u = u).
        let q_not = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::not(Condition::Pred {
                name: "even".into(),
                args: vec![Term::col("R", "A")],
            })),
        );
        let out = ev.eval(&q_not).unwrap();
        assert!(out.coincides(&table! { ["A"]; [3] }), "got:\n{out}");
    }

    #[test]
    fn from_subqueries_are_evaluated_under_outer_env() {
        // A FROM subquery with a parameter bound by the environment: used
        // when the block itself is nested. Here we exercise eval_query
        // directly with a non-empty environment.
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [2] }).unwrap();
        let inner = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::eq(Term::col("R", "A"), Term::col("Outer", "X"))),
        );
        let q =
            Query::Select(SelectQuery::new(SelectList::Star, vec![FromItem::subquery(inner, "T")]));
        let env = Env::empty().bind(crate::FullName::new("Outer", "X"), Value::Int(2));
        let out = Evaluator::new(&db).eval_query(&q, &env, false).unwrap();
        assert!(out.coincides(&table! { ["A"]; [2] }), "got:\n{out}");
    }

    #[test]
    fn empty_from_is_malformed() {
        let db = example2_db();
        let q = Query::Select(SelectQuery::new(
            SelectList::items([(Term::from(1i64), "X")]),
            Vec::<FromExpr>::new(),
        ));
        assert!(matches!(Evaluator::new(&db).eval(&q).unwrap_err(), EvalError::Malformed(_)));
    }

    /// `SELECT R.A AS k, <aggs> FROM R AS R GROUP BY R.A [HAVING …]`.
    fn grouped(items: Vec<SelectItem>, having: Condition) -> Query {
        Query::Select(
            SelectQuery::new(SelectList::Items(items), vec![FromItem::base("R", "R")])
                .group_by([Term::col("R", "A")])
                .having(having),
        )
    }

    #[test]
    fn grouped_counts_follow_the_null_discipline() {
        // R.A = {1, 1, NULL}: nulls form one group; COUNT(*) counts
        // records, COUNT(R.A) skips NULLs.
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [1], [Value::Null] }).unwrap();
        let q = grouped(
            vec![
                SelectItem::new(Term::col("R", "A"), "k"),
                SelectItem::new(Term::count_star(), "stars"),
                SelectItem::new(Term::agg(AggFunc::Count, Term::col("R", "A")), "vals"),
            ],
            Condition::True,
        );
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(
            out.coincides(&table! { ["k", "stars", "vals"]; [1, 2, 2], [Value::Null, 1, 0] }),
            "got:\n{out}"
        );
    }

    #[test]
    fn empty_group_aggregates_split_between_zero_and_null() {
        // Implicit single group over an empty table: COUNT is 0, the
        // other four are NULL.
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let db = Database::new(schema);
        let q = Query::Select(SelectQuery::new(
            SelectList::Items(vec![
                SelectItem::new(Term::count_star(), "n"),
                SelectItem::new(Term::agg(AggFunc::Sum, Term::col("R", "A")), "s"),
                SelectItem::new(Term::agg(AggFunc::Avg, Term::col("R", "A")), "a"),
                SelectItem::new(Term::agg(AggFunc::Min, Term::col("R", "A")), "lo"),
                SelectItem::new(Term::agg(AggFunc::Max, Term::col("R", "A")), "hi"),
            ]),
            vec![FromItem::base("R", "R")],
        ));
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(out.coincides(&table! {
            ["n", "s", "a", "lo", "hi"];
            [0, Value::Null, Value::Null, Value::Null, Value::Null]
        }));
    }

    #[test]
    fn having_filters_groups_and_sees_the_grouped_environment() {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [1], [2] }).unwrap();
        // HAVING COUNT(*) > 1 keeps only the group of 1s; the key R.A is
        // usable in HAVING too.
        let q = grouped(
            vec![SelectItem::new(Term::col("R", "A"), "k")],
            Condition::cmp(Term::count_star(), CmpOp::Gt, Term::from(1i64))
                .and(Condition::is_not_null(Term::col("R", "A"))),
        );
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(out.coincides(&table! { ["k"]; [1] }), "got:\n{out}");
    }

    #[test]
    fn grouped_typing_errors_surface_at_evaluation() {
        let schema = Schema::builder().table("R", ["A", "B"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A", "B"]; [1, 2] }).unwrap();
        // A non-key local column in the SELECT list of a grouped block.
        let q = grouped(vec![SelectItem::new(Term::col("R", "B"), "b")], Condition::True);
        assert!(matches!(Evaluator::new(&db).eval(&q).unwrap_err(), EvalError::UngroupedColumn(_)));
        // An aggregate in WHERE.
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::cmp(Term::count_star(), CmpOp::Gt, Term::from(0i64))),
        );
        assert!(matches!(
            Evaluator::new(&db).eval(&q).unwrap_err(),
            EvalError::MisplacedAggregate(_)
        ));
        // A nested aggregate in an aggregate argument.
        let q = grouped(
            vec![SelectItem::new(
                Term::agg(AggFunc::Sum, Term::agg(AggFunc::Sum, Term::col("R", "B"))),
                "s",
            )],
            Condition::True,
        );
        assert!(matches!(
            Evaluator::new(&db).eval(&q).unwrap_err(),
            EvalError::MisplacedAggregate(_)
        ));
        // SELECT * over groups.
        let q = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("R", "R")])
                .group_by([Term::col("R", "A")]),
        );
        assert!(matches!(Evaluator::new(&db).eval(&q).unwrap_err(), EvalError::Malformed(_)));
    }

    #[test]
    fn distinct_aggregates_and_extremes() {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [3], [3], [1], [Value::Null] }).unwrap();
        let q = Query::Select(SelectQuery::new(
            SelectList::Items(vec![
                SelectItem::new(Term::agg_distinct(AggFunc::Sum, Term::col("R", "A")), "sd"),
                SelectItem::new(Term::agg(AggFunc::Min, Term::col("R", "A")), "lo"),
                SelectItem::new(Term::agg(AggFunc::Max, Term::col("R", "A")), "hi"),
            ]),
            vec![FromItem::base("R", "R")],
        ));
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(out.coincides(&table! { ["sd", "lo", "hi"]; [4, 1, 3] }), "got:\n{out}");
    }

    #[test]
    fn having_subqueries_run_under_the_grouped_environment() {
        // HAVING EXISTS (SELECT * FROM S WHERE S.B = R.A): the key R.A
        // is bound per group; only keys with a partner in S survive.
        let schema = Schema::builder().table("R", ["A"]).table("S", ["B"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [1], [2] }).unwrap();
        db.replace_table("S", table! { ["B"]; [2] }).unwrap();
        let sub = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("S", "S")])
                .filter(Condition::eq(Term::col("S", "B"), Term::col("R", "A"))),
        );
        let q = grouped(
            vec![
                SelectItem::new(Term::col("R", "A"), "k"),
                SelectItem::new(Term::count_star(), "n"),
            ],
            Condition::exists(sub),
        );
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(out.coincides(&table! { ["k", "n"]; [2, 1] }), "got:\n{out}");
    }

    #[test]
    fn sum_type_errors_are_deterministic() {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [Value::str("x")] }).unwrap();
        let q = Query::Select(SelectQuery::new(
            SelectList::Items(vec![SelectItem::new(
                Term::agg(AggFunc::Sum, Term::col("R", "A")),
                "s",
            )]),
            vec![FromItem::base("R", "R")],
        ));
        assert!(matches!(
            Evaluator::new(&db).eval(&q).unwrap_err(),
            EvalError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn column_rename_in_from_is_applied() {
        // SELECT N.X AS X FROM R AS N(X) — the Figure 10 construct.
        let db = example2_db();
        let q = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("N", "X"), "X")]),
            vec![FromItem::base("R", "N").with_columns(["X"])],
        ));
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(out.coincides(&table! { ["X"]; [1], [2] }), "got:\n{out}");
    }
}
