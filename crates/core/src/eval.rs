//! The denotational semantics of basic SQL (Figures 4–7).
//!
//! [`Evaluator`] implements the semantic function `⟦Q⟧_{D,η,x}`: given a
//! database `D`, an environment `η` for the query's parameters, and the
//! Boolean switch `x` (set exactly when the query is the outermost query
//! nested inside an `EXISTS` condition), it produces the output table.
//! The top-level entry point [`Evaluator::eval`] computes
//! `⟦Q⟧_D = ⟦Q⟧_{D,∅,0}`.
//!
//! This evaluator is intentionally a *direct transcription* of the
//! figures — Cartesian products are materialised, subqueries are
//! re-evaluated for every environment, conditions are interpreted
//! recursively. It is the executable specification; the optimised,
//! independently structured implementation used as a validation oracle
//! lives in the `sqlsem-engine` crate.
//!
//! Two orthogonal switches adjust the semantics:
//!
//! * [`Dialect`] — the §4 per-system adjustments (PostgreSQL's
//!   compositional `*`, Oracle's static ambiguity errors);
//! * [`LogicMode`] — the §6 two-valued semantics `⟦·⟧₂ᵥ`, under either
//!   interpretation of equality.

use crate::ast::{Condition, FromItem, Query, SelectList, SelectQuery, SetOp, TableRef, Term};
use crate::check;
use crate::dialect::{Dialect, LogicMode};
use crate::env::Env;
use crate::error::EvalError;
use crate::name::Name;
use crate::pred::PredicateRegistry;
use crate::row::Row;
use crate::schema::Database;
use crate::sig;
use crate::table::Table;
use crate::truth::Truth;
use crate::value::{CmpOp, Value};

/// The arbitrary constant `c` substituted for `*` in queries directly
/// under `EXISTS` (Figure 5). Any constant gives the same semantics,
/// since only emptiness of the result matters; fixing one makes results
/// reproducible byte-for-byte.
pub const STAR_EXISTS_CONSTANT: Value = Value::Int(1);

/// The arbitrary output name `N` paired with [`STAR_EXISTS_CONSTANT`].
pub const STAR_EXISTS_COLUMN: &str = "c";

/// The semantic function `⟦·⟧` of Figures 4–7, packaged with its fixed
/// inputs: the database, the dialect adjustment and the logic mode.
///
/// ```
/// use sqlsem_core::ast::{FromItem, Query, SelectList, SelectQuery, Term};
/// use sqlsem_core::{Database, Evaluator, Schema, table};
///
/// let schema = Schema::builder().table("R", ["A"]).build().unwrap();
/// let mut db = Database::new(schema);
/// db.insert("R", table! { ["A"]; [1], [2] }).unwrap();
///
/// // SELECT R.A AS A FROM R AS R
/// let q = Query::Select(SelectQuery::new(
///     SelectList::items([(Term::col("R", "A"), "A")]),
///     vec![FromItem::base("R", "R")],
/// ));
/// let out = Evaluator::new(&db).eval(&q).unwrap();
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Evaluator<'a> {
    db: &'a Database,
    dialect: Dialect,
    logic: LogicMode,
    preds: PredicateRegistry,
}

impl<'a> Evaluator<'a> {
    /// An evaluator for the Standard semantics under three-valued logic,
    /// with no user predicates registered.
    pub fn new(db: &'a Database) -> Self {
        Evaluator {
            db,
            dialect: Dialect::Standard,
            logic: LogicMode::ThreeValued,
            preds: PredicateRegistry::new(),
        }
    }

    /// Selects the dialect adjustment (§4).
    #[must_use]
    pub fn with_dialect(mut self, dialect: Dialect) -> Self {
        self.dialect = dialect;
        self
    }

    /// Selects the logic mode (§6).
    #[must_use]
    pub fn with_logic(mut self, logic: LogicMode) -> Self {
        self.logic = logic;
        self
    }

    /// Provides the open part of the predicate collection `P`.
    #[must_use]
    pub fn with_predicates(mut self, preds: PredicateRegistry) -> Self {
        self.preds = preds;
        self
    }

    /// The database the evaluator reads.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    /// The dialect in effect.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// The logic mode in effect.
    pub fn logic(&self) -> LogicMode {
        self.logic
    }

    /// Evaluates a closed query: `⟦Q⟧_D = ⟦Q⟧_{D,∅,0}`.
    ///
    /// For the dialects that model compile-time behaviour (PostgreSQL,
    /// Oracle) a static resolution check runs first, so ambiguous or
    /// unbound references error even when no data would be touched.
    pub fn eval(&self, query: &Query) -> Result<Table, EvalError> {
        if self.dialect.checks_ambiguity_statically() {
            check::check_query(query, self.db.schema(), self.dialect)?;
        }
        self.eval_query(query, &Env::empty(), false)
    }

    /// The full semantic function `⟦Q⟧_{D,η,x}`; `exists` is the Boolean
    /// switch `x`, set exactly when `query` is the outermost query nested
    /// inside an `EXISTS` condition.
    pub fn eval_query(&self, query: &Query, env: &Env, exists: bool) -> Result<Table, EvalError> {
        match query {
            Query::Select(s) => self.eval_select(s, env, exists),
            Query::SetOp { op, all, left, right } => {
                // Figure 7: operands are always evaluated with x = 0.
                let l = self.eval_query(left, env, false)?;
                let r = self.eval_query(right, env, false)?;
                match (op, all) {
                    (SetOp::Union, true) => l.union_all(&r),
                    (SetOp::Union, false) => Ok(l.union_all(&r)?.distinct()),
                    (SetOp::Intersect, true) => l.intersect_all(&r),
                    (SetOp::Intersect, false) => Ok(l.intersect_all(&r)?.distinct()),
                    (SetOp::Except, true) => l.except_all(&r),
                    // Figure 7: ⟦Q₁ EXCEPT Q₂⟧ = ε(⟦Q₁⟧) − ⟦Q₂⟧; note the
                    // ε applies to the *left* operand only.
                    (SetOp::Except, false) => l.distinct().except_all(&r),
                }
            }
        }
    }

    /// `⟦SELECT … FROM τ:β WHERE θ⟧_{D,η,x}` (Figure 5).
    fn eval_select(&self, s: &SelectQuery, env: &Env, exists: bool) -> Result<Table, EvalError> {
        if s.from.is_empty() {
            return Err(EvalError::malformed("FROM clause must reference at least one table"));
        }
        sig::check_distinct_aliases(&s.from)?;

        // ⟦τ:β⟧_{D,η,x} = ⟦T₁⟧_{D,η,0} × ⋯ × ⟦Tₖ⟧_{D,η,0}: each element of
        // the FROM clause is evaluated under the *outer* environment.
        let tables: Vec<Table> =
            s.from.iter().map(|item| self.eval_from_item(item, env)).collect::<Result<_, _>>()?;

        // The scope ℓ(τ:β): each table's columns prefixed by its alias.
        let mut scope = Vec::new();
        for (item, t) in s.from.iter().zip(&tables) {
            scope.extend(item.alias.prefix(t.columns()));
        }

        // The Cartesian product, with ℓ(τ) as its column tuple.
        let mut product = tables[0].clone();
        for t in &tables[1..] {
            product = product.product(t);
        }

        // ⟦FROM τ:β WHERE θ⟧: keep each record r̄ whose revised environment
        // η′ = η r̄⊕ ℓ(τ:β) makes θ true. The revised environment is kept
        // alongside, because the SELECT list is evaluated under it.
        let mut kept: Vec<(Row, Env)> = Vec::new();
        for row in product.rows() {
            let env1 = env.update(&scope, row)?;
            if self.eval_condition(&s.where_, &env1)?.is_true() {
                kept.push((row.clone(), env1));
            }
        }

        let result = match &s.select {
            SelectList::Items(items) => {
                if items.is_empty() {
                    return Err(EvalError::ZeroArity);
                }
                let columns = items.iter().map(|i| i.alias.clone()).collect();
                let mut out = Table::new(columns)?;
                for (_, env1) in &kept {
                    let row: Row = items
                        .iter()
                        .map(|i| self.eval_term(&i.term, env1))
                        .collect::<Result<_, _>>()?;
                    out.push(row)?;
                }
                out
            }
            SelectList::Star if self.dialect.star_is_compositional() => {
                // PostgreSQL adjustment (§4): ⟦SELECT *⟧ is the FROM–WHERE
                // result itself, in every context.
                let mut out = Table::new(product.columns().to_vec())?;
                for (row, _) in kept {
                    out.push(row)?;
                }
                out
            }
            SelectList::Star if exists => {
                // Figure 5, x = 1: replace * by an arbitrary constant.
                let mut out = Table::new(vec![Name::new(STAR_EXISTS_COLUMN)])?;
                for _ in &kept {
                    out.push(Row::new(vec![STAR_EXISTS_CONSTANT]))?;
                }
                out
            }
            SelectList::Star => {
                // Figure 5, x = 0: expand * to SELECT ℓ(τ:β) : ℓ(τ). The
                // expansion *references* each full name of the scope, so a
                // repeated full name errors here — exactly Example 2.
                let mut out = Table::new(product.columns().to_vec())?;
                for (_, env1) in &kept {
                    let row: Row =
                        scope.iter().map(|n| env1.lookup(n).cloned()).collect::<Result<_, _>>()?;
                    out.push(row)?;
                }
                out
            }
        };

        Ok(if s.distinct { result.distinct() } else { result })
    }

    /// `⟦T⟧_{D,η,0}` for one element of a `FROM` clause, applying the
    /// optional column renaming `AS N(A₁,…,Aₙ)`.
    fn eval_from_item(&self, item: &FromItem, env: &Env) -> Result<Table, EvalError> {
        let table = match &item.table {
            TableRef::Base(r) => self.db.table(r)?,
            TableRef::Query(q) => self.eval_query(q, env, false)?,
        };
        match &item.columns {
            None => Ok(table),
            Some(cols) => {
                if cols.len() != table.arity() {
                    return Err(EvalError::ColumnRenameArity {
                        alias: item.alias.clone(),
                        expected: table.arity(),
                        got: cols.len(),
                    });
                }
                table.with_columns(cols.clone())
            }
        }
    }

    /// `⟦θ⟧_{D,η}` (Figure 6), under the evaluator's logic mode.
    pub fn eval_condition(&self, cond: &Condition, env: &Env) -> Result<Truth, EvalError> {
        match cond {
            Condition::True => Ok(Truth::True),
            Condition::False => Ok(Truth::False),
            Condition::Cmp { left, op, right } => {
                let l = self.eval_term(left, env)?;
                let r = self.eval_term(right, env)?;
                self.cmp_values(&l, *op, &r)
            }
            Condition::Like { term, pattern, negated } => {
                let t = self.eval_term(term, env)?;
                let p = self.eval_term(pattern, env)?;
                let truth = match self.logic {
                    LogicMode::ThreeValued => t.sql_like(&p)?,
                    // §6: every predicate conflates u with f.
                    _ => conflate(t.sql_like(&p)?),
                };
                Ok(if *negated { truth.not() } else { truth })
            }
            Condition::Pred { name, args } => {
                let values: Vec<Value> =
                    args.iter().map(|t| self.eval_term(t, env)).collect::<Result<_, _>>()?;
                if values.iter().any(Value::is_null) {
                    // Figure 6: u when an argument is NULL; the §6
                    // two-valued semantics conflates that to f.
                    return Ok(match self.logic {
                        LogicMode::ThreeValued => Truth::Unknown,
                        _ => Truth::False,
                    });
                }
                Ok(Truth::from_bool(self.preds.apply(name, &values)?))
            }
            Condition::IsNull { term, negated } => {
                // Already two-valued in every mode (Figure 6).
                let truth = Truth::from_bool(self.eval_term(term, env)?.is_null());
                Ok(if *negated { truth.not() } else { truth })
            }
            Condition::IsDistinct { left, right, negated } => {
                // Syntactic equality ≐ (Definition 2): two-valued in
                // every logic mode; IS NOT DISTINCT FROM *is* ≐.
                let l = self.eval_term(left, env)?;
                let r = self.eval_term(right, env)?;
                let same = l.syntactic_eq(&r);
                Ok(if *negated { same } else { same.not() })
            }
            Condition::In { terms, query, negated } => {
                let truth = self.eval_in(terms, query, env)?;
                Ok(if *negated { truth.not() } else { truth })
            }
            Condition::Exists(query) => {
                // ⟦EXISTS Q⟧: non-emptiness of ⟦Q⟧_{D,η,1}.
                let t = self.eval_query(query, env, true)?;
                Ok(Truth::from_bool(!t.is_empty()))
            }
            Condition::And(a, b) => {
                Ok(self.eval_condition(a, env)?.and(self.eval_condition(b, env)?))
            }
            Condition::Or(a, b) => {
                Ok(self.eval_condition(a, env)?.or(self.eval_condition(b, env)?))
            }
            Condition::Not(c) => Ok(self.eval_condition(c, env)?.not()),
        }
    }

    /// `⟦t̄ IN Q⟧_{D,η}` (Figure 6): the Kleene disjunction of the tuple
    /// equalities `t̄ = r̄` over all records `r̄` of `⟦Q⟧_{D,η,0}`.
    fn eval_in(&self, terms: &[Term], query: &Query, env: &Env) -> Result<Truth, EvalError> {
        let values: Vec<Value> =
            terms.iter().map(|t| self.eval_term(t, env)).collect::<Result<_, _>>()?;
        let sub = self.eval_query(query, env, false)?;
        if sub.arity() != values.len() {
            return Err(EvalError::ArityMismatch {
                context: "IN",
                left: values.len(),
                right: sub.arity(),
            });
        }
        let mut acc = Truth::False;
        for row in sub.rows() {
            acc = acc.or(self.tuple_eq(&values, row.values())?);
            if acc.is_true() {
                // t absorbs the Kleene disjunction; stopping early cannot
                // change the result.
                break;
            }
        }
        Ok(acc)
    }

    /// The tuple equality `(t₁,…,tₙ) = (t′₁,…,t′ₙ) = ⋀ᵢ tᵢ = t′ᵢ`
    /// (Figure 6), under the evaluator's interpretation of `=`.
    pub fn tuple_eq(&self, left: &[Value], right: &[Value]) -> Result<Truth, EvalError> {
        debug_assert_eq!(left.len(), right.len());
        let mut acc = Truth::True;
        for (l, r) in left.iter().zip(right) {
            acc = acc.and(self.cmp_values(l, CmpOp::Eq, r)?);
            if acc.is_false() {
                break;
            }
        }
        Ok(acc)
    }

    /// A single comparison under the evaluator's logic mode.
    fn cmp_values(&self, left: &Value, op: CmpOp, right: &Value) -> Result<Truth, EvalError> {
        match self.logic {
            LogicMode::ThreeValued => left.sql_cmp(right, op),
            LogicMode::TwoValuedConflate => Ok(conflate(left.sql_cmp(right, op)?)),
            LogicMode::TwoValuedSyntacticEq => match op {
                // §6's alternative: `=` means syntactic equality ≐.
                CmpOp::Eq => Ok(left.syntactic_eq(right)),
                _ => Ok(conflate(left.sql_cmp(right, op)?)),
            },
        }
    }

    /// `⟦t⟧_η` (Figure 4).
    pub fn eval_term(&self, term: &Term, env: &Env) -> Result<Value, EvalError> {
        match term {
            Term::Const(v) => Ok(v.clone()),
            Term::Col(name) => env.lookup(name).cloned(),
        }
    }
}

/// Conflates `u` with `f` — the passage from Figure 6 to the §6
/// two-valued predicate rules.
fn conflate(t: Truth) -> Truth {
    if t.is_true() {
        Truth::True
    } else {
        Truth::False
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::{row, table};

    /// The Example 1 database: R = {1, NULL}, S = {NULL}.
    fn example1_db() -> Database {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
        db.insert("S", table! { ["A"]; [Value::Null] }).unwrap();
        db
    }

    /// Q1: SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)
    fn q1() -> Query {
        let sub = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .distinct()
            .filter(Condition::not_in([Term::col("R", "A")], sub)),
        )
    }

    /// Q2: SELECT DISTINCT R.A FROM R WHERE NOT EXISTS
    ///     (SELECT * FROM S WHERE S.A = R.A)
    fn q2() -> Query {
        let sub = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("S", "S")])
                .filter(Condition::eq(Term::col("S", "A"), Term::col("R", "A"))),
        );
        Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .distinct()
            .filter(Condition::not(Condition::exists(sub))),
        )
    }

    /// Q3: SELECT R.A FROM R EXCEPT SELECT S.A FROM S
    fn q3() -> Query {
        let left = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        let right = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        left.except(right, false)
    }

    #[test]
    fn example1_q1_is_empty() {
        // R.A NOT IN (NULL) is never true: 1 <> NULL is u, NULL <> NULL
        // is u, so no row survives.
        let db = example1_db();
        let out = Evaluator::new(&db).eval(&q1()).unwrap();
        assert!(out.is_empty(), "got:\n{out}");
    }

    #[test]
    fn example1_q2_returns_both_rows() {
        // The subquery's S.A = R.A is u for every row, so EXISTS is false
        // and NOT EXISTS is true for both rows of R.
        let db = example1_db();
        let out = Evaluator::new(&db).eval(&q2()).unwrap();
        assert!(out.coincides(&table! { ["A"]; [1], [Value::Null] }), "got:\n{out}");
    }

    #[test]
    fn example1_q3_returns_one() {
        // EXCEPT compares syntactically: NULL is removed by the NULL in
        // S, and 1 survives.
        let db = example1_db();
        let out = Evaluator::new(&db).eval(&q3()).unwrap();
        assert!(out.coincides(&table! { ["A"]; [1] }), "got:\n{out}");
    }

    #[test]
    fn example1_all_dialects_agree() {
        let db = example1_db();
        for d in Dialect::ALL {
            let ev = Evaluator::new(&db).with_dialect(d);
            assert!(ev.eval(&q1()).unwrap().is_empty());
            assert_eq!(ev.eval(&q2()).unwrap().len(), 2);
            assert_eq!(ev.eval(&q3()).unwrap().len(), 1);
        }
    }

    fn example2_db() -> Database {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [2] }).unwrap();
        db
    }

    /// SELECT * FROM (SELECT R.A AS A, R.A AS A FROM R AS R) AS T
    fn example2_standalone() -> Query {
        let inner = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A"), (Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        Query::Select(SelectQuery::new(SelectList::Star, vec![FromItem::subquery(inner, "T")]))
    }

    /// SELECT * FROM R AS R WHERE EXISTS (example2_standalone)
    fn example2_under_exists() -> Query {
        Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("R", "R")])
                .filter(Condition::exists(example2_standalone())),
        )
    }

    #[test]
    fn example2_standalone_errors_on_standard_and_oracle() {
        let db = example2_db();
        for d in [Dialect::Standard, Dialect::Oracle] {
            let err = Evaluator::new(&db).with_dialect(d).eval(&example2_standalone()).unwrap_err();
            assert!(err.is_ambiguity(), "dialect {d}: {err}");
        }
    }

    #[test]
    fn example2_standalone_works_on_postgres() {
        let db = example2_db();
        let out = Evaluator::new(&db)
            .with_dialect(Dialect::PostgreSql)
            .eval(&example2_standalone())
            .unwrap();
        assert!(out.coincides(&table! { ["A", "A"]; [1, 1], [2, 2] }), "got:\n{out}");
    }

    #[test]
    fn example2_under_exists_works_everywhere() {
        // "… then suddenly it is fine": the ambiguous * sits directly
        // under EXISTS, so it is replaced by a constant and never
        // dereferenced. The outer query returns R whenever R is nonempty.
        let db = example2_db();
        for d in Dialect::ALL {
            let out = Evaluator::new(&db).with_dialect(d).eval(&example2_under_exists()).unwrap();
            assert!(out.coincides(&table! { ["A"]; [1], [2] }), "dialect {d}: got\n{out}");
        }
    }

    #[test]
    fn standard_ambiguity_is_runtime_only() {
        // The Standard semantics of Figures 4–7 raises ambiguity when the
        // environment is consulted; with an empty R there is no record to
        // consult it for, so the query succeeds (with an empty output).
        // The Oracle adjustment checks statically and still errors.
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let db = Database::new(schema); // R is empty
        let q = example2_standalone();
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(out.is_empty());
        assert!(Evaluator::new(&db)
            .with_dialect(Dialect::Oracle)
            .eval(&q)
            .unwrap_err()
            .is_ambiguity());
    }

    #[test]
    fn multiplicities_flow_through_products() {
        // SELECT R.A AS A FROM R AS R, S AS S — each row of R repeated
        // |S| times, with S's own multiplicities.
        let schema = Schema::builder().table("R", ["A"]).table("S", ["B"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [1] }).unwrap();
        db.insert("S", table! { ["B"]; [7], [7], [8] }).unwrap();
        let q = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R"), FromItem::base("S", "S")],
        ));
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert_eq!(out.multiplicity(&row![1]), 6);
    }

    #[test]
    fn where_uses_revised_environment() {
        // Correlated subquery: the inner S.B = R.A resolves R.A from the
        // outer scope per record.
        let schema = Schema::builder().table("R", ["A"]).table("S", ["B"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [2], [3] }).unwrap();
        db.insert("S", table! { ["B"]; [2], [3], [3] }).unwrap();
        let sub = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("S", "S")])
                .filter(Condition::eq(Term::col("S", "B"), Term::col("R", "A"))),
        );
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::exists(sub)),
        );
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(out.coincides(&table! { ["A"]; [2], [3] }), "got:\n{out}");
    }

    #[test]
    fn select_can_output_constants_and_nulls() {
        let db = example2_db();
        let q = Query::Select(SelectQuery::new(
            SelectList::items([
                (Term::Const(Value::Int(9)), "X"),
                (Term::Const(Value::Null), "Y"),
                (Term::col("R", "A"), "Z"),
            ]),
            vec![FromItem::base("R", "R")],
        ));
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(
            out.coincides(&table! { ["X", "Y", "Z"]; [9, Value::Null, 1], [9, Value::Null, 2] })
        );
    }

    #[test]
    fn distinct_eliminates_duplicates() {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [1], [2] }).unwrap();
        let q = |distinct: bool| {
            let base = SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            );
            Query::Select(if distinct { base.distinct() } else { base })
        };
        let ev = Evaluator::new(&db);
        assert_eq!(ev.eval(&q(false)).unwrap().len(), 3);
        assert_eq!(ev.eval(&q(true)).unwrap().len(), 2);
    }

    #[test]
    fn set_operations_match_figure7() {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [1], [2] }).unwrap();
        db.insert("S", table! { ["A"]; [1], [3] }).unwrap();
        let sel = |t: &str| {
            Query::Select(SelectQuery::new(
                SelectList::items([(Term::col(t, "A"), "A")]),
                vec![FromItem::base(t, t)],
            ))
        };
        let ev = Evaluator::new(&db);

        let u_all = ev.eval(&sel("R").union(sel("S"), true)).unwrap();
        assert!(u_all.multiset_eq(&table! { ["A"]; [1], [1], [1], [2], [3] }));
        let u = ev.eval(&sel("R").union(sel("S"), false)).unwrap();
        assert!(u.multiset_eq(&table! { ["A"]; [1], [2], [3] }));

        let i_all = ev.eval(&sel("R").intersect(sel("S"), true)).unwrap();
        assert!(i_all.multiset_eq(&table! { ["A"]; [1] }));
        let i = ev.eval(&sel("R").intersect(sel("S"), false)).unwrap();
        assert!(i.multiset_eq(&table! { ["A"]; [1] }));

        let e_all = ev.eval(&sel("R").except(sel("S"), true)).unwrap();
        assert!(e_all.multiset_eq(&table! { ["A"]; [1], [2] }));
        // ε(R) − S: ε gives {1,2}, minus {1,3} leaves {2}.
        let e = ev.eval(&sel("R").except(sel("S"), false)).unwrap();
        assert!(e.multiset_eq(&table! { ["A"]; [2] }));
    }

    #[test]
    fn except_deduplicates_left_before_subtracting() {
        // The asymmetry of Figure 7's EXCEPT: ε applies to the left only.
        // R = {1,1}, S = {} : EXCEPT gives {1} not {1,1}.
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [1] }).unwrap();
        let r = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        let s = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        let out = Evaluator::new(&db).eval(&r.except(s, false)).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn in_with_nulls_follows_kleene_disjunction() {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1] }).unwrap();
        db.insert("S", table! { ["A"]; [Value::Null], [2] }).unwrap();
        let sub = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        let ev = Evaluator::new(&db);
        let env = Env::empty();
        // 1 IN (NULL, 2): u ∨ f = u.
        let c = Condition::in_query([Term::from(1i64)], sub.clone());
        assert_eq!(ev.eval_condition(&c, &env).unwrap(), Truth::Unknown);
        // 2 IN (NULL, 2): u ∨ t = t.
        let c = Condition::in_query([Term::from(2i64)], sub.clone());
        assert_eq!(ev.eval_condition(&c, &env).unwrap(), Truth::True);
        // 1 NOT IN (NULL, 2) = ¬u = u.
        let c = Condition::not_in([Term::from(1i64)], sub.clone());
        assert_eq!(ev.eval_condition(&c, &env).unwrap(), Truth::Unknown);
        // IN over an empty result is f.
        let empty_sub = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("S", "A"), "A")]),
                vec![FromItem::base("S", "S")],
            )
            .filter(Condition::False),
        );
        let c = Condition::in_query([Term::from(1i64)], empty_sub);
        assert_eq!(ev.eval_condition(&c, &env).unwrap(), Truth::False);
    }

    #[test]
    fn in_checks_arity() {
        let db = example2_db();
        let sub = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        let c = Condition::in_query([Term::from(1i64), Term::from(2i64)], sub);
        assert!(matches!(
            Evaluator::new(&db).eval_condition(&c, &Env::empty()).unwrap_err(),
            EvalError::ArityMismatch { context: "IN", .. }
        ));
    }

    #[test]
    fn two_valued_conflate_changes_not_in() {
        // Under ⟦·⟧₂ᵥ Example 1's Q1 returns {1, NULL}: every equality
        // with NULL is f, so NOT IN succeeds for both rows.
        let db = example1_db();
        let out = Evaluator::new(&db).with_logic(LogicMode::TwoValuedConflate).eval(&q1()).unwrap();
        assert!(out.coincides(&table! { ["A"]; [1], [Value::Null] }), "got:\n{out}");
    }

    #[test]
    fn two_valued_syntactic_eq_changes_not_in_differently() {
        // With = as ≐, NULL = NULL is t, so NULL IN (SELECT S.A …) is t
        // and only the row 1 survives NOT IN.
        let db = example1_db();
        let out =
            Evaluator::new(&db).with_logic(LogicMode::TwoValuedSyntacticEq).eval(&q1()).unwrap();
        assert!(out.coincides(&table! { ["A"]; [1] }), "got:\n{out}");
    }

    #[test]
    fn two_valued_modes_agree_with_3vl_on_null_free_data() {
        // On databases without nulls the three semantics coincide (§6:
        // the differences all come from u).
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [2] }).unwrap();
        db.insert("S", table! { ["A"]; [2] }).unwrap();
        for logic in LogicMode::ALL {
            let out = Evaluator::new(&db).with_logic(logic).eval(&q1()).unwrap();
            assert!(out.coincides(&table! { ["A"]; [1] }), "mode {logic}: got\n{out}");
        }
    }

    #[test]
    fn user_predicates_follow_figure6_null_rule() {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [2], [3], [Value::Null] }).unwrap();
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::Pred { name: "even".into(), args: vec![Term::col("R", "A")] }),
        );
        let ev = Evaluator::new(&db).with_predicates(PredicateRegistry::with_examples());
        let out = ev.eval(&q).unwrap();
        assert!(out.coincides(&table! { ["A"]; [2] }), "got:\n{out}");
        // NOT even(A): NULL row still excluded (¬u = u).
        let q_not = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::not(Condition::Pred {
                name: "even".into(),
                args: vec![Term::col("R", "A")],
            })),
        );
        let out = ev.eval(&q_not).unwrap();
        assert!(out.coincides(&table! { ["A"]; [3] }), "got:\n{out}");
    }

    #[test]
    fn from_subqueries_are_evaluated_under_outer_env() {
        // A FROM subquery with a parameter bound by the environment: used
        // when the block itself is nested. Here we exercise eval_query
        // directly with a non-empty environment.
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [2] }).unwrap();
        let inner = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::eq(Term::col("R", "A"), Term::col("Outer", "X"))),
        );
        let q =
            Query::Select(SelectQuery::new(SelectList::Star, vec![FromItem::subquery(inner, "T")]));
        let env = Env::empty().bind(crate::FullName::new("Outer", "X"), Value::Int(2));
        let out = Evaluator::new(&db).eval_query(&q, &env, false).unwrap();
        assert!(out.coincides(&table! { ["A"]; [2] }), "got:\n{out}");
    }

    #[test]
    fn empty_from_is_malformed() {
        let db = example2_db();
        let q =
            Query::Select(SelectQuery::new(SelectList::items([(Term::from(1i64), "X")]), vec![]));
        assert!(matches!(Evaluator::new(&db).eval(&q).unwrap_err(), EvalError::Malformed(_)));
    }

    #[test]
    fn column_rename_in_from_is_applied() {
        // SELECT N.X AS X FROM R AS N(X) — the Figure 10 construct.
        let db = example2_db();
        let q = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("N", "X"), "X")]),
            vec![FromItem::base("R", "N").with_columns(["X"])],
        ));
        let out = Evaluator::new(&db).eval(&q).unwrap();
        assert!(out.coincides(&table! { ["X"]; [1], [2] }), "got:\n{out}");
    }
}
