//! Environments: bindings of full names to values (§3, "Scopes and
//! bindings").
//!
//! An environment `η` is a partial map from full names (`N²`) to values.
//! It provides the bindings for query *parameters* — full names referenced
//! by a subquery but bound by an enclosing scope. The paper defines four
//! operations, all implemented here:
//!
//! * `η_{Ā,r̄}` ([`Env::of_record`]) — binds each *non-repeated* element of
//!   `Ā` to the corresponding value of `r̄`; repeated full names are
//!   *ambiguous* and the environment is undefined on them.
//! * `η ⇑ Ā` ([`Env::unbind`]) — removes the bindings for all of `Ā`.
//! * `η ; η′` ([`Env::override_with`]) — `η` overridden by `η′`.
//! * `η r̄⊕ Ā = (η ⇑ Ā); η_{Ā,r̄}` ([`Env::update`]) — the scope update
//!   applied for each record of a `FROM` product.
//!
//! Repeated full names are represented by an explicit [`Binding::Ambiguous`]
//! marker rather than by absence: looking one up raises
//! [`EvalError::AmbiguousReference`] (the Standard/Oracle behaviour of
//! Example 2), which is distinguishable from a name that was never bound
//! ([`EvalError::UnboundReference`]). For the purposes of the paper's
//! algebra of environments the marker behaves exactly like "undefined":
//! it is erased by `⇑` and shadowed by rebinding, and it never falls back
//! to an outer binding — precisely because `⇑` removed that binding first.

use std::collections::HashMap;
use std::fmt;

use crate::error::EvalError;
use crate::name::FullName;
use crate::row::Row;
use crate::value::Value;

/// What a full name is bound to in an environment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Binding {
    /// A proper binding to a value.
    Value(Value),
    /// The name occurred more than once in the scope it was bound from;
    /// referencing it is an error (§3: "a reference to a repeated full
    /// name is ambiguous").
    Ambiguous,
}

/// An environment `η`: a partial map from full names to values, with
/// explicit ambiguity markers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Env {
    bindings: HashMap<FullName, Binding>,
}

impl Env {
    /// The empty environment `∅` — what top-level queries are evaluated
    /// under (`⟦Q⟧_D = ⟦Q⟧_{D,∅,0}`).
    pub fn empty() -> Env {
        Env::default()
    }

    /// The environment `η_{Ā,r̄}`: each non-repeated `Aᵢ` in `names` is
    /// bound to the corresponding value of `row`; repeated names are
    /// marked ambiguous.
    ///
    /// Errors if the tuple lengths differ (the paper requires `Ā` and `r̄`
    /// of the same length).
    pub fn of_record(names: &[FullName], row: &Row) -> Result<Env, EvalError> {
        if names.len() != row.arity() {
            return Err(EvalError::ArityMismatch {
                context: "environment binding",
                left: names.len(),
                right: row.arity(),
            });
        }
        let mut bindings = HashMap::with_capacity(names.len());
        for (name, value) in names.iter().zip(row.iter()) {
            match bindings.entry(name.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.insert(Binding::Ambiguous);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(Binding::Value(value.clone()));
                }
            }
        }
        Ok(Env { bindings })
    }

    /// The environment `η ⇑ Ā`: identical to `self` but undefined on every
    /// name in `names`.
    #[must_use]
    pub fn unbind(&self, names: &[FullName]) -> Env {
        let mut bindings = self.bindings.clone();
        for n in names {
            bindings.remove(n);
        }
        Env { bindings }
    }

    /// The environment `η ; η′`: `self` overridden by `other` (`other`
    /// wins where both are defined).
    #[must_use]
    pub fn override_with(&self, other: &Env) -> Env {
        let mut bindings = self.bindings.clone();
        for (n, b) in &other.bindings {
            bindings.insert(n.clone(), b.clone());
        }
        Env { bindings }
    }

    /// The scope update `η r̄⊕ Ā = (η ⇑ Ā); η_{Ā,r̄}`: unbinds all of
    /// `names`, then binds them to the values of `row` (with ambiguity
    /// markers for repeated names).
    pub fn update(&self, names: &[FullName], row: &Row) -> Result<Env, EvalError> {
        Ok(self.unbind(names).override_with(&Env::of_record(names, row)?))
    }

    /// Binds a single full name to a value (a convenience for building
    /// parameter environments in tests and examples).
    #[must_use]
    pub fn bind(&self, name: FullName, value: Value) -> Env {
        let mut bindings = self.bindings.clone();
        bindings.insert(name, Binding::Value(value));
        Env { bindings }
    }

    /// Looks up a full name: the value it is bound to, or an error if the
    /// name is unbound or ambiguous.
    pub fn lookup(&self, name: &FullName) -> Result<&Value, EvalError> {
        match self.bindings.get(name) {
            Some(Binding::Value(v)) => Ok(v),
            Some(Binding::Ambiguous) => Err(EvalError::AmbiguousReference(name.clone())),
            None => Err(EvalError::UnboundReference(name.clone())),
        }
    }

    /// The raw binding of a name, if any.
    pub fn get(&self, name: &FullName) -> Option<&Binding> {
        self.bindings.get(name)
    }

    /// `true` iff the environment has no bindings at all.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Number of names the environment is defined on (including ambiguous
    /// markers).
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Iterates over the bindings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&FullName, &Binding)> {
        self.bindings.iter()
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.bindings.iter().collect();
        entries.sort_by_key(|(a, _)| *a);
        f.write_str("{")?;
        for (i, (n, b)) in entries.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match b {
                Binding::Value(v) => write!(f, "{n} ↦ {v}")?,
                Binding::Ambiguous => write!(f, "{n} ↦ ‹ambiguous›")?,
            }
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn names(ns: &[(&str, &str)]) -> Vec<FullName> {
        ns.iter().map(|(t, c)| FullName::new(*t, *c)).collect()
    }

    #[test]
    fn of_record_binds_positionally() {
        let env = Env::of_record(&names(&[("R", "A"), ("R", "B")]), &row![1, 2]).unwrap();
        assert_eq!(env.lookup(&FullName::new("R", "A")).unwrap(), &Value::Int(1));
        assert_eq!(env.lookup(&FullName::new("R", "B")).unwrap(), &Value::Int(2));
    }

    #[test]
    fn of_record_marks_repeated_names_ambiguous() {
        let env = Env::of_record(&names(&[("T", "A"), ("T", "A")]), &row![1, 2]).unwrap();
        assert_eq!(
            env.lookup(&FullName::new("T", "A")).unwrap_err(),
            EvalError::AmbiguousReference(FullName::new("T", "A"))
        );
    }

    #[test]
    fn of_record_checks_arity() {
        assert!(matches!(
            Env::of_record(&names(&[("R", "A")]), &row![1, 2]).unwrap_err(),
            EvalError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn lookup_unbound_is_distinct_from_ambiguous() {
        let env = Env::empty();
        assert_eq!(
            env.lookup(&FullName::new("R", "A")).unwrap_err(),
            EvalError::UnboundReference(FullName::new("R", "A"))
        );
    }

    #[test]
    fn unbind_removes_bindings() {
        let a = FullName::new("R", "A");
        let env = Env::empty().bind(a.clone(), Value::Int(1));
        let env = env.unbind(std::slice::from_ref(&a));
        assert!(env.lookup(&a).is_err());
        assert!(env.is_empty());
    }

    #[test]
    fn override_prefers_right() {
        let a = FullName::new("R", "A");
        let b = FullName::new("S", "B");
        let left = Env::empty().bind(a.clone(), Value::Int(1)).bind(b.clone(), Value::Int(9));
        let right = Env::empty().bind(a.clone(), Value::Int(2));
        let env = left.override_with(&right);
        assert_eq!(env.lookup(&a).unwrap(), &Value::Int(2));
        // Names only in the left survive.
        assert_eq!(env.lookup(&b).unwrap(), &Value::Int(9));
    }

    #[test]
    fn update_shadows_outer_scope() {
        // η binds R.A (outer scope); the local FROM rebinds it.
        let a = FullName::new("R", "A");
        let outer = Env::empty().bind(a.clone(), Value::Int(1));
        let env = outer.update(std::slice::from_ref(&a), &row![42]).unwrap();
        assert_eq!(env.lookup(&a).unwrap(), &Value::Int(42));
    }

    #[test]
    fn update_with_repeats_hides_outer_binding() {
        // The crucial case: the local scope has T.A twice. The outer
        // binding must NOT shine through — the reference is ambiguous, not
        // resolved outward, because η ⇑ Ā removed it first.
        let a = FullName::new("T", "A");
        let outer = Env::empty().bind(a.clone(), Value::Int(1));
        let env = outer.update(&names(&[("T", "A"), ("T", "A")]), &row![2, 3]).unwrap();
        assert_eq!(env.lookup(&a).unwrap_err(), EvalError::AmbiguousReference(a));
    }

    #[test]
    fn update_preserves_unrelated_bindings() {
        let a = FullName::new("R", "A");
        let b = FullName::new("S", "B");
        let outer = Env::empty().bind(b.clone(), Value::Int(7));
        let env = outer.update(std::slice::from_ref(&a), &row![1]).unwrap();
        assert_eq!(env.lookup(&b).unwrap(), &Value::Int(7));
        assert_eq!(env.lookup(&a).unwrap(), &Value::Int(1));
    }

    #[test]
    fn ambiguous_marker_is_cleared_by_rebinding() {
        let a = FullName::new("T", "A");
        let ambiguous = Env::of_record(&names(&[("T", "A"), ("T", "A")]), &row![1, 2]).unwrap();
        let env = ambiguous.update(std::slice::from_ref(&a), &row![5]).unwrap();
        assert_eq!(env.lookup(&a).unwrap(), &Value::Int(5));
    }

    #[test]
    fn nulls_are_ordinary_bound_values() {
        let a = FullName::new("R", "A");
        let env = Env::of_record(std::slice::from_ref(&a), &row![Value::Null]).unwrap();
        assert_eq!(env.lookup(&a).unwrap(), &Value::Null);
    }

    #[test]
    fn display_is_sorted_and_readable() {
        let env = Env::empty()
            .bind(FullName::new("S", "B"), Value::Int(2))
            .bind(FullName::new("R", "A"), Value::Int(1));
        assert_eq!(env.to_string(), "{R.A ↦ 1, S.B ↦ 2}");
    }
}
