//! The list-valued ordering fragment: `ORDER BY` / `LIMIT` / `OFFSET`.
//!
//! The paper's semantics — and the formalisations that reproduce it
//! (HoTTSQL, Ricciotti & Cheney's nulls mechanisation) — stop at
//! bag-valued queries. Real workloads need ordered, limited results, so
//! this module extends the semantics with a *list* layer on top of the
//! bag layer:
//!
//! 1. the block's bag result is computed exactly as in Figures 4–7
//!    (including `DISTINCT`);
//! 2. the bag — whose production order is already deterministic
//!    byte-for-byte in this reproduction — is **stably sorted** by the
//!    `ORDER BY` keys, so tied records keep their deterministic
//!    production order;
//! 3. `OFFSET m` drops the first `m` records of the list (an offset past
//!    the end yields the empty list), then `LIMIT n` keeps at most `n`.
//!
//! The key comparison is shared by every implementation in the
//! workspace (the way [`crate::Value::sql_cmp`] already is):
//!
//! * non-`NULL` values compare by the SQL order of their type;
//! * `NULL` sorts **last by default**, before/after all constants under
//!   an explicit `NULLS FIRST`/`NULLS LAST`;
//! * `DESC` reverses the order of the constants but *not* the `NULL`
//!   placement (`NULLS FIRST` means first in the output, full stop).
//!
//! This comparison never consults the logic mode: the §6 two-valued
//! semantics only reinterpret *predicates*, and the order of non-null
//! constants coincides in all three modes, so one list semantics is
//! consistent with all of them. Comparing values of different non-null
//! types is a deterministic [`EvalError::TypeMismatch`]: each key
//! column's type is fixed by its first non-`NULL` value in list order,
//! and the first conflicting record raises — a rule every backend
//! implements identically, so error verdicts cannot depend on the sort
//! algorithm.

use std::cmp::Ordering;

use crate::ast::OrderKey;
use crate::error::EvalError;
use crate::name::Name;
use crate::row::Row;
use crate::table::Table;
use crate::value::Value;

/// Resolves one `ORDER BY` key against a block's output columns: the
/// name must label exactly one output column. Zero matches are the
/// plain-name unbound error; several are the plain-name ambiguity (the
/// repeated-output-name situation, which [`EvalError::is_ambiguity`]
/// classifies together with Example 2's errors).
pub fn resolve_key(column: &Name, columns: &[Name]) -> Result<usize, EvalError> {
    let mut matches = columns.iter().enumerate().filter(|(_, c)| *c == column);
    let Some((index, _)) = matches.next() else {
        return Err(EvalError::UnboundName(column.clone()));
    };
    if matches.next().is_some() {
        return Err(EvalError::AmbiguousName(column.clone()));
    }
    Ok(index)
}

/// The total key comparison of the list semantics (see the module
/// docs). Both values must be `NULL` or of one shared type; the type
/// discipline is enforced separately by [`KeyTypeCheck`], so this
/// function itself is total.
pub fn key_ordering(a: &Value, b: &Value, desc: bool, nulls_first: bool) -> Ordering {
    let rank = |v: &Value| match (v.is_null(), nulls_first) {
        (true, true) => 0u8,
        (false, _) => 1,
        (true, false) => 2,
    };
    rank(a).cmp(&rank(b)).then_with(|| {
        if a.is_null() {
            // Both NULL (equal ranks otherwise differ): tied.
            Ordering::Equal
        } else {
            // Same-type constants: the derived order on `Value` agrees
            // with the SQL order within each type.
            let ord = a.cmp(b);
            if desc {
                ord.reverse()
            } else {
                ord
            }
        }
    })
}

/// The deterministic type discipline of sort keys: per key column, the
/// first non-`NULL` value (in list order) fixes the type; any later
/// non-`NULL` value of a different type raises. Every backend feeds
/// values in list order *before* reordering anything, so the error —
/// and the record it fires on — is implementation-independent.
#[derive(Clone, Debug, Default)]
pub struct KeyTypeCheck {
    seen: Vec<Option<&'static str>>,
}

impl KeyTypeCheck {
    /// A checker for `keys` sort-key columns.
    pub fn new(keys: usize) -> Self {
        KeyTypeCheck { seen: vec![None; keys] }
    }

    /// Notes one key value; errors on the first type conflict.
    pub fn note(&mut self, key: usize, value: &Value) -> Result<(), EvalError> {
        if value.is_null() {
            return Ok(());
        }
        match self.seen[key] {
            None => self.seen[key] = Some(value.type_name()),
            Some(t) if t == value.type_name() => {}
            Some(t) => {
                return Err(EvalError::TypeMismatch {
                    op: "ORDER BY".to_string(),
                    left: t,
                    right: value.type_name(),
                })
            }
        }
        Ok(())
    }
}

/// One resolved sort key: an output-column position plus direction and
/// `NULL` placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedKey {
    /// Output-column index the key sorts by.
    pub index: usize,
    /// `DESC`?
    pub desc: bool,
    /// Effective `NULL` placement (defaults already applied).
    pub nulls_first: bool,
}

/// Resolves a whole `ORDER BY` clause against an output signature.
pub fn resolve_keys(
    order_by: &[OrderKey],
    columns: &[Name],
) -> Result<Vec<ResolvedKey>, EvalError> {
    order_by
        .iter()
        .map(|k| {
            Ok(ResolvedKey {
                index: resolve_key(&k.column, columns)?,
                desc: k.desc,
                nulls_first: k.nulls_first_effective(),
            })
        })
        .collect()
}

/// Compares two rows under a resolved key list (total once the type
/// discipline has passed).
pub fn row_ordering(a: &Row, b: &Row, keys: &[ResolvedKey]) -> Ordering {
    for k in keys {
        let ord = key_ordering(&a[k.index], &b[k.index], k.desc, k.nulls_first);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// The list semantics applied to a bag result: stable sort by the
/// resolved keys, then `OFFSET`, then `LIMIT`. This is the executable
/// *specification*; the engine's `Plan::Sort`/`Plan::TopK` operators
/// implement the same function with independent algorithms.
pub fn sort_and_slice(
    table: Table,
    order_by: &[OrderKey],
    limit: Option<u64>,
    offset: Option<u64>,
) -> Result<Table, EvalError> {
    let keys = resolve_keys(order_by, table.columns())?;
    let columns = table.columns().to_vec();
    let mut rows = table.into_rows();
    // Type discipline first, in list order, so the error verdict does
    // not depend on the sort algorithm.
    let mut check = KeyTypeCheck::new(keys.len());
    for row in &rows {
        for (i, k) in keys.iter().enumerate() {
            check.note(i, &row[k.index])?;
        }
    }
    // `sort_by` is stable: tied records keep their bag production order.
    rows.sort_by(|a, b| row_ordering(a, b, &keys));
    let rows = slice_rows(rows, limit, offset);
    Table::with_rows(columns, rows)
}

/// `OFFSET`/`LIMIT` on an already-ordered list. An offset past the end
/// yields the empty list; `LIMIT 0` is legal and empty.
pub fn slice_rows(rows: Vec<Row>, limit: Option<u64>, offset: Option<u64>) -> Vec<Row> {
    let skip = usize::try_from(offset.unwrap_or(0)).unwrap_or(usize::MAX);
    let take = limit.map_or(usize::MAX, |n| usize::try_from(n).unwrap_or(usize::MAX));
    rows.into_iter().skip(skip).take(take).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{row, table};

    fn keys(ks: &[(usize, bool, bool)]) -> Vec<ResolvedKey> {
        ks.iter()
            .map(|&(index, desc, nulls_first)| ResolvedKey { index, desc, nulls_first })
            .collect()
    }

    #[test]
    fn resolve_key_errors_are_classified() {
        let cols: Vec<Name> = vec!["A".into(), "B".into(), "A".into()];
        assert_eq!(resolve_key(&Name::new("B"), &cols).unwrap(), 1);
        assert!(matches!(resolve_key(&Name::new("Z"), &cols), Err(EvalError::UnboundName(_))));
        let err = resolve_key(&Name::new("A"), &cols).unwrap_err();
        assert!(err.is_ambiguity(), "{err}");
    }

    #[test]
    fn nulls_sort_last_by_default_and_desc_keeps_their_placement() {
        let t = table! { ["A"]; [2], [Value::Null], [1] };
        let asc = sort_and_slice(t.clone(), &[OrderKey::asc("A")], None, None).unwrap();
        let vals: Vec<_> = asc.rows().map(|r| r[0].clone()).collect();
        assert_eq!(vals, vec![Value::Int(1), Value::Int(2), Value::Null]);
        // DESC reverses the constants, not the NULL placement.
        let desc = sort_and_slice(t.clone(), &[OrderKey::desc("A")], None, None).unwrap();
        let vals: Vec<_> = desc.rows().map(|r| r[0].clone()).collect();
        assert_eq!(vals, vec![Value::Int(2), Value::Int(1), Value::Null]);
        // Explicit NULLS FIRST overrides.
        let first = sort_and_slice(t, &[OrderKey::asc("A").nulls_first(true)], None, None).unwrap();
        assert_eq!(first.rows().next().unwrap(), &row![Value::Null]);
    }

    #[test]
    fn sort_is_stable_on_ties() {
        let t = table! { ["K", "P"]; [1, 10], [0, 20], [1, 30], [0, 40] };
        let sorted = sort_and_slice(t, &[OrderKey::asc("K")], None, None).unwrap();
        let payload: Vec<_> = sorted.rows().map(|r| r[1].clone()).collect();
        assert_eq!(payload, vec![Value::Int(20), Value::Int(40), Value::Int(10), Value::Int(30)]);
    }

    #[test]
    fn offset_past_end_is_empty_and_limit_zero_is_legal() {
        let t = table! { ["A"]; [1], [2], [3] };
        let out = sort_and_slice(t.clone(), &[OrderKey::asc("A")], None, Some(10)).unwrap();
        assert!(out.is_empty());
        let out = sort_and_slice(t.clone(), &[OrderKey::asc("A")], Some(0), None).unwrap();
        assert!(out.is_empty());
        let out = sort_and_slice(t, &[OrderKey::asc("A")], Some(2), Some(1)).unwrap();
        let vals: Vec<_> = out.rows().map(|r| r[0].clone()).collect();
        assert_eq!(vals, vec![Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn mixed_type_keys_error_deterministically() {
        let t = table! { ["A"]; [1], [Value::Null], [Value::str("x")] };
        let err = sort_and_slice(t, &[OrderKey::asc("A")], None, None).unwrap_err();
        assert!(
            matches!(&err, EvalError::TypeMismatch { op, left: "integer", right: "string" }
                if op == "ORDER BY"),
            "{err}"
        );
    }

    #[test]
    fn row_ordering_is_lexicographic_over_keys() {
        let a = row![1, 2];
        let b = row![1, 1];
        assert_eq!(row_ordering(&a, &b, &keys(&[(0, false, false)])), Ordering::Equal);
        assert_eq!(
            row_ordering(&a, &b, &keys(&[(0, false, false), (1, false, false)])),
            Ordering::Greater
        );
        assert_eq!(row_ordering(&a, &b, &keys(&[(1, true, false)])), Ordering::Less);
    }
}
