//! Static name resolution: the "compile-time" checks of real RDBMSs.
//!
//! The paper's semantics (Figures 4–7) surfaces ambiguous or unbound
//! references *at evaluation time*, when the environment is consulted
//! (§3). Real systems reject such queries when compiling them, before
//! touching any data: Oracle rejects Example 2's first query outright, and
//! PostgreSQL rejects explicitly written ambiguous references while
//! accepting ambiguous `*`. This module implements that static analysis;
//! the evaluator runs it for the dialects that behave this way
//! ([`Dialect::checks_ambiguity_statically`]).
//!
//! Resolution follows §3's scoping rule: each `SELECT`-`FROM`-`WHERE`
//! block defines a scope; a reference `M.N` is looked up in the local
//! scope first, then in the scopes of the enclosing blocks, innermost
//! first. If the innermost scope containing the reference contains it more
//! than once, the reference is ambiguous.

use std::collections::HashSet;

use crate::ast::{AggFunc, Condition, FromExpr, Query, SelectList, SelectQuery, TableRef, Term};
use crate::dialect::Dialect;
use crate::error::EvalError;
use crate::name::{FullName, Name};
use crate::schema::Schema;
use crate::sig;

/// Statically checks a *closed* query (one with no parameters): every
/// reference must resolve unambiguously against the scopes of the query
/// itself, `FROM` aliases must be distinct, base tables must exist, and —
/// for non-compositional star dialects — `SELECT *` must not expand to an
/// ambiguous reference unless the block sits directly under `EXISTS`.
pub fn check_query(query: &Query, schema: &Schema, dialect: Dialect) -> Result<(), EvalError> {
    check_rec(query, schema, dialect, &mut Vec::new(), false)
}

fn check_rec(
    query: &Query,
    schema: &Schema,
    dialect: Dialect,
    stack: &mut Vec<Vec<FullName>>,
    exists: bool,
) -> Result<(), EvalError> {
    match query {
        Query::SetOp { left, right, .. } => {
            check_rec(left, schema, dialect, stack, false)?;
            check_rec(right, schema, dialect, stack, false)
        }
        Query::Select(s) => {
            // FROM subqueries are checked in the *enclosing* scopes only:
            // the local scope is not visible to them (Figure 5 evaluates
            // them under the outer environment η). Join `ON` conditions
            // are checked under the join subtree's own scope.
            for fe in &s.from {
                check_from_expr(fe, schema, dialect, stack)?;
            }
            let local = sig::scope(&s.from, schema)?;
            stack.push(local);
            let result = check_block(s, schema, dialect, stack, exists)
                .and_then(|()| check_order_keys(s, dialect, stack, exists));
            stack.pop();
            result
        }
    }
}

/// Checks one `FROM` expression: leaf subqueries resolve in the
/// *enclosing* scopes only, and each join's `ON` condition resolves in
/// the scope of that join's own leaves plus the enclosing scopes — a
/// sibling `FROM` item is not visible to it.
fn check_from_expr(
    fe: &FromExpr,
    schema: &Schema,
    dialect: Dialect,
    stack: &mut Vec<Vec<FullName>>,
) -> Result<(), EvalError> {
    match fe {
        FromExpr::Item(item) => {
            if let TableRef::Query(sub) = &item.table {
                check_rec(sub, schema, dialect, stack, false)?;
            }
            Ok(())
        }
        FromExpr::Join { left, right, on, .. } => {
            check_from_expr(left, schema, dialect, stack)?;
            check_from_expr(right, schema, dialect, stack)?;
            let scope = sig::from_expr_scope(fe, schema)?;
            stack.push(scope);
            let result = check_condition(on, schema, dialect, stack);
            stack.pop();
            result
        }
    }
}

/// Validates the block's `ORDER BY` keys against its output columns:
/// SQL-92 style, a key must name exactly one output column. The output
/// signature depends on the dialect's star semantics and the `EXISTS`
/// context, mirroring Figure 5 exactly.
fn check_order_keys(
    s: &SelectQuery,
    dialect: Dialect,
    stack: &[Vec<FullName>],
    exists: bool,
) -> Result<(), EvalError> {
    if s.order_by.is_empty() {
        return Ok(());
    }
    let columns: Vec<Name> = match &s.select {
        SelectList::Items(items) => items.iter().map(|i| i.alias.clone()).collect(),
        // Figure 5, x = 1: the star is replaced by one arbitrary
        // constant column (unless the dialect's star is compositional).
        SelectList::Star if exists && !dialect.star_is_compositional() => {
            vec![Name::new(crate::eval::STAR_EXISTS_COLUMN)]
        }
        // Star expansion (or PostgreSQL's passthrough): the plain
        // column names of the local scope, repetitions included.
        SelectList::Star => {
            stack.last().expect("local scope pushed").iter().map(|n| n.column.clone()).collect()
        }
    };
    for key in &s.order_by {
        crate::order::resolve_key(&key.column, &columns)?;
    }
    Ok(())
}

fn check_block(
    s: &SelectQuery,
    schema: &Schema,
    dialect: Dialect,
    stack: &mut Vec<Vec<FullName>>,
    exists: bool,
) -> Result<(), EvalError> {
    if s.is_grouped() {
        return check_grouped_block(s, schema, dialect, stack);
    }
    match &s.select {
        SelectList::Items(items) => {
            if items.is_empty() {
                return Err(EvalError::ZeroArity);
            }
            for item in items {
                resolve_term(&item.term, schema, dialect, stack)?;
            }
        }
        SelectList::Star => {
            // PostgreSQL's compositional star never dereferences names;
            // under EXISTS the Standard replaces * with a constant. In
            // the remaining case the star expands to a reference to every
            // full name of the local scope, so repetitions are ambiguous.
            if !dialect.star_is_compositional() && !exists {
                let local = stack.last().expect("local scope was pushed");
                let mut seen = std::collections::HashSet::with_capacity(local.len());
                for n in local {
                    if !seen.insert(n) {
                        return Err(EvalError::AmbiguousReference(n.clone()));
                    }
                }
            }
        }
    }
    check_condition(&s.where_, schema, dialect, stack)
}

/// The grouped-environment typing rules: `WHERE` and `GROUP BY` are
/// aggregate-free and resolve in the ordinary scopes; aggregate
/// arguments resolve in the block's own scope (they range over group
/// members); every other `SELECT`/`HAVING` term must be a group key, a
/// constant, or an outer-scope reference — and subqueries nested in
/// `HAVING` see the *key scope* in place of the block's scope, because
/// at runtime the grouped environment binds exactly the named keys.
fn check_grouped_block(
    s: &SelectQuery,
    schema: &Schema,
    dialect: Dialect,
    stack: &mut Vec<Vec<FullName>>,
) -> Result<(), EvalError> {
    if s.select.is_star() {
        return Err(EvalError::malformed(
            "SELECT * cannot be combined with GROUP BY, HAVING or aggregates",
        ));
    }
    // WHERE is checked (and kept aggregate-free) under the full scopes.
    check_condition(&s.where_, schema, dialect, stack)?;
    // GROUP BY keys resolve like ordinary terms; aggregates are rejected
    // by `resolve_term`.
    for key in &s.group_by {
        resolve_term(key, schema, dialect, stack)?;
    }
    // Aggregate arguments range over the group's member records, so they
    // resolve with the local scope still in place; nested aggregates are
    // rejected by `resolve_term`.
    for agg in s.aggregates() {
        match &agg.arg {
            None if agg.func != AggFunc::Count => {
                return Err(EvalError::malformed("only COUNT may be applied to *"))
            }
            None => {}
            Some(arg) => resolve_term(arg, schema, dialect, stack)?,
        }
    }
    // Swap the local scope for the key scope (the full names the grouped
    // environment binds), then check the SELECT list and HAVING.
    let mut local_aliases: HashSet<Name> = HashSet::new();
    for fe in &s.from {
        for item in fe.leaves() {
            local_aliases.insert(item.alias.clone());
        }
    }
    let local = stack.pop().expect("local scope was pushed");
    let mut key_scope: Vec<FullName> = Vec::new();
    for key in &s.group_by {
        if let Term::Col(n) = key {
            if !key_scope.contains(n) {
                key_scope.push(n.clone());
            }
        }
    }
    stack.push(key_scope);
    let result = (|| {
        if let SelectList::Items(items) = &s.select {
            if items.is_empty() {
                return Err(EvalError::ZeroArity);
            }
            for item in items {
                check_grouped_term(&item.term, s, &local_aliases, schema, dialect, stack)?;
            }
        }
        check_grouped_condition(&s.having, s, &local_aliases, schema, dialect, stack)
    })();
    stack.pop();
    stack.push(local);
    result
}

fn check_grouped_term(
    term: &Term,
    s: &SelectQuery,
    local_aliases: &HashSet<Name>,
    schema: &Schema,
    dialect: Dialect,
    stack: &mut Vec<Vec<FullName>>,
) -> Result<(), EvalError> {
    if s.group_by.contains(term) {
        return Ok(()); // a group key: already resolved
    }
    match term {
        Term::Const(_) => Ok(()),
        Term::Agg(_) => Ok(()), // arguments were checked up front
        Term::Col(n) => {
            if local_aliases.contains(&n.table) {
                Err(EvalError::UngroupedColumn(n.clone()))
            } else {
                resolve(n, stack)
            }
        }
        // Every part of a combinator obeys the grouped typing rules; a
        // CASE branch condition is checked as a grouped condition, so its
        // subqueries see the key scope.
        Term::Case { branches, else_ } => {
            for (cond, result) in branches {
                check_grouped_condition(cond, s, local_aliases, schema, dialect, stack)?;
                check_grouped_term(result, s, local_aliases, schema, dialect, stack)?;
            }
            match else_ {
                Some(e) => check_grouped_term(e, s, local_aliases, schema, dialect, stack),
                None => Ok(()),
            }
        }
        Term::Coalesce(terms) => {
            for t in terms {
                check_grouped_term(t, s, local_aliases, schema, dialect, stack)?;
            }
            Ok(())
        }
        Term::Nullif(a, b) => {
            check_grouped_term(a, s, local_aliases, schema, dialect, stack)?;
            check_grouped_term(b, s, local_aliases, schema, dialect, stack)
        }
    }
}

fn check_grouped_condition(
    cond: &Condition,
    s: &SelectQuery,
    local_aliases: &HashSet<Name>,
    schema: &Schema,
    dialect: Dialect,
    stack: &mut Vec<Vec<FullName>>,
) -> Result<(), EvalError> {
    match cond {
        Condition::True | Condition::False => Ok(()),
        Condition::Cmp { left, right, .. } | Condition::IsDistinct { left, right, .. } => {
            check_grouped_term(left, s, local_aliases, schema, dialect, stack)?;
            check_grouped_term(right, s, local_aliases, schema, dialect, stack)
        }
        Condition::Like { term, pattern, .. } => {
            check_grouped_term(term, s, local_aliases, schema, dialect, stack)?;
            check_grouped_term(pattern, s, local_aliases, schema, dialect, stack)
        }
        Condition::Pred { args, .. } => {
            for t in args {
                check_grouped_term(t, s, local_aliases, schema, dialect, stack)?;
            }
            Ok(())
        }
        Condition::IsNull { term, .. } => {
            check_grouped_term(term, s, local_aliases, schema, dialect, stack)
        }
        Condition::In { terms, query, .. } => {
            for t in terms {
                check_grouped_term(t, s, local_aliases, schema, dialect, stack)?;
            }
            // The subquery sees the key scope (pushed by the caller).
            check_rec(query, schema, dialect, stack, false)
        }
        Condition::Exists(query) => check_rec(query, schema, dialect, stack, true),
        Condition::And(a, b) | Condition::Or(a, b) => {
            check_grouped_condition(a, s, local_aliases, schema, dialect, stack)?;
            check_grouped_condition(b, s, local_aliases, schema, dialect, stack)
        }
        Condition::Not(c) => check_grouped_condition(c, s, local_aliases, schema, dialect, stack),
    }
}

fn check_condition(
    cond: &Condition,
    schema: &Schema,
    dialect: Dialect,
    stack: &mut Vec<Vec<FullName>>,
) -> Result<(), EvalError> {
    match cond {
        Condition::True | Condition::False => Ok(()),
        Condition::Cmp { left, right, .. } => {
            resolve_term(left, schema, dialect, stack)?;
            resolve_term(right, schema, dialect, stack)
        }
        Condition::Like { term, pattern, .. } => {
            resolve_term(term, schema, dialect, stack)?;
            resolve_term(pattern, schema, dialect, stack)
        }
        Condition::Pred { args, .. } => {
            for t in args {
                resolve_term(t, schema, dialect, stack)?;
            }
            Ok(())
        }
        Condition::IsNull { term, .. } => resolve_term(term, schema, dialect, stack),
        Condition::IsDistinct { left, right, .. } => {
            resolve_term(left, schema, dialect, stack)?;
            resolve_term(right, schema, dialect, stack)
        }
        Condition::In { terms, query, .. } => {
            for t in terms {
                resolve_term(t, schema, dialect, stack)?;
            }
            check_rec(query, schema, dialect, stack, false)
        }
        Condition::Exists(query) => check_rec(query, schema, dialect, stack, true),
        Condition::And(a, b) | Condition::Or(a, b) => {
            check_condition(a, schema, dialect, stack)?;
            check_condition(b, schema, dialect, stack)
        }
        Condition::Not(c) => check_condition(c, schema, dialect, stack),
    }
}

fn resolve_term(
    term: &Term,
    schema: &Schema,
    dialect: Dialect,
    stack: &mut Vec<Vec<FullName>>,
) -> Result<(), EvalError> {
    match term {
        Term::Const(_) => Ok(()),
        Term::Col(name) => resolve(name, stack),
        // Aggregates are only legal in the SELECT list / HAVING clause of
        // a grouped block, which `check_grouped_block` handles; any term
        // reaching this resolver is in a plain context.
        Term::Agg(_) => Err(EvalError::MisplacedAggregate("this context")),
        // CASE branch conditions are full conditions — they may nest
        // subqueries, which is why term resolution carries the schema.
        Term::Case { branches, else_ } => {
            for (cond, result) in branches {
                check_condition(cond, schema, dialect, stack)?;
                resolve_term(result, schema, dialect, stack)?;
            }
            match else_ {
                Some(e) => resolve_term(e, schema, dialect, stack),
                None => Ok(()),
            }
        }
        Term::Coalesce(terms) => {
            for t in terms {
                resolve_term(t, schema, dialect, stack)?;
            }
            Ok(())
        }
        Term::Nullif(a, b) => {
            resolve_term(a, schema, dialect, stack)?;
            resolve_term(b, schema, dialect, stack)
        }
    }
}

/// Resolves a full name against the scope stack, innermost scope first
/// (§3: "we first look for a match in the FROM clause of the local scope
/// …; if a match is not found, we look at the FROM clause of the innermost
/// scope in which the current one is nested, and so on").
fn resolve(name: &FullName, stack: &[Vec<FullName>]) -> Result<(), EvalError> {
    for scope in stack.iter().rev() {
        let occurrences = scope.iter().filter(|n| *n == name).count();
        match occurrences {
            0 => continue,
            1 => return Ok(()),
            _ => return Err(EvalError::AmbiguousReference(name.clone())),
        }
    }
    Err(EvalError::UnboundReference(name.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{FromItem, SelectQuery};
    use crate::name::Name;

    fn schema() -> Schema {
        Schema::builder().table("R", ["A"]).table("S", ["A", "B"]).build().unwrap()
    }

    /// `SELECT R.A AS A, R.A AS A2 FROM R AS R` — duplicates *data*, not
    /// names; always fine.
    fn dup_data() -> Query {
        Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A"), (Term::col("R", "A"), "A2")]),
            vec![FromItem::base("R", "R")],
        ))
    }

    /// `SELECT R.A AS A, R.A AS A FROM R AS R` — a subquery producing a
    /// table with the repeated column name `A` (Example 2's inner query).
    fn dup_columns() -> Query {
        Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A"), (Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ))
    }

    /// `SELECT * FROM (dup_columns) AS T` — Example 2, first query.
    fn example2_standalone() -> Query {
        Query::Select(SelectQuery::new(
            SelectList::Star,
            vec![FromItem::subquery(dup_columns(), "T")],
        ))
    }

    /// `SELECT * FROM R WHERE EXISTS (example2_standalone)` — Example 2,
    /// second query.
    fn example2_under_exists() -> Query {
        Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("R", "R")])
                .filter(Condition::exists(example2_standalone())),
        )
    }

    #[test]
    fn well_formed_queries_pass_all_dialects() {
        for d in Dialect::ALL {
            assert_eq!(check_query(&dup_data(), &schema(), d), Ok(()));
        }
    }

    #[test]
    fn ambiguous_star_rejected_on_oracle_accepted_on_postgres() {
        // Example 2: "This will be accepted by PostgreSQL, but it will
        // result in a compile-time error in some of the commercial
        // RDBMSs."
        let q = example2_standalone();
        assert!(check_query(&q, &schema(), Dialect::Oracle).unwrap_err().is_ambiguity());
        assert_eq!(check_query(&q, &schema(), Dialect::PostgreSql), Ok(()));
    }

    #[test]
    fn ambiguous_star_under_exists_accepted_everywhere() {
        // Example 2: "then suddenly it is fine, even with RDBMSs where
        // the subquery alone refused to compile."
        let q = example2_under_exists();
        for d in Dialect::ALL {
            assert_eq!(check_query(&q, &schema(), d), Ok(()), "dialect {d}");
        }
    }

    #[test]
    fn explicit_ambiguous_reference_rejected_everywhere() {
        // SELECT T.A AS X FROM (dup_columns) AS T — the reference T.A is
        // ambiguous no matter the dialect.
        let q = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("T", "A"), "X")]),
            vec![FromItem::subquery(dup_columns(), "T")],
        ));
        for d in [Dialect::PostgreSql, Dialect::Oracle] {
            assert!(check_query(&q, &schema(), d).unwrap_err().is_ambiguity(), "dialect {d}");
        }
    }

    #[test]
    fn unbound_reference_rejected() {
        let q = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("Z", "A"), "X")]),
            vec![FromItem::base("R", "R")],
        ));
        assert_eq!(
            check_query(&q, &schema(), Dialect::Oracle).unwrap_err(),
            EvalError::UnboundReference(FullName::new("Z", "A"))
        );
    }

    #[test]
    fn correlated_reference_resolves_outward() {
        // SELECT R.A AS A FROM R AS R WHERE EXISTS
        //   (SELECT S.A AS A FROM S AS S WHERE S.B = R.A)
        let inner = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("S", "A"), "A")]),
                vec![FromItem::base("S", "S")],
            )
            .filter(Condition::eq(Term::col("S", "B"), Term::col("R", "A"))),
        );
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::exists(inner)),
        );
        for d in Dialect::ALL {
            assert_eq!(check_query(&q, &schema(), d), Ok(()));
        }
    }

    #[test]
    fn from_subquery_cannot_see_sibling_scope() {
        // SELECT * FROM R AS R, (SELECT R.A AS X FROM S AS S) AS T:
        // the subquery's R.A is unbound (no LATERAL in the fragment).
        let sub = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "X")]),
            vec![FromItem::base("S", "S")],
        ));
        let q = Query::Select(SelectQuery::new(
            SelectList::Star,
            vec![FromItem::base("R", "R"), FromItem::subquery(sub, "T")],
        ));
        assert_eq!(
            check_query(&q, &schema(), Dialect::PostgreSql).unwrap_err(),
            EvalError::UnboundReference(FullName::new("R", "A"))
        );
    }

    #[test]
    fn local_scope_shadows_outer_unambiguously() {
        // Outer has T.A once; inner scope has T.A twice: the inner
        // reference is ambiguous even though an outer binding exists.
        let inner = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::Const(crate::Value::Int(1)), "X")]),
                vec![FromItem::subquery(dup_columns(), "T")],
            )
            .filter(Condition::is_null(Term::col("T", "A"))),
        );
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("T", "A"), "A")]),
                vec![FromItem::base("R", "T")],
            )
            .filter(Condition::exists(inner)),
        );
        assert!(check_query(&q, &schema(), Dialect::Oracle).unwrap_err().is_ambiguity());
    }

    #[test]
    fn grouped_blocks_obey_the_grouped_environment_typing() {
        use crate::ast::SelectItem;
        use crate::Value;
        let grouped = |items: Vec<SelectItem>, having: Condition| {
            Query::Select(
                SelectQuery::new(SelectList::Items(items), vec![FromItem::base("S", "S")])
                    .group_by([Term::col("S", "A")])
                    .having(having),
            )
        };
        // Keys and aggregates over any local column: fine.
        let ok = grouped(
            vec![
                SelectItem::new(Term::col("S", "A"), "k"),
                SelectItem::new(Term::agg(crate::AggFunc::Sum, Term::col("S", "B")), "s"),
            ],
            Condition::cmp(Term::count_star(), crate::CmpOp::Gt, Term::from(0i64)),
        );
        for d in [Dialect::PostgreSql, Dialect::Oracle] {
            assert_eq!(check_query(&ok, &schema(), d), Ok(()), "dialect {d}");
        }
        // A non-key local column outside an aggregate: rejected.
        let bad = grouped(vec![SelectItem::new(Term::col("S", "B"), "b")], Condition::True);
        assert!(matches!(
            check_query(&bad, &schema(), Dialect::PostgreSql).unwrap_err(),
            EvalError::UngroupedColumn(_)
        ));
        // An aggregate in WHERE: rejected.
        let bad = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("S", "A"), "A")]),
                vec![FromItem::base("S", "S")],
            )
            .filter(Condition::cmp(
                Term::count_star(),
                crate::CmpOp::Gt,
                Term::from(0i64),
            )),
        );
        assert!(matches!(
            check_query(&bad, &schema(), Dialect::Oracle).unwrap_err(),
            EvalError::MisplacedAggregate(_)
        ));
        // An aggregate as a GROUP BY key: rejected.
        let bad = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::Const(Value::Int(1)), "one")]),
                vec![FromItem::base("S", "S")],
            )
            .group_by([Term::count_star()]),
        );
        assert!(matches!(
            check_query(&bad, &schema(), Dialect::Oracle).unwrap_err(),
            EvalError::MisplacedAggregate(_)
        ));
        // SELECT * over groups: rejected.
        let bad = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("S", "S")])
                .group_by([Term::col("S", "A")]),
        );
        assert!(matches!(
            check_query(&bad, &schema(), Dialect::Oracle).unwrap_err(),
            EvalError::Malformed(_)
        ));
    }

    #[test]
    fn having_subqueries_see_the_key_scope_not_the_local_scope() {
        use crate::ast::SelectItem;
        // HAVING EXISTS (… WHERE R.A = S.A): S.A is a key, fine; S.B is
        // not a key, so the same reference to S.B is unbound (the grouped
        // environment binds only the keys).
        let sub = |col: &str| {
            Query::Select(
                SelectQuery::new(SelectList::Star, vec![FromItem::base("R", "R")])
                    .filter(Condition::eq(Term::col("R", "A"), Term::col("S", col))),
            )
        };
        let grouped = |col: &str| {
            Query::Select(
                SelectQuery::new(
                    SelectList::Items(vec![SelectItem::new(Term::col("S", "A"), "k")]),
                    vec![FromItem::base("S", "S")],
                )
                .group_by([Term::col("S", "A")])
                .having(Condition::exists(sub(col))),
            )
        };
        assert_eq!(check_query(&grouped("A"), &schema(), Dialect::Oracle), Ok(()));
        assert!(matches!(
            check_query(&grouped("B"), &schema(), Dialect::Oracle).unwrap_err(),
            EvalError::UnboundReference(_)
        ));
    }

    #[test]
    fn duplicate_aliases_rejected() {
        let q = Query::Select(SelectQuery::new(
            SelectList::Star,
            vec![FromItem::base("R", "T"), FromItem::base("S", "T")],
        ));
        assert_eq!(
            check_query(&q, &schema(), Dialect::PostgreSql).unwrap_err(),
            EvalError::DuplicateAlias(Name::new("T"))
        );
    }
}
