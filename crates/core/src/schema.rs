//! Schemas and databases (§2).
//!
//! A schema is a set of base-table names, each associated with a non-empty
//! tuple `ℓ(R)` of *distinct* attribute names; a database maps each base
//! table to a table of matching arity. Note the asymmetry the paper points
//! out: *base* tables cannot have repeated column names, but query outputs
//! can.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::EvalError;
use crate::index::{Index, IndexDef};
use crate::name::Name;
use crate::table::Table;

/// A database schema: an ordered collection of base-table declarations
/// `R(A₁, …, Aₙ)` with distinct attribute names.
///
/// ```
/// use sqlsem_core::Schema;
/// let schema = Schema::builder()
///     .table("R", ["A"])
///     .table("S", ["A", "B"])
///     .build()
///     .unwrap();
/// assert_eq!(schema.attributes("S").unwrap().len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    tables: Vec<(Name, Vec<Name>)>,
    index: HashMap<Name, usize>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder { tables: Vec::new() }
    }

    /// The attribute tuple `ℓ(R)` of a base table, if declared.
    pub fn attributes(&self, table: impl AsRef<str>) -> Option<&[Name]> {
        self.index.get(table.as_ref()).map(|&i| self.tables[i].1.as_slice())
    }

    /// `true` iff the schema declares a base table with this name.
    pub fn contains(&self, table: impl AsRef<str>) -> bool {
        self.index.contains_key(table.as_ref())
    }

    /// Iterates over the declarations in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &[Name])> {
        self.tables.iter().map(|(n, attrs)| (n, attrs.as_slice()))
    }

    /// The set of all column names of all base tables — the set `N_base`
    /// used when choosing the renaming `χ` in §5.
    pub fn all_attribute_names(&self) -> impl Iterator<Item = &Name> {
        self.tables.iter().flat_map(|(_, attrs)| attrs.iter())
    }

    /// Number of base tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` iff the schema declares no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// A copy of this schema extended with a new base table `name(attrs…)`
    /// (the schema-level half of `CREATE TABLE`). Fails if the table
    /// already exists or the attribute tuple is ill-formed.
    pub fn with_table<N, A, I>(&self, name: N, attrs: I) -> Result<Schema, SchemaError>
    where
        N: Into<Name>,
        A: Into<Name>,
        I: IntoIterator<Item = A>,
    {
        let mut builder = SchemaBuilder { tables: self.tables.clone() };
        builder = builder.table(name, attrs);
        builder.build()
    }

    /// A copy of this schema with base table `name` removed (the
    /// schema-level half of `DROP TABLE`). Fails if the table is not
    /// declared.
    pub fn without_table(&self, name: impl AsRef<str>) -> Result<Schema, SchemaError> {
        let name = name.as_ref();
        if !self.contains(name) {
            return Err(SchemaError::UnknownTable(Name::new(name)));
        }
        let tables: Vec<_> =
            self.tables.iter().filter(|(n, _)| n.as_str() != name).cloned().collect();
        SchemaBuilder { tables }.build()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, attrs)) in self.tables.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{name}(")?;
            for (j, a) in attrs.iter().enumerate() {
                if j > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{a}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// Builder for [`Schema`]; validation happens in [`SchemaBuilder::build`].
#[derive(Clone, Debug)]
pub struct SchemaBuilder {
    tables: Vec<(Name, Vec<Name>)>,
}

impl SchemaBuilder {
    /// Declares a base table `name(attrs…)`.
    pub fn table<N, A, I>(mut self, name: N, attrs: I) -> Self
    where
        N: Into<Name>,
        A: Into<Name>,
        I: IntoIterator<Item = A>,
    {
        self.tables.push((name.into(), attrs.into_iter().map(Into::into).collect()));
        self
    }

    /// Finishes the schema, checking that table names are unique and each
    /// attribute tuple is non-empty with distinct names (§2).
    pub fn build(self) -> Result<Schema, SchemaError> {
        let mut index = HashMap::with_capacity(self.tables.len());
        for (i, (name, attrs)) in self.tables.iter().enumerate() {
            if index.insert(name.clone(), i).is_some() {
                return Err(SchemaError::DuplicateTable(name.clone()));
            }
            if attrs.is_empty() {
                return Err(SchemaError::NoAttributes(name.clone()));
            }
            let mut seen = std::collections::HashSet::with_capacity(attrs.len());
            for a in attrs {
                if !seen.insert(a.clone()) {
                    return Err(SchemaError::DuplicateAttribute {
                        table: name.clone(),
                        attribute: a.clone(),
                    });
                }
            }
        }
        Ok(Schema { tables: self.tables, index })
    }
}

/// Errors raised when declaring or altering a schema.
///
/// `#[non_exhaustive]`: future DDL fragments will add error classes.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchemaError {
    /// Two base tables share a name.
    DuplicateTable(Name),
    /// A statement referred to a base table the schema does not declare
    /// (e.g. `DROP TABLE` on a missing table).
    UnknownTable(Name),
    /// A base table has repeated attribute names (§2 requires base-table
    /// attributes to be distinct).
    DuplicateAttribute {
        /// The table with the repetition.
        table: Name,
        /// The repeated attribute.
        attribute: Name,
    },
    /// A base table was declared with no attributes.
    NoAttributes(Name),
    /// An index referred to an attribute its table does not declare.
    UnknownAttribute {
        /// The table the index covers.
        table: Name,
        /// The attribute the table does not declare.
        attribute: Name,
    },
    /// Two indexes share a name.
    DuplicateIndex(Name),
    /// `DROP INDEX` on an index the database does not have.
    UnknownIndex(Name),
    /// An index was declared with no key columns.
    NoIndexColumns(Name),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateTable(t) => write!(f, "table {t} declared more than once"),
            SchemaError::UnknownTable(t) => write!(f, "table {t} does not exist"),
            SchemaError::DuplicateAttribute { table, attribute } => {
                write!(f, "table {table} declares attribute {attribute} more than once")
            }
            SchemaError::NoAttributes(t) => write!(f, "table {t} has no attributes"),
            SchemaError::UnknownAttribute { table, attribute } => {
                write!(f, "table {table} has no attribute {attribute}")
            }
            SchemaError::DuplicateIndex(i) => write!(f, "index {i} already exists"),
            SchemaError::UnknownIndex(i) => write!(f, "index {i} does not exist"),
            SchemaError::NoIndexColumns(i) => write!(f, "index {i} has no key columns"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// A database `D`: an instance assigning to each base table of a schema a
/// bag of records of matching arity.
///
/// Tables that have not been populated are implicitly empty. The stored
/// table's column names are always the schema's attribute names.
///
/// Stored tables are held behind [`Arc`], so cloning a database — the
/// snapshot-publication step of a shared, multi-session database — is
/// cheap: table contents are shared copy-on-write, and only a table the
/// clone subsequently mutates is deep-copied ([`Database::append_rows`]
/// reuses the buffer when it holds the only reference). Indexes are
/// cloned eagerly; they are derived state and typically far smaller
/// than the data.
///
/// ```
/// use sqlsem_core::{Database, Schema, Value, table};
/// let schema = Schema::builder().table("R", ["A"]).build().unwrap();
/// let mut db = Database::new(schema);
/// db.replace_table("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
/// assert_eq!(db.table("R").unwrap().len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Database {
    schema: Schema,
    tables: HashMap<Name, Arc<Table>>,
    /// Secondary indexes in creation order (deterministic, so the
    /// optimizer's index choice cannot depend on hash iteration).
    indexes: Vec<Index>,
}

impl Database {
    /// Creates a database over the schema with every base table empty.
    pub fn new(schema: Schema) -> Self {
        Database { schema, tables: HashMap::new(), indexes: Vec::new() }
    }

    /// The schema of the database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Replaces the contents of base table `name` wholesale (any
    /// previous rows are discarded) and rebuilds its indexes.
    ///
    /// The given table must have the arity the schema declares; its column
    /// names are replaced by the schema's attribute names. For the
    /// `INSERT INTO` behaviour — appending — use
    /// [`Database::append_rows`].
    pub fn replace_table(&mut self, name: impl Into<Name>, table: Table) -> Result<(), EvalError> {
        let name = name.into();
        let Some(attrs) = self.schema.attributes(&name) else {
            return Err(EvalError::UnknownTable(name));
        };
        if table.arity() != attrs.len() {
            return Err(EvalError::ArityMismatch {
                context: "database instance",
                left: attrs.len(),
                right: table.arity(),
            });
        }
        let table = table.with_columns(attrs.to_vec())?;
        for index in self.indexes.iter_mut().filter(|i| i.def().table == name) {
            index.rebuild(&table);
        }
        self.tables.insert(name, Arc::new(table));
        Ok(())
    }

    /// The interpretation `R^D` of a base table: its stored contents, or
    /// an empty table with the schema's columns if never populated.
    pub fn table(&self, name: impl AsRef<str>) -> Result<Table, EvalError> {
        let name = name.as_ref();
        if let Some(t) = self.tables.get(name) {
            return Ok(t.as_ref().clone());
        }
        match self.schema.attributes(name) {
            Some(attrs) => Table::new(attrs.to_vec()),
            None => Err(EvalError::UnknownTable(Name::new(name))),
        }
    }

    /// Borrowed view of a stored base table, if one was ever populated —
    /// the allocation-free variant of [`Database::table`] for executors
    /// that only need to read the rows (a never-populated table has no
    /// stored contents; fall back to [`Database::table`] for the empty
    /// instance or the unknown-table error).
    pub fn stored_table(&self, name: impl AsRef<str>) -> Option<&Table> {
        self.tables.get(name.as_ref()).map(Arc::as_ref)
    }

    /// `CREATE TABLE name(attrs…)`: extends the schema with a new, empty
    /// base table. Existing table contents are untouched.
    pub fn create_table<N, A, I>(&mut self, name: N, attrs: I) -> Result<(), SchemaError>
    where
        N: Into<Name>,
        A: Into<Name>,
        I: IntoIterator<Item = A>,
    {
        self.schema = self.schema.with_table(name, attrs)?;
        Ok(())
    }

    /// `DROP TABLE name`: removes the base table, its contents, and any
    /// indexes covering it.
    pub fn drop_table(&mut self, name: impl AsRef<str>) -> Result<(), SchemaError> {
        let name = name.as_ref();
        self.schema = self.schema.without_table(name)?;
        self.tables.remove(name);
        self.indexes.retain(|i| i.def().table.as_str() != name);
        Ok(())
    }

    /// `CREATE INDEX name ON table (columns…)`: declares a secondary
    /// index and builds it over the table's current contents. Fails
    /// without side effects if the name is taken, the table is unknown,
    /// or any key column is missing or repeated.
    pub fn create_index<N, T, A, I>(
        &mut self,
        name: N,
        table: T,
        columns: I,
    ) -> Result<(), SchemaError>
    where
        N: Into<Name>,
        T: Into<Name>,
        A: Into<Name>,
        I: IntoIterator<Item = A>,
    {
        let name = name.into();
        let table = table.into();
        let columns: Vec<Name> = columns.into_iter().map(Into::into).collect();
        if self.indexes.iter().any(|i| i.def().name == name) {
            return Err(SchemaError::DuplicateIndex(name));
        }
        let Some(attrs) = self.schema.attributes(&table) else {
            return Err(SchemaError::UnknownTable(table));
        };
        if columns.is_empty() {
            return Err(SchemaError::NoIndexColumns(name));
        }
        let mut cols = Vec::with_capacity(columns.len());
        let mut seen = std::collections::HashSet::with_capacity(columns.len());
        for c in &columns {
            let Some(pos) = attrs.iter().position(|a| a == c) else {
                return Err(SchemaError::UnknownAttribute { table, attribute: c.clone() });
            };
            if !seen.insert(pos) {
                return Err(SchemaError::DuplicateAttribute { table, attribute: c.clone() });
            }
            cols.push(pos);
        }
        let def = IndexDef { name, table: table.clone(), columns };
        let empty = Table::new(attrs.to_vec()).expect("schema attributes are well-formed");
        let contents = self.tables.get(&table).map_or(&empty, Arc::as_ref);
        self.indexes.push(Index::build(def, cols, contents));
        Ok(())
    }

    /// `DROP INDEX name`: removes a secondary index.
    pub fn drop_index(&mut self, name: impl AsRef<str>) -> Result<(), SchemaError> {
        let name = name.as_ref();
        let Some(pos) = self.indexes.iter().position(|i| i.def().name.as_str() == name) else {
            return Err(SchemaError::UnknownIndex(Name::new(name)));
        };
        self.indexes.remove(pos);
        Ok(())
    }

    /// The index of that name, if declared.
    pub fn index(&self, name: impl AsRef<str>) -> Option<&Index> {
        let name = name.as_ref();
        self.indexes.iter().find(|i| i.def().name.as_str() == name)
    }

    /// All indexes, in creation order.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// The indexes covering one base table, in creation order.
    pub fn indexes_on<'a>(&'a self, table: &'a str) -> impl Iterator<Item = &'a Index> {
        self.indexes.iter().filter(move |i| i.def().table.as_str() == table)
    }

    /// `INSERT INTO name VALUES …`: appends rows to a base table
    /// (unlike [`Database::replace_table`], which discards the previous
    /// contents). Returns the number of rows appended; fails without
    /// modifying the table if the name is unknown or any row has the
    /// wrong arity.
    pub fn append_rows<I>(&mut self, name: impl Into<Name>, rows: I) -> Result<usize, EvalError>
    where
        I: IntoIterator<Item = crate::row::Row>,
    {
        let name = name.into();
        let Some(attrs) = self.schema.attributes(&name) else {
            return Err(EvalError::UnknownTable(name));
        };
        let arity = attrs.len();
        let rows: Vec<_> = rows.into_iter().collect();
        for row in &rows {
            if row.arity() != arity {
                return Err(EvalError::RowArity { expected: arity, got: row.arity() });
            }
        }
        let count = rows.len();
        let table = match self.tables.remove(&name) {
            // Copy-on-write: reuse the buffer when this database holds
            // the only reference, deep-copy when snapshots share it.
            Some(t) => Arc::try_unwrap(t).unwrap_or_else(|shared| (*shared).clone()),
            None => Table::new(attrs.to_vec())?,
        };
        let mut all = table.into_rows();
        let first_id = all.len();
        for index in self.indexes.iter_mut().filter(|i| i.def().table == name) {
            for (offset, row) in rows.iter().enumerate() {
                index.note_row(first_id + offset, row);
            }
        }
        all.extend(rows);
        let columns = self.schema.attributes(&name).expect("checked above").to_vec();
        self.tables.insert(name, Arc::new(Table::with_rows(columns, all)?));
        Ok(count)
    }

    /// Total number of rows across all base tables (for experiment
    /// reporting).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{row, table};

    #[test]
    fn builder_validates_duplicate_tables() {
        let err = Schema::builder().table("R", ["A"]).table("R", ["B"]).build().unwrap_err();
        assert_eq!(err, SchemaError::DuplicateTable(Name::new("R")));
    }

    #[test]
    fn builder_validates_duplicate_attributes() {
        let err = Schema::builder().table("R", ["A", "A"]).build().unwrap_err();
        assert_eq!(
            err,
            SchemaError::DuplicateAttribute { table: Name::new("R"), attribute: Name::new("A") }
        );
    }

    #[test]
    fn builder_validates_empty_attributes() {
        let err = Schema::builder().table("R", Vec::<Name>::new()).build().unwrap_err();
        assert_eq!(err, SchemaError::NoAttributes(Name::new("R")));
    }

    #[test]
    fn attributes_lookup() {
        let s = Schema::builder().table("R", ["A", "B"]).build().unwrap();
        assert_eq!(s.attributes("R").unwrap(), &[Name::new("A"), Name::new("B")]);
        assert!(s.attributes("S").is_none());
        assert!(s.contains("R"));
        assert!(!s.contains("S"));
    }

    #[test]
    fn schema_display() {
        let s = Schema::builder().table("R", ["A"]).table("S", ["B", "C"]).build().unwrap();
        assert_eq!(s.to_string(), "R(A)\nS(B, C)");
    }

    #[test]
    fn unpopulated_tables_are_empty() {
        let s = Schema::builder().table("R", ["A"]).build().unwrap();
        let db = Database::new(s);
        let t = db.table("R").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.columns(), &[Name::new("A")]);
    }

    #[test]
    fn insert_checks_schema() {
        let s = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(s);
        assert!(matches!(
            db.replace_table("X", table! { ["A"]; [1] }).unwrap_err(),
            EvalError::UnknownTable(_)
        ));
        assert!(matches!(
            db.replace_table("R", table! { ["A", "B"]; [1, 2] }).unwrap_err(),
            EvalError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn cloned_databases_share_tables_until_one_appends() {
        let s = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(s);
        db.replace_table("R", table! { ["A"]; [1] }).unwrap();
        let snapshot = db.clone();
        // The clone shares the stored buffer (copy-on-write)…
        assert!(std::ptr::eq(
            db.stored_table("R").unwrap() as *const Table,
            snapshot.stored_table("R").unwrap() as *const Table,
        ));
        // …until the original appends, which copies; the snapshot is
        // unaffected.
        db.append_rows("R", vec![row![2]]).unwrap();
        assert_eq!(db.table("R").unwrap().len(), 2);
        assert_eq!(snapshot.table("R").unwrap().len(), 1);
    }

    #[test]
    fn insert_adopts_schema_column_names() {
        let s = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(s);
        db.replace_table("R", table! { ["anything"]; [7] }).unwrap();
        let t = db.table("R").unwrap();
        assert_eq!(t.columns(), &[Name::new("A")]);
        assert_eq!(t.multiplicity(&row![7]), 1);
    }

    #[test]
    fn create_drop_and_append() {
        let s = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(s);
        db.replace_table("R", table! { ["A"]; [1] }).unwrap();

        // CREATE TABLE S(B, C) leaves R's contents alone.
        db.create_table("S", ["B", "C"]).unwrap();
        assert!(db.schema().contains("S"));
        assert_eq!(db.table("R").unwrap().len(), 1);
        assert!(db.table("S").unwrap().is_empty());

        // Re-creating is an error; so is an ill-formed attribute tuple.
        assert_eq!(db.create_table("S", ["X"]), Err(SchemaError::DuplicateTable(Name::new("S"))));
        assert!(matches!(
            db.create_table("T", ["X", "X"]),
            Err(SchemaError::DuplicateAttribute { .. })
        ));

        // INSERT appends rather than replacing.
        assert_eq!(db.append_rows("R", vec![row![2], row![3]]).unwrap(), 2);
        assert_eq!(db.table("R").unwrap().len(), 3);
        // Arity is validated atomically: nothing is appended on error.
        assert!(matches!(
            db.append_rows("R", vec![row![4], row![5, 6]]),
            Err(EvalError::RowArity { expected: 1, got: 2 })
        ));
        assert_eq!(db.table("R").unwrap().len(), 3);
        assert!(matches!(db.append_rows("X", vec![row![1]]), Err(EvalError::UnknownTable(_))));

        // DROP TABLE removes declaration and contents.
        db.drop_table("R").unwrap();
        assert!(!db.schema().contains("R"));
        assert!(db.table("R").is_err());
        assert_eq!(db.drop_table("R"), Err(SchemaError::UnknownTable(Name::new("R"))));
    }

    #[test]
    fn schema_with_and_without_table() {
        let s = Schema::builder().table("R", ["A"]).build().unwrap();
        let s2 = s.with_table("S", ["B"]).unwrap();
        assert!(s2.contains("S") && s2.contains("R"));
        assert!(!s.contains("S"), "with_table must not mutate the original");
        let s3 = s2.without_table("R").unwrap();
        assert!(!s3.contains("R") && s3.contains("S"));
        assert!(matches!(s.without_table("Z"), Err(SchemaError::UnknownTable(_))));
    }

    #[test]
    fn total_rows_sums_tables() {
        let s = Schema::builder().table("R", ["A"]).table("S", ["B"]).build().unwrap();
        let mut db = Database::new(s);
        db.replace_table("R", table! { ["A"]; [1], [2] }).unwrap();
        db.replace_table("S", table! { ["B"]; [3] }).unwrap();
        assert_eq!(db.total_rows(), 3);
    }
}
