//! SQL's three truth values and the Kleene logic of Figure 1.
//!
//! SQL evaluates `WHERE` conditions in a three-valued logic (3VL) with
//! values *true* (`t`), *false* (`f`) and *unknown* (`u`); the connectives
//! `AND`, `OR`, `NOT` follow the Kleene truth tables reproduced below
//! (Figure 1 of the paper):
//!
//! ```text
//!  ∧ | t f u      ∨ | t f u      ¬ |
//!  --+------      --+------      --+--
//!  t | t f u      t | t t t      t | f
//!  f | f f f      f | t f u      f | t
//!  u | u f u      u | t u u      u | u
//! ```
//!
//! After evaluating the condition, SQL *conflates* `f` and `u`: only rows
//! whose condition is `t` are kept ([`Truth::is_true`]).

use std::fmt;
use std::ops;

/// A truth value of SQL's three-valued logic: `t`, `f` or `u`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Truth {
    /// The truth value *false* (`f`).
    False,
    /// The truth value *unknown* (`u`), produced by comparisons involving
    /// `NULL`.
    Unknown,
    /// The truth value *true* (`t`).
    True,
}

pub use Truth::{False, True, Unknown};

impl Truth {
    /// All three truth values, in the order `t`, `f`, `u` used by Figure 1.
    pub const ALL: [Truth; 3] = [True, False, Unknown];

    /// Kleene conjunction (`∧` table of Figure 1).
    #[must_use]
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Kleene disjunction (`∨` table of Figure 1).
    #[must_use]
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Kleene negation (`¬` table of Figure 1). The `std::ops::Not`
    /// impl delegates here; the inherent method reads better in the
    /// semantics code.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            True => False,
            False => True,
            Unknown => Unknown,
        }
    }

    /// `true` iff the value is `t`.
    ///
    /// This is the conflation SQL applies to `WHERE` results: `f` and `u`
    /// both discard the row.
    pub fn is_true(self) -> bool {
        self == True
    }

    /// `true` iff the value is `f`.
    pub fn is_false(self) -> bool {
        self == False
    }

    /// `true` iff the value is `u`.
    pub fn is_unknown(self) -> bool {
        self == Unknown
    }

    /// Injects a Boolean into 3VL (`true ↦ t`, `false ↦ f`).
    pub fn from_bool(b: bool) -> Truth {
        if b {
            True
        } else {
            False
        }
    }

    /// Kleene conjunction of all values in the iterator; `t` when empty
    /// (the unit of `∧`). Used for the tuple equality
    /// `(t₁,…,tₙ) = (t′₁,…,t′ₙ) = ⋀ᵢ tᵢ = t′ᵢ` of Figure 6.
    pub fn all(iter: impl IntoIterator<Item = Truth>) -> Truth {
        iter.into_iter().fold(True, Truth::and)
    }

    /// Kleene disjunction of all values in the iterator; `f` when empty
    /// (the unit of `∨`). Used for `IN`, which is the disjunction of the
    /// equalities with each row of the subquery result (Figure 6).
    pub fn any(iter: impl IntoIterator<Item = Truth>) -> Truth {
        iter.into_iter().fold(False, Truth::or)
    }

    /// Conflates `u` with `f`, yielding a Boolean — the passage from 3VL to
    /// the two-valued semantics of §6.
    pub fn conflate_unknown(self) -> bool {
        self.is_true()
    }

    /// The single-letter rendering used by Figure 1: `t`, `f` or `u`.
    pub fn letter(self) -> char {
        match self {
            True => 't',
            False => 'f',
            Unknown => 'u',
        }
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Self {
        Truth::from_bool(b)
    }
}

impl ops::BitAnd for Truth {
    type Output = Truth;
    fn bitand(self, rhs: Truth) -> Truth {
        self.and(rhs)
    }
}

impl ops::BitOr for Truth {
    type Output = Truth;
    fn bitor(self, rhs: Truth) -> Truth {
        self.or(rhs)
    }
}

impl ops::Not for Truth {
    type Output = Truth;
    fn not(self) -> Truth {
        Truth::not(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_matches_figure_1() {
        // Rows/columns in the order t, f, u exactly as printed in Figure 1.
        let expected = [[True, False, Unknown], [False, False, False], [Unknown, False, Unknown]];
        for (i, &a) in Truth::ALL.iter().enumerate() {
            for (j, &b) in Truth::ALL.iter().enumerate() {
                assert_eq!(a.and(b), expected[i][j], "{a} AND {b}");
            }
        }
    }

    #[test]
    fn disjunction_matches_figure_1() {
        let expected = [[True, True, True], [True, False, Unknown], [True, Unknown, Unknown]];
        for (i, &a) in Truth::ALL.iter().enumerate() {
            for (j, &b) in Truth::ALL.iter().enumerate() {
                assert_eq!(a.or(b), expected[i][j], "{a} OR {b}");
            }
        }
    }

    #[test]
    fn negation_matches_figure_1() {
        assert_eq!(True.not(), False);
        assert_eq!(False.not(), True);
        assert_eq!(Unknown.not(), Unknown);
    }

    #[test]
    fn conflation_keeps_only_true() {
        assert!(True.is_true());
        assert!(!False.is_true());
        assert!(!Unknown.is_true());
    }

    #[test]
    fn folds_have_correct_units() {
        assert_eq!(Truth::all([]), True);
        assert_eq!(Truth::any([]), False);
        assert_eq!(Truth::all([True, Unknown]), Unknown);
        assert_eq!(Truth::all([True, Unknown, False]), False);
        assert_eq!(Truth::any([False, Unknown]), Unknown);
        assert_eq!(Truth::any([False, Unknown, True]), True);
    }

    #[test]
    fn operators_delegate() {
        assert_eq!(True & Unknown, Unknown);
        assert_eq!(False | Unknown, Unknown);
        assert_eq!(!Unknown, Unknown);
    }

    #[test]
    fn display_uses_single_letters() {
        assert_eq!(True.to_string(), "t");
        assert_eq!(False.to_string(), "f");
        assert_eq!(Unknown.to_string(), "u");
    }
}
