//! Abstract syntax of basic SQL in fully annotated form (Figure 2).
//!
//! The paper assumes (§2, w.l.o.g.) that queries are given in a form where
//! every attribute reference is a *full name* `T.A`, every table or
//! subquery in `FROM` carries an explicit alias, and every `SELECT` item
//! carries an explicit output name. This module is the Rust rendering of
//! that annotated grammar:
//!
//! ```text
//! Q := SELECT [DISTINCT] α:β′ FROM τ:β WHERE θ
//!    | SELECT [DISTINCT] *    FROM τ:β WHERE θ
//!    | Q (UNION | INTERSECT | EXCEPT) [ALL] Q
//!
//! θ := TRUE | FALSE | P(t₁,…,tₖ) | t IS [NOT] NULL
//!    | t̄ [NOT] IN Q | EXISTS Q | θ AND θ | θ OR θ | NOT θ
//! ```
//!
//! Surface SQL (with unqualified names) is handled by the `sqlsem-parser`
//! crate, whose annotation pass produces values of these types.
//!
//! One extension beyond Figure 2 is included: a `FROM` item may rename the
//! columns of its table, `T AS N(A₁,…,Aₙ)`. The paper itself uses this
//! construct in the Figure 10 translation, so the fragment must contain it
//! for §6 to be self-contained.

use std::fmt;

use crate::name::{FullName, Name};
use crate::value::{CmpOp, Value};

/// The aggregate functions of the grouping fragment.
///
/// These are the five aggregates SQL:1992 makes mandatory and the ones
/// every TPC-H query uses; the fragment's null discipline is the
/// Standard's: aggregates skip `NULL` inputs, `COUNT` of an empty (or
/// all-`NULL`) collection is `0` while the other four are `NULL`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(t)` / `COUNT(*)` — the only aggregate that may take `*`.
    Count,
    /// `SUM(t)` over integers.
    Sum,
    /// `AVG(t)` — integer average, truncating towards zero (`SUM/COUNT`
    /// in `i64` arithmetic), mirroring integer `AVG` in SQL systems.
    Avg,
    /// `MIN(t)` under the type's order.
    Min,
    /// `MAX(t)` under the type's order.
    Max,
}

impl AggFunc {
    /// All aggregate functions.
    pub const ALL: [AggFunc; 5] =
        [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];

    /// The SQL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// The output name an unaliased aggregate gets in surface SQL
    /// (PostgreSQL's convention: the lowercase function name).
    pub fn default_alias(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// An aggregate application `F([DISTINCT] t)` or `COUNT(*)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Aggregate {
    /// Which function.
    pub func: AggFunc,
    /// `true` for `F(DISTINCT t)`: the collected non-`NULL` values are
    /// deduplicated (under syntactic value identity) before folding.
    pub distinct: bool,
    /// The argument term, evaluated once per group member; `None` is
    /// `COUNT(*)` (rows counted regardless of nulls) and is only valid
    /// for [`AggFunc::Count`].
    pub arg: Option<Term>,
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            None => write!(f, "{}(*)", self.func.keyword()),
            Some(t) => {
                write!(
                    f,
                    "{}({}{t})",
                    self.func.keyword(),
                    if self.distinct { "DISTINCT " } else { "" }
                )
            }
        }
    }
}

/// A term `t`: a constant from `C`, a full name (§2), an aggregate
/// application (grouping fragment), or a null combinator (`CASE`,
/// `COALESCE`, `NULLIF`).
///
/// `NULL` is represented as `Term::Const(Value::Null)`. Aggregate terms
/// are only meaningful in the `SELECT` list and `HAVING` clause of a
/// grouped block; everywhere else they are rejected
/// ([`crate::error::EvalError::MisplacedAggregate`]).
///
/// The null combinators are the idioms real queries use to work around
/// three-valued logic, and the constructs where the choice of logic mode
/// (§6) is most visible: a `CASE` branch whose condition evaluates to
/// *unknown* is **not taken** (unknown ≠ true), `COALESCE` yields the
/// first non-`NULL` operand, and `NULLIF(t₁, t₂)` yields `NULL` when the
/// two are equal *under the active logic mode's equality*.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A constant or `NULL`.
    Const(Value),
    /// A fully qualified column reference `T.A`.
    Col(FullName),
    /// An aggregate application `F([DISTINCT] t)` / `COUNT(*)`.
    Agg(Box<Aggregate>),
    /// A searched `CASE WHEN θ₁ THEN t₁ … [ELSE t] END`. Branches are
    /// tried in order; the first whose condition is *true* (not merely
    /// non-false) supplies the value. With no true branch the `ELSE`
    /// term applies; a missing `ELSE` yields `NULL` (SQL-92 §8.10's
    /// implicit `ELSE NULL`). The *simple* form
    /// `CASE t WHEN v₁ THEN t₁ … END` is surface syntax only: the
    /// parser desugars it to the searched form with `t = vᵢ`
    /// comparisons, which is exactly PostgreSQL's documented expansion.
    Case {
        /// The `WHEN θ THEN t` branches, in syntactic order (non-empty).
        branches: Vec<(Condition, Term)>,
        /// The `ELSE` term; `None` means the implicit `ELSE NULL`.
        else_: Option<Box<Term>>,
    },
    /// `COALESCE(t₁, …, tₙ)` — the first non-`NULL` operand, `NULL` if
    /// all are (n ≥ 1). Evaluation is lazy left to right: operands after
    /// the first non-`NULL` one are not evaluated, so their errors are
    /// not raised (matching `CASE WHEN t₁ IS NOT NULL THEN t₁ …`).
    Coalesce(Vec<Term>),
    /// `NULLIF(t₁, t₂)` — `NULL` when `t₁ = t₂` holds (under the active
    /// logic mode's equality), otherwise `t₁`.
    Nullif(Box<Term>, Box<Term>),
}

impl Term {
    /// Convenience constructor for a column reference.
    pub fn col(table: impl Into<Name>, column: impl Into<Name>) -> Term {
        Term::Col(FullName::new(table, column))
    }

    /// The `NULL` term.
    pub fn null() -> Term {
        Term::Const(Value::Null)
    }

    /// `COUNT(*)`.
    pub fn count_star() -> Term {
        Term::Agg(Box::new(Aggregate { func: AggFunc::Count, distinct: false, arg: None }))
    }

    /// `func(arg)`.
    pub fn agg(func: AggFunc, arg: impl Into<Term>) -> Term {
        Term::Agg(Box::new(Aggregate { func, distinct: false, arg: Some(arg.into()) }))
    }

    /// `func(DISTINCT arg)`.
    pub fn agg_distinct(func: AggFunc, arg: impl Into<Term>) -> Term {
        Term::Agg(Box::new(Aggregate { func, distinct: true, arg: Some(arg.into()) }))
    }

    /// A searched `CASE` with the given branches and optional `ELSE`.
    pub fn case<C, T, I>(branches: I, else_: Option<Term>) -> Term
    where
        C: Into<Condition>,
        T: Into<Term>,
        I: IntoIterator<Item = (C, T)>,
    {
        Term::Case {
            branches: branches.into_iter().map(|(c, t)| (c.into(), t.into())).collect(),
            else_: else_.map(Box::new),
        }
    }

    /// `COALESCE(terms…)`.
    pub fn coalesce<T: Into<Term>, I: IntoIterator<Item = T>>(terms: I) -> Term {
        Term::Coalesce(terms.into_iter().map(Into::into).collect())
    }

    /// `NULLIF(left, right)`.
    pub fn nullif(left: impl Into<Term>, right: impl Into<Term>) -> Term {
        Term::Nullif(Box::new(left.into()), Box::new(right.into()))
    }

    /// `true` iff the term is an aggregate application.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Term::Agg(_))
    }

    /// `true` iff an aggregate application occurs anywhere in the term —
    /// including inside `CASE`/`COALESCE`/`NULLIF`, whose presence makes
    /// a block implicitly grouped just like a top-level aggregate.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.visit_aggregates(&mut |_| found = true);
        found
    }

    /// Visits every aggregate application in the term, in syntactic
    /// order, descending into the null combinators (including branch
    /// conditions) but *not* into subqueries, whose aggregates belong to
    /// their own blocks.
    pub fn visit_aggregates<'a>(&'a self, f: &mut impl FnMut(&'a Aggregate)) {
        match self {
            Term::Const(_) | Term::Col(_) => {}
            Term::Agg(a) => f(a),
            Term::Case { branches, else_ } => {
                for (cond, term) in branches {
                    cond.visit_terms(&mut |t| t.visit_aggregates(f));
                    term.visit_aggregates(f);
                }
                if let Some(e) = else_ {
                    e.visit_aggregates(f);
                }
            }
            Term::Coalesce(terms) => terms.iter().for_each(|t| t.visit_aggregates(f)),
            Term::Nullif(a, b) => {
                a.visit_aggregates(f);
                b.visit_aggregates(f);
            }
        }
    }

    /// Visits every full name the term mentions, descending into
    /// aggregate arguments and the null combinators (including `CASE`
    /// branch conditions, but not subqueries) — the walker behind name
    /// collection in the translation crates.
    pub fn visit_columns(&self, f: &mut impl FnMut(&FullName)) {
        match self {
            Term::Const(_) => {}
            Term::Col(n) => f(n),
            Term::Agg(a) => {
                if let Some(arg) = &a.arg {
                    arg.visit_columns(f);
                }
            }
            Term::Case { branches, else_ } => {
                for (cond, term) in branches {
                    cond.visit_terms(&mut |t| t.visit_columns(f));
                    term.visit_columns(f);
                }
                if let Some(e) = else_ {
                    e.visit_columns(f);
                }
            }
            Term::Coalesce(terms) => terms.iter().for_each(|t| t.visit_columns(f)),
            Term::Nullif(a, b) => {
                a.visit_columns(f);
                b.visit_columns(f);
            }
        }
    }

    /// Visits every query nested in the term (via `CASE` branch
    /// conditions, which may contain `IN`/`EXISTS`), outermost first.
    pub fn visit_queries(&self, f: &mut impl FnMut(&Query)) {
        match self {
            Term::Const(_) | Term::Col(_) => {}
            Term::Agg(a) => {
                if let Some(arg) = &a.arg {
                    arg.visit_queries(f);
                }
            }
            Term::Case { branches, else_ } => {
                for (cond, term) in branches {
                    cond.visit_queries(f);
                    term.visit_queries(f);
                }
                if let Some(e) = else_ {
                    e.visit_queries(f);
                }
            }
            Term::Coalesce(terms) => terms.iter().for_each(|t| t.visit_queries(f)),
            Term::Nullif(a, b) => {
                a.visit_queries(f);
                b.visit_queries(f);
            }
        }
    }

    /// `true` iff the term is a (full-)name reference rather than a
    /// constant — the `names(·)` filter used when computing parameters in
    /// §5.
    pub fn is_name(&self) -> bool {
        matches!(self, Term::Col(_))
    }

    /// The full name, if the term is a column reference.
    pub fn as_col(&self) -> Option<&FullName> {
        match self {
            Term::Col(n) => Some(n),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Col(n) => write!(f, "{n}"),
            Term::Agg(a) => write!(f, "{a}"),
            Term::Case { branches, else_ } => {
                f.write_str("CASE")?;
                for (cond, term) in branches {
                    write!(f, " WHEN {cond} THEN {term}")?;
                }
                if let Some(e) = else_ {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Term::Coalesce(terms) => {
                f.write_str("COALESCE(")?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                f.write_str(")")
            }
            Term::Nullif(a, b) => write!(f, "NULLIF({a}, {b})"),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

impl From<FullName> for Term {
    fn from(n: FullName) -> Self {
        Term::Col(n)
    }
}

impl From<i64> for Term {
    fn from(n: i64) -> Self {
        Term::Const(Value::Int(n))
    }
}

/// One item of an explicit `SELECT` list: `t AS N′`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SelectItem {
    /// The term being output.
    pub term: Term,
    /// The output column name `N′` (an element of `β′`).
    pub alias: Name,
}

impl SelectItem {
    /// Creates `term AS alias`.
    pub fn new(term: impl Into<Term>, alias: impl Into<Name>) -> Self {
        SelectItem { term: term.into(), alias: alias.into() }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} AS {}", self.term, self.alias)
    }
}

/// The `SELECT` list: either `*` or an explicit list `α:β′`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SelectList {
    /// `SELECT *` — whose meaning depends on the context (§3): expanded to
    /// the full names of the local scope, or replaced by an arbitrary
    /// constant when the query is directly under `EXISTS`.
    Star,
    /// An explicit list `t₁ AS N′₁, …, tₘ AS N′ₘ` (m > 0).
    Items(Vec<SelectItem>),
}

impl SelectList {
    /// Builds an explicit list from `(term, alias)` pairs.
    pub fn items<T, N, I>(pairs: I) -> SelectList
    where
        T: Into<Term>,
        N: Into<Name>,
        I: IntoIterator<Item = (T, N)>,
    {
        SelectList::Items(pairs.into_iter().map(|(t, n)| SelectItem::new(t, n)).collect())
    }

    /// `true` iff the list is `*`.
    pub fn is_star(&self) -> bool {
        matches!(self, SelectList::Star)
    }
}

/// A reference to a table: either a base table name or a subquery (the
/// `T` of the paper's conventions).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TableRef {
    /// A base table `R`.
    Base(Name),
    /// A parenthesised subquery.
    Query(Box<Query>),
}

/// One item of a `FROM` clause: `T AS N` or `T AS N(A₁,…,Aₙ)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FromItem {
    /// The table being aliased.
    pub table: TableRef,
    /// The alias `N` (an element of `β`).
    pub alias: Name,
    /// Optional column renaming `(A₁,…,Aₙ)`; used by the Figure 10
    /// translation. `None` means the columns keep the table's own names.
    pub columns: Option<Vec<Name>>,
}

impl FromItem {
    /// Aliases a base table: `R AS alias`.
    pub fn base(table: impl Into<Name>, alias: impl Into<Name>) -> Self {
        FromItem { table: TableRef::Base(table.into()), alias: alias.into(), columns: None }
    }

    /// Aliases a subquery: `(Q) AS alias`.
    pub fn subquery(query: Query, alias: impl Into<Name>) -> Self {
        FromItem { table: TableRef::Query(Box::new(query)), alias: alias.into(), columns: None }
    }

    /// Adds a column renaming: `… AS alias(columns…)`.
    #[must_use]
    pub fn with_columns<N: Into<Name>, I: IntoIterator<Item = N>>(mut self, columns: I) -> Self {
        self.columns = Some(columns.into_iter().map(Into::into).collect());
        self
    }
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            TableRef::Base(r) => write!(f, "{r}")?,
            TableRef::Query(q) => write!(f, "({q})")?,
        }
        write!(f, " AS {}", self.alias)?;
        if let Some(cols) = &self.columns {
            f.write_str("(")?;
            for (j, c) in cols.iter().enumerate() {
                if j > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{c}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// The outer-join kinds. (`INNER JOIN … ON θ` is expressible in the
/// base fragment as a product plus a `WHERE` conjunct, so only the
/// outer kinds — the ones whose null-padding the base fragment cannot
/// express — are modelled as join operators.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// `LEFT [OUTER] JOIN`: every left row survives; those with no
    /// match are padded with `NULL`s on the right.
    Left,
    /// `RIGHT [OUTER] JOIN`: every right row survives; those with no
    /// match are padded with `NULL`s on the left.
    Right,
    /// `FULL [OUTER] JOIN`: unmatched rows of *both* sides survive,
    /// padded on the opposite side.
    Full,
}

impl JoinKind {
    /// All join kinds.
    pub const ALL: [JoinKind; 3] = [JoinKind::Left, JoinKind::Right, JoinKind::Full];

    /// The SQL keyword (without the optional `OUTER`).
    pub fn keyword(self) -> &'static str {
        match self {
            JoinKind::Left => "LEFT",
            JoinKind::Right => "RIGHT",
            JoinKind::Full => "FULL",
        }
    }

    /// `true` iff unmatched *left* rows survive (LEFT and FULL).
    pub fn keeps_left(self) -> bool {
        matches!(self, JoinKind::Left | JoinKind::Full)
    }

    /// `true` iff unmatched *right* rows survive (RIGHT and FULL).
    pub fn keeps_right(self) -> bool {
        matches!(self, JoinKind::Right | JoinKind::Full)
    }
}

/// One element of a `FROM` clause: a plain item, or an outer-join tree
/// `τ₁ (LEFT|RIGHT|FULL) [OUTER] JOIN τ₂ ON θ` over items.
///
/// The join result's columns are the left operand's followed by the
/// right operand's, each keeping its own alias qualification — a join
/// introduces **no** new alias, exactly as in SQL. The `ON` condition
/// is evaluated under the combined scope of the two operands (plus any
/// enclosing scopes), per the active logic mode; a joined pair is kept
/// iff the condition is *true*.
///
/// The dangling-tuple rule follows Ricciotti & Cheney's formalization
/// ("A Formalization of SQL with Nulls"): a left row is *dangling* iff
/// **no** right row makes the condition true — conditions evaluating to
/// *unknown* do not match, but they also do not stop the row from being
/// padded. Dangling rows are emitted once, padded with `NULL`s on the
/// deficient side.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum FromExpr {
    /// A plain `FROM` item `T AS N`.
    Item(FromItem),
    /// An outer join of two `FROM` expressions.
    Join {
        /// Which outer join.
        kind: JoinKind,
        /// The left operand.
        left: Box<FromExpr>,
        /// The right operand.
        right: Box<FromExpr>,
        /// The `ON` condition θ.
        on: Box<Condition>,
    },
}

impl FromExpr {
    /// `left kind OUTER JOIN right ON on`.
    pub fn join(
        kind: JoinKind,
        left: impl Into<FromExpr>,
        right: impl Into<FromExpr>,
        on: Condition,
    ) -> FromExpr {
        FromExpr::Join {
            kind,
            left: Box::new(left.into()),
            right: Box::new(right.into()),
            on: Box::new(on),
        }
    }

    /// The leaf `FROM` items of the expression, left to right — the
    /// order their columns are concatenated in.
    pub fn leaves(&self) -> Vec<&FromItem> {
        let mut out = Vec::new();
        self.visit_items(&mut |item| out.push(item));
        out
    }

    /// Visits every leaf `FROM` item, left to right.
    pub fn visit_items<'a>(&'a self, f: &mut impl FnMut(&'a FromItem)) {
        match self {
            FromExpr::Item(item) => f(item),
            FromExpr::Join { left, right, .. } => {
                left.visit_items(f);
                right.visit_items(f);
            }
        }
    }

    /// Visits every query nested in the expression — leaf subqueries and
    /// queries inside `ON` conditions — outermost first.
    pub fn visit_queries(&self, f: &mut impl FnMut(&Query)) {
        match self {
            FromExpr::Item(item) => {
                if let TableRef::Query(q) = &item.table {
                    q.visit(f);
                }
            }
            FromExpr::Join { left, right, on, .. } => {
                left.visit_queries(f);
                right.visit_queries(f);
                on.visit_queries(f);
            }
        }
    }
}

impl From<FromItem> for FromExpr {
    fn from(item: FromItem) -> Self {
        FromExpr::Item(item)
    }
}

impl fmt::Display for FromExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromExpr::Item(item) => write!(f, "{item}"),
            FromExpr::Join { kind, left, right, on } => {
                write!(f, "{left} {} OUTER JOIN ", kind.keyword())?;
                // A right-nested join operand needs parentheses: the
                // parser associates join chains to the left.
                match &**right {
                    FromExpr::Join { .. } => write!(f, "({right})")?,
                    FromExpr::Item(_) => write!(f, "{right}")?,
                }
                write!(f, " ON {on}")
            }
        }
    }
}

/// The set operations of Figure 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SetOp {
    /// `UNION [ALL]`
    Union,
    /// `INTERSECT [ALL]`
    Intersect,
    /// `EXCEPT [ALL]` (`MINUS` in Oracle's surface syntax)
    Except,
}

impl SetOp {
    /// The Standard keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            SetOp::Union => "UNION",
            SetOp::Intersect => "INTERSECT",
            SetOp::Except => "EXCEPT",
        }
    }
}

/// One key of an `ORDER BY` clause: `N [ASC|DESC] [NULLS FIRST|LAST]`.
///
/// Ordering is the one construct of the fragment whose meaning is
/// *list*-valued, so — following SQL-92 — its keys reference **output
/// columns** of the block (the names of `ℓ(Q)`), not arbitrary terms of
/// the scope. A key whose name does not label any output column is
/// unbound; one labelling several output columns is ambiguous (the
/// repeated-output-name situation of Example 2, transported to `ORDER
/// BY`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct OrderKey {
    /// The output column the key sorts by.
    pub column: Name,
    /// `true` for `DESC`.
    pub desc: bool,
    /// Explicit `NULLS FIRST` (`Some(true)`) / `NULLS LAST`
    /// (`Some(false)`); `None` when unwritten, which means **NULLS
    /// LAST** in this fragment regardless of direction (the Standard
    /// leaves the default implementation-defined; fixing one keeps the
    /// list semantics a function of the query alone).
    pub nulls_first: Option<bool>,
}

impl OrderKey {
    /// An ascending key with the default `NULL` placement.
    pub fn asc(column: impl Into<Name>) -> OrderKey {
        OrderKey { column: column.into(), desc: false, nulls_first: None }
    }

    /// A descending key with the default `NULL` placement.
    pub fn desc(column: impl Into<Name>) -> OrderKey {
        OrderKey { column: column.into(), desc: true, nulls_first: None }
    }

    /// Overrides the `NULL` placement.
    #[must_use]
    pub fn nulls_first(mut self, first: bool) -> OrderKey {
        self.nulls_first = Some(first);
        self
    }

    /// The placement actually used: explicit override, or the fragment's
    /// NULLS-last default.
    pub fn nulls_first_effective(&self) -> bool {
        self.nulls_first.unwrap_or(false)
    }
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.column)?;
        if self.desc {
            f.write_str(" DESC")?;
        }
        match self.nulls_first {
            Some(true) => f.write_str(" NULLS FIRST"),
            Some(false) => f.write_str(" NULLS LAST"),
            None => Ok(()),
        }
    }
}

impl From<Name> for OrderKey {
    fn from(column: Name) -> Self {
        OrderKey::asc(column)
    }
}

impl From<&str> for OrderKey {
    fn from(column: &str) -> Self {
        OrderKey::asc(column)
    }
}

/// A `SELECT`-`FROM`-`WHERE` block, optionally grouped
/// (`GROUP BY`/`HAVING`/aggregates) and optionally ordered/limited
/// (`ORDER BY`/`LIMIT`/`OFFSET`, the list-valued extension).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SelectQuery {
    /// Whether `DISTINCT` duplicate elimination is applied.
    pub distinct: bool,
    /// The `SELECT` list (`*` or `α:β′`).
    pub select: SelectList,
    /// The `FROM` clause `τ:β` (non-empty, k > 0): a comma list of
    /// items and/or outer-join trees.
    pub from: Vec<FromExpr>,
    /// The `WHERE` condition θ (`TRUE` when absent in surface syntax).
    pub where_: Condition,
    /// The `GROUP BY` keys (empty when the clause is absent). Keys
    /// compare null-safely: `NULL` keys form one group.
    pub group_by: Vec<Term>,
    /// The `HAVING` condition (`TRUE` when absent), evaluated once per
    /// group under the grouped environment (group keys + aggregates).
    pub having: Condition,
    /// The `ORDER BY` keys (empty when the clause is absent). Applied
    /// *after* projection and `DISTINCT`: the bag result becomes a list,
    /// stably sorted by the keys (ties keep the bag's deterministic
    /// production order).
    pub order_by: Vec<OrderKey>,
    /// `LIMIT n` / `FETCH FIRST n ROWS ONLY`: keep at most `n` rows of
    /// the (ordered) list. `None` when absent.
    pub limit: Option<u64>,
    /// `OFFSET m [ROWS]`: skip the first `m` rows of the (ordered) list
    /// before applying `limit`. An offset past the end yields the empty
    /// list. `None` when absent (`Some(0)` round-trips an explicit
    /// `OFFSET 0`).
    pub offset: Option<u64>,
}

impl SelectQuery {
    /// Creates a plain `SELECT … FROM … WHERE TRUE` block. The `FROM`
    /// elements may be given as [`FromItem`]s or [`FromExpr`]s.
    pub fn new<F: Into<FromExpr>, I: IntoIterator<Item = F>>(select: SelectList, from: I) -> Self {
        SelectQuery {
            distinct: false,
            select,
            from: from.into_iter().map(Into::into).collect(),
            where_: Condition::True,
            group_by: Vec::new(),
            having: Condition::True,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// Sets the `WHERE` condition.
    #[must_use]
    pub fn filter(mut self, cond: Condition) -> Self {
        self.where_ = cond;
        self
    }

    /// Turns on `DISTINCT`.
    #[must_use]
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Sets the `GROUP BY` keys.
    #[must_use]
    pub fn group_by<T: Into<Term>, I: IntoIterator<Item = T>>(mut self, keys: I) -> Self {
        self.group_by = keys.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the `HAVING` condition.
    #[must_use]
    pub fn having(mut self, cond: Condition) -> Self {
        self.having = cond;
        self
    }

    /// Sets the `ORDER BY` keys.
    #[must_use]
    pub fn order_by<K: Into<OrderKey>, I: IntoIterator<Item = K>>(mut self, keys: I) -> Self {
        self.order_by = keys.into_iter().map(Into::into).collect();
        self
    }

    /// Sets `LIMIT n`.
    #[must_use]
    pub fn limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Sets `OFFSET m`.
    #[must_use]
    pub fn offset(mut self, m: u64) -> Self {
        self.offset = Some(m);
        self
    }

    /// `true` iff the block carries any part of the ordering fragment —
    /// an `ORDER BY` clause, a `LIMIT`, or an `OFFSET` — and its result
    /// is therefore list-valued.
    pub fn is_ordered(&self) -> bool {
        !self.order_by.is_empty() || self.limit.is_some() || self.offset.is_some()
    }

    /// `true` iff the block is evaluated with grouping semantics: it has
    /// `GROUP BY` keys, a `HAVING` clause, or an aggregate in its
    /// `SELECT` list (implicit single-group aggregation, as in
    /// `SELECT COUNT(*) FROM R`).
    pub fn is_grouped(&self) -> bool {
        if !self.group_by.is_empty() || self.having != Condition::True {
            return true;
        }
        match &self.select {
            SelectList::Star => false,
            SelectList::Items(items) => items.iter().any(|i| i.term.contains_aggregate()),
        }
    }

    /// The aggregates of this block's `SELECT` list and `HAVING` clause,
    /// in syntactic order with duplicates removed — including aggregates
    /// nested inside `CASE`/`COALESCE`/`NULLIF`. Subqueries are *not*
    /// descended into: their aggregates belong to their own blocks.
    pub fn aggregates(&self) -> Vec<&Aggregate> {
        let mut out: Vec<&Aggregate> = Vec::new();
        // Quadratic dedup is fine: blocks have a handful of aggregates.
        let mut push = |a| {
            if !out.contains(&a) {
                out.push(a);
            }
        };
        if let SelectList::Items(items) = &self.select {
            for item in items {
                item.term.visit_aggregates(&mut push);
            }
        }
        self.having.visit_terms(&mut |t| t.visit_aggregates(&mut push));
        out
    }
}

/// A basic SQL query (Figure 2).
// A `SELECT` block is stored inline: queries are overwhelmingly blocks,
// so boxing them to shrink the `SetOp` variant would pessimise the
// common case.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Query {
    /// A `SELECT`-`FROM`-`WHERE` block.
    Select(SelectQuery),
    /// A set operation between two queries.
    SetOp {
        /// Which operation.
        op: SetOp,
        /// `true` for the bag (`ALL`) flavour.
        all: bool,
        /// Left operand.
        left: Box<Query>,
        /// Right operand.
        right: Box<Query>,
    },
}

impl Query {
    /// Wraps a block as a query.
    pub fn select(q: SelectQuery) -> Query {
        Query::Select(q)
    }

    /// `self UNION [ALL] other`.
    #[must_use]
    pub fn union(self, other: Query, all: bool) -> Query {
        Query::SetOp { op: SetOp::Union, all, left: Box::new(self), right: Box::new(other) }
    }

    /// `self INTERSECT [ALL] other`.
    #[must_use]
    pub fn intersect(self, other: Query, all: bool) -> Query {
        Query::SetOp { op: SetOp::Intersect, all, left: Box::new(self), right: Box::new(other) }
    }

    /// `self EXCEPT [ALL] other`.
    #[must_use]
    pub fn except(self, other: Query, all: bool) -> Query {
        Query::SetOp { op: SetOp::Except, all, left: Box::new(self), right: Box::new(other) }
    }

    /// Visits this query and every subquery (in `FROM` — including `ON`
    /// conditions — in the `SELECT` list and `GROUP BY` keys via `CASE`
    /// branches, and in conditions), outermost first.
    pub fn visit(&self, f: &mut impl FnMut(&Query)) {
        f(self);
        match self {
            Query::Select(s) => {
                for fe in &s.from {
                    fe.visit_queries(f);
                }
                if let SelectList::Items(items) = &s.select {
                    for item in items {
                        item.term.visit_queries(f);
                    }
                }
                for key in &s.group_by {
                    key.visit_queries(f);
                }
                s.where_.visit_queries(f);
                s.having.visit_queries(f);
            }
            Query::SetOp { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
        }
    }

    /// Number of `SELECT` blocks and set operations in the query — a crude
    /// size measure used by the generators and experiment reports.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

/// A condition θ (Figure 2).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Condition {
    /// The constant condition `TRUE`.
    True,
    /// The constant condition `FALSE`.
    False,
    /// A built-in comparison `t₁ op t₂` — the always-available predicates
    /// of the collection `P` (equality plus the order comparisons).
    Cmp {
        /// Left term.
        left: Term,
        /// Comparison operator.
        op: CmpOp,
        /// Right term.
        right: Term,
    },
    /// `t [NOT] LIKE pattern` — the paper's example of a type-specific
    /// string predicate in `P`.
    Like {
        /// The string being matched.
        term: Term,
        /// The pattern (with `%` and `_`).
        pattern: Term,
        /// `true` for `NOT LIKE`.
        negated: bool,
    },
    /// An application `P(t₁,…,tₖ)` of a user-registered predicate from the
    /// collection `P` (§2 parameterises the fragment by `P`).
    Pred {
        /// The predicate name, resolved in the evaluator's registry.
        name: String,
        /// Argument terms.
        args: Vec<Term>,
    },
    /// `t IS [NOT] NULL`.
    IsNull {
        /// The term being tested.
        term: Term,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
    /// `t₁ IS [NOT] DISTINCT FROM t₂` — standard SQL's spelling of
    /// (the negation of) the paper's *syntactic equality* `≐`
    /// (Definition 2): always two-valued, with `NULL` not distinct from
    /// `NULL`. An extension beyond Figure 2, expressible in the
    /// fragment (Definition 2 shows the encoding), included because it
    /// ties `≐` to real SQL surface syntax.
    IsDistinct {
        /// Left term.
        left: Term,
        /// Right term.
        right: Term,
        /// `true` for `IS NOT DISTINCT FROM` (i.e. the test is `≐`).
        negated: bool,
    },
    /// `t̄ [NOT] IN Q`.
    In {
        /// The tuple of terms `t̄` (non-empty).
        terms: Vec<Term>,
        /// The subquery.
        query: Box<Query>,
        /// `true` for `NOT IN`.
        negated: bool,
    },
    /// `EXISTS Q`.
    Exists(Box<Query>),
    /// `θ AND θ`.
    And(Box<Condition>, Box<Condition>),
    /// `θ OR θ`.
    Or(Box<Condition>, Box<Condition>),
    /// `NOT θ`.
    Not(Box<Condition>),
}

impl Condition {
    /// `left op right`.
    pub fn cmp(left: impl Into<Term>, op: CmpOp, right: impl Into<Term>) -> Condition {
        Condition::Cmp { left: left.into(), op, right: right.into() }
    }

    /// `left = right`.
    pub fn eq(left: impl Into<Term>, right: impl Into<Term>) -> Condition {
        Condition::cmp(left, CmpOp::Eq, right)
    }

    /// `term IS NULL`.
    pub fn is_null(term: impl Into<Term>) -> Condition {
        Condition::IsNull { term: term.into(), negated: false }
    }

    /// `term IS NOT NULL`.
    pub fn is_not_null(term: impl Into<Term>) -> Condition {
        Condition::IsNull { term: term.into(), negated: true }
    }

    /// `left IS NOT DISTINCT FROM right` — syntactic equality `≐`.
    pub fn not_distinct(left: impl Into<Term>, right: impl Into<Term>) -> Condition {
        Condition::IsDistinct { left: left.into(), right: right.into(), negated: true }
    }

    /// `left IS DISTINCT FROM right`.
    pub fn distinct_from(left: impl Into<Term>, right: impl Into<Term>) -> Condition {
        Condition::IsDistinct { left: left.into(), right: right.into(), negated: false }
    }

    /// `t̄ IN (query)`.
    pub fn in_query<T: Into<Term>, I: IntoIterator<Item = T>>(terms: I, query: Query) -> Condition {
        Condition::In {
            terms: terms.into_iter().map(Into::into).collect(),
            query: Box::new(query),
            negated: false,
        }
    }

    /// `t̄ NOT IN (query)`.
    pub fn not_in<T: Into<Term>, I: IntoIterator<Item = T>>(terms: I, query: Query) -> Condition {
        Condition::In {
            terms: terms.into_iter().map(Into::into).collect(),
            query: Box::new(query),
            negated: true,
        }
    }

    /// `EXISTS (query)`.
    pub fn exists(query: Query) -> Condition {
        Condition::Exists(Box::new(query))
    }

    /// `self AND other`.
    #[must_use]
    pub fn and(self, other: Condition) -> Condition {
        Condition::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    #[must_use]
    pub fn or(self, other: Condition) -> Condition {
        Condition::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Condition {
        Condition::Not(Box::new(self))
    }

    /// Conjunction of all conditions in the iterator; `TRUE` when empty.
    pub fn all(conds: impl IntoIterator<Item = Condition>) -> Condition {
        let mut iter = conds.into_iter();
        match iter.next() {
            None => Condition::True,
            Some(first) => iter.fold(first, Condition::and),
        }
    }

    /// Disjunction of all conditions in the iterator; `FALSE` when empty.
    pub fn any(conds: impl IntoIterator<Item = Condition>) -> Condition {
        let mut iter = conds.into_iter();
        match iter.next() {
            None => Condition::False,
            Some(first) => iter.fold(first, Condition::or),
        }
    }

    /// Visits every query nested in the condition — in `IN`/`EXISTS`
    /// and inside the condition's terms (via `CASE` branch conditions)
    /// — outermost first.
    pub fn visit_queries(&self, f: &mut impl FnMut(&Query)) {
        match self {
            Condition::In { terms, query, .. } => {
                terms.iter().for_each(|t| t.visit_queries(f));
                query.visit(f);
            }
            Condition::Exists(query) => query.visit(f),
            Condition::And(a, b) | Condition::Or(a, b) => {
                a.visit_queries(f);
                b.visit_queries(f);
            }
            Condition::Not(c) => c.visit_queries(f),
            Condition::True | Condition::False => {}
            Condition::Cmp { left, right, .. } | Condition::IsDistinct { left, right, .. } => {
                left.visit_queries(f);
                right.visit_queries(f);
            }
            Condition::Like { term, pattern, .. } => {
                term.visit_queries(f);
                pattern.visit_queries(f);
            }
            Condition::Pred { args, .. } => args.iter().for_each(|t| t.visit_queries(f)),
            Condition::IsNull { term, .. } => term.visit_queries(f),
        }
    }

    /// Visits every term of the condition — comparison operands,
    /// predicate arguments, null-test subjects, `IN` members — *without*
    /// descending into subqueries (whose terms belong to their own
    /// blocks). The walker behind aggregate collection and name
    /// gathering; pair with [`Term::visit_columns`] to reach names
    /// inside aggregate arguments.
    pub fn visit_terms<'a>(&'a self, f: &mut impl FnMut(&'a Term)) {
        match self {
            Condition::True | Condition::False | Condition::Exists(_) => {}
            Condition::Cmp { left, right, .. } | Condition::IsDistinct { left, right, .. } => {
                f(left);
                f(right);
            }
            Condition::Like { term, pattern, .. } => {
                f(term);
                f(pattern);
            }
            Condition::Pred { args, .. } => args.iter().for_each(f),
            Condition::IsNull { term, .. } => f(term),
            Condition::In { terms, .. } => terms.iter().for_each(f),
            Condition::And(a, b) | Condition::Or(a, b) => {
                a.visit_terms(f);
                b.visit_terms(f);
            }
            Condition::Not(c) => c.visit_terms(f),
        }
    }

    /// Number of *atomic* conditions (comparisons, predicates, null tests,
    /// `IN`/`EXISTS`) in this condition, not descending into subqueries.
    /// This is the `cond` statistic of the §4 generator parameters.
    pub fn atom_count(&self) -> usize {
        match self {
            Condition::And(a, b) | Condition::Or(a, b) => a.atom_count() + b.atom_count(),
            Condition::Not(c) => c.atom_count(),
            Condition::True | Condition::False => 0,
            _ => 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Pretty-printing. The `Display` impls render the fully annotated form in
// Standard syntax; dialect-specific rendering (e.g. Oracle `MINUS`) lives in
// the parser crate, which also knows how to re-parse what is printed here.
// ---------------------------------------------------------------------------

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Select(s) => write!(f, "{s}"),
            Query::SetOp { op, all, left, right } => {
                // Operands that are themselves set operations are
                // parenthesised so the printed text has unambiguous
                // associativity.
                fmt_setop_operand(left, f)?;
                write!(f, " {}{} ", op.keyword(), if *all { " ALL" } else { "" })?;
                fmt_setop_operand(right, f)
            }
        }
    }
}

fn fmt_setop_operand(q: &Query, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match q {
        // An *ordered* SELECT operand needs parentheses: the parser
        // attaches bare trailing ORDER BY/LIMIT clauses at query level
        // (and rejects them on set operations), so only the
        // parenthesised form re-parses to the same tree.
        Query::Select(s) if s.is_ordered() => write!(f, "({q})"),
        Query::Select(_) => write!(f, "{q}"),
        Query::SetOp { .. } => write!(f, "({q})"),
    }
}

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        match &self.select {
            SelectList::Star => f.write_str("*")?,
            SelectList::Items(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
            }
        }
        f.write_str(" FROM ")?;
        for (i, fe) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{fe}")?;
        }
        if self.where_ != Condition::True {
            write!(f, " WHERE {}", self.where_)?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, k) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{k}")?;
            }
        }
        if self.having != Condition::True {
            write!(f, " HAVING {}", self.having)?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{k}")?;
            }
        }
        // The Standard surface (SQL-92 style): OFFSET before FETCH FIRST.
        // The PostgreSQL `LIMIT n OFFSET m` spelling lives in the parser
        // crate's dialect printer.
        if let Some(m) = self.offset {
            write!(f, " OFFSET {m} ROWS")?;
        }
        if let Some(n) = self.limit {
            write!(f, " FETCH FIRST {n} ROWS ONLY")?;
        }
        Ok(())
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => f.write_str("TRUE"),
            Condition::False => f.write_str("FALSE"),
            Condition::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Condition::Like { term, pattern, negated } => {
                write!(f, "{term} {}LIKE {pattern}", if *negated { "NOT " } else { "" })
            }
            Condition::Pred { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Condition::IsNull { term, negated } => {
                write!(f, "{term} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Condition::IsDistinct { left, right, negated } => {
                write!(f, "{left} IS {}DISTINCT FROM {right}", if *negated { "NOT " } else { "" })
            }
            Condition::In { terms, query, negated } => {
                fmt_term_tuple(terms, f)?;
                write!(f, " {}IN ({query})", if *negated { "NOT " } else { "" })
            }
            Condition::Exists(q) => write!(f, "EXISTS ({q})"),
            Condition::And(a, b) => {
                fmt_cond_operand(a, self, false, f)?;
                f.write_str(" AND ")?;
                fmt_cond_operand(b, self, true, f)
            }
            Condition::Or(a, b) => {
                fmt_cond_operand(a, self, false, f)?;
                f.write_str(" OR ")?;
                fmt_cond_operand(b, self, true, f)
            }
            Condition::Not(c) => {
                f.write_str("NOT ")?;
                match **c {
                    Condition::And(..) | Condition::Or(..) => write!(f, "({c})"),
                    _ => write!(f, "{c}"),
                }
            }
        }
    }
}

/// Renders a tuple of terms: a single term bare, several in parentheses.
fn fmt_term_tuple(terms: &[Term], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if terms.len() == 1 {
        write!(f, "{}", terms[0])
    } else {
        f.write_str("(")?;
        for (i, t) in terms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// Parenthesises a Boolean operand so the printed text re-parses to the
/// *same tree*: mixed connectives always need parentheses for clarity,
/// and a same-connective right child needs them because the parser
/// associates to the left.
fn fmt_cond_operand(
    child: &Condition,
    parent: &Condition,
    is_right: bool,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    let needs_parens = match (parent, child) {
        (Condition::And(..), Condition::Or(..)) => true,
        (Condition::Or(..), Condition::And(..)) => true,
        (Condition::And(..), Condition::And(..)) | (Condition::Or(..), Condition::Or(..)) => {
            is_right
        }
        _ => false,
    };
    if needs_parens {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `SELECT R.A AS A FROM R AS R` — the running shape of the paper.
    fn simple_select() -> Query {
        Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ))
    }

    #[test]
    fn display_simple_select() {
        assert_eq!(simple_select().to_string(), "SELECT R.A AS A FROM R AS R");
    }

    #[test]
    fn display_distinct_and_where() {
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .distinct()
            .filter(Condition::eq(Term::col("R", "A"), Term::from(1i64))),
        );
        assert_eq!(q.to_string(), "SELECT DISTINCT R.A AS A FROM R AS R WHERE R.A = 1");
    }

    #[test]
    fn display_star_and_subquery() {
        let inner = simple_select();
        let q =
            Query::Select(SelectQuery::new(SelectList::Star, vec![FromItem::subquery(inner, "T")]));
        assert_eq!(q.to_string(), "SELECT * FROM (SELECT R.A AS A FROM R AS R) AS T");
    }

    #[test]
    fn display_from_with_column_rename() {
        let q = Query::Select(SelectQuery::new(
            SelectList::Star,
            vec![FromItem::subquery(simple_select(), "N").with_columns(["A1"])],
        ));
        assert_eq!(q.to_string(), "SELECT * FROM (SELECT R.A AS A FROM R AS R) AS N(A1)");
    }

    #[test]
    fn display_set_ops_parenthesise_nested() {
        let q = simple_select().union(simple_select(), true).except(simple_select(), false);
        let s = q.to_string();
        assert!(s.starts_with("(SELECT"), "{s}");
        assert!(s.contains("UNION ALL"), "{s}");
        assert!(s.contains(") EXCEPT SELECT"), "{s}");
    }

    #[test]
    fn display_conditions() {
        let c = Condition::eq(Term::col("R", "A"), Term::col("S", "B"))
            .and(Condition::is_not_null(Term::col("R", "A")))
            .or(Condition::not(Condition::exists(simple_select())));
        let s = c.to_string();
        assert_eq!(
            s,
            "(R.A = S.B AND R.A IS NOT NULL) OR NOT EXISTS (SELECT R.A AS A FROM R AS R)"
        );
    }

    #[test]
    fn display_in_tuple() {
        let c = Condition::in_query([Term::col("R", "A"), Term::col("R", "B")], simple_select());
        assert_eq!(c.to_string(), "(R.A, R.B) IN (SELECT R.A AS A FROM R AS R)");
        let c = Condition::not_in([Term::col("R", "A")], simple_select());
        assert_eq!(c.to_string(), "R.A NOT IN (SELECT R.A AS A FROM R AS R)");
    }

    #[test]
    fn all_and_any_have_units() {
        assert_eq!(Condition::all([]), Condition::True);
        assert_eq!(Condition::any([]), Condition::False);
        let c = Condition::is_null(Term::col("R", "A"));
        assert_eq!(Condition::all([c.clone()]), c);
        assert_eq!(Condition::any([c.clone()]), c);
    }

    #[test]
    fn atom_count_counts_leaves() {
        let c = Condition::eq(Term::col("R", "A"), Term::from(1i64))
            .and(Condition::is_null(Term::col("R", "B")).or(Condition::exists(simple_select())));
        assert_eq!(c.atom_count(), 3);
        assert_eq!(Condition::True.atom_count(), 0);
    }

    #[test]
    fn visit_reaches_nested_queries() {
        let inner = simple_select();
        let q = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::subquery(inner.clone(), "T")])
                .filter(Condition::exists(inner)),
        );
        assert_eq!(q.size(), 3);
    }

    #[test]
    fn like_display() {
        let c = Condition::Like {
            term: Term::col("R", "A"),
            pattern: Term::Const(Value::str("a%")),
            negated: true,
        };
        assert_eq!(c.to_string(), "R.A NOT LIKE 'a%'");
    }
}
