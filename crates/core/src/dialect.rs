//! Dialect and logic-mode switches for the semantics (§4 and §6).
//!
//! The paper's experimental validation requires "minor adjustments" of the
//! Standard semantics so that it captures precisely what a concrete system
//! implements (§4). The two systems the paper validates against are
//! PostgreSQL and Oracle; their documented deviations are encoded in
//! [`Dialect`].
//!
//! Independently of the dialect, §6 studies evaluating the same queries
//! under a *two-valued* logic, with two possible interpretations of the
//! equality predicate; [`LogicMode`] selects among the three resulting
//! semantics.

use std::fmt;

/// Which concrete system's behaviour the semantics is adjusted to (§4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// The semantics of Figures 4–7, straight from the Standard: `SELECT *`
    /// is context-dependent (the Boolean switch `x`), and ambiguous
    /// references surface as errors when the environment is consulted.
    #[default]
    Standard,
    /// PostgreSQL's adjustment: *compositional* star semantics. A
    /// `SELECT *` block returns the `FROM`–`WHERE` rows directly in every
    /// context, so the Boolean switch disappears and a star over a table
    /// with repeated column names is not an error (Example 2).
    /// Explicitly written ambiguous references are still rejected, as
    /// PostgreSQL rejects them when analysing the query.
    PostgreSql,
    /// Oracle's adjustment: Standard star semantics, but ambiguity is
    /// detected *statically*, the way Oracle rejects Example 2's first
    /// query at compile time even when no row would ever be produced.
    /// (Oracle also spells `EXCEPT` as `MINUS`; that is surface syntax,
    /// handled by the parser and printer, not by the evaluator.)
    Oracle,
}

impl Dialect {
    /// All dialects, for exhaustive validation runs.
    pub const ALL: [Dialect; 3] = [Dialect::Standard, Dialect::PostgreSql, Dialect::Oracle];

    /// `true` iff `SELECT *` is compositional (PostgreSQL): the star block
    /// returns the `FROM`–`WHERE` result unchanged regardless of context.
    pub fn star_is_compositional(self) -> bool {
        matches!(self, Dialect::PostgreSql)
    }

    /// `true` iff the dialect performs a static ambiguity check before
    /// evaluating (how the real RDBMSs behave at compile time).
    pub fn checks_ambiguity_statically(self) -> bool {
        matches!(self, Dialect::PostgreSql | Dialect::Oracle)
    }

    /// The keyword this dialect uses for bag difference.
    pub fn except_keyword(self) -> &'static str {
        match self {
            Dialect::Oracle => "MINUS",
            Dialect::Standard | Dialect::PostgreSql => "EXCEPT",
        }
    }
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dialect::Standard => "standard",
            Dialect::PostgreSql => "postgresql",
            Dialect::Oracle => "oracle",
        })
    }
}

/// Which logic conditions are evaluated under (§6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LogicMode {
    /// SQL's three-valued Kleene logic (Figures 1 and 6) — the Standard
    /// behaviour.
    #[default]
    ThreeValued,
    /// The two-valued semantics `⟦·⟧₂ᵥ` obtained by conflating `f` and
    /// `u` at every predicate: `P(t̄)` is `t` iff `P` holds on all-non-null
    /// arguments, and `f` otherwise (§6, first interpretation).
    TwoValuedConflate,
    /// The two-valued semantics in which the equality predicate is
    /// interpreted as *syntactic* equality `≐` of Definition 2
    /// (`NULL ≐ NULL` is `t`), while every other predicate conflates as in
    /// [`LogicMode::TwoValuedConflate`] (§6, second interpretation).
    TwoValuedSyntacticEq,
}

impl LogicMode {
    /// All logic modes.
    pub const ALL: [LogicMode; 3] =
        [LogicMode::ThreeValued, LogicMode::TwoValuedConflate, LogicMode::TwoValuedSyntacticEq];

    /// `true` for the two §6 modes.
    pub fn is_two_valued(self) -> bool {
        !matches!(self, LogicMode::ThreeValued)
    }
}

impl fmt::Display for LogicMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LogicMode::ThreeValued => "3vl",
            LogicMode::TwoValuedConflate => "2vl",
            LogicMode::TwoValuedSyntacticEq => "2vl-syntactic-eq",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_compositionality() {
        assert!(!Dialect::Standard.star_is_compositional());
        assert!(Dialect::PostgreSql.star_is_compositional());
        assert!(!Dialect::Oracle.star_is_compositional());
    }

    #[test]
    fn static_checks() {
        assert!(!Dialect::Standard.checks_ambiguity_statically());
        assert!(Dialect::PostgreSql.checks_ambiguity_statically());
        assert!(Dialect::Oracle.checks_ambiguity_statically());
    }

    #[test]
    fn oracle_spells_minus() {
        assert_eq!(Dialect::Oracle.except_keyword(), "MINUS");
        assert_eq!(Dialect::Standard.except_keyword(), "EXCEPT");
    }

    #[test]
    fn logic_mode_classification() {
        assert!(!LogicMode::ThreeValued.is_two_valued());
        assert!(LogicMode::TwoValuedConflate.is_two_valued());
        assert!(LogicMode::TwoValuedSyntacticEq.is_two_valued());
    }

    #[test]
    fn displays_are_stable() {
        assert_eq!(Dialect::PostgreSql.to_string(), "postgresql");
        assert_eq!(LogicMode::TwoValuedSyntacticEq.to_string(), "2vl-syntactic-eq");
    }
}
