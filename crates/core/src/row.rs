//! Records: tuples of values (§2).
//!
//! A [`Row`] is "a tuple of elements of `C ∪ {NULL}`" — the unit of data in
//! tables. Rows compare, hash and order by *syntactic* identity (`NULL`
//! equals `NULL`), which is exactly the comparison SQL's bag operations and
//! `DISTINCT` use (§1, §3).

use std::fmt;
use std::ops::Index;

use crate::value::Value;

/// A record: a fixed tuple of [`Value`]s.
///
/// The derived `Eq`/`Hash`/`Ord` give syntactic identity on records (two
/// `NULL`s are identical), matching the paper's treatment of records in bag
/// operations. Ordering is used only to render tables deterministically.
///
/// ```
/// use sqlsem_core::{row, Row, Value};
/// let r = row![1, Value::Null, "x"];
/// assert_eq!(r.arity(), 3);
/// assert_eq!(r[0], Value::Int(1));
/// assert!(r[1].is_null());
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row(Vec<Value>);

impl Row {
    /// Creates a record from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// The empty record. Only used transiently while building products;
    /// tables never hold zero-arity rows (§2 requires arity `k > 0`).
    pub fn empty() -> Self {
        Row(Vec::new())
    }

    /// Number of values in the record.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// `true` iff the record has no values.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value at position `i`, if any.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Iterates over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }

    /// Concatenation of two records — the record `(r̄₁, r̄₂)` used by the
    /// Cartesian product (§3).
    #[must_use]
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Row(v)
    }

    /// Appends the values of `other` in place (used by product loops to
    /// avoid intermediate allocations).
    pub fn extend(&mut self, other: &Row) {
        self.0.extend_from_slice(&other.0);
    }

    /// The record restricted to the given positions (bag projection).
    ///
    /// # Panics
    /// Panics if a position is out of bounds; callers validate positions
    /// against the table signature first.
    #[must_use]
    pub fn project(&self, positions: &[usize]) -> Row {
        Row(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// `true` iff any value in the record is `NULL`.
    pub fn has_null(&self) -> bool {
        self.0.iter().any(Value::is_null)
    }

    /// Consumes the record, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Row(iter.into_iter().collect())
    }
}

impl IntoIterator for Row {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Row {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Shared rendering for `Debug` and `Display`: `(v₁, v₂, …)`.
fn fmt_tuple(values: &[Value], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("(")?;
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{v}")?;
    }
    f.write_str(")")
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_tuple(&self.0, f)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_tuple(&self.0, f)
    }
}

/// Builds a [`Row`] from value-like expressions.
///
/// Each element is converted with `Into<Value>`, so integers, `&str`,
/// booleans and [`Value`]s (e.g. `Value::Null`) can be mixed freely:
///
/// ```
/// use sqlsem_core::{row, Value};
/// let r = row![1, "a", Value::Null, true];
/// assert_eq!(r.arity(), 4);
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rows_compare_syntactically() {
        assert_eq!(row![1, Value::Null], row![1, Value::Null]);
        assert_ne!(row![1, Value::Null], row![1, 2]);
        assert_ne!(row![1], row![1, 1]);
    }

    #[test]
    fn rows_hash_syntactically() {
        let mut set = HashSet::new();
        set.insert(row![Value::Null]);
        assert!(set.contains(&row![Value::Null]));
        assert!(!set.contains(&row![0]));
    }

    #[test]
    fn concat_preserves_order() {
        let r = row![1, 2].concat(&row![3]);
        assert_eq!(r, row![1, 2, 3]);
        assert_eq!(r.arity(), 3);
    }

    #[test]
    fn extend_matches_concat() {
        let mut r = row![1];
        r.extend(&row![2, 3]);
        assert_eq!(r, row![1].concat(&row![2, 3]));
    }

    #[test]
    fn project_picks_positions() {
        let r = row![10, 20, 30];
        assert_eq!(r.project(&[2, 0, 0]), row![30, 10, 10]);
        assert_eq!(r.project(&[]), Row::empty());
    }

    #[test]
    fn has_null_detects_nulls() {
        assert!(row![1, Value::Null].has_null());
        assert!(!row![1, 2].has_null());
        assert!(!Row::empty().has_null());
    }

    #[test]
    fn display_is_tuple_notation() {
        assert_eq!(row![1, Value::Null, "a"].to_string(), "(1, NULL, 'a')");
        assert_eq!(Row::empty().to_string(), "()");
    }

    #[test]
    fn indexing_and_get() {
        let r = row![7, 8];
        assert_eq!(r[1], Value::Int(8));
        assert_eq!(r.get(2), None);
    }

    #[test]
    fn iteration_orders_left_to_right() {
        let r = row![1, 2, 3];
        let v: Vec<i64> = r
            .iter()
            .map(|v| match v {
                Value::Int(n) => *n,
                _ => panic!(),
            })
            .collect();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
