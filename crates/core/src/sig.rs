//! Output attributes `ℓ(Q)` and scopes `ℓ(τ:β)` (Figure 3 and §3).
//!
//! `ℓ(Q)` is the tuple of (plain) names labelling the columns of the table
//! a query produces; it is defined inductively:
//!
//! ```text
//! ℓ(R)                                = the schema's attribute tuple
//! ℓ(τ)                                = ℓ(T₁) ⋯ ℓ(Tₖ)
//! ℓ(SELECT [DISTINCT] α:β′ FROM …)    = β′
//! ℓ(SELECT [DISTINCT] * FROM τ:β …)   = ℓ(τ)
//! ℓ(Q₁ op [ALL] Q₂)                   = ℓ(Q₁)
//! ```
//!
//! The *scope* of a `FROM` clause, `ℓ(τ:β) = N₁.ℓ(T₁) ⋯ Nₖ.ℓ(Tₖ)`, is the
//! tuple of **full** names the clause brings into scope; the evaluator
//! binds it to each record of the Cartesian product (§3).

use crate::ast::{FromExpr, FromItem, Query, SelectList, TableRef};
use crate::error::EvalError;
use crate::name::{FullName, Name};
use crate::schema::Schema;

/// The output attribute tuple `ℓ(Q)` of a query (Figure 3).
///
/// Needs the schema to resolve the attribute tuples of base tables.
/// Errors if a base table is unknown or a `FROM` column renaming has the
/// wrong arity; both mark queries that would not compile.
pub fn output_columns(query: &Query, schema: &Schema) -> Result<Vec<Name>, EvalError> {
    match query {
        Query::Select(s) => match &s.select {
            SelectList::Items(items) => {
                if items.is_empty() {
                    return Err(EvalError::ZeroArity);
                }
                Ok(items.iter().map(|i| i.alias.clone()).collect())
            }
            SelectList::Star => {
                let mut cols = Vec::new();
                for fe in &s.from {
                    for item in fe.leaves() {
                        cols.extend(from_item_columns(item, schema)?);
                    }
                }
                Ok(cols)
            }
        },
        Query::SetOp { left, .. } => output_columns(left, schema),
    }
}

/// The column tuple contributed by one `FROM` item: the item's renaming
/// `(A₁,…,Aₙ)` when present, otherwise `ℓ(T)` of the underlying table.
pub fn from_item_columns(item: &FromItem, schema: &Schema) -> Result<Vec<Name>, EvalError> {
    let natural = match &item.table {
        TableRef::Base(r) => match schema.attributes(r) {
            Some(attrs) => attrs.to_vec(),
            None => return Err(EvalError::UnknownTable(r.clone())),
        },
        TableRef::Query(q) => output_columns(q, schema)?,
    };
    match &item.columns {
        None => Ok(natural),
        Some(renamed) => {
            if renamed.len() != natural.len() {
                return Err(EvalError::ColumnRenameArity {
                    alias: item.alias.clone(),
                    expected: natural.len(),
                    got: renamed.len(),
                });
            }
            Ok(renamed.clone())
        }
    }
}

/// The scope contributed by one `FROM` expression: every leaf item's
/// columns prefixed by its alias, left to right — a join introduces no
/// alias of its own, so its scope is just the concatenation of its
/// operands' scopes.
pub fn from_expr_scope(fe: &FromExpr, schema: &Schema) -> Result<Vec<FullName>, EvalError> {
    let mut names = Vec::new();
    for item in fe.leaves() {
        let cols = from_item_columns(item, schema)?;
        names.extend(item.alias.prefix(&cols));
    }
    Ok(names)
}

/// The scope `ℓ(τ:β)` of a `FROM` clause: each leaf item's columns
/// prefixed by its alias, concatenated in clause order (§3).
///
/// Also rejects duplicate aliases within one `FROM` clause, which RDBMSs
/// refuse at compile time.
pub fn scope(from: &[FromExpr], schema: &Schema) -> Result<Vec<FullName>, EvalError> {
    check_distinct_aliases(from)?;
    let mut names = Vec::new();
    for fe in from {
        names.extend(from_expr_scope(fe, schema)?);
    }
    Ok(names)
}

/// Errors with [`EvalError::DuplicateAlias`] if two `FROM` leaf items
/// share an alias — including leaves on opposite sides of a join.
pub fn check_distinct_aliases(from: &[FromExpr]) -> Result<(), EvalError> {
    let mut seen = std::collections::HashSet::with_capacity(from.len());
    for fe in from {
        for item in fe.leaves() {
            if !seen.insert(item.alias.clone()) {
                return Err(EvalError::DuplicateAlias(item.alias.clone()));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{SelectQuery, Term};

    fn schema() -> Schema {
        Schema::builder().table("R", ["A", "B"]).table("S", ["A", "C"]).build().unwrap()
    }

    fn names(ns: &[&str]) -> Vec<Name> {
        ns.iter().map(Name::new).collect()
    }

    #[test]
    fn explicit_select_list_gives_aliases() {
        let q = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "X"), (Term::col("R", "A"), "Y")]),
            vec![FromItem::base("R", "R")],
        ));
        assert_eq!(output_columns(&q, &schema()).unwrap(), names(&["X", "Y"]));
    }

    #[test]
    fn star_concatenates_from_signatures() {
        // The paper's own example: SELECT * FROM R,S with R(A,B), S(A,C)
        // has ℓ(Q) = (A, B, A, C).
        let q = Query::Select(SelectQuery::new(
            SelectList::Star,
            vec![FromItem::base("R", "R"), FromItem::base("S", "S")],
        ));
        assert_eq!(output_columns(&q, &schema()).unwrap(), names(&["A", "B", "A", "C"]));
    }

    #[test]
    fn star_uses_renamed_columns() {
        let q = Query::Select(SelectQuery::new(
            SelectList::Star,
            vec![FromItem::base("R", "T").with_columns(["X", "Y"])],
        ));
        assert_eq!(output_columns(&q, &schema()).unwrap(), names(&["X", "Y"]));
    }

    #[test]
    fn setop_takes_left_signature() {
        let left = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "L")]),
            vec![FromItem::base("R", "R")],
        ));
        let right = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "R")]),
            vec![FromItem::base("S", "S")],
        ));
        let q = left.union(right, true);
        assert_eq!(output_columns(&q, &schema()).unwrap(), names(&["L"]));
    }

    #[test]
    fn scope_prefixes_with_aliases() {
        let from: Vec<FromExpr> =
            vec![FromItem::base("R", "X").into(), FromItem::base("S", "Y").into()];
        let s = scope(&from, &schema()).unwrap();
        assert_eq!(
            s,
            vec![
                FullName::new("X", "A"),
                FullName::new("X", "B"),
                FullName::new("Y", "A"),
                FullName::new("Y", "C"),
            ]
        );
    }

    #[test]
    fn scope_rejects_duplicate_aliases() {
        let from: Vec<FromExpr> =
            vec![FromItem::base("R", "T").into(), FromItem::base("S", "T").into()];
        assert_eq!(scope(&from, &schema()).unwrap_err(), EvalError::DuplicateAlias(Name::new("T")));
    }

    #[test]
    fn unknown_base_table_is_an_error() {
        let from: Vec<FromExpr> = vec![FromItem::base("Z", "Z").into()];
        assert_eq!(scope(&from, &schema()).unwrap_err(), EvalError::UnknownTable(Name::new("Z")));
    }

    #[test]
    fn column_rename_arity_checked() {
        let from: Vec<FromExpr> = vec![FromItem::base("R", "T").with_columns(["X"]).into()];
        assert!(matches!(
            scope(&from, &schema()).unwrap_err(),
            EvalError::ColumnRenameArity { expected: 2, got: 1, .. }
        ));
    }

    #[test]
    fn subquery_signature_flows_through_from() {
        let inner = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "P"), (Term::col("R", "B"), "Q")]),
            vec![FromItem::base("R", "R")],
        ));
        let from: Vec<FromExpr> = vec![FromItem::subquery(inner, "U").into()];
        let s = scope(&from, &schema()).unwrap();
        assert_eq!(s, vec![FullName::new("U", "P"), FullName::new("U", "Q")]);
    }
}
