//! Secondary indexes over base tables.
//!
//! An index is an ordered map from key tuples (one [`Value`] per indexed
//! column) to the *row ids* of the stored table rows carrying that
//! tuple, with postings kept in ascending row-id order. Two decisions
//! keep index-driven execution invisible under the §4 coincidence
//! criterion:
//!
//! * **Key order is the list semantics' order.** [`IndexKey`] compares
//!   with [`crate::order::key_ordering`] (ascending, `NULL`s last) — the one
//!   shared comparison rule of `ORDER BY` — so the placement of `NULL`
//!   keys and the within-type order cannot diverge from what PR 5
//!   formalized for sorting. Mixed non-null types stay totally ordered
//!   (the derived order on [`Value`] breaks the tie), so the map is
//!   always well-formed; what mixing *does* cost is usability, below.
//! * **Mixed-type columns poison the index.** A heap scan evaluating
//!   `a = 5` over a column holding both integers and strings raises a
//!   deterministic `TypeMismatch` under the three-valued and conflating
//!   logics; an index lookup would silently miss instead. Rather than
//!   re-deriving error verdicts at lookup time, an index whose column
//!   ever saw two non-null types is marked *poisoned* and the optimizer
//!   refuses to select it — the scan (and its error) always wins.
//!
//! Postings reference positions into the stored table's row list, and
//! lookups return them ascending — so an index-driven operator emits
//! rows in *insertion order*, byte-identical to the filtered heap scan
//! it replaces. Index order is a search structure here, never an output
//! order.

use std::collections::btree_map::BTreeMap;
use std::fmt;
use std::ops::Bound;

use crate::name::Name;
use crate::order::key_ordering;
use crate::row::Row;
use crate::table::Table;
use crate::value::Value;

/// The declaration of a secondary index: a name, the base table it
/// covers, and the indexed columns in key order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexDef {
    /// The index name (unique across the database).
    pub name: Name,
    /// The base table the index covers.
    pub table: Name,
    /// The indexed attribute names, most significant first.
    pub columns: Vec<Name>,
}

/// A key tuple in the index order: component-wise
/// [`crate::order::key_ordering`] (ascending, `NULL`s last), first difference
/// wins. Equality under this order is syntactic value identity, which
/// is exactly the match rule of hash-join keys and `GROUP BY`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexKey(pub Vec<Value>);

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| key_ordering(a, b, false, false))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or_else(|| self.0.len().cmp(&other.0.len()))
    }
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for IndexKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// A secondary index: key tuples mapped to ascending row-id postings,
/// plus the per-column type discipline that decides whether the
/// optimizer may use it (see the module docs on poisoning).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Index {
    def: IndexDef,
    /// Resolved positions of [`IndexDef::columns`] in the table layout.
    cols: Vec<usize>,
    map: BTreeMap<IndexKey, Vec<usize>>,
    /// The established non-null type per key column (`None` until one
    /// is seen), mirroring [`crate::order::KeyTypeCheck`]'s rule.
    types: Vec<Option<&'static str>>,
    /// `true` once any key column saw two distinct non-null types.
    poisoned: bool,
}

impl Index {
    /// Builds an index over the current contents of `table` (which must
    /// match the resolved column positions).
    pub fn build(def: IndexDef, cols: Vec<usize>, table: &Table) -> Index {
        let types = vec![None; cols.len()];
        let mut index = Index { def, cols, map: BTreeMap::new(), types, poisoned: false };
        for (rowid, row) in table.rows().enumerate() {
            index.note_row(rowid, row);
        }
        index
    }

    /// The index declaration.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Resolved table-column positions of the key columns, in key order.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// `true` once some key column held two distinct non-null types —
    /// the optimizer must not select a poisoned index (a heap scan
    /// raises `TypeMismatch` where a lookup would silently miss).
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// The established non-null type of key column `i`, if any value
    /// fixed one yet.
    pub fn column_type(&self, i: usize) -> Option<&'static str> {
        self.types.get(i).copied().flatten()
    }

    /// Number of distinct key tuples currently indexed.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total number of postings (indexed rows).
    pub fn entries(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Adds one stored row (by id) to the index. Ids must arrive in
    /// ascending order — which [`crate::Database`]'s append path
    /// guarantees — so every posting list stays sorted.
    pub fn note_row(&mut self, rowid: usize, row: &Row) {
        let key: Vec<Value> = self.cols.iter().map(|&c| row[c].clone()).collect();
        for (slot, v) in self.types.iter_mut().zip(key.iter()) {
            if v.is_null() {
                continue;
            }
            match slot {
                None => *slot = Some(v.type_name()),
                Some(t) if *t == v.type_name() => {}
                Some(_) => self.poisoned = true,
            }
        }
        self.map.entry(IndexKey(key)).or_default().push(rowid);
    }

    /// Rebuilds the index from scratch over the table's current rows —
    /// the maintenance path for content replacement.
    pub fn rebuild(&mut self, table: &Table) {
        self.map.clear();
        self.types = vec![None; self.cols.len()];
        self.poisoned = false;
        for (rowid, row) in table.rows().enumerate() {
            self.note_row(rowid, row);
        }
    }

    /// The ascending row ids holding exactly this key tuple (syntactic
    /// identity — `NULL` components match `NULL`, never a constant).
    pub fn point(&self, key: &[Value]) -> &[usize] {
        self.map.get(&IndexKey(key.to_vec())).map_or(&[], Vec::as_slice)
    }

    /// The row ids whose *first* key component falls in the given
    /// bounds, returned in ascending (insertion) order. For a range on
    /// a later key column under leading equalities, use
    /// [`Index::prefix_range`].
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<usize> {
        let wrap = |b: Bound<&Value>| match b {
            Bound::Included(v) => Bound::Included(IndexKey(vec![v.clone()])),
            Bound::Excluded(v) => Bound::Excluded(IndexKey(vec![v.clone()])),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut out: Vec<usize> =
            self.map.range((wrap(lo), wrap(hi))).flat_map(|(_, ids)| ids.iter().copied()).collect();
        // Distinct keys interleave in insertion order; restore it.
        out.sort_unstable();
        out
    }

    /// The row ids whose key starts with exactly `prefix` (syntactic
    /// identity, like [`Index::point`]) and whose *next* key component
    /// falls in the given bounds, returned in ascending (insertion)
    /// order — the composite-prefix range scan (`a = 1 AND b = 2 AND
    /// c > 5` on an index over `(a, b, c, …)`).
    ///
    /// `NULL` at the range position never qualifies: a comparison with
    /// `NULL` is unknown under every logic mode, and `NULL`s sort last
    /// within the prefix region, so iteration simply stops there. An
    /// empty `prefix` with both bounds on column 0 behaves like
    /// [`Index::range`] minus the `NULL` tail.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is not strictly shorter than the key arity
    /// (there must be a next component to range over).
    pub fn prefix_range(
        &self,
        prefix: &[Value],
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Vec<usize> {
        let p = prefix.len();
        assert!(p < self.cols.len(), "prefix_range needs a key column past the prefix");
        // A bare prefix tuple is the infimum of all its extensions
        // (IndexKey breaks component ties by length), so seeking to it —
        // or to `prefix ++ [lo]` — lands on the first candidate key.
        let start = match lo {
            Bound::Included(v) | Bound::Excluded(v) => {
                let mut key = prefix.to_vec();
                key.push(v.clone());
                IndexKey(key)
            }
            Bound::Unbounded => IndexKey(prefix.to_vec()),
        };
        let mut out = Vec::new();
        for (key, ids) in self.map.range((Bound::Included(start), Bound::Unbounded)) {
            // Keys are full-arity tuples sorted lexicographically: once
            // the prefix components stop matching, the region is over.
            let same_prefix = key.0[..p]
                .iter()
                .zip(prefix)
                .all(|(a, b)| key_ordering(a, b, false, false) == std::cmp::Ordering::Equal);
            if !same_prefix {
                break;
            }
            let c = &key.0[p];
            // NULLs sort last within the region and never satisfy a
            // comparison — stopping here is the upper fence for the
            // unbounded (`>`/`>=`) shapes.
            if c.is_null() {
                break;
            }
            match hi {
                Bound::Included(v) if key_ordering(c, v, false, false).is_gt() => break,
                Bound::Excluded(v) if key_ordering(c, v, false, false).is_ge() => break,
                _ => {}
            }
            // An excluded lower bound seeks to the bound value itself
            // (extensions of `prefix ++ [v]` sort after the bare tuple,
            // so B-tree bound exclusion cannot skip them) and steps over
            // the equal run here.
            if let Bound::Excluded(v) = lo {
                if key_ordering(c, v, false, false).is_eq() {
                    continue;
                }
            }
            out.extend(ids.iter().copied());
        }
        // Distinct keys interleave in insertion order; restore it.
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;

    fn sample() -> Table {
        table! { ["A", "B"]; [1, 10], [3, 30], [1, 11], [Value::Null, 99], [2, 20] }
    }

    fn def(cols: &[&str]) -> IndexDef {
        IndexDef {
            name: Name::new("t_idx"),
            table: Name::new("T"),
            columns: cols.iter().map(Name::new).collect(),
        }
    }

    #[test]
    fn point_lookup_returns_ascending_row_ids() {
        let t = sample();
        let idx = Index::build(def(&["A"]), vec![0], &t);
        assert_eq!(idx.point(&[Value::Int(1)]), &[0, 2]);
        assert_eq!(idx.point(&[Value::Int(2)]), &[4]);
        assert_eq!(idx.point(&[Value::Int(7)]), &[] as &[usize]);
        // NULL keys are indexed and match only NULL (syntactic identity).
        assert_eq!(idx.point(&[Value::Null]), &[3]);
        assert!(!idx.poisoned());
        assert_eq!(idx.column_type(0), Some("integer"));
        assert_eq!(idx.entries(), 5);
        assert_eq!(idx.distinct_keys(), 4);
    }

    #[test]
    fn range_respects_nulls_last_and_restores_insertion_order() {
        let t = sample();
        let idx = Index::build(def(&["A"]), vec![0], &t);
        // a >= 2: NULL ranks after every constant, so the NULL row is
        // excluded by an Excluded(NULL) upper bound.
        let null = Value::Null;
        let ids = idx.range(Bound::Included(&Value::Int(2)), Bound::Excluded(&null));
        assert_eq!(ids, vec![1, 4]);
        // a < 3 in insertion order: rows 0, 2 (A=1) then 4 (A=2),
        // restored to 0, 2, 4.
        let ids = idx.range(Bound::Unbounded, Bound::Excluded(&Value::Int(3)));
        assert_eq!(ids, vec![0, 2, 4]);
    }

    #[test]
    fn mixed_types_poison_the_index() {
        let t = table! { ["A"]; [1], ["x"], [2] };
        let idx = Index::build(def(&["A"]), vec![0], &t);
        assert!(idx.poisoned());
        // The map itself stays well-formed (total order over Value).
        assert_eq!(idx.entries(), 3);
    }

    #[test]
    fn incremental_and_rebuild_agree() {
        let t = sample();
        let built = Index::build(def(&["B", "A"]), vec![1, 0], &t);
        let mut incremental = Index::build(def(&["B", "A"]), vec![1, 0], &table! { ["A", "B"]; });
        for (i, r) in t.rows().enumerate() {
            incremental.note_row(i, r);
        }
        assert_eq!(built, incremental);
        let mut rebuilt = built.clone();
        rebuilt.rebuild(&t);
        assert_eq!(built, rebuilt);
        assert_eq!(built.point(&[Value::Int(30), Value::Int(3)]), &[1]);
    }

    #[test]
    fn prefix_range_scans_composite_suffix_columns() {
        // Index on (A, B); rows chosen so A = 1 has a spread of Bs,
        // including a NULL, and other A groups surround the region.
        let t = table! {
            ["A", "B"];
            [1, 10], [2, 5], [1, 30], [0, 99], [1, 20], [1, Value::Null], [2, 40]
        };
        let idx = Index::build(def(&["A", "B"]), vec![0, 1], &t);
        let one = Value::Int(1);
        // A = 1 AND B > 10 → rows (1,30) and (1,20), insertion order.
        let ids = idx.prefix_range(
            std::slice::from_ref(&one),
            Bound::Excluded(&Value::Int(10)),
            Bound::Unbounded,
        );
        assert_eq!(ids, vec![2, 4]);
        // A = 1 AND B >= 10 includes the bound itself.
        let ids = idx.prefix_range(
            std::slice::from_ref(&one),
            Bound::Included(&Value::Int(10)),
            Bound::Unbounded,
        );
        assert_eq!(ids, vec![0, 2, 4]);
        // A = 1 AND B < 30: NULL B never qualifies, neighbours A = 0 / A = 2 stay out.
        let ids = idx.prefix_range(
            std::slice::from_ref(&one),
            Bound::Unbounded,
            Bound::Excluded(&Value::Int(30)),
        );
        assert_eq!(ids, vec![0, 4]);
        // A = 1 AND B <= 30.
        let ids = idx.prefix_range(
            std::slice::from_ref(&one),
            Bound::Unbounded,
            Bound::Included(&Value::Int(30)),
        );
        assert_eq!(ids, vec![0, 2, 4]);
        // A = 7 matches nothing at all.
        let ids = idx.prefix_range(&[Value::Int(7)], Bound::Unbounded, Bound::Unbounded);
        assert_eq!(ids, Vec::<usize>::new());
        // Empty prefix ranges over column A like `range`, minus NULL
        // *keys at the range position* — (1, NULL) still qualifies,
        // its A is not NULL.
        let ids = idx.prefix_range(&[], Bound::Included(&Value::Int(1)), Bound::Unbounded);
        assert_eq!(ids, vec![0, 1, 2, 4, 5, 6]);
    }

    #[test]
    fn prefix_range_on_three_columns_skips_extension_runs() {
        // Index on (A, B, C): an excluded bound on B must skip every
        // extension (1, 10, *) — B-tree bound exclusion alone cannot.
        let t = table! {
            ["A", "B", "C"];
            [1, 10, 1], [1, 10, 2], [1, 11, 1], [1, 9, 9], [2, 10, 1]
        };
        let idx = Index::build(def(&["A", "B", "C"]), vec![0, 1, 2], &t);
        let one = Value::Int(1);
        let ids = idx.prefix_range(
            std::slice::from_ref(&one),
            Bound::Excluded(&Value::Int(10)),
            Bound::Unbounded,
        );
        assert_eq!(ids, vec![2]);
        // Two-column prefix, range on C.
        let ids = idx.prefix_range(
            &[one.clone(), Value::Int(10)],
            Bound::Included(&Value::Int(2)),
            Bound::Unbounded,
        );
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn key_ordering_matches_the_list_semantics() {
        // NULL sorts last, so in the BTreeMap it is the greatest key.
        let t = sample();
        let idx = Index::build(def(&["A"]), vec![0], &t);
        let keys: Vec<&IndexKey> = idx.map.keys().collect();
        assert_eq!(keys.last().unwrap().0, vec![Value::Null]);
        assert_eq!(keys[0].0, vec![Value::Int(1)]);
    }
}
