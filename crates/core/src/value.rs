//! Data values: the set `C` of constants together with `NULL` (§2).
//!
//! The paper assumes a single countable set of data values of all types
//! (queries are assumed to be well-typed, §2), populated with `NULL`.
//! [`Value`] is the Rust rendering: a closed enum of `NULL`, Booleans,
//! 64-bit integers and strings, which covers everything the paper's
//! experiments exercise (their schema uses only `int` columns) while being
//! realistic enough for examples.
//!
//! Two notions of equality coexist, and keeping them apart is the crux of
//! the paper:
//!
//! * **Syntactic equality** `≐` (Definition 2): two values are equal iff
//!   they are the same constant or both `NULL`. This is the derived
//!   [`PartialEq`]/[`Eq`]/[`Hash`] on `Value`, and it is what the bag
//!   operations (`UNION`/`INTERSECT`/`EXCEPT`, duplicate elimination) use.
//! * **SQL equality** under 3VL ([`Value::sql_eq`]): comparisons involving
//!   `NULL` evaluate to *unknown*.

use std::fmt;
use std::sync::Arc;

use crate::error::EvalError;
use crate::truth::Truth;

/// A single database value: `NULL` or a constant from `C`.
///
/// The derived `Eq`/`Ord`/`Hash` implement *syntactic* identity, in which
/// `NULL` equals `NULL` — exactly the comparison SQL's set operations and
/// `DISTINCT` use (§1, §3 of the paper). The derived order is used only to
/// render results deterministically; SQL comparisons go through
/// [`Value::sql_cmp`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// SQL's `NULL`.
    Null,
    /// A Boolean constant.
    Bool(bool),
    /// An integer constant.
    Int(i64),
    /// A string constant. `Arc<str>` keeps rows cheap to clone.
    Str(Arc<str>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// `true` iff this value is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Syntactic equality `≐` of Definition 2: `t` iff both sides are the
    /// same constant or both are `NULL`; `f` otherwise. Never `u`.
    pub fn syntactic_eq(&self, other: &Value) -> Truth {
        Truth::from_bool(self == other)
    }

    /// SQL (3VL) equality: `u` if either side is `NULL`, otherwise the
    /// Boolean outcome of the comparison (Figure 6, case `P` = `=`).
    ///
    /// Comparing non-null constants of different types is a type error —
    /// the paper assumes queries have been type-checked (§2), so reaching
    /// such a comparison indicates a malformed query.
    pub fn sql_eq(&self, other: &Value) -> Result<Truth, EvalError> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Truth::Unknown),
            (Value::Bool(a), Value::Bool(b)) => Ok(Truth::from_bool(a == b)),
            (Value::Int(a), Value::Int(b)) => Ok(Truth::from_bool(a == b)),
            (Value::Str(a), Value::Str(b)) => Ok(Truth::from_bool(a == b)),
            _ => Err(self.type_mismatch(other, "=")),
        }
    }

    /// SQL (3VL) ordering comparison: `u` if either side is `NULL`,
    /// otherwise the Boolean outcome. `op` selects the comparison.
    pub fn sql_cmp(&self, other: &Value, op: CmpOp) -> Result<Truth, EvalError> {
        use std::cmp::Ordering;
        if self.is_null() || other.is_null() {
            return Ok(Truth::Unknown);
        }
        if let CmpOp::Eq = op {
            return self.sql_eq(other);
        }
        if let CmpOp::Neq = op {
            return Ok(self.sql_eq(other)?.not());
        }
        let ord: Ordering = match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => return Err(self.type_mismatch(other, op.symbol())),
        };
        let holds = match op {
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Leq => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Geq => ord.is_ge(),
            CmpOp::Eq | CmpOp::Neq => unreachable!("handled above"),
        };
        Ok(Truth::from_bool(holds))
    }

    /// SQL `LIKE` with `%` (any sequence) and `_` (any single character):
    /// `u` if either side is `NULL`; a type error unless both are strings.
    pub fn sql_like(&self, pattern: &Value) -> Result<Truth, EvalError> {
        match (self, pattern) {
            (Value::Null, _) | (_, Value::Null) => Ok(Truth::Unknown),
            (Value::Str(s), Value::Str(p)) => Ok(Truth::from_bool(like_match(s, p))),
            _ => Err(self.type_mismatch(pattern, "LIKE")),
        }
    }

    /// The name of this value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Str(_) => "string",
        }
    }

    fn type_mismatch(&self, other: &Value, op: &str) -> EvalError {
        EvalError::TypeMismatch {
            op: op.to_string(),
            left: self.type_name(),
            right: other.type_name(),
        }
    }
}

/// The built-in comparison predicates, always available in the collection
/// `P` (the paper assumes at least `=`; `<`, `≤` etc. are its examples of
/// type-specific predicates).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Leq,
    /// `>`
    Gt,
    /// `>=`
    Geq,
}

impl CmpOp {
    /// All comparison operators.
    pub const ALL: [CmpOp; 6] =
        [CmpOp::Eq, CmpOp::Neq, CmpOp::Lt, CmpOp::Leq, CmpOp::Gt, CmpOp::Geq];

    /// The SQL surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Leq => "<=",
            CmpOp::Gt => ">",
            CmpOp::Geq => ">=",
        }
    }

    /// The operator whose 3VL value is the negation of this one on
    /// non-null arguments (`=`↔`<>`, `<`↔`>=`, `>`↔`<=`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Neq,
            CmpOp::Neq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Geq,
            CmpOp::Leq => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Leq,
            CmpOp::Geq => CmpOp::Lt,
        }
    }

    /// The operator with the argument order swapped (`<`↔`>`, `<=`↔`>=`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Neq => CmpOp::Neq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Leq => CmpOp::Geq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Geq => CmpOp::Leq,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(true) => f.write_str("TRUE"),
            Value::Bool(false) => f.write_str("FALSE"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::Int(n as i64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s))
    }
}

/// Matches `text` against a SQL `LIKE` pattern with `%` and `_`
/// metacharacters, by character (not byte), using iterative backtracking on
/// the most recent `%`.
fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    // Position of the last `%` seen and the text position it matched up to.
    let (mut star, mut mark) = (None::<usize>, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            mark = ti;
            pi += 1;
        } else if let Some(s) = star {
            // Let the last `%` absorb one more character and retry.
            pi = s + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::{False, True, Unknown};

    #[test]
    fn syntactic_equality_treats_nulls_as_equal() {
        assert_eq!(Value::Null.syntactic_eq(&Value::Null), True);
        assert_eq!(Value::Null.syntactic_eq(&Value::Int(1)), False);
        assert_eq!(Value::Int(1).syntactic_eq(&Value::Int(1)), True);
        assert_eq!(Value::Int(1).syntactic_eq(&Value::Int(2)), False);
    }

    #[test]
    fn sql_equality_is_unknown_on_null() {
        assert_eq!(Value::Null.sql_eq(&Value::Null).unwrap(), Unknown);
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)).unwrap(), Unknown);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null).unwrap(), Unknown);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)).unwrap(), True);
        assert_eq!(Value::str("a").sql_eq(&Value::str("b")).unwrap(), False);
    }

    #[test]
    fn sql_equality_rejects_type_clashes() {
        assert!(Value::Int(1).sql_eq(&Value::str("1")).is_err());
        assert!(Value::Bool(true).sql_eq(&Value::Int(1)).is_err());
        // ... but NULL against anything is fine (unknown).
        assert_eq!(Value::Null.sql_eq(&Value::Bool(true)).unwrap(), Unknown);
    }

    #[test]
    fn ordering_comparisons() {
        let (a, b) = (Value::Int(1), Value::Int(2));
        assert_eq!(a.sql_cmp(&b, CmpOp::Lt).unwrap(), True);
        assert_eq!(a.sql_cmp(&b, CmpOp::Geq).unwrap(), False);
        assert_eq!(a.sql_cmp(&b, CmpOp::Neq).unwrap(), True);
        assert_eq!(a.sql_cmp(&a, CmpOp::Leq).unwrap(), True);
        assert_eq!(Value::str("abc").sql_cmp(&Value::str("abd"), CmpOp::Lt).unwrap(), True);
        assert_eq!(Value::Null.sql_cmp(&b, CmpOp::Lt).unwrap(), Unknown);
        assert_eq!(a.sql_cmp(&Value::Null, CmpOp::Gt).unwrap(), Unknown);
    }

    #[test]
    fn negated_op_is_3vl_complement_on_constants() {
        for op in CmpOp::ALL {
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                let (a, b) = (Value::Int(a), Value::Int(b));
                assert_eq!(a.sql_cmp(&b, op).unwrap().not(), a.sql_cmp(&b, op.negated()).unwrap());
            }
        }
    }

    #[test]
    fn flipped_op_swaps_arguments() {
        for op in CmpOp::ALL {
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                let (a, b) = (Value::Int(a), Value::Int(b));
                assert_eq!(a.sql_cmp(&b, op).unwrap(), b.sql_cmp(&a, op.flipped()).unwrap());
            }
        }
    }

    #[test]
    fn like_basic_patterns() {
        let s = |x: &str| Value::str(x);
        assert_eq!(s("hello").sql_like(&s("hello")).unwrap(), True);
        assert_eq!(s("hello").sql_like(&s("h%")).unwrap(), True);
        assert_eq!(s("hello").sql_like(&s("%o")).unwrap(), True);
        assert_eq!(s("hello").sql_like(&s("%ell%")).unwrap(), True);
        assert_eq!(s("hello").sql_like(&s("h_llo")).unwrap(), True);
        assert_eq!(s("hello").sql_like(&s("h_l_o")).unwrap(), True);
        assert_eq!(s("hello").sql_like(&s("h_o")).unwrap(), False);
        assert_eq!(s("hello").sql_like(&s("")).unwrap(), False);
        assert_eq!(s("").sql_like(&s("%")).unwrap(), True);
        assert_eq!(s("abc").sql_like(&s("a%b%c")).unwrap(), True);
        assert_eq!(s("ab").sql_like(&s("a_b")).unwrap(), False);
    }

    #[test]
    fn like_backtracks_across_multiple_percents() {
        let s = |x: &str| Value::str(x);
        assert_eq!(s("mississippi").sql_like(&s("%iss%pi")).unwrap(), True);
        assert_eq!(s("mississippi").sql_like(&s("%iss%issi%")).unwrap(), True);
        assert_eq!(s("mississippi").sql_like(&s("%zz%")).unwrap(), False);
    }

    #[test]
    fn like_is_unknown_on_null() {
        assert_eq!(Value::Null.sql_like(&Value::str("%")).unwrap(), Unknown);
        assert_eq!(Value::str("x").sql_like(&Value::Null).unwrap(), Unknown);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::str("it's").to_string(), "'it''s'");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
    }
}
