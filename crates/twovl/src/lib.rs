//! # sqlsem-twovl
//!
//! Three-valued logic is *not needed* for basic SQL: the §6 development
//! of Guagliardo & Libkin (PVLDB 2017), Theorem 2, implemented as
//! executable query-to-query translations.
//!
//! * [`to_two_valued`] — the Figure 10 translation `Q ↦ Q′` with
//!   `⟦Q⟧_D = ⟦Q′⟧₂ᵥ_D`: the original 3VL behaviour, reproduced under a
//!   purely two-valued evaluation;
//! * [`to_three_valued`] — the converse `Q ↦ Q″` with
//!   `⟦Q⟧₂ᵥ_D = ⟦Q″⟧_D`;
//! * both parameterised by the [`EqInterpretation`] of the equality
//!   predicate (conflating or syntactic), as in the paper;
//! * [`blow_up`] — size statistics quantifying the §6 remark that
//!   emulating 3VL behaviour under 2VL "leads to more cumbersome …
//!   queries".
//!
//! ```
//! use sqlsem_core::{table, Database, Evaluator, Schema, Value};
//! use sqlsem_parser::compile;
//! use sqlsem_twovl::{to_two_valued, EqInterpretation};
//!
//! let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
//! let mut db = Database::new(schema.clone());
//! db.replace_table("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
//! db.replace_table("S", table! { ["A"]; [Value::Null] }).unwrap();
//!
//! // Example 1's Q1: empty under 3VL because of the NULL in S.
//! let q = compile("SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", &schema)
//!     .unwrap();
//! let q2 = to_two_valued(&q, EqInterpretation::Conflate);
//!
//! let three_valued = Evaluator::new(&db).eval(&q).unwrap();
//! let two_valued = Evaluator::new(&db)
//!     .with_logic(EqInterpretation::Conflate.logic_mode())
//!     .eval(&q2)
//!     .unwrap();
//! assert!(three_valued.coincides(&two_valued)); // both empty
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod translate;

pub use translate::{blow_up, to_three_valued, to_two_valued, BlowUp, EqInterpretation};

#[cfg(test)]
mod tests {
    use super::*;
    use sqlsem_core::{table, Database, Evaluator, Schema, Value};
    use sqlsem_parser::compile;

    fn schema() -> Schema {
        Schema::builder().table("R", ["A", "B"]).table("S", ["A"]).build().unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new(schema());
        db.replace_table(
            "R",
            table! { ["A", "B"]; [1, 2], [1, 2], [Value::Null, 3], [4, Value::Null] },
        )
        .unwrap();
        db.replace_table("S", table! { ["A"]; [1], [Value::Null], [4] }).unwrap();
        db
    }

    /// Checks the forward direction on one query under both equality
    /// interpretations: ⟦Q⟧ = ⟦Q′⟧₂ᵥ.
    fn check_forward(sql: &str) {
        let schema = schema();
        let db = db();
        let q = compile(sql, &schema).unwrap();
        let expected = Evaluator::new(&db).eval(&q).unwrap();
        for eq in [EqInterpretation::Conflate, EqInterpretation::Syntactic] {
            let q2 = to_two_valued(&q, eq);
            let got = Evaluator::new(&db).with_logic(eq.logic_mode()).eval(&q2).unwrap();
            assert!(
                expected.coincides(&got),
                "{sql} [{eq:?}]\n3VL:\n{expected}\n2VL of translated:\n{got}\ntranslated: {q2}"
            );
        }
    }

    /// Checks the backward direction: ⟦Q⟧₂ᵥ = ⟦Q″⟧.
    fn check_backward(sql: &str) {
        let schema = schema();
        let db = db();
        let q = compile(sql, &schema).unwrap();
        for eq in [EqInterpretation::Conflate, EqInterpretation::Syntactic] {
            let expected = Evaluator::new(&db).with_logic(eq.logic_mode()).eval(&q).unwrap();
            let q3 = to_three_valued(&q, eq);
            let got = Evaluator::new(&db).eval(&q3).unwrap();
            assert!(
                expected.coincides(&got),
                "{sql} [{eq:?}]\n2VL:\n{expected}\n3VL of translated:\n{got}\ntranslated: {q3}"
            );
        }
    }

    const QUERIES: &[&str] = &[
        "SELECT A, B FROM R",
        "SELECT A FROM R WHERE A = 1",
        "SELECT A FROM R WHERE NOT A = 1",
        "SELECT A FROM R WHERE A <> 1 OR B IS NULL",
        "SELECT A FROM R WHERE NOT (A = 1 AND B = 2)",
        "SELECT A FROM R WHERE A < B",
        "SELECT A FROM S WHERE A IN (SELECT A FROM R)",
        "SELECT A FROM S WHERE A NOT IN (SELECT A FROM R)",
        "SELECT A FROM S WHERE NOT A IN (SELECT A FROM R)",
        "SELECT A FROM S WHERE EXISTS (SELECT * FROM R WHERE R.A = S.A)",
        "SELECT A FROM S WHERE NOT EXISTS (SELECT * FROM R WHERE R.A = S.A)",
        "SELECT DISTINCT A FROM R WHERE (A, B) IN (SELECT A, B FROM R)",
        "SELECT DISTINCT A FROM R WHERE (A, B) NOT IN (SELECT A, B FROM R)",
        "SELECT A FROM S WHERE A IN (SELECT A FROM R) OR A IS NULL",
        "SELECT A FROM S UNION SELECT A FROM R",
        "SELECT A FROM S EXCEPT SELECT A FROM R",
        "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
        "SELECT x.A AS a FROM R x WHERE NOT (x.A IN (SELECT A FROM S) AND x.B = 2)",
    ];

    #[test]
    fn forward_direction_on_handwritten_queries() {
        for sql in QUERIES {
            check_forward(sql);
        }
    }

    #[test]
    fn backward_direction_on_handwritten_queries() {
        for sql in QUERIES {
            check_backward(sql);
        }
    }

    #[test]
    fn example1_q1_is_the_flagship_case() {
        // Under 3VL, Q1 is empty; the naive 2VL evaluation of Q1 itself
        // is NOT empty — the translation is what restores the behaviour.
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema.clone());
        db.replace_table("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
        db.replace_table("S", table! { ["A"]; [Value::Null] }).unwrap();
        let q = compile("SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", &schema)
            .unwrap();
        let three = Evaluator::new(&db).eval(&q).unwrap();
        assert!(three.is_empty());
        // Naive 2VL disagrees…
        let naive = Evaluator::new(&db)
            .with_logic(EqInterpretation::Conflate.logic_mode())
            .eval(&q)
            .unwrap();
        assert!(!naive.coincides(&three));
        // …the translation agrees.
        let q2 = to_two_valued(&q, EqInterpretation::Conflate);
        let translated = Evaluator::new(&db)
            .with_logic(EqInterpretation::Conflate.logic_mode())
            .eval(&q2)
            .unwrap();
        assert!(translated.coincides(&three));
    }

    #[test]
    fn translations_leave_null_free_data_unchanged() {
        let schema = schema();
        let mut db = Database::new(schema.clone());
        db.replace_table("R", table! { ["A", "B"]; [1, 2], [3, 4] }).unwrap();
        db.replace_table("S", table! { ["A"]; [1] }).unwrap();
        for sql in QUERIES {
            let q = compile(sql, &schema).unwrap();
            let base = Evaluator::new(&db).eval(&q).unwrap();
            for eq in [EqInterpretation::Conflate, EqInterpretation::Syntactic] {
                let q2 = to_two_valued(&q, eq);
                let got = Evaluator::new(&db).with_logic(eq.logic_mode()).eval(&q2).unwrap();
                assert!(base.coincides(&got), "{sql} [{eq:?}] on null-free data");
            }
        }
    }

    #[test]
    fn blow_up_reports_growth() {
        let schema = schema();
        let q =
            compile("SELECT A FROM S WHERE A NOT IN (SELECT A FROM R WHERE NOT R.B = 2)", &schema)
                .unwrap();
        let b = blow_up(&q, EqInterpretation::Conflate);
        assert!(b.atoms_after > b.atoms_before, "{b:?}");
        assert!(b.blocks_after >= b.blocks_before, "{b:?}");
    }

    #[test]
    fn translation_only_touches_conditions() {
        // Output columns and shape are preserved.
        let schema = schema();
        let q = compile("SELECT DISTINCT A, B FROM R WHERE A = 1", &schema).unwrap();
        for eq in [EqInterpretation::Conflate, EqInterpretation::Syntactic] {
            let q2 = to_two_valued(&q, eq);
            assert_eq!(
                sqlsem_core::sig::output_columns(&q, &schema).unwrap(),
                sqlsem_core::sig::output_columns(&q2, &schema).unwrap()
            );
        }
    }
}
