//! The Figure 10 translations: eliminating three-valued logic (§6,
//! Theorem 2).
//!
//! Theorem 2: basic SQL queries have the same expressiveness under the
//! three-valued and the two-valued semantics — for every query `Q` there
//! are queries `Q′` and `Q″` with `⟦Q⟧_D = ⟦Q′⟧₂ᵥ_D` and
//! `⟦Q⟧₂ᵥ_D = ⟦Q″⟧_D` on all databases, under either interpretation of
//! equality.
//!
//! The forward direction ([`to_two_valued`]) defines, by mutual
//! induction, conditions `θᵗ` and `θᶠ` that describe under two-valued
//! semantics when `θ` is `t` (resp. `f`) under 3VL, and rewrites every
//! `WHERE` clause to its `θᵗ`. The delicate case is `NOT IN`, whose
//! `f`-translation needs the construct `Q′ AS N(A₁,…,Aₙ)` to name the
//! subquery's columns:
//!
//! ```text
//! (t̄ IN Q)ᶠ = NOT EXISTS (SELECT * FROM Q′ AS N(A₁,…,Aₙ) WHERE
//!                (t₁ IS NULL OR A₁ IS NULL OR t₁ = N.A₁) AND … )
//! ```
//!
//! When equality is interpreted *syntactically* (`≐`, Definition 2) the
//! equality atoms additionally guard against `NULL ≐ NULL` succeeding
//! where SQL's `=` would be unknown.
//!
//! The backward direction ([`to_three_valued`]) is the "immediate" one
//! the paper describes: two-valued predicates are expressed in 3VL by
//! conjoining `IS NOT NULL` guards (and, for `≐`, adding the both-`NULL`
//! disjunct).

use std::collections::HashSet;

use sqlsem_core::ast::{
    Aggregate, Condition, FromExpr, FromItem, Query, SelectItem, SelectList, SelectQuery, TableRef,
    Term,
};
use sqlsem_core::{CmpOp, LogicMode, Name};

/// Which two-valued interpretation of the equality predicate is in force
/// (§6 offers both; Theorem 2 holds for either).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EqInterpretation {
    /// `=` conflates `u` with `f`, like every other predicate.
    Conflate,
    /// `=` means syntactic equality `≐` (Definition 2): `NULL ≐ NULL`
    /// holds.
    Syntactic,
}

impl EqInterpretation {
    /// The matching evaluator mode.
    pub fn logic_mode(self) -> LogicMode {
        match self {
            EqInterpretation::Conflate => LogicMode::TwoValuedConflate,
            EqInterpretation::Syntactic => LogicMode::TwoValuedSyntacticEq,
        }
    }
}

/// Fresh plain-name source for the `Q′ AS N(A₁,…,Aₙ)` constructs.
#[derive(Clone, Debug, Default)]
struct Names {
    used: HashSet<Name>,
    counter: usize,
}

impl Names {
    fn avoiding_query(q: &Query) -> Names {
        let mut used = HashSet::new();
        collect_names(q, &mut used);
        Names { used, counter: 0 }
    }

    fn fresh(&mut self, hint: &str) -> Name {
        loop {
            self.counter += 1;
            let candidate = Name::new(format!("{hint}_{}", self.counter));
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
}

/// Collects every name used anywhere in the query (aliases, columns,
/// output names, base tables).
fn collect_names(query: &Query, out: &mut HashSet<Name>) {
    query.visit(&mut |node| {
        if let Query::Select(s) = node {
            if let SelectList::Items(items) = &s.select {
                for i in items {
                    out.insert(i.alias.clone());
                    collect_term_names(&i.term, out);
                }
            }
            for fe in &s.from {
                fe.visit_items(&mut |f| {
                    out.insert(f.alias.clone());
                    if let TableRef::Base(r) = &f.table {
                        out.insert(r.clone());
                    }
                    if let Some(cols) = &f.columns {
                        out.extend(cols.iter().cloned());
                    }
                });
                collect_on_names(fe, out);
            }
            collect_cond_names(&s.where_, out);
            for key in &s.group_by {
                collect_term_names(key, out);
            }
            collect_cond_names(&s.having, out);
        }
    });
}

fn collect_term_names(term: &Term, out: &mut HashSet<Name>) {
    term.visit_columns(&mut |n| {
        out.insert(n.table.clone());
        out.insert(n.column.clone());
    });
}

fn collect_cond_names(cond: &Condition, out: &mut HashSet<Name>) {
    // Nested queries are handled by `collect_names`' visitor.
    cond.visit_terms(&mut |t| collect_term_names(t, out));
}

/// Collects the names used in `ON` conditions anywhere in a `FROM`
/// expression (leaf items are covered by the caller's item visitor).
fn collect_on_names(fe: &FromExpr, out: &mut HashSet<Name>) {
    if let FromExpr::Join { left, right, on, .. } = fe {
        collect_on_names(left, out);
        collect_on_names(right, out);
        collect_cond_names(on, out);
    }
}

// ---------------------------------------------------------------------------
// Forward direction: 3VL → 2VL (Figure 10)
// ---------------------------------------------------------------------------

/// The `Q ↦ Q′` translation of Theorem 2: `⟦Q⟧_D = ⟦Q′⟧₂ᵥ_D` for every
/// database, where `⟦·⟧₂ᵥ` is the two-valued semantics with equality
/// interpreted per `eq`.
pub fn to_two_valued(query: &Query, eq: EqInterpretation) -> Query {
    let mut names = Names::avoiding_query(query);
    query_2v(query, eq, &mut names)
}

fn query_2v(query: &Query, eq: EqInterpretation, names: &mut Names) -> Query {
    match query {
        Query::SetOp { op, all, left, right } => Query::SetOp {
            op: *op,
            all: *all,
            left: Box::new(query_2v(left, eq, names)),
            right: Box::new(query_2v(right, eq, names)),
        },
        Query::Select(s) => Query::Select(SelectQuery {
            distinct: s.distinct,
            select: select_2v(&s.select, eq, names),
            from: s.from.iter().map(|fe| from_2v(fe, eq, names)).collect(),
            // Only rows with θ = t are kept, so θ becomes θᵗ.
            where_: cond_t(&s.where_, eq, names),
            group_by: s.group_by.iter().map(|t| term_2v(t, eq, names)).collect(),
            // Groups are kept exactly when HAVING is t, so it becomes θᵗ
            // too; the aggregates themselves are logic-mode independent.
            having: cond_t(&s.having, eq, names),
            // The list layer (ORDER BY / LIMIT / OFFSET) is condition-free
            // and logic-mode independent: carried through verbatim.
            order_by: s.order_by.clone(),
            limit: s.limit,
            offset: s.offset,
        }),
    }
}

/// The forward translation of a `FROM` expression. A join pair matches
/// (and padding is withheld) exactly when the `ON` condition is `t`
/// under 3VL, so `ON` translates like `WHERE`: `θ ↦ θᵗ`. The dangling
/// rows — no counterpart with `ON` = `t` — are then the same on both
/// sides of the translation, so the padded output coincides too.
fn from_2v(fe: &FromExpr, eq: EqInterpretation, names: &mut Names) -> FromExpr {
    match fe {
        FromExpr::Item(f) => FromExpr::Item(item_2v(f, eq, names)),
        FromExpr::Join { kind, left, right, on } => FromExpr::Join {
            kind: *kind,
            left: Box::new(from_2v(left, eq, names)),
            right: Box::new(from_2v(right, eq, names)),
            on: Box::new(cond_t(on, eq, names)),
        },
    }
}

fn item_2v(f: &FromItem, eq: EqInterpretation, names: &mut Names) -> FromItem {
    FromItem {
        table: match &f.table {
            TableRef::Base(r) => TableRef::Base(r.clone()),
            TableRef::Query(q) => TableRef::Query(Box::new(query_2v(q, eq, names))),
        },
        alias: f.alias.clone(),
        columns: f.columns.clone(),
    }
}

fn select_2v(select: &SelectList, eq: EqInterpretation, names: &mut Names) -> SelectList {
    match select {
        SelectList::Star => SelectList::Star,
        SelectList::Items(items) => SelectList::Items(
            items
                .iter()
                .map(|i| SelectItem { term: term_2v(&i.term, eq, names), alias: i.alias.clone() })
                .collect(),
        ),
    }
}

/// The forward translation of a *term*: `CASE` embeds conditions whose
/// branch is taken exactly when the condition is `t`, so each branch
/// condition becomes its `θᵗ` — the term then evaluates to the same
/// value under `⟦·⟧₂ᵥ` as the original did under 3VL. `COALESCE` is
/// condition-free and `NULLIF`'s equality verdict is "is `t`", which
/// every logic mode answers identically on the reachable cases (a
/// `NULL` operand makes the result `NULL`-or-first-operand either way),
/// so both only recurse.
fn term_2v(term: &Term, eq: EqInterpretation, names: &mut Names) -> Term {
    match term {
        Term::Const(_) | Term::Col(_) => term.clone(),
        Term::Agg(a) => Term::Agg(Box::new(Aggregate {
            func: a.func,
            distinct: a.distinct,
            arg: a.arg.as_ref().map(|t| term_2v(t, eq, names)),
        })),
        Term::Case { branches, else_ } => Term::Case {
            branches: branches
                .iter()
                .map(|(c, t)| (cond_t(c, eq, names), term_2v(t, eq, names)))
                .collect(),
            else_: else_.as_ref().map(|t| Box::new(term_2v(t, eq, names))),
        },
        Term::Coalesce(ts) => Term::Coalesce(ts.iter().map(|t| term_2v(t, eq, names)).collect()),
        Term::Nullif(a, b) => {
            Term::Nullif(Box::new(term_2v(a, eq, names)), Box::new(term_2v(b, eq, names)))
        }
    }
}

/// `θᵗ`: true under `⟦·⟧₂ᵥ` exactly when `θ` is `t` under 3VL.
fn cond_t(cond: &Condition, eq: EqInterpretation, names: &mut Names) -> Condition {
    match cond {
        Condition::True => Condition::True,
        Condition::False => Condition::False,
        Condition::Cmp { left, op, right } => {
            let (l, r) = (term_2v(left, eq, names), term_2v(right, eq, names));
            match (eq, op) {
                // Syntactic mode: (t₁ = t₂)ᵗ = t₁ = t₂ AND (t₁,t₂) IS NOT NULL.
                (EqInterpretation::Syntactic, CmpOp::Eq) => {
                    Condition::Cmp { left: l.clone(), op: *op, right: r.clone() }
                        .and(Condition::is_not_null(l))
                        .and(Condition::is_not_null(r))
                }
                // Conflating mode: P(t̄)ᵗ = P(t̄) — conflation already maps u
                // to f.
                _ => Condition::Cmp { left: l, op: *op, right: r },
            }
        }
        // Other predicates conflate in both modes (terms still translate:
        // they may embed `CASE` conditions).
        Condition::Like { term, pattern, negated } => Condition::Like {
            term: term_2v(term, eq, names),
            pattern: term_2v(pattern, eq, names),
            negated: *negated,
        },
        Condition::Pred { name, args } => Condition::Pred {
            name: name.clone(),
            args: args.iter().map(|a| term_2v(a, eq, names)).collect(),
        },
        // Already two-valued under every semantics.
        Condition::IsNull { term, negated } => {
            Condition::IsNull { term: term_2v(term, eq, names), negated: *negated }
        }
        Condition::IsDistinct { left, right, negated } => Condition::IsDistinct {
            left: term_2v(left, eq, names),
            right: term_2v(right, eq, names),
            negated: *negated,
        },
        Condition::Exists(q) => Condition::Exists(Box::new(query_2v(q, eq, names))),
        Condition::And(a, b) => cond_t(a, eq, names).and(cond_t(b, eq, names)),
        Condition::Or(a, b) => cond_t(a, eq, names).or(cond_t(b, eq, names)),
        Condition::Not(c) => cond_f(c, eq, names),
        Condition::In { terms, query, negated } => {
            if *negated {
                in_f(terms, query, eq, names)
            } else {
                in_t(terms, query, eq, names)
            }
        }
    }
}

/// `θᶠ`: true under `⟦·⟧₂ᵥ` exactly when `θ` is `f` under 3VL.
fn cond_f(cond: &Condition, eq: EqInterpretation, names: &mut Names) -> Condition {
    match cond {
        Condition::True => Condition::False,
        Condition::False => Condition::True,
        // P(t̄)ᶠ = NOT P(t̄) AND t̄ IS NOT NULL.
        Condition::Cmp { left, op, right } => {
            let (l, r) = (term_2v(left, eq, names), term_2v(right, eq, names));
            Condition::Cmp { left: l.clone(), op: *op, right: r.clone() }
                .not()
                .and(Condition::is_not_null(l))
                .and(Condition::is_not_null(r))
        }
        Condition::Like { term, pattern, negated } => {
            let (t, p) = (term_2v(term, eq, names), term_2v(pattern, eq, names));
            Condition::Like { term: t.clone(), pattern: p.clone(), negated: !*negated }
                .and(Condition::is_not_null(t))
                .and(Condition::is_not_null(p))
        }
        Condition::Pred { name, args } => {
            let args: Vec<Term> = args.iter().map(|a| term_2v(a, eq, names)).collect();
            let guards = Condition::all(args.iter().map(|a| Condition::is_not_null(a.clone())));
            Condition::Pred { name: name.clone(), args }.not().and(guards)
        }
        Condition::IsNull { term, negated } => {
            Condition::IsNull { term: term_2v(term, eq, names), negated: !*negated }
        }
        // Two-valued: its f-translation is the opposite polarity.
        Condition::IsDistinct { left, right, negated } => Condition::IsDistinct {
            left: term_2v(left, eq, names),
            right: term_2v(right, eq, names),
            negated: !*negated,
        },
        Condition::Exists(q) => Condition::Exists(Box::new(query_2v(q, eq, names))).not(),
        Condition::And(a, b) => cond_f(a, eq, names).or(cond_f(b, eq, names)),
        Condition::Or(a, b) => cond_f(a, eq, names).and(cond_f(b, eq, names)),
        Condition::Not(c) => cond_t(c, eq, names),
        Condition::In { terms, query, negated } => {
            if *negated {
                in_t(terms, query, eq, names)
            } else {
                in_f(terms, query, eq, names)
            }
        }
    }
}

/// `(t̄ IN Q)ᵗ`.
fn in_t(terms: &[Term], query: &Query, eq: EqInterpretation, names: &mut Names) -> Condition {
    let terms: Vec<Term> = terms.iter().map(|t| term_2v(t, eq, names)).collect();
    let q2 = query_2v(query, eq, names);
    match eq {
        // Conflating equality: t̄ IN Q′ is already right — each component
        // equality conflates u to f, so the disjunction is t exactly when
        // a row matches with all components true.
        EqInterpretation::Conflate => Condition::In { terms, query: Box::new(q2), negated: false },
        // Syntactic equality would let NULL match NULL, so the membership
        // is spelled out with guarded comparisons (§6):
        // EXISTS (SELECT * FROM Q′ AS N(Ā) WHERE ⋀ (tᵢ = N.Aᵢ)ᵗ).
        EqInterpretation::Syntactic => {
            let (from_item, alias, columns) = named_subquery(q2, terms.len(), names);
            let comparisons = Condition::all(terms.iter().zip(&columns).map(|(t, a)| {
                let col = Term::col(alias.clone(), a.clone());
                Condition::eq(t.clone(), col.clone())
                    .and(Condition::is_not_null(t.clone()))
                    .and(Condition::is_not_null(col))
            }));
            Condition::exists(Query::Select(
                SelectQuery::new(SelectList::Star, vec![from_item]).filter(comparisons),
            ))
        }
    }
}

/// `(t̄ IN Q)ᶠ` — the Figure 10 `NOT EXISTS` construction.
fn in_f(terms: &[Term], query: &Query, eq: EqInterpretation, names: &mut Names) -> Condition {
    let terms: Vec<Term> = terms.iter().map(|t| term_2v(t, eq, names)).collect();
    let q2 = query_2v(query, eq, names);
    let (from_item, alias, columns) = named_subquery(q2, terms.len(), names);
    let component = |t: &Term, a: &Name| -> Condition {
        let col = Term::col(alias.clone(), a.clone());
        let equality = match eq {
            // tᵢ = N.Aᵢ (conflating equality is u-free already).
            EqInterpretation::Conflate => Condition::eq(t.clone(), col.clone()),
            // (tᵢ = N.Aᵢ)ᵗ — guard the syntactic equality.
            EqInterpretation::Syntactic => Condition::eq(t.clone(), col.clone())
                .and(Condition::is_not_null(t.clone()))
                .and(Condition::is_not_null(col.clone())),
        };
        Condition::is_null(t.clone()).or(Condition::is_null(col)).or(equality)
    };
    let body = Condition::all(terms.iter().zip(&columns).map(|(t, a)| component(t, a)));
    Condition::exists(Query::Select(
        SelectQuery::new(SelectList::Star, vec![from_item]).filter(body),
    ))
    .not()
}

/// Builds `Q′ AS N(A₁,…,Aₙ)` with fresh `N`, `Āᵢ`.
fn named_subquery(q: Query, arity: usize, names: &mut Names) -> (FromItem, Name, Vec<Name>) {
    let alias = names.fresh("n");
    let columns: Vec<Name> = (0..arity).map(|_| names.fresh("a")).collect();
    let item = FromItem::subquery(q, alias.clone()).with_columns(columns.clone());
    (item, alias, columns)
}

// ---------------------------------------------------------------------------
// Backward direction: 2VL → 3VL
// ---------------------------------------------------------------------------

/// The `Q ↦ Q″` translation: `⟦Q⟧₂ᵥ_D = ⟦Q″⟧_D` (3VL) for every
/// database. Predicates gain `IS NOT NULL` guards (making `u`
/// unreachable); under the syntactic interpretation, equality atoms are
/// expanded per Definition 2.
pub fn to_three_valued(query: &Query, eq: EqInterpretation) -> Query {
    let mut names = Names::avoiding_query(query);
    query_3v(query, eq, &mut names)
}

fn query_3v(query: &Query, eq: EqInterpretation, names: &mut Names) -> Query {
    match query {
        Query::SetOp { op, all, left, right } => Query::SetOp {
            op: *op,
            all: *all,
            left: Box::new(query_3v(left, eq, names)),
            right: Box::new(query_3v(right, eq, names)),
        },
        Query::Select(s) => Query::Select(SelectQuery {
            distinct: s.distinct,
            select: select_3v(&s.select, eq, names),
            from: s.from.iter().map(|fe| from_3v(fe, eq, names)).collect(),
            where_: cond_3v(&s.where_, eq, names),
            group_by: s.group_by.iter().map(|t| term_3v(t, eq, names)).collect(),
            having: cond_3v(&s.having, eq, names),
            order_by: s.order_by.clone(),
            limit: s.limit,
            offset: s.offset,
        }),
    }
}

/// The backward translation of a `FROM` expression: as in [`from_2v`],
/// the join match criterion "`ON` is `t`" makes `ON` translate exactly
/// like `WHERE`.
fn from_3v(fe: &FromExpr, eq: EqInterpretation, names: &mut Names) -> FromExpr {
    match fe {
        FromExpr::Item(f) => FromExpr::Item(item_3v(f, eq, names)),
        FromExpr::Join { kind, left, right, on } => FromExpr::Join {
            kind: *kind,
            left: Box::new(from_3v(left, eq, names)),
            right: Box::new(from_3v(right, eq, names)),
            on: Box::new(cond_3v(on, eq, names)),
        },
    }
}

fn item_3v(f: &FromItem, eq: EqInterpretation, names: &mut Names) -> FromItem {
    FromItem {
        table: match &f.table {
            TableRef::Base(r) => TableRef::Base(r.clone()),
            TableRef::Query(q) => TableRef::Query(Box::new(query_3v(q, eq, names))),
        },
        alias: f.alias.clone(),
        columns: f.columns.clone(),
    }
}

fn select_3v(select: &SelectList, eq: EqInterpretation, names: &mut Names) -> SelectList {
    match select {
        SelectList::Star => SelectList::Star,
        SelectList::Items(items) => SelectList::Items(
            items
                .iter()
                .map(|i| SelectItem { term: term_3v(&i.term, eq, names), alias: i.alias.clone() })
                .collect(),
        ),
    }
}

/// The backward translation of a term (see [`term_2v`] for why only
/// `CASE`'s branch conditions need rewriting).
fn term_3v(term: &Term, eq: EqInterpretation, names: &mut Names) -> Term {
    match term {
        Term::Const(_) | Term::Col(_) => term.clone(),
        Term::Agg(a) => Term::Agg(Box::new(Aggregate {
            func: a.func,
            distinct: a.distinct,
            arg: a.arg.as_ref().map(|t| term_3v(t, eq, names)),
        })),
        Term::Case { branches, else_ } => Term::Case {
            branches: branches
                .iter()
                .map(|(c, t)| (cond_3v(c, eq, names), term_3v(t, eq, names)))
                .collect(),
            else_: else_.as_ref().map(|t| Box::new(term_3v(t, eq, names))),
        },
        Term::Coalesce(ts) => Term::Coalesce(ts.iter().map(|t| term_3v(t, eq, names)).collect()),
        Term::Nullif(a, b) => {
            Term::Nullif(Box::new(term_3v(a, eq, names)), Box::new(term_3v(b, eq, names)))
        }
    }
}

/// Expresses the two-valued semantics of a condition in 3VL: the result
/// never evaluates to `u`, and is `t` exactly when the condition is `t`
/// under `⟦·⟧₂ᵥ`.
fn cond_3v(cond: &Condition, eq: EqInterpretation, names: &mut Names) -> Condition {
    match cond {
        // Already two-valued under 3VL as well: nothing to do.
        Condition::True | Condition::False => cond.clone(),
        Condition::IsNull { term, negated } => {
            Condition::IsNull { term: term_3v(term, eq, names), negated: *negated }
        }
        Condition::IsDistinct { left, right, negated } => Condition::IsDistinct {
            left: term_3v(left, eq, names),
            right: term_3v(right, eq, names),
            negated: *negated,
        },
        Condition::Cmp { left, op, right } => {
            let (l, r) = (term_3v(left, eq, names), term_3v(right, eq, names));
            let guarded = Condition::Cmp { left: l.clone(), op: *op, right: r.clone() }
                .and(Condition::is_not_null(l.clone()))
                .and(Condition::is_not_null(r.clone()));
            match (eq, op) {
                // Syntactic equality: t₁ ≐ t₂ is also t when both are
                // NULL (Definition 2).
                (EqInterpretation::Syntactic, CmpOp::Eq) => {
                    guarded.or(Condition::is_null(l).and(Condition::is_null(r)))
                }
                _ => guarded,
            }
        }
        Condition::Like { term, pattern, negated } => {
            let (t, p) = (term_3v(term, eq, names), term_3v(pattern, eq, names));
            Condition::Like { term: t.clone(), pattern: p.clone(), negated: *negated }
                .and(Condition::is_not_null(t))
                .and(Condition::is_not_null(p))
        }
        Condition::Pred { name, args } => {
            let args: Vec<Term> = args.iter().map(|a| term_3v(a, eq, names)).collect();
            let guards = Condition::all(args.iter().map(|a| Condition::is_not_null(a.clone())));
            Condition::Pred { name: name.clone(), args }.and(guards)
        }
        Condition::Exists(q) => Condition::Exists(Box::new(query_3v(q, eq, names))),
        Condition::And(a, b) => cond_3v(a, eq, names).and(cond_3v(b, eq, names)),
        Condition::Or(a, b) => cond_3v(a, eq, names).or(cond_3v(b, eq, names)),
        // The inner condition is u-free by induction, so ¬ is classical.
        Condition::Not(c) => cond_3v(c, eq, names).not(),
        Condition::In { terms, query, negated } => {
            // ⟦t̄ IN Q⟧₂ᵥ = ∃ row with all components 2v-true: spell it
            // out with EXISTS and per-component u-free equalities.
            let terms: Vec<Term> = terms.iter().map(|t| term_3v(t, eq, names)).collect();
            let q3 = query_3v(query, eq, names);
            let (from_item, alias, columns) = named_subquery(q3, terms.len(), names);
            let body = Condition::all(terms.iter().zip(&columns).map(|(t, a)| {
                let col = Term::col(alias.clone(), a.clone());
                let guarded = Condition::eq(t.clone(), col.clone())
                    .and(Condition::is_not_null(t.clone()))
                    .and(Condition::is_not_null(col.clone()));
                match eq {
                    EqInterpretation::Conflate => guarded,
                    EqInterpretation::Syntactic => {
                        guarded.or(Condition::is_null(t.clone()).and(Condition::is_null(col)))
                    }
                }
            }));
            let exists = Condition::exists(Query::Select(
                SelectQuery::new(SelectList::Star, vec![from_item]).filter(body),
            ));
            if *negated {
                exists.not()
            } else {
                exists
            }
        }
    }
}

/// Size statistics of the `Q ↦ Q′` translation, for the §6 discussion of
/// rewriting overhead ("emulating old behavior turns into case analysis,
/// which leads to more cumbersome … queries").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlowUp {
    /// Condition atoms in the original query (all blocks).
    pub atoms_before: usize,
    /// Condition atoms after translation.
    pub atoms_after: usize,
    /// `SELECT` blocks before.
    pub blocks_before: usize,
    /// `SELECT` blocks after.
    pub blocks_after: usize,
}

/// Measures how much larger `to_two_valued(q, eq)` is than `q`.
pub fn blow_up(q: &Query, eq: EqInterpretation) -> BlowUp {
    let translated = to_two_valued(q, eq);
    BlowUp {
        atoms_before: total_atoms(q),
        atoms_after: total_atoms(&translated),
        blocks_before: q.size(),
        blocks_after: translated.size(),
    }
}

fn total_atoms(q: &Query) -> usize {
    let mut n = 0;
    q.visit(&mut |node| {
        if let Query::Select(s) = node {
            n += s.where_.atom_count();
        }
    });
    n
}
