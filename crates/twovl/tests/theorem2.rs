//! Theorem 2 as a randomised property: for every generated basic SQL
//! query `Q` and random database `D`, under both interpretations of
//! equality,
//!
//! ```text
//! ⟦Q⟧_D          =  ⟦to_two_valued(Q)⟧₂ᵥ_D       (forward)
//! ⟦Q⟧₂ᵥ_D        =  ⟦to_three_valued(Q)⟧_D       (backward)
//! ```
//!
//! Queries that error (the generator's Example 2-style ambiguous stars)
//! must error identically on both sides.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sqlsem_core::{Evaluator, LogicMode};
use sqlsem_generator::{
    paper_schema, random_database, DataGenConfig, QueryGenConfig, QueryGenerator,
};
use sqlsem_twovl::{to_three_valued, to_two_valued, EqInterpretation};

fn run_cases(n: usize, base_seed: u64, data: DataGenConfig) {
    let schema = paper_schema();
    let gen = QueryGenerator::new(&schema, QueryGenConfig::small());
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(base_seed + i as u64);
        let query = gen.generate(&mut rng);
        let db = random_database(&schema, &data, &mut rng);

        for eq in [EqInterpretation::Conflate, EqInterpretation::Syntactic] {
            // Forward: ⟦Q⟧ (3VL) vs ⟦Q′⟧ (2VL).
            let three = Evaluator::new(&db).eval(&query);
            let translated = to_two_valued(&query, eq);
            let two = Evaluator::new(&db).with_logic(eq.logic_mode()).eval(&translated);
            match (&three, &two) {
                (Ok(a), Ok(b)) => assert!(
                    a.coincides(b),
                    "case {i} [{eq:?}] forward mismatch\n{query}\n3VL:\n{a}\n2VL:\n{b}"
                ),
                (Err(e1), Err(e2)) => {
                    assert_eq!(e1.is_ambiguity(), e2.is_ambiguity(), "case {i} [{eq:?}]");
                }
                (a, b) => panic!("case {i} [{eq:?}] verdict mismatch: {a:?} vs {b:?}\n{query}"),
            }

            // Backward: ⟦Q⟧₂ᵥ vs ⟦Q″⟧ (3VL).
            let two_of_q = Evaluator::new(&db).with_logic(eq.logic_mode()).eval(&query);
            let back = to_three_valued(&query, eq);
            let three_of_back = Evaluator::new(&db).with_logic(LogicMode::ThreeValued).eval(&back);
            match (&two_of_q, &three_of_back) {
                (Ok(a), Ok(b)) => assert!(
                    a.coincides(b),
                    "case {i} [{eq:?}] backward mismatch\n{query}\n2VL:\n{a}\n3VL:\n{b}"
                ),
                (Err(e1), Err(e2)) => {
                    assert_eq!(e1.is_ambiguity(), e2.is_ambiguity(), "case {i} [{eq:?}]");
                }
                (a, b) => panic!("case {i} [{eq:?}] verdict mismatch: {a:?} vs {b:?}\n{query}"),
            }
        }
    }
}

#[test]
fn theorem2_holds_on_random_queries() {
    run_cases(150, 0x7E0, DataGenConfig::small());
}

#[test]
fn theorem2_holds_with_many_nulls() {
    let data = DataGenConfig { min_rows: 0, max_rows: 4, null_rate: 0.5, domain: 3 };
    run_cases(100, 0x7E1, data);
}

#[test]
fn theorem2_is_trivial_without_nulls() {
    run_cases(60, 0x7E2, DataGenConfig::small_null_free());
}
