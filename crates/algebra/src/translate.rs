//! The translation from basic SQL to SQL-RA under the renaming `χ`
//! (Figure 9, Proposition 1).
//!
//! The translation applies to *data manipulation queries* (Definition 1):
//! the query and every subquery use an explicit `SELECT` list whose
//! output names do not repeat, and every selected term is a full name
//! bound by the local `FROM`. Two mismatches are resolved exactly as in
//! the paper:
//!
//! * SQL references are **full names** `N₁.N₂ ∈ N²` while RA attributes
//!   are plain names; an injective mapping
//!   `χ : N² → N − (N_Q ∪ N_base)` simulates qualification. Prefixing a
//!   scope then becomes a renaming: `ρ^χ_N(E) = ρ_{ℓ(E)→χ(N.ℓ(E))}(E)`.
//! * SQL `SELECT` lists may repeat attributes; RA projections may not.
//!   The repetition is simulated with the `π^α_β` gadget
//!   ([`crate::gadgets::project_with_repetition`]).
//!
//! The output is an SQL-RA expression with no parameters whose signature
//! is `ℓ(Q)` and whose value is `⟦Q⟧_D` on every database — Theorem 1's
//! forward direction. Chasing the SQL-RA conditions away (Proposition 2)
//! is [`crate::eliminate()`](crate::eliminate::eliminate)'s job.

use std::collections::HashSet;
use std::fmt;

use sqlsem_core::ast::{
    Condition, FromExpr, FromItem, Query, SelectList, SelectQuery, TableRef, Term,
};
use sqlsem_core::{EvalError, FullName, Name, Schema, SetOp};

use crate::expr::{RaCond, RaExpr, RaTerm};
use crate::gadgets::{project_with_repetition, NameGen};

/// Why a query could not be translated.
#[derive(Clone, Debug, PartialEq)]
pub enum TranslateError {
    /// The query falls outside Definition 1 (star select, constant or
    /// correlated term in a `SELECT` list, repeated output names).
    NotDataManipulation(String),
    /// A structural problem (unknown table, arity clash, …).
    Eval(EvalError),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::NotDataManipulation(why) => {
                write!(f, "not a data manipulation query: {why}")
            }
            TranslateError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<EvalError> for TranslateError {
    fn from(e: EvalError) -> Self {
        TranslateError::Eval(e)
    }
}

/// Checks Definition 1 (§5): the query and every subquery select explicit
/// repetition-free lists of full names bound by their local `FROM`.
pub fn is_data_manipulation(query: &Query) -> Result<(), TranslateError> {
    match query {
        Query::SetOp { left, right, .. } => {
            is_data_manipulation(left)?;
            is_data_manipulation(right)
        }
        Query::Select(s) => {
            check_block_shape_select(s)?;
            for f in s.from.iter().flat_map(FromExpr::leaves) {
                if let TableRef::Query(q) = &f.table {
                    is_data_manipulation(q)?;
                }
            }
            let mut err = None;
            {
                let mut check = |q: &Query| {
                    if err.is_none() {
                        // visit_queries recurses itself; checking the
                        // block shape at each node is equivalent to full
                        // recursion.
                        if let Err(e) = check_block_shape(q) {
                            err = Some(e);
                        }
                    }
                };
                // ON subqueries recurse like WHERE subqueries (the leaf
                // subqueries a join visitor also reaches were fully
                // checked above; re-checking their shape is harmless).
                for fe in &s.from {
                    if matches!(fe, FromExpr::Join { .. }) {
                        fe.visit_queries(&mut check);
                    }
                }
                s.where_.visit_queries(&mut check);
            }
            match err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        }
    }
}

fn check_block_shape(query: &Query) -> Result<(), TranslateError> {
    match query {
        Query::SetOp { .. } => Ok(()), // operands are visited separately
        Query::Select(s) => check_block_shape_select(s),
    }
}

fn check_block_shape_select(s: &SelectQuery) -> Result<(), TranslateError> {
    let SelectList::Items(items) = &s.select else {
        return Err(TranslateError::NotDataManipulation("SELECT * is not allowed".into()));
    };
    let mut seen = HashSet::with_capacity(items.len());
    for item in items {
        if !seen.insert(&item.alias) {
            return Err(TranslateError::NotDataManipulation(format!(
                "output name {} repeats",
                item.alias
            )));
        }
    }
    fragment_condition_terms(&s.where_, "WHERE")?;
    for fe in &s.from {
        check_on_conditions(fe)?;
    }
    if s.is_grouped() {
        return check_grouped_shape(s, items);
    }
    let local: HashSet<&Name> =
        s.from.iter().flat_map(FromExpr::leaves).map(|f| &f.alias).collect();
    for item in items {
        match &item.term {
            Term::Const(_) => {
                return Err(TranslateError::NotDataManipulation(
                    "constants cannot appear in SELECT".into(),
                ))
            }
            Term::Agg(_) => {
                return Err(TranslateError::NotDataManipulation(
                    "aggregates require a grouped block".into(),
                ))
            }
            Term::Case { .. } | Term::Coalesce(_) | Term::Nullif(..) => {
                return Err(TranslateError::NotDataManipulation(
                    "CASE/COALESCE/NULLIF terms are outside the data-manipulation fragment".into(),
                ))
            }
            Term::Col(n) if !local.contains(&n.table) => {
                return Err(TranslateError::NotDataManipulation(format!(
                    "selected name {n} is not bound by the local FROM"
                )))
            }
            Term::Col(_) => {}
        }
    }
    Ok(())
}

/// Checks every `ON` condition in a `FROM` expression the way `WHERE`
/// conditions are checked.
fn check_on_conditions(fe: &FromExpr) -> Result<(), TranslateError> {
    if let FromExpr::Join { left, right, on, .. } = fe {
        check_on_conditions(left)?;
        check_on_conditions(right)?;
        fragment_condition_terms(on, "ON")?;
    }
    Ok(())
}

/// Rejects aggregate terms and null combinators in a condition —
/// Definition 1's terms are full names and constants only (subqueries
/// excluded: they are checked as blocks of their own).
fn fragment_condition_terms(cond: &Condition, context: &str) -> Result<(), TranslateError> {
    let mut aggregate = false;
    let mut combinator = false;
    cond.visit_terms(&mut |t| {
        aggregate |= t.is_aggregate();
        combinator |= matches!(t, Term::Case { .. } | Term::Coalesce(_) | Term::Nullif(..));
    });
    if aggregate {
        return Err(TranslateError::NotDataManipulation(format!(
            "aggregate functions are not allowed in {context}"
        )));
    }
    if combinator {
        return Err(TranslateError::NotDataManipulation(format!(
            "CASE/COALESCE/NULLIF terms in {context} are outside the data-manipulation fragment"
        )));
    }
    Ok(())
}

/// The grouped extension of Definition 1, shaped so the block maps onto
/// `π^α_β(σ_having(γ_{keys; aggs}(σ_where(E))))`: `GROUP BY` keys are
/// distinct local full names, every `SELECT` item is a key or an
/// aggregate over a local full name (or `COUNT(*)`), and `HAVING` is a
/// subquery-free condition over keys, aggregates and constants.
fn check_grouped_shape(
    s: &SelectQuery,
    items: &[sqlsem_core::SelectItem],
) -> Result<(), TranslateError> {
    let local: HashSet<&Name> =
        s.from.iter().flat_map(FromExpr::leaves).map(|f| &f.alias).collect();
    let mut seen_keys = HashSet::with_capacity(s.group_by.len());
    for key in &s.group_by {
        match key {
            Term::Col(n) if local.contains(&n.table) => {
                if !seen_keys.insert(key) {
                    return Err(TranslateError::NotDataManipulation(format!(
                        "GROUP BY key {n} repeats"
                    )));
                }
            }
            other => {
                return Err(TranslateError::NotDataManipulation(format!(
                    "GROUP BY key {other} is not a local full name"
                )))
            }
        }
    }
    for item in items {
        grouped_term_shape(&item.term, s, &local, false)?;
    }
    grouped_cond_shape(&s.having, s, &local)
}

/// One grouped-context term: a `GROUP BY` key, an aggregate over a local
/// full name (or `COUNT(*)`), or — in `HAVING` only — a constant.
fn grouped_term_shape(
    term: &Term,
    s: &SelectQuery,
    local: &HashSet<&Name>,
    allow_const: bool,
) -> Result<(), TranslateError> {
    if s.group_by.contains(term) {
        return Ok(());
    }
    match term {
        Term::Const(_) if allow_const => Ok(()),
        Term::Agg(agg) => match &agg.arg {
            None => Ok(()),
            Some(Term::Col(n)) if local.contains(&n.table) => Ok(()),
            Some(other) => Err(TranslateError::NotDataManipulation(format!(
                "aggregate argument {other} is not a local full name"
            ))),
        },
        other => Err(TranslateError::NotDataManipulation(format!(
            "grouped term {other} is neither a GROUP BY key nor an aggregate"
        ))),
    }
}

fn grouped_cond_shape(
    cond: &Condition,
    s: &SelectQuery,
    local: &HashSet<&Name>,
) -> Result<(), TranslateError> {
    let term = |t: &Term| grouped_term_shape(t, s, local, true);
    match cond {
        Condition::True | Condition::False => Ok(()),
        Condition::Cmp { left, right, .. } | Condition::IsDistinct { left, right, .. } => {
            term(left)?;
            term(right)
        }
        Condition::Like { term: t, pattern, .. } => {
            term(t)?;
            term(pattern)
        }
        Condition::Pred { args, .. } => args.iter().try_for_each(term),
        Condition::IsNull { term: t, .. } => term(t),
        Condition::In { .. } | Condition::Exists(_) => Err(TranslateError::NotDataManipulation(
            "HAVING subqueries are not supported by the RA translation".into(),
        )),
        Condition::And(a, b) | Condition::Or(a, b) => {
            grouped_cond_shape(a, s, local)?;
            grouped_cond_shape(b, s, local)
        }
        Condition::Not(c) => grouped_cond_shape(c, s, local),
    }
}

/// The injective renaming `χ : N² → N − (N_Q ∪ N_base)` (§5). The
/// implementation mangles `T.A` into `⟨prefix⟩esc(T).esc(A)` with an
/// escaping that makes the mangling injective, and chooses a prefix no
/// existing name starts with, which keeps the image disjoint from
/// `N_Q ∪ N_base`.
#[derive(Clone, Debug)]
pub struct Chi {
    prefix: String,
}

impl Chi {
    /// Builds a `χ` whose image avoids every name in `avoid`.
    pub fn avoiding<'a>(avoid: impl IntoIterator<Item = &'a Name>) -> Chi {
        let avoid: Vec<&Name> = avoid.into_iter().collect();
        let mut prefix = "χ:".to_string();
        while avoid.iter().any(|n| n.as_str().starts_with(&prefix)) {
            prefix.insert(0, 'χ');
        }
        Chi { prefix }
    }

    /// Applies `χ` to one full name.
    pub fn name(&self, full: &FullName) -> Name {
        Name::new(format!(
            "{}{}.{}",
            self.prefix,
            escape(full.table.as_str()),
            escape(full.column.as_str())
        ))
    }

    /// Applies `χ` to `N.(A₁,…,Aₖ)` — the prefixing-as-renaming
    /// `ρ^χ_N` target signature.
    pub fn prefix_tuple(&self, table: &Name, columns: &[Name]) -> Vec<Name> {
        columns.iter().map(|c| self.name(&FullName::new(table.clone(), c.clone()))).collect()
    }
}

/// Escapes `\` and `.` so that `esc(a) + "." + esc(b)` is injective in
/// `(a, b)`.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('.', "\\.")
}

/// Collects every name occurring in a query: aliases, output names,
/// column names, base-table names. Used to seed `χ` and the fresh-name
/// generator.
pub fn query_names(query: &Query, out: &mut HashSet<Name>) {
    query.visit(&mut |node| {
        if let Query::Select(s) = node {
            if let SelectList::Items(items) = &s.select {
                for i in items {
                    out.insert(i.alias.clone());
                    collect_term_names(&i.term, out);
                }
            }
            for fe in &s.from {
                collect_from_expr_names(fe, out);
            }
            collect_condition_names(&s.where_, out);
            for key in &s.group_by {
                collect_term_names(key, out);
            }
            collect_condition_names(&s.having, out);
        }
    });
}

fn collect_from_expr_names(fe: &FromExpr, out: &mut HashSet<Name>) {
    match fe {
        FromExpr::Item(f) => {
            out.insert(f.alias.clone());
            if let TableRef::Base(r) = &f.table {
                out.insert(r.clone());
            }
            if let Some(cols) = &f.columns {
                out.extend(cols.iter().cloned());
            }
        }
        FromExpr::Join { left, right, on, .. } => {
            collect_from_expr_names(left, out);
            collect_from_expr_names(right, out);
            collect_condition_names(on, out);
        }
    }
}

fn collect_term_names(term: &Term, out: &mut HashSet<Name>) {
    term.visit_columns(&mut |n| {
        out.insert(n.table.clone());
        out.insert(n.column.clone());
    });
}

fn collect_condition_names(cond: &Condition, out: &mut HashSet<Name>) {
    // Nested queries are handled by `query_names`' visitor.
    cond.visit_terms(&mut |t| collect_term_names(t, out));
}

/// Translates a data manipulation query to an equivalent SQL-RA query
/// (Proposition 1, Figure 9). The result's signature is `ℓ(Q)`.
pub fn translate(query: &Query, schema: &Schema) -> Result<RaExpr, TranslateError> {
    is_data_manipulation(query)?;
    let mut avoid: HashSet<Name> = HashSet::new();
    query_names(query, &mut avoid);
    for (t, attrs) in schema.iter() {
        avoid.insert(t.clone());
        avoid.extend(attrs.iter().cloned());
    }
    let chi = Chi::avoiding(&avoid);
    let mut gen = NameGen::avoiding(avoid.iter().cloned());
    let mut tr = Translator { schema, chi, gen: &mut gen };
    tr.query(query)
}

struct Translator<'a> {
    schema: &'a Schema,
    chi: Chi,
    gen: &'a mut NameGen,
}

/// The list-layer translation rule: an ordered/limited block becomes
/// `τ^{limit,offset}_{keys}(E)` over the block's translation. After
/// `π^α_β` the expression's signature *is* `β′` (the output names), so
/// `ORDER BY` keys translate to themselves — Definition 1 guarantees
/// `β′` is repetition-free, and a key outside it is the same unbound
/// error SQL raises.
fn attach_ordering(s: &SelectQuery, expr: RaExpr) -> Result<RaExpr, TranslateError> {
    if !s.is_ordered() {
        return Ok(expr);
    }
    let keys = s
        .order_by
        .iter()
        .map(|k| crate::expr::RaSortKey {
            column: k.column.clone(),
            desc: k.desc,
            nulls_first: k.nulls_first_effective(),
        })
        .collect();
    // Key membership in the signature is validated by `signature` at
    // evaluation; validate eagerly here so translation errors point at
    // the SQL, matching how SQL's own layers resolve ORDER BY keys.
    if let SelectList::Items(items) = &s.select {
        for key in &s.order_by {
            if !items.iter().any(|i| i.alias == key.column) {
                return Err(TranslateError::Eval(EvalError::UnboundName(key.column.clone())));
            }
        }
    }
    Ok(expr.sort(keys, s.limit, s.offset.unwrap_or(0)))
}

impl Translator<'_> {
    fn query(&mut self, query: &Query) -> Result<RaExpr, TranslateError> {
        match query {
            Query::Select(s) => self.select(s),
            Query::SetOp { op, all, left, right } => {
                let l = self.query(left)?;
                let r = self.query(right)?;
                let l_sig = sqlsem_core::sig::output_columns(left, self.schema)?;
                let r_sig = sqlsem_core::sig::output_columns(right, self.schema)?;
                if l_sig.len() != r_sig.len() {
                    return Err(TranslateError::Eval(EvalError::ArityMismatch {
                        context: "set operation",
                        left: l_sig.len(),
                        right: r_sig.len(),
                    }));
                }
                // Figure 9: the right operand is renamed to ℓ(Q₁).
                let r = if r_sig == l_sig { r } else { r.rename(l_sig.clone()) };
                Ok(match (op, all) {
                    (SetOp::Union, true) => l.union(r),
                    (SetOp::Union, false) => l.union(r).dedup(),
                    (SetOp::Intersect, true) => l.intersect(r),
                    (SetOp::Intersect, false) => l.intersect(r).dedup(),
                    (SetOp::Except, true) => l.diff(r),
                    // Figure 9: ε(E₁) − ε(ρ(E₂)).
                    (SetOp::Except, false) => l.dedup().diff(r.dedup()),
                })
            }
        }
    }

    fn select(&mut self, s: &SelectQuery) -> Result<RaExpr, TranslateError> {
        // τ:β ↦ ρ^χ_{N₁}(E₁) × ⋯ × ρ^χ_{Nₖ}(Eₖ), with join trees kept
        // as ⟕/⟖/⟗ over the χ-renamed operands.
        let mut product: Option<RaExpr> = None;
        for fe in &s.from {
            let e = self.from_expr(fe)?;
            product = Some(match product {
                None => e,
                Some(acc) => acc.product(e),
            });
        }
        let Some(from_expr) = product else {
            return Err(TranslateError::Eval(EvalError::malformed(
                "FROM clause must reference at least one table",
            )));
        };

        let filtered = match self.condition(&s.where_)? {
            RaCond::True => from_expr,
            cond => from_expr.select(cond),
        };

        let SelectList::Items(items) = &s.select else {
            unreachable!("checked by is_data_manipulation");
        };

        if s.is_grouped() {
            return self.grouped_select(s, items, filtered);
        }

        // SELECT α : β′ ↦ π^{χ(α)}_{β′}
        let alpha: Vec<Name> = items
            .iter()
            .map(|i| match &i.term {
                Term::Col(n) => self.chi.name(n),
                _ => unreachable!("checked by is_data_manipulation"),
            })
            .collect();
        let beta: Vec<Name> = items.iter().map(|i| i.alias.clone()).collect();
        let projected = project_with_repetition(filtered, &alpha, &beta, self.schema, self.gen)?;
        let deduped = if s.distinct { projected.dedup() } else { projected };
        attach_ordering(s, deduped)
    }

    /// The grouping translation rule:
    ///
    /// ```text
    /// SELECT ᾱ FROM τ:β WHERE θ GROUP BY k̄ HAVING θ′
    ///   ↦ π^α_β( σ_{θ̂′}( γ_{χ(k̄); aggs}( σ_{θ̂}(E_τ) ) ) )
    /// ```
    ///
    /// where `aggs` are the block's aggregates (select list and having,
    /// deduplicated) with fresh output attributes, and `θ̂′` replaces each
    /// aggregate by its output attribute and each key by its χ-name.
    fn grouped_select(
        &mut self,
        s: &SelectQuery,
        items: &[sqlsem_core::SelectItem],
        filtered: RaExpr,
    ) -> Result<RaExpr, TranslateError> {
        let keys: Vec<Name> = s
            .group_by
            .iter()
            .map(|k| match k {
                Term::Col(n) => self.chi.name(n),
                _ => unreachable!("checked by is_data_manipulation"),
            })
            .collect();
        let aggs_ast: Vec<&sqlsem_core::Aggregate> = s.aggregates();
        let mut aggs = Vec::with_capacity(aggs_ast.len());
        for a in &aggs_ast {
            let arg = match &a.arg {
                None => None,
                Some(Term::Col(n)) => Some(self.chi.name(n)),
                Some(_) => unreachable!("checked by is_data_manipulation"),
            };
            aggs.push(crate::expr::RaAggregate {
                func: a.func,
                distinct: a.distinct,
                arg,
                output: self.gen.fresh(a.func.default_alias()),
            });
        }
        // Maps a grouped term to its attribute in γ's output signature.
        let grouped_attr = |tr: &Translator<'_>, t: &Term| -> Option<Name> {
            if let Term::Col(n) = t {
                if s.group_by.contains(t) {
                    return Some(tr.chi.name(n));
                }
            }
            if let Term::Agg(a) = t {
                let i = aggs_ast.iter().position(|seen| *seen == &**a)?;
                return Some(aggs[i].output.clone());
            }
            None
        };

        let grouped = filtered.group_by(keys, aggs.clone());
        let with_having = match self.grouped_condition(&s.having, &grouped_attr)? {
            RaCond::True => grouped,
            cond => grouped.select(cond),
        };

        let alpha: Vec<Name> = items
            .iter()
            .map(|i| grouped_attr(self, &i.term).expect("checked by is_data_manipulation"))
            .collect();
        let beta: Vec<Name> = items.iter().map(|i| i.alias.clone()).collect();
        let projected = project_with_repetition(with_having, &alpha, &beta, self.schema, self.gen)?;
        let deduped = if s.distinct { projected.dedup() } else { projected };
        attach_ordering(s, deduped)
    }

    /// Translates a (subquery-free) `HAVING` condition over γ's output.
    fn grouped_condition(
        &mut self,
        cond: &Condition,
        attr: &dyn Fn(&Translator<'_>, &Term) -> Option<Name>,
    ) -> Result<RaCond, TranslateError> {
        let term = |tr: &Translator<'_>, t: &Term| -> RaTerm {
            match attr(tr, t) {
                Some(name) => RaTerm::Name(name),
                None => match t {
                    Term::Const(v) => RaTerm::Const(v.clone()),
                    _ => unreachable!("checked by is_data_manipulation"),
                },
            }
        };
        Ok(match cond {
            Condition::True => RaCond::True,
            Condition::False => RaCond::False,
            Condition::Cmp { left, op, right } => {
                RaCond::Cmp { left: term(self, left), op: *op, right: term(self, right) }
            }
            Condition::Like { term: t, pattern, negated } => RaCond::Like {
                term: term(self, t),
                pattern: term(self, pattern),
                negated: *negated,
            },
            Condition::Pred { name, args } => RaCond::Pred {
                name: name.clone(),
                args: args.iter().map(|t| term(self, t)).collect(),
            },
            Condition::IsNull { term: t, negated } => {
                let cond = RaCond::Null(term(self, t));
                if *negated {
                    cond.not()
                } else {
                    cond
                }
            }
            Condition::IsDistinct { left, right, negated } => {
                let eq = crate::gadgets::syntactic_eq(term(self, left), term(self, right));
                if *negated {
                    eq
                } else {
                    eq.not()
                }
            }
            Condition::In { .. } | Condition::Exists(_) => {
                unreachable!("checked by is_data_manipulation")
            }
            Condition::And(a, b) => {
                self.grouped_condition(a, attr)?.and(self.grouped_condition(b, attr)?)
            }
            Condition::Or(a, b) => {
                self.grouped_condition(a, attr)?.or(self.grouped_condition(b, attr)?)
            }
            Condition::Not(c) => self.grouped_condition(c, attr)?.not(),
        })
    }

    /// A `FROM` expression: a leaf item, or an outer-join tree. The ON
    /// condition translates like a `WHERE` condition — its full names
    /// all map through the same global `χ`, so references to the two
    /// operands land on the combined signature and references to
    /// enclosing scopes stay free (a correlated ON, resolved by the
    /// evaluator's environment). (`from_*` is the FROM clause, not a
    /// conversion constructor.)
    #[allow(clippy::wrong_self_convention)]
    fn from_expr(&mut self, fe: &FromExpr) -> Result<RaExpr, TranslateError> {
        match fe {
            FromExpr::Item(item) => self.from_item(item),
            FromExpr::Join { kind, left, right, on } => {
                let l = self.from_expr(left)?;
                let r = self.from_expr(right)?;
                let cond = self.condition(on)?;
                Ok(l.outer_join(*kind, r, cond))
            }
        }
    }

    /// `T AS N ↦ ρ^χ_N(E)` — prefixing by renaming.
    #[allow(clippy::wrong_self_convention)]
    fn from_item(&mut self, item: &FromItem) -> Result<RaExpr, TranslateError> {
        let (expr, natural) = match &item.table {
            TableRef::Base(r) => {
                let Some(attrs) = self.schema.attributes(r) else {
                    return Err(TranslateError::Eval(EvalError::UnknownTable(r.clone())));
                };
                (RaExpr::Base(r.clone()), attrs.to_vec())
            }
            TableRef::Query(q) => {
                let e = self.query(q)?;
                let sig = sqlsem_core::sig::output_columns(q, self.schema)?;
                (e, sig)
            }
        };
        let visible = match &item.columns {
            None => natural,
            Some(renamed) => {
                if renamed.len() != natural.len() {
                    return Err(TranslateError::Eval(EvalError::ColumnRenameArity {
                        alias: item.alias.clone(),
                        expected: natural.len(),
                        got: renamed.len(),
                    }));
                }
                renamed.clone()
            }
        };
        Ok(expr.rename(self.chi.prefix_tuple(&item.alias, &visible)))
    }

    fn condition(&mut self, cond: &Condition) -> Result<RaCond, TranslateError> {
        Ok(match cond {
            Condition::True => RaCond::True,
            Condition::False => RaCond::False,
            Condition::Cmp { left, op, right } => {
                RaCond::Cmp { left: self.term(left), op: *op, right: self.term(right) }
            }
            Condition::Like { term, pattern, negated } => RaCond::Like {
                term: self.term(term),
                pattern: self.term(pattern),
                negated: *negated,
            },
            Condition::Pred { name, args } => RaCond::Pred {
                name: name.clone(),
                args: args.iter().map(|t| self.term(t)).collect(),
            },
            // t IS [NOT] NULL ↦ [¬] null(t̂)
            Condition::IsNull { term, negated } => {
                let t = RaCond::Null(self.term(term));
                if *negated {
                    t.not()
                } else {
                    t
                }
            }
            // t₁ IS [NOT] DISTINCT FROM t₂ ↦ [¬]¬ (t̂₁ ≐ t̂₂), expanded per
            // Definition 2.
            Condition::IsDistinct { left, right, negated } => {
                let eq = crate::gadgets::syntactic_eq(self.term(left), self.term(right));
                if *negated {
                    eq
                } else {
                    eq.not()
                }
            }
            // t̄ [NOT] IN Q ↦ [¬](t̂̄ ∈ E)
            Condition::In { terms, query, negated } => {
                let e = self.query(query)?;
                let cond = RaCond::In {
                    terms: terms.iter().map(|t| self.term(t)).collect(),
                    expr: Box::new(e),
                };
                if *negated {
                    cond.not()
                } else {
                    cond
                }
            }
            // EXISTS Q ↦ ¬ empty(E)
            Condition::Exists(q) => RaCond::Empty(Box::new(self.query(q)?)).not(),
            Condition::And(a, b) => self.condition(a)?.and(self.condition(b)?),
            Condition::Or(a, b) => self.condition(a)?.or(self.condition(b)?),
            Condition::Not(c) => self.condition(c)?.not(),
        })
    }

    fn term(&self, term: &Term) -> RaTerm {
        match term {
            Term::Const(v) => RaTerm::Const(v.clone()),
            Term::Col(n) => RaTerm::Name(self.chi.name(n)),
            Term::Agg(_) | Term::Case { .. } | Term::Coalesce(_) | Term::Nullif(..) => {
                unreachable!("conditions are checked free of aggregates and combinators")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::RaEvaluator;
    use sqlsem_core::{table, Database, Evaluator, Value};
    use sqlsem_parser::compile;

    fn schema() -> Schema {
        Schema::builder().table("R", ["A", "B"]).table("S", ["A"]).build().unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new(schema());
        db.replace_table(
            "R",
            table! { ["A", "B"]; [1, 2], [1, 2], [Value::Null, 3], [4, Value::Null] },
        )
        .unwrap();
        db.replace_table("S", table! { ["A"]; [1], [Value::Null], [4] }).unwrap();
        db
    }

    /// Translate, then check `⟦Q⟧_D = ⟦E⟧_{D,∅}` under the §4 criterion.
    fn check_equivalent(sql: &str) {
        let schema = schema();
        let db = db();
        let q = compile(sql, &schema).unwrap();
        let expected = Evaluator::new(&db).eval(&q).unwrap();
        let e = translate(&q, &schema).unwrap();
        let got = RaEvaluator::new(&db).eval(&e).unwrap();
        assert!(expected.coincides(&got), "{sql}\nSQL:\n{expected}\nRA:\n{got}\nexpr: {e}");
    }

    #[test]
    fn simple_blocks_translate() {
        check_equivalent("SELECT A, B FROM R");
        check_equivalent("SELECT DISTINCT A FROM R");
        check_equivalent("SELECT R.B AS x FROM R WHERE R.A = 1 OR R.B IS NULL");
        check_equivalent("SELECT x.A AS a1, x.B AS b1 FROM R x WHERE x.A <> 9");
    }

    #[test]
    fn products_and_correlation_translate() {
        check_equivalent("SELECT x.A AS xa, y.A AS ya FROM R x, S y WHERE x.A = y.A");
        check_equivalent(
            "SELECT x.A AS xa FROM R x WHERE EXISTS (SELECT y.A FROM S y WHERE y.A = x.A)",
        );
        check_equivalent(
            "SELECT x.A AS xa FROM R x WHERE NOT EXISTS (SELECT y.A FROM S y WHERE y.A = x.A)",
        );
    }

    #[test]
    fn in_and_not_in_translate() {
        check_equivalent("SELECT A FROM S WHERE A IN (SELECT A FROM R)");
        check_equivalent("SELECT A FROM S WHERE A NOT IN (SELECT A FROM R)");
        check_equivalent("SELECT x.A AS a FROM R x WHERE (x.A, x.B) IN (SELECT y.A, y.B FROM R y)");
    }

    #[test]
    fn set_operations_translate() {
        check_equivalent("SELECT A FROM S UNION ALL SELECT B AS A FROM R");
        check_equivalent("SELECT A FROM S UNION SELECT A FROM R");
        check_equivalent("SELECT A FROM S INTERSECT ALL SELECT A FROM R");
        check_equivalent("SELECT A FROM S INTERSECT SELECT A FROM R");
        check_equivalent("SELECT A FROM S EXCEPT ALL SELECT A FROM R");
        check_equivalent("SELECT A FROM S EXCEPT SELECT A FROM R");
    }

    #[test]
    fn ordered_blocks_translate_to_the_sort_operator() {
        // Result lists must match *as lists*, not just as bags.
        let schema = schema();
        let db = db();
        for sql in [
            "SELECT R.A AS a, R.B AS b FROM R ORDER BY a DESC NULLS FIRST, b",
            "SELECT R.A AS a FROM R ORDER BY a LIMIT 2",
            "SELECT R.A AS a FROM R ORDER BY a NULLS LAST OFFSET 1 ROWS FETCH FIRST 2 ROWS ONLY",
            "SELECT DISTINCT R.A AS a FROM R ORDER BY a LIMIT 2",
            "SELECT R.A AS a FROM R LIMIT 1",
        ] {
            let q = compile(sql, &schema).unwrap();
            let expected = Evaluator::new(&db).eval(&q).unwrap();
            let e = translate(&q, &schema).unwrap();
            assert!(matches!(e, RaExpr::Sort { .. }), "{sql}: {e}");
            let got = RaEvaluator::new(&db).eval(&e).unwrap();
            let a: Vec<_> = expected.rows().collect();
            let b: Vec<_> = got.rows().collect();
            assert_eq!(a, b, "{sql}\nexpr: {e}");
        }
        // An ORDER BY key outside the output signature is unbound.
        let q = compile("SELECT R.A AS a FROM R ORDER BY a", &schema).unwrap();
        let Query::Select(mut s) = q else { panic!() };
        s.order_by[0].column = Name::new("nope");
        let err = translate(&Query::Select(s), &schema).unwrap_err();
        assert!(matches!(err, TranslateError::Eval(EvalError::UnboundName(_))), "{err}");
    }

    #[test]
    fn from_subqueries_translate() {
        check_equivalent("SELECT T.x AS y FROM (SELECT R.A AS x FROM R) AS T");
        check_equivalent(
            "SELECT T.x AS y FROM (SELECT R.A AS x FROM R WHERE R.B IS NOT NULL) AS T \
             WHERE T.x = 1",
        );
    }

    #[test]
    fn duplicated_data_translates_via_the_gadget() {
        // SELECT R.A AS A1, R.A AS A2 — allowed by Definition 1 (columns
        // duplicated, names distinct), needs π^α_β.
        check_equivalent("SELECT x.A AS A1, x.A AS A2 FROM R x");
        check_equivalent("SELECT DISTINCT x.A AS A1, x.A AS A2, x.B AS B1 FROM R x");
    }

    #[test]
    fn example1_queries_translate() {
        check_equivalent("SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)");
        check_equivalent("SELECT R.A FROM R EXCEPT SELECT S.A FROM S");
        // Q2 uses SELECT * in its subquery, which is outside Definition 1;
        // an explicit-list version is equivalent and in the fragment:
        check_equivalent(
            "SELECT DISTINCT R.A FROM R WHERE NOT EXISTS (SELECT S.A FROM S WHERE S.A = R.A)",
        );
    }

    #[test]
    fn grouped_queries_translate_through_the_grouping_operator() {
        check_equivalent("SELECT x.A AS k, COUNT(*) AS n FROM R x GROUP BY x.A");
        check_equivalent(
            "SELECT x.A AS k, SUM(x.B) AS s, AVG(x.B) AS a, MIN(x.B) AS lo, MAX(x.B) AS hi \
             FROM R x GROUP BY x.A",
        );
        check_equivalent("SELECT COUNT(x.A) AS n, COUNT(DISTINCT x.A) AS u FROM R x");
        check_equivalent(
            "SELECT x.A AS k FROM R x GROUP BY x.A HAVING COUNT(*) > 1 AND x.A IS NOT NULL",
        );
        check_equivalent(
            "SELECT x.A AS k, COUNT(*) AS n FROM R x, S y WHERE x.A = y.A GROUP BY x.A",
        );
        // HAVING may use aggregates the SELECT list does not mention.
        check_equivalent("SELECT x.A AS k FROM R x GROUP BY x.A HAVING SUM(x.B) IS NOT NULL");
        // Grouped subquery in FROM.
        check_equivalent(
            "SELECT T.n AS n FROM (SELECT x.A AS k, COUNT(*) AS n FROM R x GROUP BY x.A) AS T \
             WHERE T.n > 1",
        );
        // Repeated outputs over a key still go through the π^α_β gadget.
        check_equivalent("SELECT x.A AS k1, x.A AS k2, COUNT(*) AS n FROM R x GROUP BY x.A");
    }

    #[test]
    fn grouped_translation_output_uses_the_grouping_operator() {
        let schema = schema();
        let q = compile("SELECT x.A AS k, COUNT(*) AS n FROM R x GROUP BY x.A", &schema).unwrap();
        let e = translate(&q, &schema).unwrap();
        assert!(e.to_string().contains("γ["), "γ missing from {e}");
        let sig = crate::expr::signature(&e, &schema).unwrap();
        assert_eq!(sig, vec![Name::new("k"), Name::new("n")]);
    }

    #[test]
    fn grouped_queries_outside_the_fragment_are_rejected() {
        let schema = schema();
        for sql in [
            // HAVING subqueries have no RA rendering here.
            "SELECT x.A AS k FROM R x GROUP BY x.A \
             HAVING EXISTS (SELECT y.A FROM S y WHERE y.A = x.A)",
            // Aggregates without grouping context in WHERE.
            "SELECT x.A AS k FROM R x WHERE COUNT(*) > 1",
            // A non-key, non-aggregated select term.
            "SELECT x.B AS b FROM R x GROUP BY x.A",
        ] {
            let q = compile(sql, &schema).unwrap();
            assert!(
                matches!(translate(&q, &schema), Err(TranslateError::NotDataManipulation(_))),
                "{sql} should be rejected"
            );
        }
    }

    #[test]
    fn outer_joins_translate() {
        check_equivalent("SELECT x.A AS la, y.A AS ra FROM R x LEFT OUTER JOIN S y ON x.A = y.A");
        check_equivalent("SELECT x.A AS la, y.A AS ra FROM R x RIGHT OUTER JOIN S y ON x.A = y.A");
        check_equivalent("SELECT x.A AS la, y.A AS ra FROM R x FULL OUTER JOIN S y ON x.A = y.A");
        // A join tree mixed with a plain product item.
        check_equivalent(
            "SELECT x.A AS xa, y.A AS ya, z.A AS za \
             FROM R x LEFT OUTER JOIN S y ON x.A = y.A, S z",
        );
        // Chained joins associate left; null-padded keys fall out of the
        // second ON as u, which neither matches nor blocks the padding.
        check_equivalent(
            "SELECT x.A AS xa, z.A AS za FROM R x \
             LEFT OUTER JOIN S y ON x.A = y.A FULL OUTER JOIN S z ON y.A = z.A",
        );
        // A subquery in ON translates to an ∈/empty extension inside ⟕.
        check_equivalent(
            "SELECT x.A AS la, y.A AS ra FROM R x LEFT OUTER JOIN S y \
             ON x.A = y.A AND EXISTS (SELECT z.A FROM S z WHERE z.A = x.A)",
        );
        // Correlated ON inside a subquery: the free names are χ-renamed
        // parameters resolved by the evaluator's environment.
        check_equivalent(
            "SELECT A FROM S WHERE EXISTS (\
                SELECT x.A AS a FROM R x LEFT OUTER JOIN S y ON x.A = S.A)",
        );
    }

    #[test]
    fn null_combinators_are_outside_the_fragment() {
        let schema = schema();
        for sql in [
            "SELECT CASE WHEN R.A = 1 THEN R.A ELSE R.B END AS c FROM R",
            "SELECT COALESCE(R.A, R.B) AS c FROM R",
            "SELECT R.A AS a FROM R WHERE NULLIF(R.A, R.B) IS NULL",
            "SELECT x.A AS a FROM R x LEFT OUTER JOIN S y ON COALESCE(x.A, 0) = y.A",
        ] {
            let q = compile(sql, &schema).unwrap();
            assert!(
                matches!(translate(&q, &schema), Err(TranslateError::NotDataManipulation(_))),
                "{sql} should be rejected"
            );
        }
    }

    #[test]
    fn non_data_manipulation_queries_are_rejected() {
        let schema = schema();
        for sql in [
            "SELECT * FROM R",
            "SELECT 1 AS one FROM R",
            "SELECT A AS x, B AS x FROM R",
            "SELECT A FROM S WHERE EXISTS (SELECT * FROM R)",
        ] {
            let q = compile(sql, &schema).unwrap();
            assert!(
                matches!(translate(&q, &schema), Err(TranslateError::NotDataManipulation(_))),
                "{sql} should be rejected"
            );
        }
    }

    #[test]
    fn translated_signature_is_the_query_signature() {
        let schema = schema();
        let q = compile("SELECT x.B AS bee, x.A AS ay FROM R x", &schema).unwrap();
        let e = translate(&q, &schema).unwrap();
        let sig = crate::expr::signature(&e, &schema).unwrap();
        assert_eq!(sig, vec![Name::new("bee"), Name::new("ay")]);
    }

    #[test]
    fn chi_is_injective_and_avoids_existing_names() {
        let avoid: Vec<Name> = vec![Name::new("A"), Name::new("χ:x")];
        let chi = Chi::avoiding(&avoid);
        let a = chi.name(&FullName::new("t", "A"));
        let b = chi.name(&FullName::new("t.A", ""));
        let c = chi.name(&FullName::new("t", "A.x"));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert!(!avoid.contains(&a));
        // Tricky: names containing the separator must stay injective.
        let d = chi.name(&FullName::new("x\\", "y"));
        let e = chi.name(&FullName::new("x", "\\y"));
        assert_ne!(d, e);
    }

    #[test]
    fn translation_is_closed() {
        let schema = schema();
        let q = compile(
            "SELECT x.A AS a FROM R x WHERE EXISTS (SELECT y.A FROM S y WHERE y.A = x.A)",
            &schema,
        )
        .unwrap();
        let e = translate(&q, &schema).unwrap();
        assert!(crate::params::is_closed(&e, &schema).unwrap());
    }
}
