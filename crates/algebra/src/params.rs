//! Parameters of SQL-RA expressions (§5).
//!
//! The set `param(E)` of names an expression needs from its environment,
//! and `param(θ, A)` for a condition relative to a set of locally bound
//! attribute names, defined by mutual recursion exactly as in the paper:
//!
//! ```text
//! param(R)              = ∅
//! param(E₁ op E₂)       = param(E₁) ∪ param(E₂)
//! param(π_α(E))         = param(E)
//! param(σ_θ(E))         = param(E) ∪ param(θ, ℓ(E))
//! param(P(t̄), A)        = names(t̄) − A
//! param(θ₁ conn θ₂, A)  = param(θ₁, A) ∪ param(θ₂, A)
//! param(¬θ, A)          = param(θ, A)
//! param(empty(E), A)    = param(E) − A
//! param(t̄ ∈ E, A)       = (names(t̄) ∪ param(E)) − A
//! ```
//!
//! (The paper's definition omits the `param(E)` summand for `σ_θ(E)` —
//! an evident typo, since a selection over a parameterised input plainly
//! inherits its parameters; we include it.)
//!
//! An SQL-RA expression is a *query* iff `param(E) = ∅`.

use std::collections::HashSet;

use sqlsem_core::{EvalError, Name, Schema};

use crate::expr::{signature, RaCond, RaExpr, RaTerm};

/// Computes `param(E)`. Needs the schema to compute `ℓ(E)` at
/// selections.
pub fn params(expr: &RaExpr, schema: &Schema) -> Result<HashSet<Name>, EvalError> {
    match expr {
        RaExpr::Base(_) => Ok(HashSet::new()),
        // γ's keys and aggregate arguments are attributes of the input's
        // signature, never environment references.
        RaExpr::Proj { input, .. }
        | RaExpr::Rename { input, .. }
        | RaExpr::Dedup(input)
        | RaExpr::GroupBy { input, .. }
        | RaExpr::Sort { input, .. } => params(input, schema),
        RaExpr::Select { input, cond } => {
            let mut out = params(input, schema)?;
            let bound: HashSet<Name> = signature(input, schema)?.into_iter().collect();
            out.extend(cond_params(cond, &bound, schema)?);
            Ok(out)
        }
        RaExpr::Product(a, b) | RaExpr::Union(a, b) | RaExpr::Inter(a, b) | RaExpr::Diff(a, b) => {
            let mut out = params(a, schema)?;
            out.extend(params(b, schema)?);
            Ok(out)
        }
        // Like σ over the product: θ is evaluated with the joined row's
        // attributes (ℓ(E₁) ++ ℓ(E₂)) bound locally.
        RaExpr::OuterJoin { left, right, cond, .. } => {
            let mut out = params(left, schema)?;
            out.extend(params(right, schema)?);
            let bound: HashSet<Name> = signature(expr, schema)?.into_iter().collect();
            out.extend(cond_params(cond, &bound, schema)?);
            Ok(out)
        }
    }
}

/// Computes `param(θ, A)`.
pub fn cond_params(
    cond: &RaCond,
    bound: &HashSet<Name>,
    schema: &Schema,
) -> Result<HashSet<Name>, EvalError> {
    match cond {
        RaCond::True | RaCond::False => Ok(HashSet::new()),
        RaCond::Cmp { left, right, .. } => Ok(term_names([left, right], bound)),
        RaCond::Like { term, pattern, .. } => Ok(term_names([term, pattern], bound)),
        RaCond::Pred { args, .. } => Ok(term_names(args, bound)),
        RaCond::Null(t) | RaCond::IsConst(t) => Ok(term_names([t], bound)),
        RaCond::And(a, b) | RaCond::Or(a, b) => {
            let mut out = cond_params(a, bound, schema)?;
            out.extend(cond_params(b, bound, schema)?);
            Ok(out)
        }
        RaCond::Not(c) => cond_params(c, bound, schema),
        RaCond::Empty(e) => {
            let mut out = params(e, schema)?;
            out.retain(|n| !bound.contains(n));
            Ok(out)
        }
        RaCond::In { terms, expr } => {
            let mut out = term_names(terms, bound);
            let mut inner = params(expr, schema)?;
            inner.retain(|n| !bound.contains(n));
            out.extend(inner);
            Ok(out)
        }
    }
}

/// `names(t̄) − A`: the name-terms among `terms` not bound locally.
fn term_names<'a>(
    terms: impl IntoIterator<Item = &'a RaTerm>,
    bound: &HashSet<Name>,
) -> HashSet<Name> {
    terms.into_iter().filter_map(RaTerm::as_name).filter(|n| !bound.contains(*n)).cloned().collect()
}

/// `true` iff the expression is an SQL-RA *query*: `param(E) = ∅`.
pub fn is_closed(expr: &RaExpr, schema: &Schema) -> Result<bool, EvalError> {
    Ok(params(expr, schema)?.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlsem_core::Value;

    fn schema() -> Schema {
        Schema::builder().table("R", ["A", "B"]).table("S", ["C"]).build().unwrap()
    }

    fn set(names: &[&str]) -> HashSet<Name> {
        names.iter().map(Name::new).collect()
    }

    #[test]
    fn base_relations_have_no_params() {
        assert_eq!(params(&RaExpr::Base(Name::new("R")), &schema()).unwrap(), set(&[]));
    }

    #[test]
    fn locally_bound_names_are_not_params() {
        let e = RaExpr::Base(Name::new("R"))
            .select(RaCond::eq(RaTerm::name("A"), RaTerm::Const(Value::Int(1))));
        assert_eq!(params(&e, &schema()).unwrap(), set(&[]));
    }

    #[test]
    fn free_names_in_conditions_are_params() {
        let e =
            RaExpr::Base(Name::new("R")).select(RaCond::eq(RaTerm::name("A"), RaTerm::name("X")));
        assert_eq!(params(&e, &schema()).unwrap(), set(&["X"]));
    }

    #[test]
    fn empty_subtracts_local_scope() {
        // empty(σ_{C = A}(S)) inside a σ over R: A is bound by R, so the
        // whole thing is closed.
        let inner =
            RaExpr::Base(Name::new("S")).select(RaCond::eq(RaTerm::name("C"), RaTerm::name("A")));
        let outer = RaExpr::Base(Name::new("R")).select(RaCond::Empty(Box::new(inner.clone())));
        assert_eq!(params(&outer, &schema()).unwrap(), set(&[]));
        // The inner expression alone has the parameter A.
        assert_eq!(params(&inner, &schema()).unwrap(), set(&["A"]));
    }

    #[test]
    fn in_params_include_the_terms() {
        let cond = RaCond::In {
            terms: vec![RaTerm::name("X"), RaTerm::Const(Value::Int(1))],
            expr: Box::new(RaExpr::Base(Name::new("S"))),
        };
        let e = RaExpr::Base(Name::new("R")).select(cond);
        assert_eq!(params(&e, &schema()).unwrap(), set(&["X"]));
    }

    #[test]
    fn selection_inherits_input_params() {
        // The paper's definition (with the typo fixed): σ over a
        // parameterised input keeps the input's parameters.
        let inner =
            RaExpr::Base(Name::new("S")).select(RaCond::eq(RaTerm::name("C"), RaTerm::name("Y")));
        let outer = inner.select(RaCond::Null(RaTerm::name("C")));
        assert_eq!(params(&outer, &schema()).unwrap(), set(&["Y"]));
    }

    #[test]
    fn is_closed_detects_queries() {
        let closed = RaExpr::Base(Name::new("R")).project(["A"]);
        assert!(is_closed(&closed, &schema()).unwrap());
        let open = RaExpr::Base(Name::new("R"))
            .select(RaCond::eq(RaTerm::name("A"), RaTerm::name("Free")));
        assert!(!is_closed(&open, &schema()).unwrap());
    }
}
