//! Syntax of bag relational algebra and SQL-RA (§5).
//!
//! The grammar of RA expressions is that of the paper:
//!
//! ```text
//! E := R | π_β(E) | σ_θ(E) | E × E | E ∪ E | E ∩ E | E − E
//!    | ρ_{β→β′}(E) | ε(E)
//! θ := TRUE | FALSE | P(t̄) | const(t) | null(t) | θ∧θ | θ∨θ | ¬θ
//! ```
//!
//! **SQL-RA** extends conditions with `t̄ ∈ E` and `empty(E)` — the direct
//! analogues of SQL's `IN` and `EXISTS` subqueries. An expression whose
//! conditions avoid the two extensions is *pure* RA
//! ([`RaExpr::is_pure`]); Proposition 2 says the extensions are syntactic
//! sugar, and [`crate::eliminate()`](crate::eliminate::eliminate) implements that compilation.
//!
//! Crucially — and unlike SQL query outputs — RA signatures never repeat
//! attribute names; [`signature`] checks the §5 well-formedness side
//! conditions while computing `ℓ(E)`.

use std::fmt;

use sqlsem_core::ast::JoinKind;
use sqlsem_core::{AggFunc, CmpOp, EvalError, Name, Schema, Value};

/// An RA term: a (plain) attribute name, or a constant (`NULL` is
/// `Const(Value::Null)`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RaTerm {
    /// An attribute name, resolved against the enclosing selection's row
    /// or, failing that, the environment (a *parameter*, §5).
    Name(Name),
    /// A constant or `NULL`.
    Const(Value),
}

impl RaTerm {
    /// Convenience constructor for a name term.
    pub fn name(n: impl Into<Name>) -> RaTerm {
        RaTerm::Name(n.into())
    }

    /// The name, if this term is one.
    pub fn as_name(&self) -> Option<&Name> {
        match self {
            RaTerm::Name(n) => Some(n),
            RaTerm::Const(_) => None,
        }
    }
}

impl fmt::Display for RaTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaTerm::Name(n) => write!(f, "{n}"),
            RaTerm::Const(v) => write!(f, "{v}"),
        }
    }
}

impl From<Name> for RaTerm {
    fn from(n: Name) -> Self {
        RaTerm::Name(n)
    }
}

impl From<Value> for RaTerm {
    fn from(v: Value) -> Self {
        RaTerm::Const(v)
    }
}

/// A selection condition (SQL-RA form; pure RA avoids `In` and `Empty`).
#[derive(Clone, Debug, PartialEq)]
pub enum RaCond {
    /// `TRUE`
    True,
    /// `FALSE`
    False,
    /// A built-in comparison `t₁ op t₂` (the always-present equality plus
    /// the order predicates), interpreted under 3VL.
    Cmp {
        /// Left term.
        left: RaTerm,
        /// Operator.
        op: CmpOp,
        /// Right term.
        right: RaTerm,
    },
    /// `t [NOT] LIKE p` — carried over from SQL's predicate collection.
    Like {
        /// Matched term.
        term: RaTerm,
        /// Pattern.
        pattern: RaTerm,
        /// Negated?
        negated: bool,
    },
    /// A user predicate from the collection `P`.
    Pred {
        /// Registered name.
        name: String,
        /// Arguments.
        args: Vec<RaTerm>,
    },
    /// `null(t)` — two-valued test for `NULL`.
    Null(RaTerm),
    /// `const(t)` — the negation of `null(t)`.
    IsConst(RaTerm),
    /// Conjunction (3VL).
    And(Box<RaCond>, Box<RaCond>),
    /// Disjunction (3VL).
    Or(Box<RaCond>, Box<RaCond>),
    /// Negation (3VL).
    Not(Box<RaCond>),
    /// SQL-RA: `t̄ ∈ E` — the analogue of SQL's `IN`.
    In {
        /// The tuple of terms.
        terms: Vec<RaTerm>,
        /// The (possibly parameterised) expression.
        expr: Box<RaExpr>,
    },
    /// SQL-RA: `empty(E)` — the (negated) analogue of SQL's `EXISTS`.
    Empty(Box<RaExpr>),
}

impl RaCond {
    /// `t₁ op t₂`.
    pub fn cmp(left: impl Into<RaTerm>, op: CmpOp, right: impl Into<RaTerm>) -> RaCond {
        RaCond::Cmp { left: left.into(), op, right: right.into() }
    }

    /// `t₁ = t₂`.
    pub fn eq(left: impl Into<RaTerm>, right: impl Into<RaTerm>) -> RaCond {
        RaCond::cmp(left, CmpOp::Eq, right)
    }

    /// `self ∧ other`.
    #[must_use]
    pub fn and(self, other: RaCond) -> RaCond {
        RaCond::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    #[must_use]
    pub fn or(self, other: RaCond) -> RaCond {
        RaCond::Or(Box::new(self), Box::new(other))
    }

    /// `¬self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> RaCond {
        RaCond::Not(Box::new(self))
    }

    /// Conjunction of all; `TRUE` when empty.
    pub fn all(conds: impl IntoIterator<Item = RaCond>) -> RaCond {
        let mut it = conds.into_iter();
        match it.next() {
            None => RaCond::True,
            Some(first) => it.fold(first, RaCond::and),
        }
    }

    /// Disjunction of all; `FALSE` when empty.
    pub fn any(conds: impl IntoIterator<Item = RaCond>) -> RaCond {
        let mut it = conds.into_iter();
        match it.next() {
            None => RaCond::False,
            Some(first) => it.fold(first, RaCond::or),
        }
    }

    /// `true` iff the condition avoids the SQL-RA extensions (`∈`,
    /// `empty`).
    pub fn is_pure(&self) -> bool {
        match self {
            RaCond::In { .. } | RaCond::Empty(_) => false,
            RaCond::And(a, b) | RaCond::Or(a, b) => a.is_pure() && b.is_pure(),
            RaCond::Not(c) => c.is_pure(),
            _ => true,
        }
    }
}

/// A (SQL-)RA expression.
#[derive(Clone, Debug, PartialEq)]
pub enum RaExpr {
    /// A base relation `R`.
    Base(Name),
    /// Projection `π_β(E)`: `β` must be a repetition-free sub-tuple of
    /// `ℓ(E)`.
    Proj {
        /// Input.
        input: Box<RaExpr>,
        /// The projected attributes, in output order.
        columns: Vec<Name>,
    },
    /// Selection `σ_θ(E)`.
    Select {
        /// Input.
        input: Box<RaExpr>,
        /// The condition (evaluated under 3VL; rows kept when `t`).
        cond: RaCond,
    },
    /// Product `E₁ × E₂`: signatures must be disjoint.
    Product(Box<RaExpr>, Box<RaExpr>),
    /// Outer join `E₁ ⟕_θ E₂` / `⟖` / `⟗`: the θ-matching pairs of the
    /// product, plus each dangling row of the preserved side(s) padded
    /// with `NULL`s on the other side. A row is *dangling* iff **no**
    /// counterpart makes θ *true* (an unknown verdict neither matches nor
    /// blocks the padding). Signatures must be disjoint, as for `×`.
    ///
    /// Like `γ` and `τ` this is an extension operator; unlike them it is
    /// definable in the Figure 8 fragment —
    /// [`crate::eliminate()`](crate::eliminate::eliminate) rewrites it
    /// away via the classical identity
    /// `L ⟕_θ R = σ_θ(L×R) ∪ (σ_{empty(σ_θ(R))}(L) × nullrow(ℓR))`.
    OuterJoin {
        /// Which side(s) are preserved.
        kind: JoinKind,
        /// The left operand.
        left: Box<RaExpr>,
        /// The right operand.
        right: Box<RaExpr>,
        /// The join condition θ, evaluated under 3VL like any selection.
        cond: RaCond,
    },
    /// Bag union: signatures must coincide.
    Union(Box<RaExpr>, Box<RaExpr>),
    /// Bag intersection: signatures must coincide.
    Inter(Box<RaExpr>, Box<RaExpr>),
    /// Bag difference: signatures must coincide.
    Diff(Box<RaExpr>, Box<RaExpr>),
    /// Renaming `ρ_{β→β′}(E)`: `β = ℓ(E)` implicitly; `to` is `β′`.
    Rename {
        /// Input.
        input: Box<RaExpr>,
        /// The new signature (same length as `ℓ(E)`, repetition-free).
        to: Vec<Name>,
    },
    /// Duplicate elimination `ε(E)`.
    Dedup(Box<RaExpr>),
    /// The list-layer operator `τ^{n,m}_{keys}(E)` (sort/limit): sort the
    /// bag stably by the keys, skip the first `offset` records, keep at
    /// most `limit`. The one operator whose output is a *list*; nested
    /// under other operators the list degrades back to its bag (but the
    /// `limit`/`offset` slice still matters).
    ///
    /// Like every RA operator, keys are plain attributes of `ℓ(E)`;
    /// signatures are repetition-free, so resolution cannot be
    /// ambiguous here (unlike SQL's `ORDER BY`).
    Sort {
        /// Input.
        input: Box<RaExpr>,
        /// The sort keys, outermost first (empty means slice only).
        keys: Vec<RaSortKey>,
        /// Keep at most this many records (`None`: no bound).
        limit: Option<u64>,
        /// Skip this many records first.
        offset: u64,
    },
    /// Grouping with aggregation `γ_{β; F₁→N₁,…,Fₘ→Nₘ}(E)`: partition
    /// the rows of `E` by the (null-safe) values of the key attributes
    /// `keys ⊆ ℓ(E)`, and output one row per group, carrying the key
    /// values followed by the aggregate results. With empty `keys` there
    /// is always exactly one (possibly empty) group.
    ///
    /// This is the operator the grouped SQL fragment translates to; the
    /// output signature is `keys ++ outputs`, which — like every RA
    /// signature — must be repetition-free.
    GroupBy {
        /// Input.
        input: Box<RaExpr>,
        /// Grouping attributes (a repetition-free subset of `ℓ(E)`).
        keys: Vec<Name>,
        /// The aggregates, each with a fresh output attribute.
        aggs: Vec<RaAggregate>,
    },
}

/// One sort key of a [`RaExpr::Sort`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaSortKey {
    /// The attribute sorted by (must be in `ℓ(E)`).
    pub column: Name,
    /// `true` for descending.
    pub desc: bool,
    /// `NULL` placement (the NULLS-last default already applied).
    pub nulls_first: bool,
}

impl fmt::Display for RaSortKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            self.column,
            if self.desc { "↓" } else { "↑" },
            if self.nulls_first { "ⁿ" } else { "" }
        )
    }
}

/// One aggregate of a [`RaExpr::GroupBy`].
#[derive(Clone, Debug, PartialEq)]
pub struct RaAggregate {
    /// Which function.
    pub func: AggFunc,
    /// `F(DISTINCT ·)`?
    pub distinct: bool,
    /// The argument attribute; `None` is `COUNT(*)`.
    pub arg: Option<Name>,
    /// The output attribute naming this aggregate's column.
    pub output: Name,
}

impl fmt::Display for RaAggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            None => write!(f, "{}(*)→{}", self.func.keyword(), self.output),
            Some(a) => write!(
                f,
                "{}({}{a})→{}",
                self.func.keyword(),
                if self.distinct { "DISTINCT " } else { "" },
                self.output
            ),
        }
    }
}

impl RaExpr {
    /// `π_β(self)`.
    #[must_use]
    pub fn project<N: Into<Name>, I: IntoIterator<Item = N>>(self, columns: I) -> RaExpr {
        RaExpr::Proj {
            input: Box::new(self),
            columns: columns.into_iter().map(Into::into).collect(),
        }
    }

    /// `σ_cond(self)`.
    #[must_use]
    pub fn select(self, cond: RaCond) -> RaExpr {
        RaExpr::Select { input: Box::new(self), cond }
    }

    /// `self × other`.
    #[must_use]
    pub fn product(self, other: RaExpr) -> RaExpr {
        RaExpr::Product(Box::new(self), Box::new(other))
    }

    /// `self ⟕_cond other` (or `⟖`/`⟗` per `kind`).
    #[must_use]
    pub fn outer_join(self, kind: JoinKind, other: RaExpr, cond: RaCond) -> RaExpr {
        RaExpr::OuterJoin { kind, left: Box::new(self), right: Box::new(other), cond }
    }

    /// `self ∪ other`.
    #[must_use]
    pub fn union(self, other: RaExpr) -> RaExpr {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    #[must_use]
    pub fn intersect(self, other: RaExpr) -> RaExpr {
        RaExpr::Inter(Box::new(self), Box::new(other))
    }

    /// `self − other`.
    #[must_use]
    pub fn diff(self, other: RaExpr) -> RaExpr {
        RaExpr::Diff(Box::new(self), Box::new(other))
    }

    /// `ρ_{ℓ(self)→to}(self)`.
    #[must_use]
    pub fn rename<N: Into<Name>, I: IntoIterator<Item = N>>(self, to: I) -> RaExpr {
        RaExpr::Rename { input: Box::new(self), to: to.into_iter().map(Into::into).collect() }
    }

    /// `ε(self)`.
    #[must_use]
    pub fn dedup(self) -> RaExpr {
        RaExpr::Dedup(Box::new(self))
    }

    /// `τ^{limit,offset}_{keys}(self)`.
    #[must_use]
    pub fn sort(self, keys: Vec<RaSortKey>, limit: Option<u64>, offset: u64) -> RaExpr {
        RaExpr::Sort { input: Box::new(self), keys, limit, offset }
    }

    /// `γ_{keys; aggs}(self)`.
    #[must_use]
    pub fn group_by<N: Into<Name>, I: IntoIterator<Item = N>>(
        self,
        keys: I,
        aggs: Vec<RaAggregate>,
    ) -> RaExpr {
        RaExpr::GroupBy {
            input: Box::new(self),
            keys: keys.into_iter().map(Into::into).collect(),
            aggs,
        }
    }

    /// `true` iff the expression (and every nested one) avoids the SQL-RA
    /// condition extensions — i.e. it is an expression of the Figure 8
    /// grammar.
    pub fn is_pure(&self) -> bool {
        match self {
            RaExpr::Base(_) => true,
            RaExpr::Proj { input, .. }
            | RaExpr::Rename { input, .. }
            | RaExpr::Dedup(input)
            | RaExpr::GroupBy { input, .. }
            | RaExpr::Sort { input, .. } => input.is_pure(),
            RaExpr::Select { input, cond } => input.is_pure() && cond_is_pure_deep(cond),
            RaExpr::Product(a, b)
            | RaExpr::Union(a, b)
            | RaExpr::Inter(a, b)
            | RaExpr::Diff(a, b) => a.is_pure() && b.is_pure(),
            // The outer join itself is definable in pure RA (see
            // `eliminate`); only a condition extension makes it impure.
            RaExpr::OuterJoin { left, right, cond, .. } => {
                left.is_pure() && right.is_pure() && cond_is_pure_deep(cond)
            }
        }
    }

    /// Number of operators in the expression tree (a size measure for the
    /// experiment reports).
    pub fn size(&self) -> usize {
        let mut n = 1;
        match self {
            RaExpr::Base(_) => {}
            RaExpr::Proj { input, .. }
            | RaExpr::Rename { input, .. }
            | RaExpr::Dedup(input)
            | RaExpr::GroupBy { input, .. }
            | RaExpr::Sort { input, .. } => {
                n += input.size();
            }
            RaExpr::Select { input, cond } => {
                n += input.size();
                n += cond_size(cond);
            }
            RaExpr::Product(a, b)
            | RaExpr::Union(a, b)
            | RaExpr::Inter(a, b)
            | RaExpr::Diff(a, b) => {
                n += a.size() + b.size();
            }
            RaExpr::OuterJoin { left, right, cond, .. } => {
                n += left.size() + right.size() + cond_size(cond);
            }
        }
        n
    }
}

fn cond_is_pure_deep(cond: &RaCond) -> bool {
    match cond {
        RaCond::In { .. } | RaCond::Empty(_) => false,
        RaCond::And(a, b) | RaCond::Or(a, b) => cond_is_pure_deep(a) && cond_is_pure_deep(b),
        RaCond::Not(c) => cond_is_pure_deep(c),
        _ => true,
    }
}

fn cond_size(cond: &RaCond) -> usize {
    match cond {
        RaCond::And(a, b) | RaCond::Or(a, b) => 1 + cond_size(a) + cond_size(b),
        RaCond::Not(c) => 1 + cond_size(c),
        RaCond::In { expr, .. } => 1 + expr.size(),
        RaCond::Empty(expr) => 1 + expr.size(),
        _ => 1,
    }
}

/// Computes the signature `ℓ(E)` while checking the §5 well-formedness
/// side conditions: product signatures disjoint, set-operation signatures
/// equal, projections repetition-free subsets, renamings repetition-free
/// and length-matching. RA signatures are always repetition-free.
pub fn signature(expr: &RaExpr, schema: &Schema) -> Result<Vec<Name>, EvalError> {
    match expr {
        RaExpr::Base(r) => match schema.attributes(r) {
            Some(attrs) => Ok(attrs.to_vec()),
            None => Err(EvalError::UnknownTable(r.clone())),
        },
        RaExpr::Proj { input, columns } => {
            let sig = signature(input, schema)?;
            if columns.is_empty() {
                return Err(EvalError::ZeroArity);
            }
            let mut seen = std::collections::HashSet::with_capacity(columns.len());
            for c in columns {
                if !sig.contains(c) {
                    return Err(EvalError::malformed(format!(
                        "π projects {c}, which is not in the signature"
                    )));
                }
                if !seen.insert(c) {
                    return Err(EvalError::malformed(format!("π repeats attribute {c}")));
                }
            }
            Ok(columns.clone())
        }
        RaExpr::Select { input, .. } | RaExpr::Dedup(input) => signature(input, schema),
        RaExpr::Product(a, b) => {
            let sa = signature(a, schema)?;
            let sb = signature(b, schema)?;
            for n in &sb {
                if sa.contains(n) {
                    return Err(EvalError::malformed(format!("× operands share attribute {n}")));
                }
            }
            let mut out = sa;
            out.extend(sb);
            Ok(out)
        }
        RaExpr::OuterJoin { left, right, .. } => {
            let sa = signature(left, schema)?;
            let sb = signature(right, schema)?;
            for n in &sb {
                if sa.contains(n) {
                    return Err(EvalError::malformed(format!(
                        "outer-join operands share attribute {n}"
                    )));
                }
            }
            let mut out = sa;
            out.extend(sb);
            Ok(out)
        }
        RaExpr::Union(a, b) | RaExpr::Inter(a, b) | RaExpr::Diff(a, b) => {
            let sa = signature(a, schema)?;
            let sb = signature(b, schema)?;
            if sa != sb {
                return Err(EvalError::malformed(
                    "set-operation operands have different signatures",
                ));
            }
            Ok(sa)
        }
        RaExpr::Rename { input, to } => {
            let sig = signature(input, schema)?;
            if sig.len() != to.len() {
                return Err(EvalError::ArityMismatch {
                    context: "ρ renaming",
                    left: sig.len(),
                    right: to.len(),
                });
            }
            let mut seen = std::collections::HashSet::with_capacity(to.len());
            for n in to {
                if !seen.insert(n) {
                    return Err(EvalError::malformed(format!("ρ repeats attribute {n}")));
                }
            }
            Ok(to.clone())
        }
        RaExpr::Sort { input, keys, .. } => {
            let sig = signature(input, schema)?;
            for k in keys {
                if !sig.contains(&k.column) {
                    return Err(EvalError::malformed(format!(
                        "τ sorts by {}, which is not in the signature",
                        k.column
                    )));
                }
            }
            Ok(sig)
        }
        RaExpr::GroupBy { input, keys, aggs } => {
            let sig = signature(input, schema)?;
            if keys.is_empty() && aggs.is_empty() {
                return Err(EvalError::ZeroArity);
            }
            let mut out = Vec::with_capacity(keys.len() + aggs.len());
            let mut seen = std::collections::HashSet::with_capacity(keys.len() + aggs.len());
            for k in keys {
                if !sig.contains(k) {
                    return Err(EvalError::malformed(format!(
                        "γ groups by {k}, which is not in the signature"
                    )));
                }
                if !seen.insert(k) {
                    return Err(EvalError::malformed(format!("γ repeats key {k}")));
                }
                out.push(k.clone());
            }
            for agg in aggs {
                if let Some(arg) = &agg.arg {
                    if !sig.contains(arg) {
                        return Err(EvalError::malformed(format!(
                            "γ aggregates {arg}, which is not in the signature"
                        )));
                    }
                } else if agg.func != AggFunc::Count {
                    return Err(EvalError::malformed("only COUNT may be applied to *"));
                }
                if !seen.insert(&agg.output) {
                    return Err(EvalError::malformed(format!(
                        "γ repeats output attribute {}",
                        agg.output
                    )));
                }
                out.push(agg.output.clone());
            }
            Ok(out)
        }
    }
}

// ---------------------------------------------------------------------------
// Display: compact mathematical notation, e.g.
//   ρ[B→A](ε(R′) ▷ σ[B=C](R′ × S′)) — useful in reports and examples.
// ---------------------------------------------------------------------------

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaExpr::Base(r) => write!(f, "{r}"),
            RaExpr::Proj { input, columns } => {
                write!(f, "π[{}]({input})", join(columns))
            }
            RaExpr::Select { input, cond } => write!(f, "σ[{cond}]({input})"),
            RaExpr::Product(a, b) => write!(f, "({a} × {b})"),
            RaExpr::OuterJoin { kind, left, right, cond } => {
                let op = match kind {
                    JoinKind::Left => "⟕",
                    JoinKind::Right => "⟖",
                    JoinKind::Full => "⟗",
                };
                write!(f, "({left} {op}[{cond}] {right})")
            }
            RaExpr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            RaExpr::Inter(a, b) => write!(f, "({a} ∩ {b})"),
            RaExpr::Diff(a, b) => write!(f, "({a} − {b})"),
            RaExpr::Rename { input, to } => write!(f, "ρ[→{}]({input})", join(to)),
            RaExpr::Dedup(input) => write!(f, "ε({input})"),
            RaExpr::GroupBy { input, keys, aggs } => {
                let rendered: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                write!(f, "γ[{}; {}]({input})", join(keys), rendered.join(", "))
            }
            RaExpr::Sort { input, keys, limit, offset } => {
                let rendered: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
                write!(f, "τ[{}", rendered.join(","))?;
                if let Some(n) = limit {
                    write!(f, "; limit {n}")?;
                }
                if *offset > 0 {
                    write!(f, "; offset {offset}")?;
                }
                write!(f, "]({input})")
            }
        }
    }
}

impl fmt::Display for RaCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaCond::True => f.write_str("TRUE"),
            RaCond::False => f.write_str("FALSE"),
            RaCond::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            RaCond::Like { term, pattern, negated } => {
                write!(f, "{term} {}LIKE {pattern}", if *negated { "NOT " } else { "" })
            }
            RaCond::Pred { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            RaCond::Null(t) => write!(f, "null({t})"),
            RaCond::IsConst(t) => write!(f, "const({t})"),
            RaCond::And(a, b) => write!(f, "({a} ∧ {b})"),
            RaCond::Or(a, b) => write!(f, "({a} ∨ {b})"),
            RaCond::Not(c) => write!(f, "¬{c}"),
            RaCond::In { terms, expr } => {
                if terms.len() == 1 {
                    write!(f, "{} ∈ ({expr})", terms[0])
                } else {
                    f.write_str("(")?;
                    for (i, t) in terms.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, ") ∈ ({expr})")
                }
            }
            RaCond::Empty(e) => write!(f, "empty({e})"),
        }
    }
}

fn join(names: &[Name]) -> String {
    names.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder().table("R", ["A", "B"]).table("S", ["C"]).build().unwrap()
    }

    fn names(ns: &[&str]) -> Vec<Name> {
        ns.iter().map(Name::new).collect()
    }

    #[test]
    fn base_signature_comes_from_schema() {
        assert_eq!(
            signature(&RaExpr::Base(Name::new("R")), &schema()).unwrap(),
            names(&["A", "B"])
        );
        assert!(matches!(
            signature(&RaExpr::Base(Name::new("Z")), &schema()),
            Err(EvalError::UnknownTable(_))
        ));
    }

    #[test]
    fn projection_checks_membership_and_repetition() {
        let r = RaExpr::Base(Name::new("R"));
        assert_eq!(signature(&r.clone().project(["B"]), &schema()).unwrap(), names(&["B"]));
        assert!(signature(&r.clone().project(["Z"]), &schema()).is_err());
        assert!(signature(&r.clone().project(["A", "A"]), &schema()).is_err());
        assert!(signature(&r.project(Vec::<Name>::new()), &schema()).is_err());
    }

    #[test]
    fn product_requires_disjoint_signatures() {
        let r = RaExpr::Base(Name::new("R"));
        let s = RaExpr::Base(Name::new("S"));
        assert_eq!(signature(&r.clone().product(s), &schema()).unwrap(), names(&["A", "B", "C"]));
        assert!(signature(&r.clone().product(r), &schema()).is_err());
    }

    #[test]
    fn set_ops_require_equal_signatures() {
        let r = RaExpr::Base(Name::new("R"));
        let s = RaExpr::Base(Name::new("S"));
        assert!(signature(&r.clone().union(s.clone()), &schema()).is_err());
        let s2 = s.rename(["A"]);
        let r2 = r.project(["A"]);
        assert_eq!(signature(&r2.union(s2), &schema()).unwrap(), names(&["A"]));
    }

    #[test]
    fn rename_checks_arity_and_repetition() {
        let r = RaExpr::Base(Name::new("R"));
        assert_eq!(
            signature(&r.clone().rename(["X", "Y"]), &schema()).unwrap(),
            names(&["X", "Y"])
        );
        assert!(signature(&r.clone().rename(["X"]), &schema()).is_err());
        assert!(signature(&r.rename(["X", "X"]), &schema()).is_err());
    }

    #[test]
    fn purity_detects_sqlra_extensions() {
        let r = RaExpr::Base(Name::new("R"));
        assert!(r.is_pure());
        let with_empty = r.clone().select(RaCond::Empty(Box::new(RaExpr::Base(Name::new("S")))));
        assert!(!with_empty.is_pure());
        let with_in = r.clone().select(RaCond::In {
            terms: vec![RaTerm::name("A")],
            expr: Box::new(RaExpr::Base(Name::new("S"))),
        });
        assert!(!with_in.is_pure());
        // Nested inside another expression.
        let nested = with_empty.project(["A"]);
        assert!(!nested.is_pure());
        // Pure conditions stay pure.
        let cond = RaCond::eq(RaTerm::name("A"), RaTerm::Const(Value::Int(1)))
            .and(RaCond::Null(RaTerm::name("B")))
            .not();
        assert!(r.select(cond).is_pure());
    }

    #[test]
    fn display_is_compact() {
        let e = RaExpr::Base(Name::new("R"))
            .select(RaCond::eq(RaTerm::name("A"), RaTerm::Const(Value::Int(1))))
            .project(["A"])
            .dedup();
        assert_eq!(e.to_string(), "ε(π[A](σ[A = 1](R)))");
    }

    #[test]
    fn size_counts_nested_expressions() {
        let r = RaExpr::Base(Name::new("R"));
        assert_eq!(r.size(), 1);
        let s = RaExpr::Base(Name::new("S"));
        let e = r.select(RaCond::Empty(Box::new(s)));
        assert_eq!(e.size(), 4); // σ + base + empty-atom + inner base
    }
}
