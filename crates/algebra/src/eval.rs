//! Semantics of bag relational algebra and SQL-RA (Figure 8 and §5).
//!
//! An expression `E` evaluated on a database `D` produces the table
//! `⟦E⟧_D`, with column names `ℓ(E)`. For SQL-RA, every expression
//! carries an environment `η` (a partial map from *plain* names to
//! values), which changes only at selections:
//!
//! ```text
//! ⟦σ_θ(E)⟧_{D,η} = { a̅ … | a̅ ∈ₖ ⟦E⟧_{D,η}, ⟦θ⟧_{D, η;η^a̅_{ℓ(E)}} = t }
//! ```
//!
//! Conditions are interpreted under 3VL: predicates are `u` on `NULL`
//! arguments, `null(t)`/`const(t)`/`empty(E)` are two-valued, `t̄ ∈ E`
//! follows the same Kleene disjunction as SQL's `IN`.

use std::collections::HashMap;

use sqlsem_core::{
    CmpOp, Database, EvalError, Name, PredicateRegistry, Row, Schema, Table, Truth, Value,
};

use crate::expr::{signature, RaCond, RaExpr, RaTerm};

/// An RA environment: a partial map from plain names to values (§5).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RaEnv {
    bindings: HashMap<Name, Value>,
}

impl RaEnv {
    /// The empty environment.
    pub fn empty() -> RaEnv {
        RaEnv::default()
    }

    /// Binds one name.
    #[must_use]
    pub fn bind(&self, name: impl Into<Name>, value: Value) -> RaEnv {
        let mut bindings = self.bindings.clone();
        bindings.insert(name.into(), value);
        RaEnv { bindings }
    }

    /// `η ; η^a̅_β`: this environment overridden by the bindings of a row
    /// against a (repetition-free) signature.
    #[must_use]
    pub fn with_row(&self, sig: &[Name], row: &Row) -> RaEnv {
        debug_assert_eq!(sig.len(), row.arity());
        let mut bindings = self.bindings.clone();
        for (n, v) in sig.iter().zip(row.iter()) {
            bindings.insert(n.clone(), v.clone());
        }
        RaEnv { bindings }
    }

    /// Looks a name up.
    pub fn get(&self, name: &Name) -> Option<&Value> {
        self.bindings.get(name)
    }

    /// `true` iff no names are bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

/// The SQL-RA evaluator.
#[derive(Clone, Debug)]
pub struct RaEvaluator<'a> {
    db: &'a Database,
    preds: PredicateRegistry,
}

impl<'a> RaEvaluator<'a> {
    /// Creates an evaluator over `db` with no user predicates.
    pub fn new(db: &'a Database) -> Self {
        RaEvaluator { db, preds: PredicateRegistry::new() }
    }

    /// Provides user predicates.
    #[must_use]
    pub fn with_predicates(mut self, preds: PredicateRegistry) -> Self {
        self.preds = preds;
        self
    }

    /// The schema in effect.
    pub fn schema(&self) -> &Schema {
        self.db.schema()
    }

    /// Evaluates a *query* (a closed expression): `⟦E⟧_{D,∅}`.
    pub fn eval(&self, expr: &RaExpr) -> Result<Table, EvalError> {
        self.eval_in(expr, &RaEnv::empty())
    }

    /// Evaluates `⟦E⟧_{D,η}`.
    pub fn eval_in(&self, expr: &RaExpr, env: &RaEnv) -> Result<Table, EvalError> {
        match expr {
            RaExpr::Base(r) => self.db.table(r),
            RaExpr::Proj { input, columns } => {
                let sig = signature(input, self.db.schema())?;
                let table = self.eval_in(input, env)?;
                let positions: Vec<usize> = columns
                    .iter()
                    .map(|c| {
                        sig.iter().position(|n| n == c).ok_or_else(|| {
                            EvalError::malformed(format!("π projects unknown attribute {c}"))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if positions.is_empty() {
                    return Err(EvalError::ZeroArity);
                }
                let mut out = Table::new(columns.clone())?;
                for row in table.rows() {
                    out.push(row.project(&positions))?;
                }
                Ok(out)
            }
            RaExpr::Select { input, cond } => {
                let sig = signature(input, self.db.schema())?;
                let table = self.eval_in(input, env)?;
                let mut out = Table::new(sig.clone())?;
                for row in table.rows() {
                    let inner = env.with_row(&sig, row);
                    if self.eval_cond(cond, &inner)?.is_true() {
                        out.push(row.clone())?;
                    }
                }
                Ok(out)
            }
            RaExpr::Product(a, b) => {
                // Well-formedness (disjoint signatures) is enforced here
                // so evaluation cannot silently mis-bind names.
                signature(expr, self.db.schema())?;
                Ok(self.eval_in(a, env)?.product(&self.eval_in(b, env)?))
            }
            RaExpr::OuterJoin { kind, left, right, cond } => {
                let sig = signature(expr, self.db.schema())?;
                let lt = self.eval_in(left, env)?;
                let rt = self.eval_in(right, env)?;
                let mut out = Table::new(sig.clone())?;
                let left_pad = Row::new(vec![Value::Null; lt.arity()]);
                let right_pad = Row::new(vec![Value::Null; rt.arity()]);
                let mut right_matched = vec![false; rt.len()];
                for lrow in lt.rows() {
                    let mut matched = false;
                    for (j, rrow) in rt.rows().enumerate() {
                        let joined = lrow.concat(rrow);
                        let inner = env.with_row(&sig, &joined);
                        if self.eval_cond(cond, &inner)?.is_true() {
                            matched = true;
                            right_matched[j] = true;
                            out.push(joined)?;
                        }
                    }
                    if !matched && kind.keeps_left() {
                        out.push(lrow.concat(&right_pad))?;
                    }
                }
                if kind.keeps_right() {
                    for (j, rrow) in rt.rows().enumerate() {
                        if !right_matched[j] {
                            out.push(left_pad.concat(rrow))?;
                        }
                    }
                }
                Ok(out)
            }
            RaExpr::Union(a, b) => self.eval_in(a, env)?.union_all(&self.eval_in(b, env)?),
            RaExpr::Inter(a, b) => self.eval_in(a, env)?.intersect_all(&self.eval_in(b, env)?),
            RaExpr::Diff(a, b) => self.eval_in(a, env)?.except_all(&self.eval_in(b, env)?),
            RaExpr::Rename { input, to } => {
                signature(expr, self.db.schema())?;
                self.eval_in(input, env)?.with_columns(to.clone())
            }
            RaExpr::Dedup(input) => Ok(self.eval_in(input, env)?.distinct()),
            RaExpr::Sort { input, keys, limit, offset } => {
                signature(expr, self.db.schema())?; // keys ∈ ℓ(E)
                let table = self.eval_in(input, env)?;
                // RA signatures are repetition-free, so the shared SQL
                // list layer (which resolves by name) applies directly.
                let order_by: Vec<sqlsem_core::OrderKey> = keys
                    .iter()
                    .map(|k| sqlsem_core::OrderKey {
                        column: k.column.clone(),
                        desc: k.desc,
                        nulls_first: Some(k.nulls_first),
                    })
                    .collect();
                sqlsem_core::order::sort_and_slice(table, &order_by, *limit, Some(*offset))
            }
            RaExpr::GroupBy { input, keys, aggs } => {
                let out_sig = signature(expr, self.db.schema())?;
                let in_sig = signature(input, self.db.schema())?;
                let table = self.eval_in(input, env)?;
                let key_pos: Vec<usize> = keys
                    .iter()
                    .map(|k| in_sig.iter().position(|n| n == k).expect("checked by signature"))
                    .collect();
                // Partition null-safely (the syntactic identity of the
                // derived `Eq`/`Hash`), preserving first-appearance order.
                let mut order: Vec<Vec<Value>> = Vec::new();
                let mut groups: Vec<Vec<&Row>> = Vec::new();
                let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
                for row in table.rows() {
                    let key: Vec<Value> = key_pos.iter().map(|&i| row[i].clone()).collect();
                    match index.get(&key) {
                        Some(&i) => groups[i].push(row),
                        None => {
                            index.insert(key.clone(), order.len());
                            order.push(key);
                            groups.push(vec![row]);
                        }
                    }
                }
                // With no keys there is always exactly one group — the
                // implicit group of `SELECT COUNT(*) FROM R`.
                if keys.is_empty() && order.is_empty() {
                    order.push(Vec::new());
                    groups.push(Vec::new());
                }
                let mut out = Table::new(out_sig)?;
                for (key, group) in order.into_iter().zip(groups) {
                    let mut row = key;
                    for agg in aggs {
                        row.push(match &agg.arg {
                            // COUNT(*): records counted regardless of nulls.
                            None => Value::Int(group.len() as i64),
                            Some(arg) => {
                                let pos = in_sig
                                    .iter()
                                    .position(|n| n == arg)
                                    .expect("checked by signature");
                                sqlsem_core::aggregate(
                                    agg.func,
                                    agg.distinct,
                                    group.iter().map(|r| r[pos].clone()),
                                )?
                            }
                        });
                    }
                    out.push(Row::new(row))?;
                }
                Ok(out)
            }
        }
    }

    /// Evaluates `⟦θ⟧_{D,η}` under 3VL.
    pub fn eval_cond(&self, cond: &RaCond, env: &RaEnv) -> Result<Truth, EvalError> {
        match cond {
            RaCond::True => Ok(Truth::True),
            RaCond::False => Ok(Truth::False),
            RaCond::Cmp { left, op, right } => {
                let l = self.eval_term(left, env)?;
                let r = self.eval_term(right, env)?;
                l.sql_cmp(&r, *op)
            }
            RaCond::Like { term, pattern, negated } => {
                let t = self.eval_term(term, env)?;
                let p = self.eval_term(pattern, env)?;
                let truth = t.sql_like(&p)?;
                Ok(if *negated { truth.not() } else { truth })
            }
            RaCond::Pred { name, args } => {
                let values: Vec<Value> =
                    args.iter().map(|t| self.eval_term(t, env)).collect::<Result<_, _>>()?;
                if values.iter().any(Value::is_null) {
                    return Ok(Truth::Unknown);
                }
                Ok(Truth::from_bool(self.preds.apply(name, &values)?))
            }
            RaCond::Null(t) => Ok(Truth::from_bool(self.eval_term(t, env)?.is_null())),
            RaCond::IsConst(t) => Ok(Truth::from_bool(!self.eval_term(t, env)?.is_null())),
            RaCond::And(a, b) => Ok(self.eval_cond(a, env)?.and(self.eval_cond(b, env)?)),
            RaCond::Or(a, b) => Ok(self.eval_cond(a, env)?.or(self.eval_cond(b, env)?)),
            RaCond::Not(c) => Ok(self.eval_cond(c, env)?.not()),
            RaCond::In { terms, expr } => {
                let values: Vec<Value> =
                    terms.iter().map(|t| self.eval_term(t, env)).collect::<Result<_, _>>()?;
                let table = self.eval_in(expr, env)?;
                if table.arity() != values.len() {
                    return Err(EvalError::ArityMismatch {
                        context: "∈",
                        left: values.len(),
                        right: table.arity(),
                    });
                }
                let mut acc = Truth::False;
                for row in table.rows() {
                    let mut eq = Truth::True;
                    for (v, r) in values.iter().zip(row.iter()) {
                        eq = eq.and(v.sql_cmp(r, CmpOp::Eq)?);
                    }
                    acc = acc.or(eq);
                    if acc.is_true() {
                        break;
                    }
                }
                Ok(acc)
            }
            RaCond::Empty(expr) => Ok(Truth::from_bool(self.eval_in(expr, env)?.is_empty())),
        }
    }

    /// `⟦t⟧_η` — names resolve in the environment, constants denote
    /// themselves.
    pub fn eval_term(&self, term: &RaTerm, env: &RaEnv) -> Result<Value, EvalError> {
        match term {
            RaTerm::Const(v) => Ok(v.clone()),
            RaTerm::Name(n) => env.get(n).cloned().ok_or_else(|| EvalError::UnboundName(n.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlsem_core::{row, table};

    fn db() -> Database {
        let schema = sqlsem_core::Schema::builder()
            .table("R", ["A", "B"])
            .table("S", ["C"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A", "B"]; [1, 2], [1, 2], [Value::Null, 3] }).unwrap();
        db.replace_table("S", table! { ["C"]; [1], [9] }).unwrap();
        db
    }

    fn r() -> RaExpr {
        RaExpr::Base(Name::new("R"))
    }

    fn s() -> RaExpr {
        RaExpr::Base(Name::new("S"))
    }

    #[test]
    fn projection_is_bag_projection() {
        // The paper's example: π_A over {(a,b),(a,c)} yields {a,a}.
        let dbv = db();
        let out = RaEvaluator::new(&dbv).eval(&r().project(["A"])).unwrap();
        assert!(out.multiset_eq(&table! { ["A"]; [1], [1], [Value::Null] }));
    }

    #[test]
    fn selection_keeps_only_true_rows() {
        let dbv = db();
        let cond = RaCond::eq(RaTerm::name("A"), RaTerm::Const(Value::Int(1)));
        let out = RaEvaluator::new(&dbv).eval(&r().select(cond)).unwrap();
        // The NULL row evaluates to u and is dropped.
        assert!(out.multiset_eq(&table! { ["A", "B"]; [1, 2], [1, 2] }));
    }

    #[test]
    fn null_and_const_are_two_valued() {
        let dbv = db();
        let out =
            RaEvaluator::new(&dbv).eval(&r().select(RaCond::Null(RaTerm::name("A")))).unwrap();
        assert_eq!(out.len(), 1);
        let out =
            RaEvaluator::new(&dbv).eval(&r().select(RaCond::IsConst(RaTerm::name("A")))).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn product_and_rename() {
        let dbv = db();
        let e = r().product(s().rename(["C2"]).project(["C2"]));
        // Well-formed because C2 is fresh… but S has one column, so the
        // rename is on the base table directly.
        let e2 = r().product(RaExpr::Base(Name::new("S")).rename(["C2"]));
        let _ = e;
        let out = RaEvaluator::new(&dbv).eval(&e2).unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(out.multiplicity(&row![1, 2, 1]), 2);
    }

    #[test]
    fn product_rejects_overlapping_signatures() {
        let dbv = db();
        assert!(RaEvaluator::new(&dbv).eval(&r().product(r())).is_err());
    }

    #[test]
    fn set_operations_are_bag_ops() {
        let dbv = db();
        let a = r().project(["A"]);
        let s_as_a = RaExpr::Base(Name::new("S")).rename(["A"]);
        let u = RaEvaluator::new(&dbv).eval(&a.clone().union(s_as_a.clone())).unwrap();
        assert_eq!(u.len(), 5);
        let i = RaEvaluator::new(&dbv).eval(&a.clone().intersect(s_as_a.clone())).unwrap();
        assert!(i.multiset_eq(&table! { ["A"]; [1] }));
        let d = RaEvaluator::new(&dbv).eval(&a.diff(s_as_a)).unwrap();
        assert!(d.multiset_eq(&table! { ["A"]; [1], [Value::Null] }));
    }

    #[test]
    fn dedup_caps_multiplicities() {
        let dbv = db();
        let out = RaEvaluator::new(&dbv).eval(&r().dedup()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn group_by_partitions_null_safely_and_follows_the_null_discipline() {
        use crate::expr::RaAggregate;
        use sqlsem_core::AggFunc;
        let schema = sqlsem_core::Schema::builder().table("R", ["A", "B"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table(
            "R",
            table! { ["A", "B"]; [1, 2], [1, Value::Null], [Value::Null, 5], [Value::Null, 5] },
        )
        .unwrap();
        let e = RaExpr::Base(Name::new("R")).group_by(
            ["A"],
            vec![
                RaAggregate {
                    func: AggFunc::Count,
                    distinct: false,
                    arg: None,
                    output: "n".into(),
                },
                RaAggregate {
                    func: AggFunc::Count,
                    distinct: false,
                    arg: Some(Name::new("B")),
                    output: "m".into(),
                },
                RaAggregate {
                    func: AggFunc::Sum,
                    distinct: true,
                    arg: Some(Name::new("B")),
                    output: "s".into(),
                },
            ],
        );
        let out = RaEvaluator::new(&db).eval(&e).unwrap();
        assert!(
            out.multiset_eq(&table! {
                ["A", "n", "m", "s"];
                [1, 2, 1, 2],
                [Value::Null, 2, 2, 5]
            }),
            "got:\n{out}"
        );
    }

    #[test]
    fn keyless_group_by_always_yields_one_group() {
        use crate::expr::RaAggregate;
        use sqlsem_core::AggFunc;
        let schema = sqlsem_core::Schema::builder().table("R", ["A"]).build().unwrap();
        let db = Database::new(schema); // R empty
        let e = RaExpr::Base(Name::new("R")).group_by(
            Vec::<Name>::new(),
            vec![
                RaAggregate {
                    func: AggFunc::Count,
                    distinct: false,
                    arg: None,
                    output: "n".into(),
                },
                RaAggregate {
                    func: AggFunc::Max,
                    distinct: false,
                    arg: Some(Name::new("A")),
                    output: "hi".into(),
                },
            ],
        );
        let out = RaEvaluator::new(&db).eval(&e).unwrap();
        assert!(out.multiset_eq(&table! { ["n", "hi"]; [0, Value::Null] }), "got:\n{out}");
    }

    #[test]
    fn selection_env_overrides_outer() {
        // σ with a parameter: the inner row binding shadows the outer η
        // on the same name, as in η;η^a̅.
        let dbv = db();
        let env = RaEnv::empty().bind("A", Value::Int(999)).bind("P", Value::Int(1));
        // A = P: A comes from the row (shadows 999), P from the env.
        let cond = RaCond::eq(RaTerm::name("A"), RaTerm::name("P"));
        let out = RaEvaluator::new(&dbv).eval_in(&r().select(cond), &env).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn in_condition_follows_kleene_disjunction() {
        let dbv = db();
        let ev = RaEvaluator::new(&dbv);
        // A ∈ S with A = NULL: u (NULL = 1 is u, NULL = 9 is u).
        let env = RaEnv::empty().bind("A", Value::Null);
        let cond = RaCond::In { terms: vec![RaTerm::name("A")], expr: Box::new(s()) };
        assert_eq!(ev.eval_cond(&cond, &env).unwrap(), Truth::Unknown);
        // A = 1: t.
        let env = RaEnv::empty().bind("A", Value::Int(1));
        assert_eq!(ev.eval_cond(&cond, &env).unwrap(), Truth::True);
        // A = 2: f.
        let env = RaEnv::empty().bind("A", Value::Int(2));
        assert_eq!(ev.eval_cond(&cond, &env).unwrap(), Truth::False);
    }

    #[test]
    fn empty_condition_is_two_valued() {
        let dbv = db();
        let ev = RaEvaluator::new(&dbv);
        let env = RaEnv::empty();
        assert_eq!(ev.eval_cond(&RaCond::Empty(Box::new(s())), &env).unwrap(), Truth::False);
        let none = s().select(RaCond::False);
        assert_eq!(ev.eval_cond(&RaCond::Empty(Box::new(none)), &env).unwrap(), Truth::True);
    }

    #[test]
    fn correlated_empty_sees_outer_binding() {
        // empty(σ_{C = X}(S)) with X bound outside.
        let dbv = db();
        let ev = RaEvaluator::new(&dbv);
        let sub = s().select(RaCond::eq(RaTerm::name("C"), RaTerm::name("X")));
        let cond = RaCond::Empty(Box::new(sub));
        assert_eq!(
            ev.eval_cond(&cond, &RaEnv::empty().bind("X", Value::Int(1))).unwrap(),
            Truth::False
        );
        assert_eq!(
            ev.eval_cond(&cond, &RaEnv::empty().bind("X", Value::Int(5))).unwrap(),
            Truth::True
        );
    }

    #[test]
    fn unbound_names_error() {
        let dbv = db();
        let ev = RaEvaluator::new(&dbv);
        let cond = RaCond::eq(RaTerm::name("Zzz"), RaTerm::Const(Value::Int(1)));
        assert_eq!(
            ev.eval_cond(&cond, &RaEnv::empty()).unwrap_err(),
            EvalError::UnboundName(Name::new("Zzz"))
        );
    }
}
