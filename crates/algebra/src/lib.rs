//! # sqlsem-algebra
//!
//! Bag relational algebra, SQL-RA, and the provably correct translation
//! from basic SQL — the §5 development of Guagliardo & Libkin
//! (PVLDB 2017), culminating in Theorem 1: *data manipulation queries of
//! basic SQL and relational algebra under bag semantics have the same
//! expressive power*.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`expr`] | RA/SQL-RA syntax and signatures `ℓ(E)` (§5) |
//! | [`eval`] | the semantics `⟦E⟧_{D,η}` (Figure 8 + SQL-RA extension) |
//! | [`params`](mod@params) | parameters `param(E)`, `param(θ, A)` (§5) |
//! | [`gadgets`] | `≐`, syntactic (anti/semi)joins, `π^α_β` (Def. 2, §5) |
//! | [`translate`](mod@translate) | SQL → SQL-RA under `χ` (Figure 9, Prop. 1) |
//! | [`eliminate`](mod@eliminate) | SQL-RA → pure RA (Prop. 2) |
//!
//! End-to-end (Theorem 1, forward direction):
//!
//! ```
//! use sqlsem_algebra::{eliminate, translate, RaEvaluator};
//! use sqlsem_core::{table, Database, Evaluator, Schema, Value};
//! use sqlsem_parser::compile;
//!
//! let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
//! let mut db = Database::new(schema.clone());
//! db.replace_table("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
//! db.replace_table("S", table! { ["A"]; [Value::Null] }).unwrap();
//!
//! // Example 1's Q1 — empty under 3VL.
//! let q = compile("SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", &schema)
//!     .unwrap();
//! let sqlra = translate(&q, &schema).unwrap();          // Figure 9
//! let pure = eliminate(&sqlra, &schema).unwrap();       // Proposition 2
//! assert!(pure.is_pure());
//!
//! let sql_answer = Evaluator::new(&db).eval(&q).unwrap();
//! let ra_answer = RaEvaluator::new(&db).eval(&pure).unwrap();
//! assert!(sql_answer.coincides(&ra_answer));
//! assert!(sql_answer.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod eliminate;
pub mod eval;
pub mod expr;
pub mod gadgets;
pub mod params;
pub mod translate;

pub use eliminate::{decorrelate, eliminate, expand_outer_join, twovalify};
pub use eval::{RaEnv, RaEvaluator};
pub use expr::{signature, RaCond, RaExpr, RaSortKey, RaTerm};
pub use gadgets::{
    null_row, project_with_repetition, syntactic_antijoin, syntactic_eq, syntactic_natural_join,
    syntactic_semijoin, NameGen,
};
pub use params::{cond_params, is_closed, params};
pub use translate::{is_data_manipulation, translate, Chi, TranslateError};
