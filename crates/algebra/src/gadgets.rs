//! Derived RA operators used by the §5 translation: syntactic equality,
//! syntactic natural (anti)joins, and the projection-with-repetition
//! gadget `π^α_β`.
//!
//! All of these expand into the core RA grammar; nothing here extends the
//! language. A shared [`NameGen`] provides fresh attribute names for the
//! intermediate renamings.

use std::collections::HashSet;

use sqlsem_core::{EvalError, Name, Schema};

use crate::expr::{signature, RaCond, RaExpr, RaTerm};

/// A fresh-name source that provably avoids every name in use.
#[derive(Clone, Debug, Default)]
pub struct NameGen {
    used: HashSet<Name>,
    counter: usize,
}

impl NameGen {
    /// Creates a generator avoiding the given names.
    pub fn avoiding(used: impl IntoIterator<Item = Name>) -> NameGen {
        NameGen { used: used.into_iter().collect(), counter: 0 }
    }

    /// Creates a generator avoiding every name that occurs anywhere in an
    /// expression (signatures, conditions, nested expressions).
    pub fn avoiding_expr(expr: &RaExpr) -> NameGen {
        let mut used = HashSet::new();
        collect_names(expr, &mut used);
        NameGen { used, counter: 0 }
    }

    /// Marks additional names as used.
    pub fn reserve(&mut self, names: impl IntoIterator<Item = Name>) {
        self.used.extend(names);
    }

    /// Produces a fresh name with a readable hint.
    pub fn fresh(&mut self, hint: &str) -> Name {
        loop {
            self.counter += 1;
            let candidate = Name::new(format!("{hint}#{}", self.counter));
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
}

/// Collects every attribute name mentioned anywhere in `expr`.
pub fn collect_names(expr: &RaExpr, out: &mut HashSet<Name>) {
    match expr {
        RaExpr::Base(r) => {
            out.insert(r.clone());
        }
        RaExpr::Proj { input, columns } => {
            out.extend(columns.iter().cloned());
            collect_names(input, out);
        }
        RaExpr::Select { input, cond } => {
            collect_cond_names(cond, out);
            collect_names(input, out);
        }
        RaExpr::Product(a, b) | RaExpr::Union(a, b) | RaExpr::Inter(a, b) | RaExpr::Diff(a, b) => {
            collect_names(a, out);
            collect_names(b, out);
        }
        RaExpr::Rename { input, to } => {
            out.extend(to.iter().cloned());
            collect_names(input, out);
        }
        RaExpr::Dedup(input) => collect_names(input, out),
        RaExpr::OuterJoin { left, right, cond, .. } => {
            collect_cond_names(cond, out);
            collect_names(left, out);
            collect_names(right, out);
        }
        RaExpr::Sort { input, keys, .. } => {
            out.extend(keys.iter().map(|k| k.column.clone()));
            collect_names(input, out);
        }
        RaExpr::GroupBy { input, keys, aggs } => {
            out.extend(keys.iter().cloned());
            for agg in aggs {
                out.extend(agg.arg.iter().cloned());
                out.insert(agg.output.clone());
            }
            collect_names(input, out);
        }
    }
}

fn collect_cond_names(cond: &RaCond, out: &mut HashSet<Name>) {
    let mut term = |t: &RaTerm| {
        if let RaTerm::Name(n) = t {
            out.insert(n.clone());
        }
    };
    match cond {
        RaCond::True | RaCond::False => {}
        RaCond::Cmp { left, right, .. } => {
            term(left);
            term(right);
        }
        RaCond::Like { term: t, pattern, .. } => {
            term(t);
            term(pattern);
        }
        RaCond::Pred { args, .. } => args.iter().for_each(term),
        RaCond::Null(t) | RaCond::IsConst(t) => term(t),
        RaCond::And(a, b) | RaCond::Or(a, b) => {
            collect_cond_names(a, out);
            collect_cond_names(b, out);
        }
        RaCond::Not(c) => collect_cond_names(c, out),
        RaCond::In { terms, expr } => {
            terms.iter().for_each(term);
            collect_names(expr, out);
        }
        RaCond::Empty(e) => collect_names(e, out),
    }
}

/// Syntactic equality `t₁ ≐ t₂` (Definition 2), expressed in the core
/// condition language:
/// `(t₁ = t₂ ∧ const(t₁) ∧ const(t₂)) ∨ (null(t₁) ∧ null(t₂))`.
///
/// Always two-valued, and `NULL ≐ NULL` holds.
pub fn syntactic_eq(t1: RaTerm, t2: RaTerm) -> RaCond {
    RaCond::eq(t1.clone(), t2.clone())
        .and(RaCond::IsConst(t1.clone()))
        .and(RaCond::IsConst(t2.clone()))
        .or(RaCond::Null(t1).and(RaCond::Null(t2)))
}

/// The all-`NULL` singleton `nullrow(ℓ(E))`: one row of `NULL`s under
/// `E`'s signature, built inside the fragment as a key-less grouping
/// over an emptied input —
/// `ρ_{→ℓ(E)}(γ_{∅; MAX(A₁)→h₁,…,MAX(Aₖ)→hₖ}(σ_FALSE(E)))`.
/// A key-less `γ` always produces exactly one group, and every aggregate
/// over the empty group is `NULL`. Used by the outer-join elimination.
pub fn null_row(of: RaExpr, schema: &Schema, gen: &mut NameGen) -> Result<RaExpr, EvalError> {
    let sig = signature(&of, schema)?;
    let aggs: Vec<crate::expr::RaAggregate> = sig
        .iter()
        .map(|c| crate::expr::RaAggregate {
            func: sqlsem_core::AggFunc::Max,
            distinct: false,
            arg: Some(c.clone()),
            output: gen.fresh(c.as_str()),
        })
        .collect();
    Ok(of.select(RaCond::False).group_by(Vec::<Name>::new(), aggs).rename(sig))
}

/// Syntactic natural join `E₁ ⋈ₛ E₂`: natural join where the comparison
/// on common attributes is *syntactic* equality (so `NULL` matches
/// `NULL`). Output signature: `ℓ(E₁)` followed by `ℓ(E₂) − ℓ(E₁)`.
pub fn syntactic_natural_join(
    e1: RaExpr,
    e2: RaExpr,
    schema: &Schema,
    gen: &mut NameGen,
) -> Result<RaExpr, EvalError> {
    let sig1 = signature(&e1, schema)?;
    let sig2 = signature(&e2, schema)?;
    let common: Vec<Name> = sig2.iter().filter(|n| sig1.contains(n)).cloned().collect();
    if common.is_empty() {
        return Ok(e1.product(e2));
    }
    // Rename e2's signature so the product is well-formed: common
    // attributes get fresh names, private ones keep theirs.
    let renamed: Vec<(Name, Name)> = sig2
        .iter()
        .map(|n| {
            if common.contains(n) {
                (n.clone(), gen.fresh(n.as_str()))
            } else {
                (n.clone(), n.clone())
            }
        })
        .collect();
    let e2r = e2.rename(renamed.iter().map(|(_, fresh)| fresh.clone()).collect::<Vec<_>>());
    let join_cond =
        RaCond::all(renamed.iter().filter(|(orig, fresh)| orig != fresh).map(|(orig, fresh)| {
            syntactic_eq(RaTerm::Name(orig.clone()), RaTerm::Name(fresh.clone()))
        }));
    // Keep ℓ(E₁) then e2's private attributes.
    let keep: Vec<Name> =
        sig1.iter().cloned().chain(sig2.iter().filter(|n| !common.contains(n)).cloned()).collect();
    Ok(e1.product(e2r).select(join_cond).project(keep))
}

/// Syntactic left antijoin `E₁ ▷ₛ E₂ = E₁ − E₁ ∩ π_{ℓ(E₁)}(E₁ ⋈ₛ E₂)`
/// (the operation used for the paper's translations of Q1/Q2 at the end
/// of §5): the rows of `E₁`, with their multiplicities, having **no**
/// syntactic join partner in `E₂`.
pub fn syntactic_antijoin(
    e1: RaExpr,
    e2: RaExpr,
    schema: &Schema,
    gen: &mut NameGen,
) -> Result<RaExpr, EvalError> {
    let sig1 = signature(&e1, schema)?;
    let join = syntactic_natural_join(e1.clone(), e2, schema, gen)?;
    let matched = join.project(sig1);
    Ok(e1.clone().diff(e1.intersect(matched)))
}

/// Syntactic left semijoin `E₁ ⋉ₛ E₂ = E₁ ∩ π_{ℓ(E₁)}(E₁ ⋈ₛ E₂)`: the
/// rows of `E₁`, with their multiplicities, having a syntactic join
/// partner in `E₂`.
pub fn syntactic_semijoin(
    e1: RaExpr,
    e2: RaExpr,
    schema: &Schema,
    gen: &mut NameGen,
) -> Result<RaExpr, EvalError> {
    let sig1 = signature(&e1, schema)?;
    let join = syntactic_natural_join(e1.clone(), e2, schema, gen)?;
    Ok(e1.intersect(join.project(sig1)))
}

/// The projection-with-repetition gadget `π^α_β(E)` (§5): projects the
/// attribute tuple `α` — which **may repeat attributes** — out of `E`,
/// naming the outputs `β` (distinct, disjoint from `ℓ(E)`).
///
/// When `α` is repetition-free this is just `ρ_{α→β}(π_α(E))`. Otherwise
/// repetitions are simulated with extra syntactic joins:
///
/// ```text
/// π_β(σ_{α ≐ β}(E ⋈ₛ (⋈ₛ_{i} ε(ρ_{αᵢ→βᵢ}(E)))))
/// ```
///
/// where `ρ_{αᵢ→βᵢ}` renames only the attribute `αᵢ`.
pub fn project_with_repetition(
    expr: RaExpr,
    alpha: &[Name],
    beta: &[Name],
    schema: &Schema,
    gen: &mut NameGen,
) -> Result<RaExpr, EvalError> {
    assert_eq!(alpha.len(), beta.len(), "α and β must have the same length");
    if alpha.is_empty() {
        return Err(EvalError::ZeroArity);
    }
    let sig = signature(&expr, schema)?;
    for a in alpha {
        if !sig.contains(a) {
            return Err(EvalError::malformed(format!("π^α_β projects unknown attribute {a}")));
        }
    }
    let mut seen = HashSet::with_capacity(alpha.len());
    let has_repetition = !alpha.iter().all(|a| seen.insert(a));

    if !has_repetition {
        return Ok(expr.project(alpha.to_vec()).rename(beta.to_vec()));
    }

    // One copy of E per α-position, with αᵢ renamed to βᵢ and the rest of
    // the signature kept; deduplicated so each E-row matches exactly one
    // partner per copy.
    let mut joined: Option<RaExpr> = None;
    for (a, b) in alpha.iter().zip(beta) {
        let to: Vec<Name> =
            sig.iter().map(|n| if n == a { b.clone() } else { n.clone() }).collect();
        let copy = expr.clone().rename(to).dedup();
        joined = Some(match joined {
            None => copy,
            Some(acc) => syntactic_natural_join(acc, copy, schema, gen)?,
        });
    }
    let copies = joined.expect("α is non-empty");
    let joined_all = syntactic_natural_join(expr, copies, schema, gen)?;
    let fix = RaCond::all(
        alpha
            .iter()
            .zip(beta)
            .map(|(a, b)| syntactic_eq(RaTerm::Name(a.clone()), RaTerm::Name(b.clone()))),
    );
    Ok(joined_all.select(fix).project(beta.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::RaEvaluator;
    use sqlsem_core::{row, table, Database, Value};

    fn db() -> Database {
        let schema =
            Schema::builder().table("R", ["A", "B"]).table("S", ["B", "C"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A", "B"]; [1, 2], [1, 2], [3, Value::Null] }).unwrap();
        db.replace_table("S", table! { ["B", "C"]; [2, 7], [Value::Null, 8] }).unwrap();
        db
    }

    fn r() -> RaExpr {
        RaExpr::Base(Name::new("R"))
    }

    fn s() -> RaExpr {
        RaExpr::Base(Name::new("S"))
    }

    #[test]
    fn syntactic_eq_matches_nulls() {
        let dbv = db();
        let ev = RaEvaluator::new(&dbv);
        let env = crate::eval::RaEnv::empty();
        let t = |v: Value| RaTerm::Const(v);
        use sqlsem_core::Truth;
        assert_eq!(
            ev.eval_cond(&syntactic_eq(t(Value::Null), t(Value::Null)), &env).unwrap(),
            Truth::True
        );
        assert_eq!(
            ev.eval_cond(&syntactic_eq(t(Value::Int(1)), t(Value::Null)), &env).unwrap(),
            Truth::False
        );
        assert_eq!(
            ev.eval_cond(&syntactic_eq(t(Value::Int(1)), t(Value::Int(1))), &env).unwrap(),
            Truth::True
        );
        assert_eq!(
            ev.eval_cond(&syntactic_eq(t(Value::Int(1)), t(Value::Int(2))), &env).unwrap(),
            Truth::False
        );
    }

    #[test]
    fn natural_join_joins_on_common_attributes_syntactically() {
        let dbv = db();
        let mut gen = NameGen::avoiding_expr(&r().product(s()));
        let join = syntactic_natural_join(r(), s(), dbv.schema(), &mut gen).unwrap();
        let out = RaEvaluator::new(&dbv).eval(&join).unwrap();
        // (1,2)×2 joins (2,7); (3,NULL) joins (NULL,8) *syntactically*.
        assert!(
            out.multiset_eq(&table! { ["A", "B", "C"]; [1, 2, 7], [1, 2, 7], [3, Value::Null, 8] }),
            "got:\n{out}"
        );
    }

    #[test]
    fn natural_join_without_common_attributes_is_product() {
        let dbv = db();
        let mut gen = NameGen::default();
        let s2 = s().rename(["X", "Y"]);
        let join = syntactic_natural_join(r(), s2, dbv.schema(), &mut gen).unwrap();
        let out = RaEvaluator::new(&dbv).eval(&join).unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn antijoin_keeps_unmatched_rows_with_multiplicity() {
        let dbv = db();
        let mut gen = NameGen::avoiding_expr(&r().product(s()));
        // Antijoin R with S on B: (1,2) matches, (3,NULL) matches → empty.
        let anti = syntactic_antijoin(r(), s(), dbv.schema(), &mut gen).unwrap();
        let out = RaEvaluator::new(&dbv).eval(&anti).unwrap();
        assert!(out.is_empty(), "got:\n{out}");
        // Against an empty S everything stays, duplicates intact.
        let empty_s = s().select(RaCond::False);
        let anti = syntactic_antijoin(r(), empty_s, dbv.schema(), &mut gen).unwrap();
        let out = RaEvaluator::new(&dbv).eval(&anti).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.multiplicity(&row![1, 2]), 2);
    }

    #[test]
    fn semijoin_keeps_matched_rows_with_multiplicity() {
        let dbv = db();
        let mut gen = NameGen::avoiding_expr(&r().product(s()));
        let semi = syntactic_semijoin(r(), s(), dbv.schema(), &mut gen).unwrap();
        let out = RaEvaluator::new(&dbv).eval(&semi).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.multiplicity(&row![1, 2]), 2);
        assert_eq!(out.multiplicity(&row![3, Value::Null]), 1);
    }

    #[test]
    fn projection_gadget_without_repetition_is_rename_of_projection() {
        let dbv = db();
        let mut gen = NameGen::avoiding_expr(&r());
        let e = project_with_repetition(
            r(),
            &[Name::new("B"), Name::new("A")],
            &[Name::new("X"), Name::new("Y")],
            dbv.schema(),
            &mut gen,
        )
        .unwrap();
        let out = RaEvaluator::new(&dbv).eval(&e).unwrap();
        assert!(
            out.coincides(&table! { ["X", "Y"]; [2, 1], [2, 1], [Value::Null, 3] }),
            "got:\n{out}"
        );
    }

    #[test]
    fn projection_gadget_duplicates_columns() {
        // π^{(A,A)}_{(X,Y)}: SELECT R.A AS X, R.A AS Y — duplicating data
        // with multiplicities preserved, including on NULL-carrying rows.
        let dbv = db();
        let mut gen = NameGen::avoiding_expr(&r());
        gen.reserve([Name::new("X"), Name::new("Y")]);
        let e = project_with_repetition(
            r(),
            &[Name::new("A"), Name::new("A")],
            &[Name::new("X"), Name::new("Y")],
            dbv.schema(),
            &mut gen,
        )
        .unwrap();
        let out = RaEvaluator::new(&dbv).eval(&e).unwrap();
        assert!(out.coincides(&table! { ["X", "Y"]; [1, 1], [1, 1], [3, 3] }), "got:\n{out}");
    }

    #[test]
    fn projection_gadget_mixed_repetition() {
        // π^{(A,A,B)}_{(X,Y,Z)} with a NULL in B: NULLs must survive via
        // the syntactic joins.
        let dbv = db();
        let mut gen = NameGen::avoiding_expr(&r());
        gen.reserve([Name::new("X"), Name::new("Y"), Name::new("Z")]);
        let e = project_with_repetition(
            r(),
            &[Name::new("A"), Name::new("A"), Name::new("B")],
            &[Name::new("X"), Name::new("Y"), Name::new("Z")],
            dbv.schema(),
            &mut gen,
        )
        .unwrap();
        let out = RaEvaluator::new(&dbv).eval(&e).unwrap();
        assert!(
            out.coincides(&table! { ["X", "Y", "Z"]; [1, 1, 2], [1, 1, 2], [3, 3, Value::Null] }),
            "got:\n{out}"
        );
    }

    #[test]
    fn gadget_outputs_stay_pure() {
        let dbv = db();
        let mut gen = NameGen::avoiding_expr(&r());
        gen.reserve([Name::new("X"), Name::new("Y")]);
        let e = project_with_repetition(
            r(),
            &[Name::new("A"), Name::new("A")],
            &[Name::new("X"), Name::new("Y")],
            dbv.schema(),
            &mut gen,
        )
        .unwrap();
        assert!(e.is_pure());
        let anti = syntactic_antijoin(r(), s(), dbv.schema(), &mut gen).unwrap();
        assert!(anti.is_pure());
    }

    #[test]
    fn name_gen_avoids_collisions() {
        let mut gen = NameGen::avoiding([Name::new("x#1")]);
        let f = gen.fresh("x");
        assert_ne!(f, Name::new("x#1"));
        let g = gen.fresh("x");
        assert_ne!(f, g);
    }
}
