//! Eliminating the SQL-RA condition extensions (Proposition 2, §5).
//!
//! Proposition 2 states that `t̄ ∈ E` and `empty(E)` are syntactic sugar:
//! every SQL-RA *query* has an equivalent pure-RA query. The paper's
//! proof sketch has three steps, implemented here as two passes:
//!
//! 1. **Two-valued-ification and `∈`-elimination**
//!    ([`twovalify`]). Every selection condition `θ` is replaced by a
//!    condition `θᵗ` that is `t` exactly when `θ` is `t` and never
//!    evaluates to `u` — legitimate because `σ` keeps precisely the `t`
//!    rows. The translation mirrors Figure 10 on the RA side
//!    (`P(t̄)ᵗ = P(t̄) ∧ ⋀ᵢ const(tᵢ)`, `(¬θ)ᵗ = θᶠ`, …), and `t̄ ∈ E` is
//!    compiled away in the process:
//!
//!    ```text
//!    (t̄ ∈ E)ᵗ = ¬empty(σ_{⋀ᵢ (tᵢ = Âᵢ ∧ const tᵢ ∧ const Âᵢ)}(ρ_Â(E)))
//!    (t̄ ∈ E)ᶠ =  empty(σ_{⋀ᵢ (tᵢ = Âᵢ ∨ null tᵢ ∨ null Âᵢ)}(ρ_Â(E)))
//!    ```
//!
//!    with `Â` fresh. After this pass every condition is two-valued and
//!    the only extension left is `empty`.
//!
//! 2. **Decorrelation** ([`decorrelate`]). `σ_{…empty(E₁)…}(E′)`
//!    becomes a combination of (anti)semijoins: conditions are decomposed
//!    along their Boolean structure (sound because they are now
//!    two-valued and row-deterministic), and each `empty`/`¬empty` atom
//!    turns into a *syntactic semijoin* against the set of parameter
//!    bindings for which `E₁` is non-empty. That set is computed by
//!    **lifting**: `lift(E, U)` rewrites a parameterised expression into
//!    a pure one over signature `ℓ(U) ++ ℓ(E)` pairing every parameter
//!    binding in `U` with the rows `E` produces under it. Correlated
//!    parameters become ordinary (fresh-renamed) attributes, exactly the
//!    classical relational-calculus-to-algebra construction the paper
//!    alludes to with "left (anti) semijoins".
//!
//! The output of [`eliminate`] is a pure Figure 8 expression with the
//! same semantics on every database — verified differentially in the
//! tests and, across randomly generated queries, in the `sec5`
//! experiment binary.

use std::collections::HashMap;
use std::collections::HashSet;

use sqlsem_core::ast::JoinKind;
use sqlsem_core::{EvalError, Name, Schema};

use crate::expr::{signature, RaCond, RaExpr, RaTerm};
use crate::gadgets::{null_row, syntactic_eq, NameGen};
use crate::params::params;

/// Compiles a closed SQL-RA query into an equivalent pure RA query
/// (Proposition 2).
pub fn eliminate(expr: &RaExpr, schema: &Schema) -> Result<RaExpr, EvalError> {
    let free = params(expr, schema)?;
    if !free.is_empty() {
        let mut names: Vec<String> = free.iter().map(|n| n.to_string()).collect();
        names.sort();
        return Err(EvalError::malformed(format!(
            "eliminate requires a closed query; free parameters: {}",
            names.join(", ")
        )));
    }
    let mut gen = NameGen::avoiding_expr(expr);
    for (t, attrs) in schema.iter() {
        gen.reserve([t.clone()]);
        gen.reserve(attrs.iter().cloned());
    }
    let two_valued = twovalify(expr, schema, &mut gen)?;
    let pure = decorrelate(&two_valued, schema, &mut gen)?;
    debug_assert!(pure.is_pure(), "decorrelation left an impure expression");
    Ok(pure)
}

// ---------------------------------------------------------------------------
// Pass 1: two-valued-ification and ∈-elimination
// ---------------------------------------------------------------------------

/// Rewrites every selection condition `θ` to `θᵗ` (two-valued, `∈`-free),
/// recursively through nested expressions.
pub fn twovalify(expr: &RaExpr, schema: &Schema, gen: &mut NameGen) -> Result<RaExpr, EvalError> {
    Ok(match expr {
        RaExpr::Base(r) => RaExpr::Base(r.clone()),
        RaExpr::Proj { input, columns } => RaExpr::Proj {
            input: Box::new(twovalify(input, schema, gen)?),
            columns: columns.clone(),
        },
        RaExpr::Select { input, cond } => RaExpr::Select {
            input: Box::new(twovalify(input, schema, gen)?),
            cond: cond_t(cond, schema, gen)?,
        },
        RaExpr::Product(a, b) => RaExpr::Product(
            Box::new(twovalify(a, schema, gen)?),
            Box::new(twovalify(b, schema, gen)?),
        ),
        RaExpr::Union(a, b) => RaExpr::Union(
            Box::new(twovalify(a, schema, gen)?),
            Box::new(twovalify(b, schema, gen)?),
        ),
        RaExpr::Inter(a, b) => RaExpr::Inter(
            Box::new(twovalify(a, schema, gen)?),
            Box::new(twovalify(b, schema, gen)?),
        ),
        RaExpr::Diff(a, b) => {
            RaExpr::Diff(Box::new(twovalify(a, schema, gen)?), Box::new(twovalify(b, schema, gen)?))
        }
        RaExpr::Rename { input, to } => {
            RaExpr::Rename { input: Box::new(twovalify(input, schema, gen)?), to: to.clone() }
        }
        RaExpr::Dedup(input) => RaExpr::Dedup(Box::new(twovalify(input, schema, gen)?)),
        // γ carries no conditions of its own.
        RaExpr::GroupBy { input, keys, aggs } => RaExpr::GroupBy {
            input: Box::new(twovalify(input, schema, gen)?),
            keys: keys.clone(),
            aggs: aggs.clone(),
        },
        // τ is condition-free too: sorting and slicing commute with the
        // condition rewriting.
        RaExpr::Sort { input, keys, limit, offset } => RaExpr::Sort {
            input: Box::new(twovalify(input, schema, gen)?),
            keys: keys.clone(),
            limit: *limit,
            offset: *offset,
        },
        // The join condition matters only through "is it t": matching
        // keeps the θ-true pairs, and the dangling test asks for the
        // absence of any θ-true counterpart, so θᵗ is a drop-in
        // replacement on both counts.
        RaExpr::OuterJoin { kind, left, right, cond } => RaExpr::OuterJoin {
            kind: *kind,
            left: Box::new(twovalify(left, schema, gen)?),
            right: Box::new(twovalify(right, schema, gen)?),
            cond: cond_t(cond, schema, gen)?,
        },
    })
}

/// `θᵗ`: two-valued, `t` iff `θ` is `t`.
fn cond_t(cond: &RaCond, schema: &Schema, gen: &mut NameGen) -> Result<RaCond, EvalError> {
    Ok(match cond {
        RaCond::True => RaCond::True,
        RaCond::False => RaCond::False,
        // P(t̄)ᵗ = P(t̄) ∧ ⋀ᵢ const(tᵢ): with a NULL argument the predicate
        // is u but the const-guard is f, so the conjunction is f.
        RaCond::Cmp { left, op, right } => {
            RaCond::Cmp { left: left.clone(), op: *op, right: right.clone() }
                .and(RaCond::IsConst(left.clone()))
                .and(RaCond::IsConst(right.clone()))
        }
        RaCond::Like { term, pattern, negated } => {
            RaCond::Like { term: term.clone(), pattern: pattern.clone(), negated: *negated }
                .and(RaCond::IsConst(term.clone()))
                .and(RaCond::IsConst(pattern.clone()))
        }
        RaCond::Pred { name, args } => {
            let guards = RaCond::all(args.iter().map(|a| RaCond::IsConst(a.clone())));
            RaCond::Pred { name: name.clone(), args: args.clone() }.and(guards)
        }
        RaCond::Null(t) => RaCond::Null(t.clone()),
        RaCond::IsConst(t) => RaCond::IsConst(t.clone()),
        RaCond::And(a, b) => cond_t(a, schema, gen)?.and(cond_t(b, schema, gen)?),
        RaCond::Or(a, b) => cond_t(a, schema, gen)?.or(cond_t(b, schema, gen)?),
        RaCond::Not(c) => cond_f(c, schema, gen)?,
        RaCond::Empty(e) => RaCond::Empty(Box::new(twovalify(e, schema, gen)?)),
        RaCond::In { terms, expr } => in_translation(terms, expr, schema, gen, true)?,
    })
}

/// `θᶠ`: two-valued, `t` iff `θ` is `f`.
fn cond_f(cond: &RaCond, schema: &Schema, gen: &mut NameGen) -> Result<RaCond, EvalError> {
    Ok(match cond {
        RaCond::True => RaCond::False,
        RaCond::False => RaCond::True,
        RaCond::Cmp { left, op, right } => {
            RaCond::Cmp { left: left.clone(), op: op.negated(), right: right.clone() }
                .and(RaCond::IsConst(left.clone()))
                .and(RaCond::IsConst(right.clone()))
        }
        RaCond::Like { term, pattern, negated } => {
            RaCond::Like { term: term.clone(), pattern: pattern.clone(), negated: !*negated }
                .and(RaCond::IsConst(term.clone()))
                .and(RaCond::IsConst(pattern.clone()))
        }
        RaCond::Pred { name, args } => {
            let guards = RaCond::all(args.iter().map(|a| RaCond::IsConst(a.clone())));
            RaCond::Pred { name: name.clone(), args: args.clone() }.not().and(guards)
        }
        RaCond::Null(t) => RaCond::Null(t.clone()).not(),
        RaCond::IsConst(t) => RaCond::IsConst(t.clone()).not(),
        RaCond::And(a, b) => cond_f(a, schema, gen)?.or(cond_f(b, schema, gen)?),
        RaCond::Or(a, b) => cond_f(a, schema, gen)?.and(cond_f(b, schema, gen)?),
        RaCond::Not(c) => cond_t(c, schema, gen)?,
        RaCond::Empty(e) => RaCond::Empty(Box::new(twovalify(e, schema, gen)?)).not(),
        RaCond::In { terms, expr } => in_translation(terms, expr, schema, gen, false)?,
    })
}

/// The `∈`-elimination. `positive` selects between `(t̄ ∈ E)ᵗ` and
/// `(t̄ ∈ E)ᶠ`.
fn in_translation(
    terms: &[RaTerm],
    expr: &RaExpr,
    schema: &Schema,
    gen: &mut NameGen,
    positive: bool,
) -> Result<RaCond, EvalError> {
    let inner = twovalify(expr, schema, gen)?;
    let sig = signature(&inner, schema)?;
    if sig.len() != terms.len() {
        return Err(EvalError::ArityMismatch {
            context: "∈", left: terms.len(), right: sig.len()
        });
    }
    // Rename the subquery's output to fresh names to avoid capturing the
    // names appearing in t̄.
    let hats: Vec<Name> = sig.iter().map(|n| gen.fresh(n.as_str())).collect();
    let renamed = inner.rename(hats.clone());
    let comparisons = terms.iter().zip(&hats).map(|(t, hat)| {
        let hat_term = RaTerm::Name(hat.clone());
        if positive {
            // Component is t: equal and both non-null.
            RaCond::eq(t.clone(), hat_term.clone())
                .and(RaCond::IsConst(t.clone()))
                .and(RaCond::IsConst(hat_term))
        } else {
            // Component is *not f*: equal, or either side null.
            RaCond::eq(t.clone(), hat_term.clone())
                .or(RaCond::Null(t.clone()))
                .or(RaCond::Null(hat_term))
        }
    });
    let selected = renamed.select(RaCond::all(comparisons));
    let empty = RaCond::Empty(Box::new(selected));
    Ok(if positive {
        // ∃ row with a true tuple equality.
        empty.not()
    } else {
        // No row whose tuple equality is ≠ f: all rows compare to f.
        empty
    })
}

// ---------------------------------------------------------------------------
// Pass 2: decorrelation of empty(E)
// ---------------------------------------------------------------------------

/// Rewrites a (closed, two-valued, `∈`-free) expression into pure RA by
/// turning `empty` atoms into (anti)semijoins.
pub fn decorrelate(expr: &RaExpr, schema: &Schema, gen: &mut NameGen) -> Result<RaExpr, EvalError> {
    Ok(match expr {
        RaExpr::Base(r) => RaExpr::Base(r.clone()),
        RaExpr::Proj { input, columns } => RaExpr::Proj {
            input: Box::new(decorrelate(input, schema, gen)?),
            columns: columns.clone(),
        },
        RaExpr::Select { input, cond } => {
            let w = decorrelate(input, schema, gen)?;
            filter(w, cond, schema, gen)?
        }
        RaExpr::Product(a, b) => RaExpr::Product(
            Box::new(decorrelate(a, schema, gen)?),
            Box::new(decorrelate(b, schema, gen)?),
        ),
        RaExpr::Union(a, b) => RaExpr::Union(
            Box::new(decorrelate(a, schema, gen)?),
            Box::new(decorrelate(b, schema, gen)?),
        ),
        RaExpr::Inter(a, b) => RaExpr::Inter(
            Box::new(decorrelate(a, schema, gen)?),
            Box::new(decorrelate(b, schema, gen)?),
        ),
        RaExpr::Diff(a, b) => RaExpr::Diff(
            Box::new(decorrelate(a, schema, gen)?),
            Box::new(decorrelate(b, schema, gen)?),
        ),
        RaExpr::Rename { input, to } => {
            RaExpr::Rename { input: Box::new(decorrelate(input, schema, gen)?), to: to.clone() }
        }
        RaExpr::Dedup(input) => RaExpr::Dedup(Box::new(decorrelate(input, schema, gen)?)),
        RaExpr::GroupBy { input, keys, aggs } => RaExpr::GroupBy {
            input: Box::new(decorrelate(input, schema, gen)?),
            keys: keys.clone(),
            aggs: aggs.clone(),
        },
        RaExpr::Sort { input, keys, limit, offset } => RaExpr::Sort {
            input: Box::new(decorrelate(input, schema, gen)?),
            keys: keys.clone(),
            limit: *limit,
            offset: *offset,
        },
        // A subquery-free ON leaves the operator in place (like γ and τ,
        // ⟕ is an operator, not a condition extension); a subquery in
        // the ON is compiled away through the elimination identity.
        RaExpr::OuterJoin { kind, left, right, cond } => {
            let l = decorrelate(left, schema, gen)?;
            let r = decorrelate(right, schema, gen)?;
            if has_subquery(cond) {
                let expanded = expand_outer_join(*kind, l, r, cond, schema, gen)?;
                decorrelate(&expanded, schema, gen)?
            } else {
                RaExpr::OuterJoin {
                    kind: *kind,
                    left: Box::new(l),
                    right: Box::new(r),
                    cond: cond.clone(),
                }
            }
        }
    })
}

/// The outer-join elimination identity, extending Proposition 2 to ⟕:
///
/// ```text
/// L ⟕_θ R = σ_θ(L × R) ∪ (σ_{empty(σ_θ(R))}(L) × nullrow(ℓ(R)))
/// L ⟖_θ R = σ_θ(L × R) ∪ (nullrow(ℓ(L)) × σ_{empty(σ_θ(L))}(R))
/// L ⟗_θ R = σ_θ(L × R) ∪ both dangling pieces
/// ```
///
/// The dangling test `empty(σ_θ(R))` runs with `ℓ(L)` free, bound row by
/// row by the enclosing selection over `L` — exactly the dangling-tuple
/// rule: a row is padded iff *no* counterpart makes θ true, with an
/// unknown verdict neither matching nor blocking the padding. The
/// identity holds for three-valued θ as-is; no two-valuing is required
/// (though by the time [`decorrelate`] expands, θ already is two-valued).
pub fn expand_outer_join(
    kind: JoinKind,
    left: RaExpr,
    right: RaExpr,
    cond: &RaCond,
    schema: &Schema,
    gen: &mut NameGen,
) -> Result<RaExpr, EvalError> {
    let mut out = left.clone().product(right.clone()).select(cond.clone());
    if kind.keeps_left() {
        let dangling =
            left.clone().select(RaCond::Empty(Box::new(right.clone().select(cond.clone()))));
        out = out.union(dangling.product(null_row(right.clone(), schema, gen)?));
    }
    if kind.keeps_right() {
        let dangling = right.select(RaCond::Empty(Box::new(left.clone().select(cond.clone()))));
        out = out.union(null_row(left, schema, gen)?.product(dangling));
    }
    Ok(out)
}

/// `true` iff the condition mentions `empty` (or a stray `∈`).
fn has_subquery(cond: &RaCond) -> bool {
    match cond {
        RaCond::Empty(_) | RaCond::In { .. } => true,
        RaCond::And(a, b) | RaCond::Or(a, b) => has_subquery(a) || has_subquery(b),
        RaCond::Not(c) => has_subquery(c),
        _ => false,
    }
}

/// Computes `σ_cond(W)` as pure RA. `W` is pure; `cond` is two-valued
/// with free names ⊆ `ℓ(W)`; `empty` atoms are compiled to semijoins.
///
/// The Boolean decomposition is sound because, after
/// two-valued-ification, a condition's verdict is a deterministic
/// function of the row's values: filtering therefore treats equal rows
/// all-or-nothing, which is what the bag difference/union identities
/// below rely on.
fn filter(
    w: RaExpr,
    cond: &RaCond,
    schema: &Schema,
    gen: &mut NameGen,
) -> Result<RaExpr, EvalError> {
    if !has_subquery(cond) {
        return Ok(match cond {
            RaCond::True => w,
            _ => w.select(cond.clone()),
        });
    }
    match cond {
        RaCond::And(a, b) => {
            let fa = filter(w, a, schema, gen)?;
            filter(fa, b, schema, gen)
        }
        RaCond::Or(a, b) => {
            // rows(a) ∪ rows(¬a ∧ b): splits the bag without double
            // counting.
            let fa = filter(w.clone(), a, schema, gen)?;
            let rest = w.diff(fa.clone());
            let fb = filter(rest, b, schema, gen)?;
            Ok(fa.union(fb))
        }
        RaCond::Not(c) => {
            let fc = filter(w.clone(), c, schema, gen)?;
            Ok(w.diff(fc))
        }
        RaCond::Empty(e) => {
            let non_empty = filter_non_empty(w.clone(), e, schema, gen)?;
            Ok(w.diff(non_empty))
        }
        RaCond::In { .. } => {
            Err(EvalError::malformed("∈ must be eliminated by twovalify before decorrelation"))
        }
        // has_subquery returned true, so one of the above matched.
        _ => unreachable!("atoms without subqueries are handled eagerly"),
    }
}

/// The semijoin core: rows of `W` (with multiplicities) for which the
/// parameterised expression `E` is **non-empty**.
fn filter_non_empty(
    w: RaExpr,
    e: &RaExpr,
    schema: &Schema,
    gen: &mut NameGen,
) -> Result<RaExpr, EvalError> {
    let w_sig = signature(&w, schema)?;
    let mut free: Vec<Name> = params(e, schema)?.into_iter().collect();
    free.sort();
    for p in &free {
        if !w_sig.contains(p) {
            return Err(EvalError::UnboundName(p.clone()));
        }
    }
    // Join on the parameters; or, if E is uncorrelated, on an arbitrary
    // column of W (any binding then stands for "E is nonempty at all").
    let join_cols: Vec<Name> = if free.is_empty() { vec![w_sig[0].clone()] } else { free.clone() };
    let hatted: Vec<(Name, Name)> =
        join_cols.iter().map(|c| (c.clone(), gen.fresh(c.as_str()))).collect();
    let hat_names: Vec<Name> = hatted.iter().map(|(_, h)| h.clone()).collect();

    // U: the distinct parameter bindings present in W, hat-renamed so no
    // name inside E can capture them.
    let u = w.clone().project(join_cols.clone()).dedup().rename(hat_names.clone());

    // E with its free parameter occurrences renamed to the hats.
    let subst: HashMap<Name, Name> = hatted
        .iter()
        .filter(|(orig, _)| free.contains(orig))
        .map(|(orig, hat)| (orig.clone(), hat.clone()))
        .collect();
    let e_subst = substitute(e, &subst, schema)?;

    // Lift: bindings × rows-of-E-under-that-binding, then keep the
    // bindings for which at least one row exists.
    let lifted = lift(&e_subst, u, &hat_names, schema, gen)?;
    let non_empty_bindings = lifted.project(hat_names.clone()).dedup();

    // Syntactic semijoin of W against the non-empty bindings: each W row
    // matches at most one binding row, so multiplicities are preserved.
    let join_cond = RaCond::all(
        hatted.iter().map(|(o, h)| syntactic_eq(RaTerm::Name(o.clone()), RaTerm::Name(h.clone()))),
    );
    Ok(w.product(non_empty_bindings).select(join_cond).project(w_sig))
}

/// Capture-avoiding substitution of *free* names in an expression: a
/// name bound by an enclosing selection's row scope is not free there
/// and is left alone.
fn substitute(
    expr: &RaExpr,
    map: &HashMap<Name, Name>,
    schema: &Schema,
) -> Result<RaExpr, EvalError> {
    if map.is_empty() {
        return Ok(expr.clone());
    }
    Ok(match expr {
        RaExpr::Base(r) => RaExpr::Base(r.clone()),
        RaExpr::Proj { input, columns } => RaExpr::Proj {
            input: Box::new(substitute(input, map, schema)?),
            columns: columns.clone(),
        },
        RaExpr::Select { input, cond } => {
            let bound: HashSet<Name> = signature(input, schema)?.into_iter().collect();
            let narrowed: HashMap<Name, Name> = map
                .iter()
                .filter(|(k, _)| !bound.contains(*k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            RaExpr::Select {
                input: Box::new(substitute(input, map, schema)?),
                cond: substitute_cond(cond, &narrowed, schema)?,
            }
        }
        RaExpr::Product(a, b) => RaExpr::Product(
            Box::new(substitute(a, map, schema)?),
            Box::new(substitute(b, map, schema)?),
        ),
        RaExpr::Union(a, b) => RaExpr::Union(
            Box::new(substitute(a, map, schema)?),
            Box::new(substitute(b, map, schema)?),
        ),
        RaExpr::Inter(a, b) => RaExpr::Inter(
            Box::new(substitute(a, map, schema)?),
            Box::new(substitute(b, map, schema)?),
        ),
        RaExpr::Diff(a, b) => RaExpr::Diff(
            Box::new(substitute(a, map, schema)?),
            Box::new(substitute(b, map, schema)?),
        ),
        RaExpr::Rename { input, to } => {
            RaExpr::Rename { input: Box::new(substitute(input, map, schema)?), to: to.clone() }
        }
        RaExpr::Dedup(input) => RaExpr::Dedup(Box::new(substitute(input, map, schema)?)),
        // γ's keys and arguments are attributes of the input's signature,
        // never free parameters; only the input can mention them.
        RaExpr::GroupBy { input, keys, aggs } => RaExpr::GroupBy {
            input: Box::new(substitute(input, map, schema)?),
            keys: keys.clone(),
            aggs: aggs.clone(),
        },
        // τ's keys are attributes of the input's signature, like γ's.
        RaExpr::Sort { input, keys, limit, offset } => RaExpr::Sort {
            input: Box::new(substitute(input, map, schema)?),
            keys: keys.clone(),
            limit: *limit,
            offset: *offset,
        },
        // Like σ over the product: the joined row binds ℓ(L) ++ ℓ(R) in
        // the ON condition, so those names are not free there.
        RaExpr::OuterJoin { kind, left, right, cond } => {
            let bound: HashSet<Name> = signature(expr, schema)?.into_iter().collect();
            let narrowed: HashMap<Name, Name> = map
                .iter()
                .filter(|(k, _)| !bound.contains(*k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            RaExpr::OuterJoin {
                kind: *kind,
                left: Box::new(substitute(left, map, schema)?),
                right: Box::new(substitute(right, map, schema)?),
                cond: substitute_cond(cond, &narrowed, schema)?,
            }
        }
    })
}

fn substitute_cond(
    cond: &RaCond,
    map: &HashMap<Name, Name>,
    schema: &Schema,
) -> Result<RaCond, EvalError> {
    if map.is_empty() {
        return Ok(cond.clone());
    }
    let term = |t: &RaTerm| match t {
        RaTerm::Name(n) => match map.get(n) {
            Some(renamed) => RaTerm::Name(renamed.clone()),
            None => t.clone(),
        },
        RaTerm::Const(_) => t.clone(),
    };
    Ok(match cond {
        RaCond::True => RaCond::True,
        RaCond::False => RaCond::False,
        RaCond::Cmp { left, op, right } => {
            RaCond::Cmp { left: term(left), op: *op, right: term(right) }
        }
        RaCond::Like { term: t, pattern, negated } => {
            RaCond::Like { term: term(t), pattern: term(pattern), negated: *negated }
        }
        RaCond::Pred { name, args } => {
            RaCond::Pred { name: name.clone(), args: args.iter().map(term).collect() }
        }
        RaCond::Null(t) => RaCond::Null(term(t)),
        RaCond::IsConst(t) => RaCond::IsConst(term(t)),
        RaCond::And(a, b) => substitute_cond(a, map, schema)?.and(substitute_cond(b, map, schema)?),
        RaCond::Or(a, b) => substitute_cond(a, map, schema)?.or(substitute_cond(b, map, schema)?),
        RaCond::Not(c) => substitute_cond(c, map, schema)?.not(),
        RaCond::Empty(e) => RaCond::Empty(Box::new(substitute(e, map, schema)?)),
        RaCond::In { terms, expr } => RaCond::In {
            terms: terms.iter().map(term).collect(),
            expr: Box::new(substitute(expr, map, schema)?),
        },
    })
}

/// The lifting construction: given `E` with free parameters named by
/// `ℓ(U) = u_sig` (all fresh), produce a pure expression of signature
/// `u_sig ++ ℓ(E)` whose rows are the pairs `(u, r)` with `r` produced by
/// `E` under binding `u`, with `E`'s multiplicities (each binding occurs
/// once in `U`).
fn lift(
    e: &RaExpr,
    u: RaExpr,
    u_sig: &[Name],
    schema: &Schema,
    gen: &mut NameGen,
) -> Result<RaExpr, EvalError> {
    Ok(match e {
        // A base relation ignores the environment: pair every binding
        // with every row.
        RaExpr::Base(r) => u.product(RaExpr::Base(r.clone())),
        RaExpr::Proj { input, columns } => {
            let lifted = lift(input, u, u_sig, schema, gen)?;
            let mut keep = u_sig.to_vec();
            keep.extend(columns.iter().cloned());
            lifted.project(keep)
        }
        RaExpr::Select { input, cond } => {
            // The lifted input's row carries both the binding (u_sig
            // part) and the local attributes, so the condition's free
            // names — hat-renamed parameters and local names alike — are
            // all columns of the lifted row. `filter` handles any nested
            // empty() atoms recursively.
            let lifted = lift(input, u, u_sig, schema, gen)?;
            filter(lifted, cond, schema, gen)?
        }
        RaExpr::Product(a, b) => {
            // Join the two lifted sides on the binding columns
            // (syntactically, so NULL-valued parameters pair correctly).
            let la = lift(a, u.clone(), u_sig, schema, gen)?;
            let lb = lift(b, u, u_sig, schema, gen)?;
            let b_sig = signature(b, schema)?;
            let hats2: Vec<Name> = u_sig.iter().map(|n| gen.fresh(n.as_str())).collect();
            let mut lb_renamed_sig = hats2.clone();
            lb_renamed_sig.extend(b_sig.iter().cloned());
            let lb_renamed = lb.rename(lb_renamed_sig);
            let join_cond = RaCond::all(
                u_sig
                    .iter()
                    .zip(&hats2)
                    .map(|(o, h)| syntactic_eq(RaTerm::Name(o.clone()), RaTerm::Name(h.clone()))),
            );
            let a_sig = signature(a, schema)?;
            let mut keep = u_sig.to_vec();
            keep.extend(a_sig);
            keep.extend(b_sig);
            la.product(lb_renamed).select(join_cond).project(keep)
        }
        RaExpr::Union(a, b) => {
            lift(a, u.clone(), u_sig, schema, gen)?.union(lift(b, u, u_sig, schema, gen)?)
        }
        RaExpr::Inter(a, b) => {
            lift(a, u.clone(), u_sig, schema, gen)?.intersect(lift(b, u, u_sig, schema, gen)?)
        }
        RaExpr::Diff(a, b) => {
            lift(a, u.clone(), u_sig, schema, gen)?.diff(lift(b, u, u_sig, schema, gen)?)
        }
        RaExpr::Rename { input, to } => {
            let lifted = lift(input, u, u_sig, schema, gen)?;
            let mut full = u_sig.to_vec();
            full.extend(to.iter().cloned());
            lifted.rename(full)
        }
        // Per-binding duplicate elimination: (u, r) pairs dedup to one
        // occurrence per binding, which is exactly ε applied under each
        // environment.
        RaExpr::Dedup(input) => lift(input, u, u_sig, schema, gen)?.dedup(),
        RaExpr::GroupBy { input, keys, aggs } => {
            if params(e, schema)?.is_empty() {
                // Uncorrelated: the same groups under every binding.
                u.product(e.clone())
            } else if !keys.is_empty() {
                // Per-binding grouping: adding the binding columns to the
                // keys partitions each binding's rows separately. A
                // binding under which the input is empty yields no group,
                // matching γ with non-empty keys.
                let mut lifted_keys = u_sig.to_vec();
                lifted_keys.extend(keys.iter().cloned());
                RaExpr::GroupBy {
                    input: Box::new(lift(input, u, u_sig, schema, gen)?),
                    keys: lifted_keys,
                    aggs: aggs.clone(),
                }
            } else {
                // Key-less γ yields one group even for an empty input,
                // which the lifting construction cannot express (it has
                // no row to carry the binding).
                return Err(EvalError::malformed(
                    "cannot decorrelate a parameterised key-less aggregation",
                ));
            }
        }
        RaExpr::Sort { .. } => {
            if params(e, schema)?.is_empty() {
                // Uncorrelated: the same (already sliced) list under
                // every binding.
                u.product(e.clone())
            } else {
                // A parameterised τ would need a per-binding top-k —
                // outside the lifting construction of Proposition 2.
                return Err(EvalError::malformed("cannot decorrelate a parameterised sort/limit"));
            }
        }
        RaExpr::OuterJoin { kind, left, right, cond } => {
            if params(e, schema)?.is_empty() {
                // Uncorrelated: the same joined table under every binding.
                u.product(e.clone())
            } else {
                // A correlated ON (it is always the ON: translated FROM
                // operands are closed) expands via the elimination
                // identity into σ/×/∪ pieces, each of which this
                // construction already lifts — the dangling tests become
                // nested empty() atoms handled by `filter`, and the
                // nullrow gadget is closed, so its key-less γ takes the
                // uncorrelated branch above.
                let expanded = expand_outer_join(
                    *kind,
                    (**left).clone(),
                    (**right).clone(),
                    cond,
                    schema,
                    gen,
                )?;
                lift(&expanded, u, u_sig, schema, gen)?
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::RaEvaluator;
    use crate::translate::translate;
    use sqlsem_core::{table, Database, Evaluator, Value};
    use sqlsem_parser::compile;

    fn schema() -> Schema {
        Schema::builder().table("R", ["A", "B"]).table("S", ["A"]).build().unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new(schema());
        db.replace_table(
            "R",
            table! { ["A", "B"]; [1, 2], [1, 2], [Value::Null, 3], [4, Value::Null] },
        )
        .unwrap();
        db.replace_table("S", table! { ["A"]; [1], [Value::Null], [4] }).unwrap();
        db
    }

    /// SQL → SQL-RA → pure RA, all three evaluated and compared.
    fn check_pipeline(sql: &str) {
        let schema = schema();
        let db = db();
        let q = compile(sql, &schema).unwrap();
        let expected = Evaluator::new(&db).eval(&q).unwrap();
        let sqlra = translate(&q, &schema).unwrap();
        let via_sqlra = RaEvaluator::new(&db).eval(&sqlra).unwrap();
        assert!(expected.coincides(&via_sqlra), "{sql}: SQL-RA mismatch");
        let pure = eliminate(&sqlra, &schema).unwrap();
        assert!(pure.is_pure(), "{sql}: not pure: {pure}");
        let via_pure = RaEvaluator::new(&db).eval(&pure).unwrap();
        assert!(
            expected.coincides(&via_pure),
            "{sql}\nexpected:\n{expected}\npure RA:\n{via_pure}"
        );
    }

    #[test]
    fn pure_expressions_pass_through() {
        check_pipeline("SELECT A, B FROM R");
        check_pipeline("SELECT DISTINCT A FROM R WHERE A = 1");
        check_pipeline("SELECT A FROM S UNION SELECT A FROM R");
    }

    #[test]
    fn grouped_queries_survive_the_whole_pipeline() {
        // γ is an operator, not a condition extension: elimination leaves
        // it in place while chasing ∈/empty out of the rest.
        check_pipeline("SELECT x.A AS k, COUNT(*) AS n FROM R x GROUP BY x.A");
        check_pipeline("SELECT x.A AS k, SUM(x.B) AS s FROM R x GROUP BY x.A HAVING COUNT(*) > 1");
        check_pipeline(
            "SELECT x.A AS k, COUNT(*) AS n FROM R x \
             WHERE EXISTS (SELECT y.A FROM S y WHERE y.A = x.A) GROUP BY x.A",
        );
        check_pipeline(
            "SELECT A FROM S WHERE A IN \
             (SELECT x.A AS k FROM R x GROUP BY x.A HAVING COUNT(*) > 1)",
        );
    }

    #[test]
    fn uncorrelated_exists_becomes_a_semijoin() {
        check_pipeline("SELECT A FROM S WHERE EXISTS (SELECT y.A FROM R y)");
        check_pipeline("SELECT A FROM S WHERE NOT EXISTS (SELECT y.A FROM R y WHERE y.A = 99)");
    }

    #[test]
    fn correlated_exists_decorrelates() {
        check_pipeline("SELECT A FROM S WHERE EXISTS (SELECT y.A FROM R y WHERE y.A = S.A)");
        check_pipeline("SELECT A FROM S WHERE NOT EXISTS (SELECT y.A FROM R y WHERE y.A = S.A)");
    }

    #[test]
    fn in_and_not_in_eliminate() {
        check_pipeline("SELECT A FROM S WHERE A IN (SELECT y.A FROM R y)");
        check_pipeline("SELECT A FROM S WHERE A NOT IN (SELECT y.A FROM R y)");
        check_pipeline("SELECT x.A AS a FROM R x WHERE (x.A, x.B) IN (SELECT y.A, y.B FROM R y)");
        check_pipeline(
            "SELECT x.A AS a FROM R x WHERE (x.A, x.B) NOT IN (SELECT y.A, y.B FROM R y)",
        );
    }

    #[test]
    fn example1_q1_eliminates_correctly() {
        // The NOT IN with NULLs — the paper's flagship example; the
        // not-f branch of the ∈-translation is what makes it come out
        // empty rather than {1, 4}.
        let schema = schema();
        let mut db = Database::new(schema.clone());
        db.replace_table("R", table! { ["A", "B"]; [1, 0], [Value::Null, 0] }).unwrap();
        db.replace_table("S", table! { ["A"]; [Value::Null] }).unwrap();
        let q = compile("SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", &schema)
            .unwrap();
        let expected = Evaluator::new(&db).eval(&q).unwrap();
        assert!(expected.is_empty());
        let pure = eliminate(&translate(&q, &schema).unwrap(), &schema).unwrap();
        let got = RaEvaluator::new(&db).eval(&pure).unwrap();
        assert!(got.is_empty(), "got:\n{got}");
    }

    #[test]
    fn boolean_combinations_of_subqueries() {
        check_pipeline("SELECT A FROM S WHERE A IN (SELECT y.A FROM R y) OR A IS NULL");
        check_pipeline("SELECT A FROM S WHERE NOT (A IN (SELECT y.A FROM R y) AND A = 1)");
        check_pipeline(
            "SELECT A FROM S WHERE EXISTS (SELECT y.A FROM R y WHERE y.A = S.A) \
             OR A IN (SELECT z.B AS b FROM R z)",
        );
    }

    #[test]
    fn nested_subqueries_two_levels() {
        check_pipeline(
            "SELECT A FROM S WHERE EXISTS (\
                SELECT y.A FROM R y WHERE y.A = S.A AND y.B IN (SELECT z.B AS b FROM R z))",
        );
        check_pipeline(
            "SELECT A FROM S WHERE A IN (\
                SELECT y.A FROM R y WHERE EXISTS (SELECT z.A FROM S z WHERE z.A = y.B))",
        );
    }

    #[test]
    fn multiplicities_survive_elimination() {
        // R has (1,2) twice; the semijoin must keep both copies.
        check_pipeline(
            "SELECT x.A AS a, x.B AS b FROM R x WHERE EXISTS (SELECT y.A FROM S y WHERE y.A = x.A)",
        );
    }

    #[test]
    fn outer_join_expansion_matches_the_operator() {
        // The elimination identity against the operator, on data with
        // NULL join keys (u verdicts must not block the padding).
        let schema = schema();
        let db = db();
        for kind in [JoinKind::Left, JoinKind::Right, JoinKind::Full] {
            let left = RaExpr::Base(Name::new("R"));
            let right = RaExpr::Base(Name::new("S")).rename(["C"]);
            let cond = RaCond::eq(RaTerm::name("A"), RaTerm::name("C"));
            let operator = left.clone().outer_join(kind, right.clone(), cond.clone());
            let via_operator = RaEvaluator::new(&db).eval(&operator).unwrap();
            let mut gen = NameGen::avoiding_expr(&operator);
            let expanded = expand_outer_join(kind, left, right, &cond, &schema, &mut gen).unwrap();
            let via_expansion = RaEvaluator::new(&db).eval(&expanded).unwrap();
            assert!(
                via_operator.coincides(&via_expansion),
                "{kind:?}:\noperator:\n{via_operator}\nexpansion:\n{via_expansion}"
            );
        }
    }

    #[test]
    fn outer_joins_survive_the_whole_pipeline() {
        check_pipeline("SELECT x.A AS la, y.A AS ra FROM R x LEFT OUTER JOIN S y ON x.A = y.A");
        check_pipeline("SELECT x.A AS la, y.A AS ra FROM R x RIGHT OUTER JOIN S y ON x.A = y.A");
        check_pipeline("SELECT x.A AS la, y.A AS ra FROM R x FULL OUTER JOIN S y ON x.A = y.A");
        check_pipeline("SELECT x.B AS b FROM R x LEFT OUTER JOIN S y ON x.A < y.A");
    }

    #[test]
    fn outer_join_on_with_subquery_expands() {
        // A subquery inside ON forces the expansion path in decorrelate.
        check_pipeline(
            "SELECT x.A AS la, y.A AS ra FROM R x LEFT OUTER JOIN S y \
             ON x.A = y.A AND EXISTS (SELECT z.A FROM S z WHERE z.A = x.A)",
        );
        check_pipeline(
            "SELECT x.A AS la, y.A AS ra FROM R x FULL OUTER JOIN S y \
             ON x.A IN (SELECT z.A FROM S z WHERE z.A = y.A)",
        );
    }

    #[test]
    fn outer_join_inside_subquery_decorrelates() {
        // Uncorrelated join inside EXISTS: lift takes the product branch.
        check_pipeline(
            "SELECT A FROM S WHERE EXISTS (\
                SELECT x.A AS a FROM R x LEFT OUTER JOIN S y ON x.A = y.A WHERE x.B = S.A)",
        );
    }

    #[test]
    fn eliminate_requires_closed_queries() {
        let schema = schema();
        let open = RaExpr::Base(Name::new("R"))
            .select(RaCond::eq(RaTerm::name("A"), RaTerm::name("FreeParam")));
        assert!(eliminate(&open, &schema).is_err());
    }

    #[test]
    fn twovalify_preserves_selection_semantics() {
        // On its own, pass 1 must keep σ results identical (θ vs θᵗ).
        let schema = schema();
        let db = db();
        let cases = [
            RaCond::eq(RaTerm::name("A"), RaTerm::Const(Value::Int(1))),
            RaCond::eq(RaTerm::name("A"), RaTerm::name("B")).not(),
            RaCond::cmp(RaTerm::name("A"), sqlsem_core::CmpOp::Lt, RaTerm::name("B"))
                .or(RaCond::Null(RaTerm::name("A"))),
            RaCond::eq(RaTerm::name("A"), RaTerm::Const(Value::Null)).not(),
        ];
        for cond in cases {
            let e = RaExpr::Base(Name::new("R")).select(cond.clone());
            let mut gen = NameGen::avoiding_expr(&e);
            let tv = twovalify(&e, &schema, &mut gen).unwrap();
            let a = RaEvaluator::new(&db).eval(&e).unwrap();
            let b = RaEvaluator::new(&db).eval(&tv).unwrap();
            assert!(a.coincides(&b), "condition {cond}: {a} vs {b}");
        }
    }
}
