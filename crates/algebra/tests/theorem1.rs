//! Theorem 1 as a randomised property: for every generated data
//! manipulation query `Q` and random database `D`,
//!
//! ```text
//! ⟦Q⟧_D  =  ⟦translate(Q)⟧_{D,∅}  =  ⟦eliminate(translate(Q))⟧_D
//! ```
//!
//! under the §4 correctness criterion (same columns, same row
//! multiplicities), with the eliminated expression being *pure* Figure 8
//! RA. This is the reproduction's executable witness for the paper's
//! equivalence proof.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sqlsem_algebra::{eliminate, is_closed, translate, RaEvaluator};
use sqlsem_core::Evaluator;
use sqlsem_generator::{
    paper_schema, random_database, DataGenConfig, QueryGenConfig, QueryGenerator,
};

/// Runs the three-way comparison for `n` seeds starting at `base_seed`.
fn run_cases(n: usize, base_seed: u64, data: DataGenConfig) {
    let schema = paper_schema();
    let gen = QueryGenerator::new(&schema, QueryGenConfig::data_manipulation());
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(base_seed + i as u64);
        let query = gen.generate(&mut rng);
        let db = random_database(&schema, &data, &mut rng);

        let expected = Evaluator::new(&db)
            .eval(&query)
            .unwrap_or_else(|e| panic!("case {i}: semantics failed: {e}\n{query}"));

        let sqlra = translate(&query, &schema)
            .unwrap_or_else(|e| panic!("case {i}: translate failed: {e}\n{query}"));
        assert!(
            is_closed(&sqlra, &schema).unwrap(),
            "case {i}: translation has parameters\n{query}"
        );
        let via_sqlra = RaEvaluator::new(&db)
            .eval(&sqlra)
            .unwrap_or_else(|e| panic!("case {i}: SQL-RA eval failed: {e}\n{query}\n{sqlra}"));
        assert!(
            expected.coincides(&via_sqlra),
            "case {i}: Proposition 1 violated\n{query}\nSQL:\n{expected}\nSQL-RA:\n{via_sqlra}"
        );

        let pure = eliminate(&sqlra, &schema)
            .unwrap_or_else(|e| panic!("case {i}: eliminate failed: {e}\n{query}"));
        assert!(pure.is_pure(), "case {i}: eliminate left extensions\n{query}");
        let via_pure = RaEvaluator::new(&db)
            .eval(&pure)
            .unwrap_or_else(|e| panic!("case {i}: pure RA eval failed: {e}\n{query}"));
        assert!(
            expected.coincides(&via_pure),
            "case {i}: Proposition 2 violated\n{query}\nSQL:\n{expected}\npure RA:\n{via_pure}"
        );
    }
}

#[test]
fn theorem1_holds_on_random_queries() {
    run_cases(120, 0xA11CE, DataGenConfig::small());
}

#[test]
fn theorem1_holds_without_nulls_too() {
    run_cases(60, 0xB0B, DataGenConfig::small_null_free());
}

#[test]
fn theorem1_holds_on_tiny_tables_with_many_nulls() {
    let data = DataGenConfig { min_rows: 0, max_rows: 3, null_rate: 0.5, domain: 2 };
    run_cases(60, 0xCAFE, data);
}
