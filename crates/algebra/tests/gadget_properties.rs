//! Property-based tests for the §5 gadgets: syntactic equality,
//! syntactic (anti/semi)joins, and the `π^α_β` projection gadget.

use proptest::prelude::*;

use sqlsem_algebra::{
    project_with_repetition, syntactic_antijoin, syntactic_eq, syntactic_natural_join,
    syntactic_semijoin, NameGen, RaEvaluator, RaExpr, RaTerm,
};
use sqlsem_core::{Database, Name, Row, Schema, Table, Truth, Value};

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => Just(Value::Null),
        5 => (0i64..4).prop_map(Value::Int),
    ]
}

fn row(arity: usize) -> impl Strategy<Value = Row> {
    proptest::collection::vec(value(), arity).prop_map(Row::new)
}

/// A two-table database: R(A,B) and S(B,C) — sharing attribute B so
/// natural joins are non-trivial.
fn db_strategy() -> impl Strategy<Value = Database> {
    (proptest::collection::vec(row(2), 0..8), proptest::collection::vec(row(2), 0..8)).prop_map(
        |(r_rows, s_rows)| {
            let schema =
                Schema::builder().table("R", ["A", "B"]).table("S", ["B", "C"]).build().unwrap();
            let mut db = Database::new(schema);
            db.replace_table(
                "R",
                Table::with_rows(vec![Name::new("A"), Name::new("B")], r_rows).unwrap(),
            )
            .unwrap();
            db.replace_table(
                "S",
                Table::with_rows(vec![Name::new("B"), Name::new("C")], s_rows).unwrap(),
            )
            .unwrap();
            db
        },
    )
}

fn r() -> RaExpr {
    RaExpr::Base(Name::new("R"))
}

fn s() -> RaExpr {
    RaExpr::Base(Name::new("S"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ⋉ₛ and ▷ₛ partition E₁: every row of R goes to exactly one side,
    /// with its multiplicity.
    #[test]
    fn semijoin_and_antijoin_partition(db in db_strategy()) {
        let schema = db.schema().clone();
        let mut gen = NameGen::avoiding_expr(&r().product(s()));
        let semi = syntactic_semijoin(r(), s(), &schema, &mut gen).unwrap();
        let anti = syntactic_antijoin(r(), s(), &schema, &mut gen).unwrap();
        let ev = RaEvaluator::new(&db);
        let all = ev.eval(&r()).unwrap();
        let semi_t = ev.eval(&semi).unwrap();
        let anti_t = ev.eval(&anti).unwrap();
        let reunited = semi_t.union_all(&anti_t).unwrap();
        prop_assert!(reunited.multiset_eq(&all),
            "R:\n{all}\nsemi:\n{semi_t}\nanti:\n{anti_t}");
    }

    /// The syntactic natural join agrees with a by-hand nested loop
    /// using syntactic equality on the shared attribute B.
    #[test]
    fn natural_join_matches_nested_loop(db in db_strategy()) {
        let schema = db.schema().clone();
        let mut gen = NameGen::avoiding_expr(&r().product(s()));
        let join = syntactic_natural_join(r(), s(), &schema, &mut gen).unwrap();
        let got = RaEvaluator::new(&db).eval(&join).unwrap();

        let rt = db.table("R").unwrap();
        let st = db.table("S").unwrap();
        let mut expected =
            Table::new(vec![Name::new("A"), Name::new("B"), Name::new("C")]).unwrap();
        for rrow in rt.rows() {
            for srow in st.rows() {
                if rrow[1] == srow[0] {
                    expected
                        .push(Row::new(vec![rrow[0].clone(), rrow[1].clone(), srow[1].clone()]))
                        .unwrap();
                }
            }
        }
        prop_assert!(got.multiset_eq(&expected), "got:\n{got}\nexpected:\n{expected}");
    }

    /// π^α_β with a duplicated column equals duplicating values by hand.
    #[test]
    fn projection_gadget_matches_by_hand_duplication(db in db_strategy()) {
        let schema = db.schema().clone();
        let mut gen = NameGen::avoiding_expr(&r());
        gen.reserve([Name::new("X"), Name::new("Y"), Name::new("Z")]);
        let alpha = [Name::new("A"), Name::new("A"), Name::new("B")];
        let beta = [Name::new("X"), Name::new("Y"), Name::new("Z")];
        let e = project_with_repetition(r(), &alpha, &beta, &schema, &mut gen).unwrap();
        let got = RaEvaluator::new(&db).eval(&e).unwrap();

        let rt = db.table("R").unwrap();
        let mut expected =
            Table::new(vec![Name::new("X"), Name::new("Y"), Name::new("Z")]).unwrap();
        for rrow in rt.rows() {
            expected
                .push(Row::new(vec![rrow[0].clone(), rrow[0].clone(), rrow[1].clone()]))
                .unwrap();
        }
        prop_assert!(got.multiset_eq(&expected), "got:\n{got}\nexpected:\n{expected}");
    }

    /// `≐` is a two-valued equivalence relation on values.
    #[test]
    fn syntactic_eq_is_an_equivalence(a in value(), b in value(), c in value()) {
        let db = Database::new(Schema::builder().table("R", ["A"]).build().unwrap());
        let ev = RaEvaluator::new(&db);
        let env = sqlsem_algebra::RaEnv::empty();
        let test = |x: &Value, y: &Value| {
            ev.eval_cond(
                &syntactic_eq(RaTerm::Const(x.clone()), RaTerm::Const(y.clone())),
                &env,
            )
            .unwrap()
        };
        // Two-valued:
        prop_assert_ne!(test(&a, &b), Truth::Unknown);
        // Reflexive:
        prop_assert_eq!(test(&a, &a), Truth::True);
        // Symmetric:
        prop_assert_eq!(test(&a, &b), test(&b, &a));
        // Transitive:
        if test(&a, &b).is_true() && test(&b, &c).is_true() {
            prop_assert_eq!(test(&a, &c), Truth::True);
        }
        // Agrees with the derived Eq on Value:
        prop_assert_eq!(test(&a, &b).is_true(), a == b);
    }
}
