//! Plan execution.
//!
//! The executor materialises each operator bottom-up (small inputs — the
//! §4 experiments cap base tables at 50 rows — make this the simplest
//! correct choice), with three scale escapes introduced alongside the
//! optimizer: hash equi-joins ([`Plan::HashJoin`]) instead of
//! filter-over-product, memoized uncorrelated subqueries (cache slots
//! assigned by [`crate::optimize()`](crate::optimize::optimize)), and a streaming cursor that lets
//! `EXISTS` stop at the first produced row. Correlation is a stack of
//! *frames*: whenever a `Filter` or `Project` evaluates expressions for
//! a candidate row, it pushes that row; subplans executed inside
//! predicates therefore see their outer rows at `depth ≥ 1`.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use sqlsem_core::ast::JoinKind;
use sqlsem_core::order;
use sqlsem_core::{
    AggFunc, CmpOp, Database, Dialect, EvalError, LogicMode, PredicateRegistry, Row, SetOp, Truth,
    Value,
};

use crate::plan::{AggSpec, Expr, IndexOp, JoinKey, Plan, Pred, SortKey};

/// A memoized subquery result, stored in the slot the optimizer assigned.
enum CachedSub {
    /// Materialized rows of an uncorrelated `IN` subquery.
    Rows(Rc<Vec<Row>>),
    /// Non-emptiness verdict of an uncorrelated `EXISTS` subquery.
    Nonempty(bool),
}

/// The runtime context for one query execution.
///
/// Subquery cache slots are scoped to the plan being run: reuse one
/// executor per prepared plan (as [`crate::Engine::execute`] does), not
/// across different optimized plans.
pub struct Executor<'a> {
    /// The database being read.
    pub db: &'a Database,
    /// The logic mode (§6) conditions are evaluated under.
    pub logic: LogicMode,
    /// The registry for user predicates.
    pub preds: &'a PredicateRegistry,
    /// Correlation frames, innermost last.
    frames: Vec<Row>,
    /// Memoized uncorrelated subquery results, indexed by cache slot.
    caches: Vec<Option<CachedSub>>,
    /// `IN` subplans (by address) whose arity was already validated this
    /// execution — the check is static, so one walk per site suffices.
    arity_ok: HashSet<usize>,
    /// Rows emitted by `Product` and `HashJoin` operators — the
    /// intermediate-tuple count that the optimizations exist to shrink.
    produced: usize,
}

impl<'a> Executor<'a> {
    /// Creates an executor with an empty correlation stack.
    pub fn new(db: &'a Database, logic: LogicMode, preds: &'a PredicateRegistry) -> Self {
        Executor {
            db,
            logic,
            preds,
            frames: Vec::new(),
            caches: Vec::new(),
            arity_ok: HashSet::new(),
            produced: 0,
        }
    }

    /// Number of intermediate rows `Product` and `HashJoin` operators
    /// have emitted so far — instrumentation for asserting that an
    /// optimization avoided materializing work (no timing involved).
    pub fn rows_produced(&self) -> usize {
        self.produced
    }

    /// Runs a plan to completion, returning its bag of rows.
    pub fn run(&mut self, plan: &Plan) -> Result<Vec<Row>, EvalError> {
        match plan {
            Plan::Scan { table } => Ok(self.db.table(table)?.into_rows()),
            Plan::Product { inputs } => {
                let mut acc: Vec<Row> = vec![Row::empty()];
                for input in inputs {
                    let rows = self.run(input)?;
                    let mut next = Vec::with_capacity(acc.len() * rows.len());
                    for left in &acc {
                        for right in &rows {
                            next.push(left.concat(right));
                        }
                    }
                    self.produced += next.len();
                    acc = next;
                }
                Ok(acc)
            }
            Plan::Filter { input, pred } => {
                let rows = self.run(input)?;
                let mut kept = Vec::new();
                for row in rows {
                    self.frames.push(row);
                    let verdict = self.eval_pred(pred);
                    let row = self.frames.pop().expect("frame pushed above");
                    if verdict?.is_true() {
                        kept.push(row);
                    }
                }
                Ok(kept)
            }
            Plan::Project { input, exprs } => {
                let rows = self.run(input)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    self.frames.push(row);
                    let projected: Result<Row, EvalError> =
                        exprs.iter().map(|e| self.eval_expr(e)).collect();
                    self.frames.pop();
                    out.push(projected?);
                }
                Ok(out)
            }
            Plan::Distinct { input } => {
                let rows = self.run(input)?;
                Ok(dedup(rows))
            }
            Plan::SetOp { op, all, left, right } => {
                let l = self.run(left)?;
                let r = self.run(right)?;
                Ok(set_op(*op, *all, l, r))
            }
            Plan::HashJoin { left, right, keys } => self.hash_join(left, right, keys),
            Plan::OuterJoin { kind, left, right, on } => self.outer_join(*kind, left, right, on),
            Plan::GroupAggregate { input, keys, aggs, having, output } => {
                self.group_aggregate(input, keys, aggs, having.as_ref(), output)
            }
            Plan::Sort { input, keys } => {
                let rows = self.run(input)?;
                self.sort_rows(rows, keys)
            }
            Plan::Limit { input, limit, offset } => {
                let rows = self.run(input)?;
                Ok(order::slice_rows(rows, *limit, Some(*offset)))
            }
            Plan::TopK { input, keys, limit, offset } => self.top_k(input, keys, *limit, *offset),
            Plan::IndexScan { table, index, op, .. } => self.index_scan(table, index, op),
            Plan::IndexJoin { left, table, index, keys } => {
                self.index_join(left, table, index, keys)
            }
        }
    }

    /// Reads the rows a secondary index selects, in ascending row-id
    /// (insertion) order — the same subset, in the same order, as the
    /// `Filter` over `Scan` this operator replaces.
    fn index_scan(
        &mut self,
        table: &sqlsem_core::Name,
        index: &sqlsem_core::Name,
        op: &IndexOp,
    ) -> Result<Vec<Row>, EvalError> {
        let idx = self.db.index(index).ok_or_else(|| {
            EvalError::malformed(format!("plan references unknown index {index}"))
        })?;
        let ids: Vec<usize> = match op {
            IndexOp::Point(values) => idx.point(values).to_vec(),
            IndexOp::Range { prefix, op, value } => {
                // `prefix_range` walks the keys equality-pinned to
                // `prefix` and ranges over the next key column; NULL
                // keys rank last within the region and terminate the
                // walk — matching the comparison's *unknown* verdict.
                use std::ops::Bound;
                if prefix.len() >= idx.cols().len() {
                    return Err(EvalError::malformed(format!(
                        "index range prefix covers every key column of {index}"
                    )));
                }
                let (lo, hi) = match op {
                    CmpOp::Gt => (Bound::Excluded(value), Bound::Unbounded),
                    CmpOp::Geq => (Bound::Included(value), Bound::Unbounded),
                    CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(value)),
                    CmpOp::Leq => (Bound::Unbounded, Bound::Included(value)),
                    other => {
                        return Err(EvalError::malformed(format!(
                            "index range over non-range operator {}",
                            other.symbol()
                        )))
                    }
                };
                idx.prefix_range(prefix, lo, hi)
            }
        };
        let Some(stored) = self.db.stored_table(table) else {
            // A never-populated table has an empty index.
            return Ok(Vec::new());
        };
        let rows = stored.rows().as_slice();
        ids.iter()
            .map(|&i| {
                rows.get(i).cloned().ok_or_else(|| {
                    EvalError::malformed(format!("index {index} posting {i} out of range"))
                })
            })
            .collect()
    }

    /// Index nested-loop join: probes the indexed table once per left
    /// row. Mirrors [`Executor::hash_join`] exactly — same null
    /// exclusion rule, same syntactic match, and postings arrive in
    /// ascending row-id order, which is the order the hash join's build
    /// lists preserve.
    fn index_join(
        &mut self,
        left: &Plan,
        table: &sqlsem_core::Name,
        index: &sqlsem_core::Name,
        keys: &[JoinKey],
    ) -> Result<Vec<Row>, EvalError> {
        let lrows = self.run(left)?;
        let idx = self.db.index(index).ok_or_else(|| {
            EvalError::malformed(format!("plan references unknown index {index}"))
        })?;
        // Probe values are assembled in *index key order*: key column i
        // of the index corresponds to the join key whose `right` side is
        // that table column (the optimizer guarantees the bijection).
        let mut probe_cols = Vec::with_capacity(keys.len());
        for &col in idx.cols() {
            let key = keys.iter().find(|k| k.right == col).ok_or_else(|| {
                EvalError::malformed(format!("index {index} key column {col} has no join key"))
            })?;
            probe_cols.push((key.left, key.null_safe));
        }
        let null_matches = matches!(self.logic, LogicMode::TwoValuedSyntacticEq);
        let rrows = self.db.stored_table(table).map_or(&[] as &[Row], |t| t.rows().as_slice());
        let mut out = Vec::new();
        for lrow in &lrows {
            if !null_matches && probe_cols.iter().any(|&(l, ns)| !ns && lrow[l].is_null()) {
                continue;
            }
            let probe: Vec<Value> = probe_cols.iter().map(|&(l, _)| lrow[l].clone()).collect();
            for &i in idx.point(&probe) {
                let rrow = rrows.get(i).ok_or_else(|| {
                    EvalError::malformed(format!("index {index} posting {i} out of range"))
                })?;
                out.push(lrow.concat(rrow));
            }
        }
        self.produced += out.len();
        Ok(out)
    }

    /// Raises the deferred resolution error of an unresolved (Standard
    /// dialect) sort key. Checked before any row is touched: the
    /// semantics resolves `ORDER BY` keys whenever the block is
    /// evaluated, even over an empty bag.
    fn check_sort_keys(keys: &[SortKey]) -> Result<(), EvalError> {
        for key in keys {
            if let Expr::Deferred(err) = &key.expr {
                return Err(err.clone());
            }
        }
        Ok(())
    }

    /// Evaluates one row's sort-key tuple (pushing the row as a frame,
    /// like `Project` does) and feeds it through the shared type
    /// discipline.
    fn sort_key_values(
        &mut self,
        row: Row,
        keys: &[SortKey],
        check: &mut order::KeyTypeCheck,
    ) -> Result<(Vec<Value>, Row), EvalError> {
        self.frames.push(row);
        let vals: Result<Vec<Value>, EvalError> =
            keys.iter().map(|k| self.eval_expr(&k.expr)).collect();
        let row = self.frames.pop().expect("frame pushed above");
        let vals = vals?;
        for (i, v) in vals.iter().enumerate() {
            check.note(i, v)?;
        }
        Ok((vals, row))
    }

    /// Full stable sort — the naive list layer. Key extraction runs in
    /// input order (so the deterministic type-mismatch discipline sees
    /// rows in the same order as the specification), then a stable sort
    /// reorders the decorated rows. Shared with the vectorized executor,
    /// whose sort operator is a row-at-a-time feed over its batches.
    pub(crate) fn sort_rows(
        &mut self,
        rows: Vec<Row>,
        keys: &[SortKey],
    ) -> Result<Vec<Row>, EvalError> {
        Self::check_sort_keys(keys)?;
        let mut check = order::KeyTypeCheck::new(keys.len());
        let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
        for row in rows {
            decorated.push(self.sort_key_values(row, keys, &mut check)?);
        }
        decorated.sort_by(|(a, _), (b, _)| {
            keys.iter()
                .zip(a.iter().zip(b.iter()))
                .map(|(k, (x, y))| order::key_ordering(x, y, k.desc, k.nulls_first))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(decorated.into_iter().map(|(_, row)| row).collect())
    }

    /// Bounded binary-heap top-k: streams the input through a cursor and
    /// keeps at most `offset + limit` rows in a max-heap (the heap's top
    /// is the *worst* retained row, evicted as soon as a better one
    /// arrives). Ties carry the input sequence number, so the retained
    /// prefix is exactly the stable sort's. Every input row's keys are
    /// still evaluated and type-checked — but interleaved with input
    /// production, which is why the optimizer only builds this operator
    /// for provably total keys (see `rewrite_limit`): with error-capable
    /// keys the full sort raises the input's error first.
    fn top_k(
        &mut self,
        input: &Plan,
        keys: &[SortKey],
        limit: u64,
        offset: u64,
    ) -> Result<Vec<Row>, EvalError> {
        Self::check_sort_keys(keys)?;
        let m = usize::try_from(offset.saturating_add(limit)).unwrap_or(usize::MAX);
        let mut check = order::KeyTypeCheck::new(keys.len());
        let mut heap: std::collections::BinaryHeap<HeapEntry> = std::collections::BinaryHeap::new();
        let mut cursor = Cursor::build(self, input)?;
        let mut seq = 0usize;
        while let Some(row) = cursor.next(self)? {
            let (vals, row) = self.sort_key_values(row, keys, &mut check)?;
            seq += 1;
            if m == 0 {
                // LIMIT 0 (+ no offset): nothing can be kept, but the
                // scan continues so key errors still surface.
                continue;
            }
            let tokens: Vec<SortToken> =
                vals.into_iter().zip(keys).map(|(v, k)| SortToken::new(v, k)).collect();
            heap.push(HeapEntry { tokens, seq, row });
            if heap.len() > m {
                heap.pop();
            }
        }
        let skip = usize::try_from(offset).unwrap_or(usize::MAX);
        Ok(heap.into_sorted_vec().into_iter().skip(skip).map(|e| e.row).collect())
    }

    /// Hash grouping with *incremental* accumulators: one pass over the
    /// input updates every aggregate of every group, then a second pass
    /// finalizes each group, filters it through `HAVING` and projects
    /// the output row — both under the group frame `keys ++ aggs`
    /// (pushed on the correlation stack, so `HAVING` subplans see it at
    /// depth 0 exactly like the grouped environment of the semantics).
    ///
    /// Grouping keys compare null-safely (the syntactic identity of
    /// [`Value`]'s `Eq`/`Hash`): `NULL` keys form one group, in every
    /// logic mode. With no keys there is always exactly one group, even
    /// over an empty input.
    fn group_aggregate(
        &mut self,
        input: &Plan,
        keys: &[Expr],
        aggs: &[AggSpec],
        having: Option<&Pred>,
        output: &[Expr],
    ) -> Result<Vec<Row>, EvalError> {
        let rows = self.run(input)?;
        self.group_rows(rows, keys, aggs, having, output)
    }

    /// The grouping phase over already-materialized input rows — split
    /// out so the vectorized executor can fall back to the exact row
    /// semantics for aggregations its kernels do not cover.
    pub(crate) fn group_rows(
        &mut self,
        rows: Vec<Row>,
        keys: &[Expr],
        aggs: &[AggSpec],
        having: Option<&Pred>,
        output: &[Expr],
    ) -> Result<Vec<Row>, EvalError> {
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut states: Vec<Vec<AggAcc>> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::with_capacity(rows.len());
        if keys.is_empty() {
            // The implicit single group of `SELECT COUNT(*) FROM R`.
            index.insert(Vec::new(), 0);
            order.push(Vec::new());
            states.push(aggs.iter().map(AggAcc::new).collect());
        }
        for row in rows {
            self.frames.push(row);
            let result = (|| {
                let key: Vec<Value> =
                    keys.iter().map(|e| self.eval_expr(e)).collect::<Result<_, _>>()?;
                let slot = match index.get(&key) {
                    Some(&i) => i,
                    None => {
                        let i = order.len();
                        index.insert(key.clone(), i);
                        order.push(key);
                        states.push(aggs.iter().map(AggAcc::new).collect());
                        i
                    }
                };
                for (acc, spec) in states[slot].iter_mut().zip(aggs) {
                    match &spec.arg {
                        None => acc.step_row(),
                        Some(e) => acc.step_value(self.eval_expr(e)?)?,
                    }
                }
                Ok(())
            })();
            self.frames.pop();
            result?;
        }

        let mut out = Vec::new();
        for (key, group_states) in order.into_iter().zip(states) {
            let mut frame = key;
            for acc in group_states {
                frame.push(acc.finalize()?);
            }
            self.frames.push(Row::new(frame));
            let result = (|| {
                if let Some(pred) = having {
                    if !self.eval_pred(pred)?.is_true() {
                        return Ok(None);
                    }
                }
                let row: Result<Row, EvalError> =
                    output.iter().map(|e| self.eval_expr(e)).collect();
                row.map(Some)
            })();
            self.frames.pop();
            if let Some(row) = result? {
                out.push(row);
            }
        }
        Ok(out)
    }

    /// Build on the right, probe with the left. A key with `NULL` never
    /// matches under 3VL (and under the conflating 2VL, where *unknown*
    /// becomes *false*); under the syntactic-equality 2VL `=` compares
    /// `NULL ≐ NULL` to *true*, so nulls participate like any constant.
    /// Null-safe keys (`IS NOT DISTINCT FROM`) always match syntactically.
    fn hash_join(
        &mut self,
        left: &Plan,
        right: &Plan,
        keys: &[JoinKey],
    ) -> Result<Vec<Row>, EvalError> {
        // Left first: the naive product materialises its inputs in
        // clause order, and error order must not change.
        let lrows = self.run(left)?;
        let rrows = self.run(right)?;
        let null_matches = matches!(self.logic, LogicMode::TwoValuedSyntacticEq);
        let excluded = |row: &Row, side: fn(&JoinKey) -> usize| {
            !null_matches && keys.iter().any(|k| !k.null_safe && row[side(k)].is_null())
        };
        let mut table: HashMap<Vec<&Value>, Vec<usize>> = HashMap::with_capacity(rrows.len());
        for (i, row) in rrows.iter().enumerate() {
            if excluded(row, |k| k.right) {
                continue;
            }
            table.entry(keys.iter().map(|k| &row[k.right]).collect()).or_default().push(i);
        }
        let mut out = Vec::new();
        for lrow in &lrows {
            if excluded(lrow, |k| k.left) {
                continue;
            }
            let key: Vec<&Value> = keys.iter().map(|k| &lrow[k.left]).collect();
            if let Some(matches) = table.get(&key) {
                for &i in matches {
                    out.push(lrow.concat(&rrows[i]));
                }
            }
        }
        self.produced += out.len();
        Ok(out)
    }

    /// Nested-loop outer join in the canonical order of the semantics:
    /// for each left row (in order) every joining right row (in order),
    /// a null-padded row inline when a kept left row dangles, then the
    /// dangling right rows trailing (in order) when the kind keeps them.
    /// A row *dangles* iff the `ON` condition is **true** for no
    /// counterpart: an *unknown* verdict neither joins the pair nor
    /// blocks the padding. `ON` is evaluated left-major with the joined
    /// candidate row pushed as the innermost frame, so its subplans see
    /// outer rows at `depth ≥ 1` exactly as under `Filter`.
    fn outer_join(
        &mut self,
        kind: JoinKind,
        left: &Plan,
        right: &Plan,
        on: &Pred,
    ) -> Result<Vec<Row>, EvalError> {
        // Left first: materialization order is clause order, so error
        // order matches the naive product's.
        let lrows = self.run(left)?;
        let rrows = self.run(right)?;
        let lpad = Row::new(vec![Value::Null; left.arity(self.db)]);
        let rpad = Row::new(vec![Value::Null; right.arity(self.db)]);
        let mut right_matched = vec![false; rrows.len()];
        let mut out = Vec::new();
        for lrow in &lrows {
            let mut matched = false;
            for (i, rrow) in rrows.iter().enumerate() {
                self.frames.push(lrow.concat(rrow));
                let verdict = self.eval_pred(on);
                let joined = self.frames.pop().expect("frame pushed above");
                if verdict?.is_true() {
                    matched = true;
                    right_matched[i] = true;
                    out.push(joined);
                }
            }
            if !matched && kind.keeps_left() {
                out.push(lrow.concat(&rpad));
            }
        }
        if kind.keeps_right() {
            for (i, rrow) in rrows.iter().enumerate() {
                if !right_matched[i] {
                    out.push(lpad.concat(rrow));
                }
            }
        }
        self.produced += out.len();
        Ok(out)
    }

    /// Pushes a correlation frame — the vectorized executor's guarded
    /// per-row paths use this to evaluate expressions and predicates
    /// through the row engine, so both executors share one semantics.
    pub(crate) fn push_frame(&mut self, row: Row) {
        self.frames.push(row);
    }

    /// Pops the innermost correlation frame, returning it.
    pub(crate) fn pop_frame(&mut self) -> Row {
        self.frames.pop().expect("pop_frame pairs with push_frame")
    }

    // `&mut self` because `Case` branch predicates are full [`Pred`]s:
    // they may run subplans, which touch the caches and row counters.
    pub(crate) fn eval_expr(&mut self, expr: &Expr) -> Result<Value, EvalError> {
        match expr {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Deferred(err) => Err(err.clone()),
            Expr::Col { depth, index } => {
                let frame = self
                    .frames
                    .len()
                    .checked_sub(1 + depth)
                    .and_then(|i| self.frames.get(i))
                    .ok_or_else(|| EvalError::malformed("correlation depth out of range"))?;
                frame
                    .get(*index)
                    .cloned()
                    .ok_or_else(|| EvalError::malformed("column index out of range"))
            }
            Expr::Case { branches, else_ } => {
                for (pred, result) in branches {
                    if self.eval_pred(pred)?.is_true() {
                        return self.eval_expr(result);
                    }
                }
                match else_ {
                    Some(e) => self.eval_expr(e),
                    None => Ok(Value::Null),
                }
            }
            Expr::Coalesce(exprs) => {
                // Lazy left to right: operands after the first non-NULL
                // one are not evaluated, so their errors are not raised.
                for e in exprs {
                    let v = self.eval_expr(e)?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
            Expr::Nullif(a, b) => {
                let l = self.eval_expr(a)?;
                let r = self.eval_expr(b)?;
                if self.compare(&l, CmpOp::Eq, &r)?.is_true() {
                    Ok(Value::Null)
                } else {
                    Ok(l)
                }
            }
        }
    }

    pub(crate) fn eval_pred(&mut self, pred: &Pred) -> Result<Truth, EvalError> {
        match pred {
            Pred::True => Ok(Truth::True),
            Pred::False => Ok(Truth::False),
            Pred::Cmp { left, op, right } => {
                let l = self.eval_expr(left)?;
                let r = self.eval_expr(right)?;
                self.compare(&l, *op, &r)
            }
            Pred::Like { term, pattern, negated } => {
                let t = self.eval_expr(term)?;
                let p = self.eval_expr(pattern)?;
                let truth = match self.logic {
                    LogicMode::ThreeValued => t.sql_like(&p)?,
                    _ => two_valued(t.sql_like(&p)?),
                };
                Ok(if *negated { truth.not() } else { truth })
            }
            Pred::User { name, args } => {
                let values: Vec<Value> =
                    args.iter().map(|e| self.eval_expr(e)).collect::<Result<_, _>>()?;
                if values.iter().any(Value::is_null) {
                    return Ok(match self.logic {
                        LogicMode::ThreeValued => Truth::Unknown,
                        _ => Truth::False,
                    });
                }
                Ok(Truth::from_bool(self.preds.apply(name, &values)?))
            }
            Pred::IsNull { expr, negated } => {
                let truth = Truth::from_bool(self.eval_expr(expr)?.is_null());
                Ok(if *negated { truth.not() } else { truth })
            }
            Pred::IsDistinct { left, right, negated } => {
                let l = self.eval_expr(left)?;
                let r = self.eval_expr(right)?;
                let same = l.syntactic_eq(&r);
                Ok(if *negated { same } else { same.not() })
            }
            Pred::In { exprs, plan, negated, cache } => {
                let values: Vec<Value> =
                    exprs.iter().map(|e| self.eval_expr(e)).collect::<Result<_, _>>()?;
                // The subplan's arity is a static property of the plan:
                // check it once per site, up front, so the error verdict
                // cannot depend on the order of the subquery's rows (and
                // repeated evaluations don't re-walk the subplan).
                if !self.arity_ok.contains(&(&**plan as *const Plan as usize)) {
                    let arity = plan.arity_checked(self.db)?;
                    if arity != values.len() {
                        return Err(EvalError::ArityMismatch {
                            context: "IN",
                            left: values.len(),
                            right: arity,
                        });
                    }
                    self.arity_ok.insert(&**plan as *const Plan as usize);
                }
                let rows = self.subquery_rows(plan, *cache)?;
                let mut acc = Truth::False;
                for row in rows.iter() {
                    let mut eq = Truth::True;
                    for (v, r) in values.iter().zip(row.iter()) {
                        eq = eq.and(self.compare(v, CmpOp::Eq, r)?);
                    }
                    acc = acc.or(eq);
                    if acc.is_true() {
                        break;
                    }
                }
                Ok(if *negated { acc.not() } else { acc })
            }
            Pred::Exists { plan, early_exit, cache } => {
                if let Some(hit) = cache.and_then(|slot| match self.caches.get(slot) {
                    Some(Some(CachedSub::Nonempty(b))) => Some(*b),
                    _ => None,
                }) {
                    return Ok(Truth::from_bool(hit));
                }
                let nonempty = if *early_exit {
                    self.subplan_nonempty(plan)?
                } else {
                    !self.run(plan)?.is_empty()
                };
                if let Some(slot) = *cache {
                    self.cache_store(slot, CachedSub::Nonempty(nonempty));
                }
                Ok(Truth::from_bool(nonempty))
            }
            Pred::And(a, b) => Ok(self.eval_pred(a)?.and(self.eval_pred(b)?)),
            Pred::Or(a, b) => Ok(self.eval_pred(a)?.or(self.eval_pred(b)?)),
            Pred::Not(p) => Ok(self.eval_pred(p)?.not()),
        }
    }

    /// The materialized rows of an `IN` subquery, memoized when the
    /// optimizer proved the subplan uncorrelated and deterministic.
    fn subquery_rows(
        &mut self,
        plan: &Plan,
        cache: Option<usize>,
    ) -> Result<Rc<Vec<Row>>, EvalError> {
        if let Some(hit) = cache.and_then(|slot| match self.caches.get(slot) {
            Some(Some(CachedSub::Rows(rows))) => Some(rows.clone()),
            _ => None,
        }) {
            return Ok(hit);
        }
        let rows = Rc::new(self.run(plan)?);
        if let Some(slot) = cache {
            self.cache_store(slot, CachedSub::Rows(rows.clone()));
        }
        Ok(rows)
    }

    fn cache_store(&mut self, slot: usize, value: CachedSub) {
        if self.caches.len() <= slot {
            self.caches.resize_with(slot + 1, || None);
        }
        self.caches[slot] = Some(value);
    }

    /// `EXISTS` with early exit: pull rows through a streaming cursor and
    /// stop at the first one, instead of materializing the subquery. Only
    /// called for subplans the optimizer proved error-free, so the
    /// skipped evaluations cannot change the error verdict.
    fn subplan_nonempty(&mut self, plan: &Plan) -> Result<bool, EvalError> {
        let mut cursor = Cursor::build(self, plan)?;
        Ok(cursor.next(self)?.is_some())
    }

    fn compare(&self, left: &Value, op: CmpOp, right: &Value) -> Result<Truth, EvalError> {
        compare_values(self.logic, left, op, right)
    }
}

/// One comparison under a §6 logic mode — the single source of truth
/// shared by the row executor and the vectorized comparison kernels
/// ([`crate::batch::cmp_kernel`]), so the two execution paths cannot
/// drift apart on null or mixed-type behaviour.
pub(crate) fn compare_values(
    logic: LogicMode,
    left: &Value,
    op: CmpOp,
    right: &Value,
) -> Result<Truth, EvalError> {
    match logic {
        LogicMode::ThreeValued => left.sql_cmp(right, op),
        LogicMode::TwoValuedConflate => Ok(two_valued(left.sql_cmp(right, op)?)),
        LogicMode::TwoValuedSyntacticEq => match op {
            CmpOp::Eq => Ok(left.syntactic_eq(right)),
            _ => Ok(two_valued(left.sql_cmp(right, op)?)),
        },
    }
}

fn two_valued(t: Truth) -> Truth {
    if t.is_true() {
        Truth::True
    } else {
        Truth::False
    }
}

/// One aggregate's incremental state for one group.
///
/// The update discipline is the Standard's: `NULL` inputs are skipped,
/// `DISTINCT` deduplicates the surviving values under syntactic value
/// identity, `COUNT(*)` counts rows unconditionally. `SUM`/`AVG` demand
/// integers and error deterministically on overflow; `MIN`/`MAX` use the
/// SQL order, so mixed-type groups surface the comparison's type error.
pub(crate) struct AggAcc {
    /// The `DISTINCT` filter; `None` for plain aggregates.
    seen: Option<HashSet<Value>>,
    state: AccState,
}

enum AccState {
    Count(i64),
    Sum {
        sum: i64,
        any: bool,
    },
    Avg {
        sum: i64,
        n: i64,
    },
    Extremum {
        best: Option<Value>,
        keep_if: CmpOp,
    },
    /// A non-`COUNT` aggregate applied to `*`: errors when finalized,
    /// i.e. once per query iff at least one group exists — matching the
    /// semantics, which raises it while computing the group's aggregates.
    Invalid,
}

impl AggAcc {
    pub(crate) fn new(spec: &AggSpec) -> AggAcc {
        let state = match (spec.func, spec.arg.is_some()) {
            (AggFunc::Count, _) => AccState::Count(0),
            (_, false) => AccState::Invalid,
            (AggFunc::Sum, true) => AccState::Sum { sum: 0, any: false },
            (AggFunc::Avg, true) => AccState::Avg { sum: 0, n: 0 },
            (AggFunc::Min, true) => AccState::Extremum { best: None, keep_if: CmpOp::Lt },
            (AggFunc::Max, true) => AccState::Extremum { best: None, keep_if: CmpOp::Gt },
        };
        let seen = (spec.distinct && spec.arg.is_some()).then(HashSet::new);
        AggAcc { seen, state }
    }

    /// One input row for an argument-less aggregate (`COUNT(*)`).
    pub(crate) fn step_row(&mut self) {
        if let AccState::Count(n) = &mut self.state {
            *n += 1;
        }
    }

    /// One argument value: skip `NULL`s, apply the `DISTINCT` filter,
    /// fold into the state.
    pub(crate) fn step_value(&mut self, value: Value) -> Result<(), EvalError> {
        if value.is_null() {
            return Ok(());
        }
        if let Some(seen) = &mut self.seen {
            if !seen.insert(value.clone()) {
                return Ok(());
            }
        }
        match &mut self.state {
            AccState::Count(n) => *n += 1,
            AccState::Sum { sum, any } => {
                *sum = add_int("SUM", *sum, &value)?;
                *any = true;
            }
            AccState::Avg { sum, n } => {
                *sum = add_int("AVG", *sum, &value)?;
                *n += 1;
            }
            AccState::Extremum { best, keep_if } => match best {
                None => *best = Some(value),
                Some(acc) => {
                    // Both sides non-null, so the comparison is never
                    // unknown; mixed types error here.
                    if value.sql_cmp(acc, *keep_if)?.is_true() {
                        *best = Some(value);
                    }
                }
            },
            AccState::Invalid => {}
        }
        Ok(())
    }

    pub(crate) fn finalize(self) -> Result<Value, EvalError> {
        Ok(match self.state {
            AccState::Count(n) => Value::Int(n),
            AccState::Sum { sum, any } => {
                if any {
                    Value::Int(sum)
                } else {
                    Value::Null
                }
            }
            AccState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    // Integer average, truncating towards zero — kept in
                    // lockstep with the semantics' `SUM/COUNT`.
                    Value::Int(sum / n)
                }
            }
            AccState::Extremum { best, .. } => best.unwrap_or(Value::Null),
            AccState::Invalid => {
                return Err(EvalError::malformed("only COUNT may be applied to *"))
            }
        })
    }
}

fn add_int(op: &'static str, acc: i64, value: &Value) -> Result<i64, EvalError> {
    let Value::Int(n) = value else {
        return Err(EvalError::TypeMismatch {
            op: op.to_string(),
            left: "integer",
            right: value.type_name(),
        });
    };
    add_int_raw(op, acc, *n)
}

/// The unboxed accumulation step shared with the vectorized `SUM`
/// kernel: same checked addition, same deterministic overflow error.
pub(crate) fn add_int_raw(op: &'static str, acc: i64, n: i64) -> Result<i64, EvalError> {
    acc.checked_add(n).ok_or_else(|| EvalError::malformed(format!("integer overflow in {op}")))
}

/// A demand-driven row source over a plan: `Scan`s, set operations and
/// hash joins are materialized up front (in the same order the eager
/// executor would touch them), but products, filters, projections and
/// duplicate elimination produce rows one at a time — which is what lets
/// `EXISTS` stop after the first row of an arbitrarily large product.
enum Cursor<'p> {
    Rows(std::vec::IntoIter<Row>),
    Product {
        inputs: Vec<Vec<Row>>,
        /// Odometer over the input row vectors, rightmost digit fastest —
        /// the same order as the eager nested loops.
        pos: Vec<usize>,
        done: bool,
    },
    Filter {
        input: Box<Cursor<'p>>,
        pred: &'p Pred,
    },
    Project {
        input: Box<Cursor<'p>>,
        exprs: &'p [Expr],
    },
    Distinct {
        input: Box<Cursor<'p>>,
        seen: HashSet<Row>,
    },
}

impl<'p> Cursor<'p> {
    fn build(exec: &mut Executor<'_>, plan: &'p Plan) -> Result<Cursor<'p>, EvalError> {
        Ok(match plan {
            // Sorting and slicing are inherently materialising: a sorted
            // (or offset) prefix needs the whole input anyway.
            Plan::Scan { .. }
            | Plan::SetOp { .. }
            | Plan::HashJoin { .. }
            | Plan::OuterJoin { .. }
            | Plan::GroupAggregate { .. }
            | Plan::Sort { .. }
            | Plan::Limit { .. }
            | Plan::TopK { .. }
            | Plan::IndexScan { .. }
            | Plan::IndexJoin { .. } => Cursor::Rows(exec.run(plan)?.into_iter()),
            Plan::Product { inputs } => {
                let inputs: Vec<Vec<Row>> =
                    inputs.iter().map(|p| exec.run(p)).collect::<Result<_, _>>()?;
                let done = inputs.iter().any(Vec::is_empty);
                let pos = vec![0; inputs.len()];
                Cursor::Product { inputs, pos, done }
            }
            Plan::Filter { input, pred } => {
                Cursor::Filter { input: Box::new(Cursor::build(exec, input)?), pred }
            }
            Plan::Project { input, exprs } => {
                Cursor::Project { input: Box::new(Cursor::build(exec, input)?), exprs }
            }
            Plan::Distinct { input } => Cursor::Distinct {
                input: Box::new(Cursor::build(exec, input)?),
                seen: HashSet::new(),
            },
        })
    }

    fn next(&mut self, exec: &mut Executor<'_>) -> Result<Option<Row>, EvalError> {
        match self {
            Cursor::Rows(rows) => Ok(rows.next()),
            Cursor::Product { inputs, pos, done } => {
                if *done {
                    return Ok(None);
                }
                let mut row = Row::empty();
                for (input, &p) in inputs.iter().zip(pos.iter()) {
                    row.extend(&input[p]);
                }
                exec.produced += 1;
                // Advance the odometer.
                *done = true;
                for (digit, input) in pos.iter_mut().zip(inputs.iter()).rev() {
                    *digit += 1;
                    if *digit < input.len() {
                        *done = false;
                        break;
                    }
                    *digit = 0;
                }
                Ok(Some(row))
            }
            Cursor::Filter { input, pred } => loop {
                let Some(row) = input.next(exec)? else { return Ok(None) };
                exec.frames.push(row);
                let verdict = exec.eval_pred(pred);
                let row = exec.frames.pop().expect("frame pushed above");
                if verdict?.is_true() {
                    return Ok(Some(row));
                }
            },
            Cursor::Project { input, exprs } => {
                let Some(row) = input.next(exec)? else { return Ok(None) };
                exec.frames.push(row);
                let projected: Result<Row, EvalError> =
                    exprs.iter().map(|e| exec.eval_expr(e)).collect();
                exec.frames.pop();
                Ok(Some(projected?))
            }
            Cursor::Distinct { input, seen } => loop {
                let Some(row) = input.next(exec)? else { return Ok(None) };
                if !seen.contains(&row) {
                    seen.insert(row.clone());
                    return Ok(Some(row));
                }
            },
        }
    }
}

/// One sort-key value carrying its key's direction and `NULL`
/// placement, so heap entries can use the standard
/// [`std::collections::BinaryHeap`]. `Ord` delegates to the one shared
/// comparison rule, [`order::key_ordering`] — a single source of truth
/// for `NULL` placement and `DESC` reversal. Consistent as an `Ord`
/// because every compared entry of one `TopK` shares the same key
/// directions, and the type discipline has already pinned each key
/// column to a single type.
pub(crate) struct SortToken {
    value: Value,
    desc: bool,
    nulls_first: bool,
}

impl SortToken {
    pub(crate) fn new(value: Value, key: &SortKey) -> SortToken {
        SortToken { value, desc: key.desc, nulls_first: key.nulls_first }
    }
}

impl Ord for SortToken {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        order::key_ordering(&self.value, &other.value, self.desc, self.nulls_first)
    }
}

impl PartialOrd for SortToken {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for SortToken {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for SortToken {}

/// A heap entry of [`Executor::top_k`]: ordered by the key tokens, ties
/// broken by the input sequence number — which makes the heap's `m`
/// smallest entries exactly the first `m` rows of the stable sort.
struct HeapEntry {
    tokens: Vec<SortToken>,
    seq: usize,
    row: Row,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.tokens.cmp(&other.tokens).then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

/// Hash-count implementations of the Figure 7 set operations — a
/// different algorithm from the core crate's list-walk versions, on
/// purpose (independent implementations should not share code paths).
///
/// All of them hash *borrowed* rows (as [`sqlsem_core::Table::counts`]
/// does): a keep-mask is computed over references first, then the kept
/// rows are moved out — no row is ever cloned, whether kept or dropped.
pub(crate) fn set_op(op: SetOp, all: bool, left: Vec<Row>, right: Vec<Row>) -> Vec<Row> {
    match (op, all) {
        (SetOp::Union, true) => {
            let mut out = left;
            out.extend(right);
            out
        }
        (SetOp::Union, false) => {
            let mut out = left;
            out.extend(right);
            dedup(out)
        }
        (SetOp::Intersect, all) => {
            let mut counts = count(&right);
            let keep: Vec<bool> = left
                .iter()
                .map(|row| match counts.get_mut(row) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        true
                    }
                    _ => false,
                })
                .collect();
            let out = filter_by(left, keep);
            if all {
                out
            } else {
                dedup(out)
            }
        }
        (SetOp::Except, true) => {
            let mut counts = count(&right);
            let keep: Vec<bool> = left
                .iter()
                .map(|row| match counts.get_mut(row) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        false
                    }
                    _ => true,
                })
                .collect();
            filter_by(left, keep)
        }
        (SetOp::Except, false) => {
            // ε(left) − right (Figure 7: ε applies to the left operand).
            let counts = count(&right);
            let mut seen = HashSet::with_capacity(left.len());
            let keep: Vec<bool> =
                left.iter().map(|row| seen.insert(row) && !counts.contains_key(row)).collect();
            filter_by(left, keep)
        }
    }
}

/// The multiplicity map of a bag, keyed on borrowed rows.
fn count(rows: &[Row]) -> HashMap<&Row, usize> {
    let mut m: HashMap<&Row, usize> = HashMap::with_capacity(rows.len());
    for r in rows {
        *m.entry(r).or_insert(0) += 1;
    }
    m
}

/// Duplicate elimination `ε` without cloning: first occurrences are
/// marked over borrowed rows, then moved out.
pub(crate) fn dedup(rows: Vec<Row>) -> Vec<Row> {
    let mut seen = HashSet::with_capacity(rows.len());
    let keep: Vec<bool> = rows.iter().map(|r| seen.insert(r)).collect();
    filter_by(rows, keep)
}

/// Moves out exactly the rows whose mask entry is `true`.
fn filter_by(rows: Vec<Row>, keep: Vec<bool>) -> Vec<Row> {
    let mut keep = keep.into_iter();
    rows.into_iter().filter(|_| keep.next().expect("mask covers all rows")).collect()
}

/// Convenience wrapper: compiles and runs a closed query **without** the
/// optimizer, returning a [`sqlsem_core::Table`]. This is the naive
/// execution path the optimizer is differentially validated against; the
/// [`crate::Engine`] facade runs the optimized path by default.
pub fn execute(
    query: &sqlsem_core::Query,
    db: &Database,
    dialect: Dialect,
    logic: LogicMode,
    preds: &PredicateRegistry,
) -> Result<sqlsem_core::Table, EvalError> {
    let prepared = crate::compile::compile(query, db, dialect)?;
    let mut exec = Executor::new(db, logic, preds);
    let rows = exec.run(&prepared.plan)?;
    sqlsem_core::Table::with_rows(prepared.columns, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlsem_core::ast::{Condition, FromItem, Query, SelectList, SelectQuery, Term};
    use sqlsem_core::{row, table, Schema};

    fn example1_db() -> Database {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
        db.replace_table("S", table! { ["A"]; [Value::Null] }).unwrap();
        db
    }

    fn run(q: &Query, db: &Database, dialect: Dialect) -> Result<sqlsem_core::Table, EvalError> {
        execute(q, db, dialect, LogicMode::ThreeValued, &PredicateRegistry::new())
    }

    #[test]
    fn engine_reproduces_example1() {
        let db = example1_db();
        let sub = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        let q1 = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .distinct()
            .filter(Condition::not_in([Term::col("R", "A")], sub)),
        );
        assert!(run(&q1, &db, Dialect::Standard).unwrap().is_empty());

        let sub2 = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("S", "S")])
                .filter(Condition::eq(Term::col("S", "A"), Term::col("R", "A"))),
        );
        let q2 = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .distinct()
            .filter(Condition::not(Condition::exists(sub2))),
        );
        assert!(run(&q2, &db, Dialect::Standard)
            .unwrap()
            .coincides(&table! { ["A"]; [1], [Value::Null] }));

        let left = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        let right = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        let q3 = left.except(right, false);
        assert!(run(&q3, &db, Dialect::Standard).unwrap().coincides(&table! { ["A"]; [1] }));
    }

    #[test]
    fn correlation_depth_resolves_correct_frame() {
        // Two levels of correlation: innermost references both its own
        // scope and the two enclosing ones.
        let schema = Schema::builder()
            .table("R", ["A"])
            .table("S", ["B"])
            .table("T", ["C"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [2] }).unwrap();
        db.replace_table("S", table! { ["B"]; [1], [2] }).unwrap();
        db.replace_table("T", table! { ["C"]; [2] }).unwrap();
        // SELECT R.A FROM R WHERE EXISTS (
        //   SELECT * FROM S WHERE S.B = R.A AND EXISTS (
        //     SELECT * FROM T WHERE T.C = S.B AND T.C = R.A))
        let innermost = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("T", "T")]).filter(
                Condition::eq(Term::col("T", "C"), Term::col("S", "B"))
                    .and(Condition::eq(Term::col("T", "C"), Term::col("R", "A"))),
            ),
        );
        let middle = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("S", "S")]).filter(
                Condition::eq(Term::col("S", "B"), Term::col("R", "A"))
                    .and(Condition::exists(innermost)),
            ),
        );
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::exists(middle)),
        );
        let out = run(&q, &db, Dialect::Standard).unwrap();
        assert!(out.coincides(&table! { ["A"]; [2] }), "got:\n{out}");
    }

    #[test]
    fn product_multiplicities_multiply() {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["B"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [1] }).unwrap();
        db.replace_table("S", table! { ["B"]; [5], [5], [5] }).unwrap();
        let q = Query::Select(SelectQuery::new(
            SelectList::Star,
            vec![FromItem::base("R", "R"), FromItem::base("S", "S")],
        ));
        let out = run(&q, &db, Dialect::Standard).unwrap();
        assert_eq!(out.multiplicity(&row![1, 5]), 6);
    }

    #[test]
    fn postgres_star_passthrough_keeps_duplicate_columns() {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [3] }).unwrap();
        let inner = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A"), (Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        let q =
            Query::Select(SelectQuery::new(SelectList::Star, vec![FromItem::subquery(inner, "T")]));
        let out = run(&q, &db, Dialect::PostgreSql).unwrap();
        assert!(out.coincides(&table! { ["A", "A"]; [3, 3] }), "got:\n{out}");
        // Standard/Oracle reject the same query at compile time.
        assert!(run(&q, &db, Dialect::Oracle).unwrap_err().is_ambiguity());
    }

    #[test]
    fn set_operations_match_figure7() {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A"]; [1], [1], [2] }).unwrap();
        db.replace_table("S", table! { ["A"]; [1], [3] }).unwrap();
        let sel = |t: &str| {
            Query::Select(SelectQuery::new(
                SelectList::items([(Term::col(t, "A"), "A")]),
                vec![FromItem::base(t, t)],
            ))
        };
        let db_ref = &db;
        let check = |q: Query, expected: sqlsem_core::Table| {
            let out = run(&q, db_ref, Dialect::Standard).unwrap();
            assert!(out.multiset_eq(&expected), "query {q}: got\n{out}");
        };
        check(sel("R").union(sel("S"), true), table! { ["A"]; [1], [1], [1], [2], [3] });
        check(sel("R").union(sel("S"), false), table! { ["A"]; [1], [2], [3] });
        check(sel("R").intersect(sel("S"), true), table! { ["A"]; [1] });
        check(sel("R").intersect(sel("S"), false), table! { ["A"]; [1] });
        check(sel("R").except(sel("S"), true), table! { ["A"]; [1], [2] });
        check(sel("R").except(sel("S"), false), table! { ["A"]; [2] });
    }

    #[test]
    fn in_arity_mismatch_errors_regardless_of_row_order() {
        // Regression: the executor used to sniff each subquery row's
        // arity inside the membership loop and break as soon as the
        // accumulator went true — so a mismatching row *after* a matching
        // one was silently masked, and the error verdict depended on row
        // order. The arity is now validated once, from the plan itself.
        // Only a hand-built inconsistent plan can exhibit mixed arities
        // (the compiler rejects them), so build one directly: a UNION of
        // a 1-column scan and a 2-column scan.
        let schema = Schema::builder().table("U", ["A"]).table("W", ["A", "B"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("U", table! { ["A"]; [1] }).unwrap();
        db.replace_table("W", table! { ["A", "B"]; [2, 3] }).unwrap();
        let sub = |first: &str, second: &str| Plan::SetOp {
            op: SetOp::Union,
            all: true,
            left: Box::new(Plan::Scan { table: first.into() }),
            right: Box::new(Plan::Scan { table: second.into() }),
        };
        let preds = PredicateRegistry::new();
        for (first, second) in [("U", "W"), ("W", "U")] {
            // `1 IN (subquery)`: the matching 1-column row ("U") comes
            // first in one orientation and last in the other; both must
            // error identically.
            let plan = Plan::Filter {
                input: Box::new(Plan::Scan { table: "U".into() }),
                pred: Pred::In {
                    exprs: vec![Expr::Const(Value::Int(1))],
                    plan: Box::new(sub(first, second)),
                    negated: false,
                    cache: None,
                },
            };
            let mut exec = Executor::new(&db, LogicMode::ThreeValued, &preds);
            let err = exec.run(&plan).unwrap_err();
            assert!(
                matches!(err, EvalError::ArityMismatch { .. }),
                "{first} UNION {second}: {err:?}"
            );
        }
    }

    #[test]
    fn early_exit_exists_does_not_materialize_the_product() {
        use sqlsem_core::ast::{Condition, FromItem, Query, SelectList, SelectQuery, Term};
        let schema = Schema::builder().table("R", ["A"]).table("S", ["B"]).build().unwrap();
        let mut db = Database::new(schema);
        let rows: Vec<Row> = (0..100).map(|i| row![i]).collect();
        let hundred = sqlsem_core::Table::with_rows(vec!["A".into()], rows).unwrap();
        db.replace_table("R", hundred.clone()).unwrap();
        db.replace_table("S", hundred.with_columns(vec!["B".into()]).unwrap()).unwrap();
        // EXISTS over a 100×100 product.
        let sub = Query::Select(SelectQuery::new(
            SelectList::Star,
            vec![FromItem::base("R", "X"), FromItem::base("S", "Y")],
        ));
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::exists(sub)),
        );
        let preds = PredicateRegistry::new();
        let naive = crate::compile::compile(&q, &db, Dialect::Standard).unwrap();
        let mut exec = Executor::new(&db, LogicMode::ThreeValued, &preds);
        exec.run(&naive.plan).unwrap();
        let naive_produced = exec.rows_produced();
        assert!(naive_produced >= 100 * 100, "naive: {naive_produced}");

        let optimized = crate::optimize::optimize(naive, &db);
        let mut exec = Executor::new(&db, LogicMode::ThreeValued, &preds);
        exec.run(&optimized.plan).unwrap();
        // One probe row per outer candidate at most — and the verdict is
        // cached after the first, so the product yields a single row.
        assert!(exec.rows_produced() <= 1, "optimized: {}", exec.rows_produced());
    }

    #[test]
    fn uncorrelated_in_subquery_runs_once_not_per_row() {
        use sqlsem_core::ast::{Condition, FromItem, Query, SelectList, SelectQuery, Term};
        let schema = Schema::builder().table("R", ["A"]).table("S", ["B"]).build().unwrap();
        let mut db = Database::new(schema);
        let rows: Vec<Row> = (0..30).map(|i| row![i]).collect();
        let thirty = sqlsem_core::Table::with_rows(vec!["A".into()], rows).unwrap();
        db.replace_table("R", thirty.clone()).unwrap();
        db.replace_table("S", thirty.with_columns(vec!["B".into()]).unwrap()).unwrap();
        // The IN subquery contains a 30×30 product: per-outer-row
        // re-execution costs 30 × 900 produced rows, cached costs 900.
        let sub = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("X", "A"), "A")]),
            vec![FromItem::base("R", "X"), FromItem::base("S", "Y")],
        ));
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::in_query([Term::col("R", "A")], sub)),
        );
        let preds = PredicateRegistry::new();
        let naive = crate::compile::compile(&q, &db, Dialect::Standard).unwrap();
        let mut exec = Executor::new(&db, LogicMode::ThreeValued, &preds);
        let kept = exec.run(&naive.plan).unwrap().len();
        assert!(exec.rows_produced() >= 30 * 900, "naive: {}", exec.rows_produced());

        let optimized = crate::optimize::optimize(naive, &db);
        assert_eq!(optimized.cache_slots, 1);
        let mut exec = Executor::new(&db, LogicMode::ThreeValued, &preds);
        assert_eq!(exec.run(&optimized.plan).unwrap().len(), kept);
        // One subquery execution: 30 rows after the first input, 900
        // after the second. The naive plan pays that 930 per outer row.
        assert!(exec.rows_produced() <= 930, "cached: {}", exec.rows_produced());
    }

    #[test]
    fn hash_join_null_keys_follow_the_logic_mode() {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema.clone());
        db.replace_table("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
        db.replace_table("S", table! { ["A"]; [1], [Value::Null], [Value::Null] }).unwrap();
        let q = sqlsem_parser::compile("SELECT * FROM R x, S y WHERE x.A = y.A", &schema).unwrap();
        let plan = |engine: &crate::Engine<'_>| engine.prepare(&q).unwrap().plan;
        let engine = crate::Engine::new(&db).with_dialect(Dialect::PostgreSql);
        assert!(
            matches!(plan(&engine), Plan::Project { input, .. } if matches!(*input, Plan::HashJoin { .. })),
        );
        // 3VL and the conflating 2VL: NULL = NULL is not true, one match.
        for logic in [LogicMode::ThreeValued, LogicMode::TwoValuedConflate] {
            let out = engine.clone().with_logic(logic).execute(&q).unwrap();
            assert_eq!(out.len(), 1, "{logic:?}:\n{out}");
            assert_eq!(out.multiplicity(&row![1, 1]), 1);
        }
        // Syntactic-equality 2VL: NULL ≐ NULL holds, so the null row of R
        // joins both null rows of S.
        let out = engine.clone().with_logic(LogicMode::TwoValuedSyntacticEq).execute(&q).unwrap();
        assert_eq!(out.len(), 3, "{out}");
        assert_eq!(out.multiplicity(&row![Value::Null, Value::Null]), 2);
        // IS NOT DISTINCT FROM joins nulls under *every* logic mode.
        let q2 = sqlsem_parser::compile(
            "SELECT * FROM R x, S y WHERE x.A IS NOT DISTINCT FROM y.A",
            &schema,
        )
        .unwrap();
        for logic in LogicMode::ALL {
            let out = engine.clone().with_logic(logic).execute(&q2).unwrap();
            assert_eq!(out.len(), 3, "{logic:?}:\n{out}");
        }
    }

    #[test]
    fn logic_modes_are_supported() {
        let db = example1_db();
        let sub = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        let q1 = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .distinct()
            .filter(Condition::not_in([Term::col("R", "A")], sub)),
        );
        let preds = PredicateRegistry::new();
        let conflate =
            execute(&q1, &db, Dialect::Standard, LogicMode::TwoValuedConflate, &preds).unwrap();
        assert!(conflate.coincides(&table! { ["A"]; [1], [Value::Null] }));
        let syntactic =
            execute(&q1, &db, Dialect::Standard, LogicMode::TwoValuedSyntacticEq, &preds).unwrap();
        assert!(syntactic.coincides(&table! { ["A"]; [1] }));
    }
}
