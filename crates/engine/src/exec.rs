//! Plan execution.
//!
//! The executor materialises each operator bottom-up (small inputs — the
//! §4 experiments cap base tables at 50 rows — make this the simplest
//! correct choice). Correlation is a stack of *frames*: whenever a
//! `Filter` or `Project` evaluates expressions for a candidate row, it
//! pushes that row; subplans executed inside predicates therefore see
//! their outer rows at `depth ≥ 1`.

use std::collections::HashMap;

use sqlsem_core::{
    CmpOp, Database, Dialect, EvalError, LogicMode, PredicateRegistry, Row, SetOp, Truth, Value,
};

use crate::plan::{Expr, Plan, Pred};

/// The runtime context for one query execution.
pub struct Executor<'a> {
    /// The database being read.
    pub db: &'a Database,
    /// The logic mode (§6) conditions are evaluated under.
    pub logic: LogicMode,
    /// The registry for user predicates.
    pub preds: &'a PredicateRegistry,
    /// Correlation frames, innermost last.
    frames: Vec<Row>,
}

impl<'a> Executor<'a> {
    /// Creates an executor with an empty correlation stack.
    pub fn new(db: &'a Database, logic: LogicMode, preds: &'a PredicateRegistry) -> Self {
        Executor { db, logic, preds, frames: Vec::new() }
    }

    /// Runs a plan to completion, returning its bag of rows.
    pub fn run(&mut self, plan: &Plan) -> Result<Vec<Row>, EvalError> {
        match plan {
            Plan::Scan { table } => Ok(self.db.table(table)?.into_rows()),
            Plan::Product { inputs } => {
                let mut acc: Vec<Row> = vec![Row::empty()];
                for input in inputs {
                    let rows = self.run(input)?;
                    let mut next = Vec::with_capacity(acc.len() * rows.len());
                    for left in &acc {
                        for right in &rows {
                            next.push(left.concat(right));
                        }
                    }
                    acc = next;
                }
                Ok(acc)
            }
            Plan::Filter { input, pred } => {
                let rows = self.run(input)?;
                let mut kept = Vec::new();
                for row in rows {
                    self.frames.push(row);
                    let verdict = self.eval_pred(pred);
                    let row = self.frames.pop().expect("frame pushed above");
                    if verdict?.is_true() {
                        kept.push(row);
                    }
                }
                Ok(kept)
            }
            Plan::Project { input, exprs } => {
                let rows = self.run(input)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    self.frames.push(row);
                    let projected: Result<Row, EvalError> =
                        exprs.iter().map(|e| self.eval_expr(e)).collect();
                    self.frames.pop();
                    out.push(projected?);
                }
                Ok(out)
            }
            Plan::Distinct { input } => {
                let rows = self.run(input)?;
                let mut seen = std::collections::HashSet::with_capacity(rows.len());
                Ok(rows.into_iter().filter(|r| seen.insert(r.clone())).collect())
            }
            Plan::SetOp { op, all, left, right } => {
                let l = self.run(left)?;
                let r = self.run(right)?;
                Ok(set_op(*op, *all, l, r))
            }
        }
    }

    fn eval_expr(&self, expr: &Expr) -> Result<Value, EvalError> {
        match expr {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Deferred(err) => Err(err.clone()),
            Expr::Col { depth, index } => {
                let frame = self
                    .frames
                    .len()
                    .checked_sub(1 + depth)
                    .and_then(|i| self.frames.get(i))
                    .ok_or_else(|| EvalError::malformed("correlation depth out of range"))?;
                frame
                    .get(*index)
                    .cloned()
                    .ok_or_else(|| EvalError::malformed("column index out of range"))
            }
        }
    }

    fn eval_pred(&mut self, pred: &Pred) -> Result<Truth, EvalError> {
        match pred {
            Pred::True => Ok(Truth::True),
            Pred::False => Ok(Truth::False),
            Pred::Cmp { left, op, right } => {
                let l = self.eval_expr(left)?;
                let r = self.eval_expr(right)?;
                self.compare(&l, *op, &r)
            }
            Pred::Like { term, pattern, negated } => {
                let t = self.eval_expr(term)?;
                let p = self.eval_expr(pattern)?;
                let truth = match self.logic {
                    LogicMode::ThreeValued => t.sql_like(&p)?,
                    _ => two_valued(t.sql_like(&p)?),
                };
                Ok(if *negated { truth.not() } else { truth })
            }
            Pred::User { name, args } => {
                let values: Vec<Value> =
                    args.iter().map(|e| self.eval_expr(e)).collect::<Result<_, _>>()?;
                if values.iter().any(Value::is_null) {
                    return Ok(match self.logic {
                        LogicMode::ThreeValued => Truth::Unknown,
                        _ => Truth::False,
                    });
                }
                Ok(Truth::from_bool(self.preds.apply(name, &values)?))
            }
            Pred::IsNull { expr, negated } => {
                let truth = Truth::from_bool(self.eval_expr(expr)?.is_null());
                Ok(if *negated { truth.not() } else { truth })
            }
            Pred::IsDistinct { left, right, negated } => {
                let l = self.eval_expr(left)?;
                let r = self.eval_expr(right)?;
                let same = l.syntactic_eq(&r);
                Ok(if *negated { same } else { same.not() })
            }
            Pred::In { exprs, plan, negated } => {
                let values: Vec<Value> =
                    exprs.iter().map(|e| self.eval_expr(e)).collect::<Result<_, _>>()?;
                let rows = self.run(plan)?;
                let mut acc = Truth::False;
                for row in &rows {
                    if row.arity() != values.len() {
                        return Err(EvalError::ArityMismatch {
                            context: "IN",
                            left: values.len(),
                            right: row.arity(),
                        });
                    }
                    let mut eq = Truth::True;
                    for (v, r) in values.iter().zip(row.iter()) {
                        eq = eq.and(self.compare(v, CmpOp::Eq, r)?);
                    }
                    acc = acc.or(eq);
                    if acc.is_true() {
                        break;
                    }
                }
                Ok(if *negated { acc.not() } else { acc })
            }
            Pred::Exists(plan) => {
                let rows = self.run(plan)?;
                Ok(Truth::from_bool(!rows.is_empty()))
            }
            Pred::And(a, b) => Ok(self.eval_pred(a)?.and(self.eval_pred(b)?)),
            Pred::Or(a, b) => Ok(self.eval_pred(a)?.or(self.eval_pred(b)?)),
            Pred::Not(p) => Ok(self.eval_pred(p)?.not()),
        }
    }

    fn compare(&self, left: &Value, op: CmpOp, right: &Value) -> Result<Truth, EvalError> {
        match self.logic {
            LogicMode::ThreeValued => left.sql_cmp(right, op),
            LogicMode::TwoValuedConflate => Ok(two_valued(left.sql_cmp(right, op)?)),
            LogicMode::TwoValuedSyntacticEq => match op {
                CmpOp::Eq => Ok(left.syntactic_eq(right)),
                _ => Ok(two_valued(left.sql_cmp(right, op)?)),
            },
        }
    }
}

fn two_valued(t: Truth) -> Truth {
    if t.is_true() {
        Truth::True
    } else {
        Truth::False
    }
}

/// Hash-count implementations of the Figure 7 set operations — a
/// different algorithm from the core crate's list-walk versions, on
/// purpose (independent implementations should not share code paths).
fn set_op(op: SetOp, all: bool, left: Vec<Row>, right: Vec<Row>) -> Vec<Row> {
    match (op, all) {
        (SetOp::Union, true) => {
            let mut out = left;
            out.extend(right);
            out
        }
        (SetOp::Union, false) => {
            let mut out = left;
            out.extend(right);
            dedup(out)
        }
        (SetOp::Intersect, all) => {
            let mut counts = count(&right);
            let mut out = Vec::new();
            for row in left {
                if let Some(n) = counts.get_mut(&row) {
                    if *n > 0 {
                        *n -= 1;
                        out.push(row);
                    }
                }
            }
            if all {
                out
            } else {
                dedup(out)
            }
        }
        (SetOp::Except, true) => {
            let mut counts = count(&right);
            let mut out = Vec::new();
            for row in left {
                match counts.get_mut(&row) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => out.push(row),
                }
            }
            out
        }
        (SetOp::Except, false) => {
            // ε(left) − right (Figure 7: ε applies to the left operand).
            let counts = count(&right);
            let mut out = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for row in left {
                if seen.insert(row.clone()) && !counts.contains_key(&row) {
                    out.push(row);
                }
            }
            out
        }
    }
}

fn count(rows: &[Row]) -> HashMap<Row, usize> {
    let mut m = HashMap::with_capacity(rows.len());
    for r in rows {
        *m.entry(r.clone()).or_insert(0) += 1;
    }
    m
}

fn dedup(rows: Vec<Row>) -> Vec<Row> {
    let mut seen = std::collections::HashSet::with_capacity(rows.len());
    rows.into_iter().filter(|r| seen.insert(r.clone())).collect()
}

/// Convenience wrapper: compiles and runs a closed query, returning a
/// [`sqlsem_core::Table`].
pub fn execute(
    query: &sqlsem_core::Query,
    db: &Database,
    dialect: Dialect,
    logic: LogicMode,
    preds: &PredicateRegistry,
) -> Result<sqlsem_core::Table, EvalError> {
    let prepared = crate::compile::compile(query, db, dialect)?;
    let mut exec = Executor::new(db, logic, preds);
    let rows = exec.run(&prepared.plan)?;
    sqlsem_core::Table::with_rows(prepared.columns, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlsem_core::ast::{Condition, FromItem, Query, SelectList, SelectQuery, Term};
    use sqlsem_core::{row, table, Schema};

    fn example1_db() -> Database {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
        db.insert("S", table! { ["A"]; [Value::Null] }).unwrap();
        db
    }

    fn run(q: &Query, db: &Database, dialect: Dialect) -> Result<sqlsem_core::Table, EvalError> {
        execute(q, db, dialect, LogicMode::ThreeValued, &PredicateRegistry::new())
    }

    #[test]
    fn engine_reproduces_example1() {
        let db = example1_db();
        let sub = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        let q1 = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .distinct()
            .filter(Condition::not_in([Term::col("R", "A")], sub)),
        );
        assert!(run(&q1, &db, Dialect::Standard).unwrap().is_empty());

        let sub2 = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("S", "S")])
                .filter(Condition::eq(Term::col("S", "A"), Term::col("R", "A"))),
        );
        let q2 = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .distinct()
            .filter(Condition::not(Condition::exists(sub2))),
        );
        assert!(run(&q2, &db, Dialect::Standard)
            .unwrap()
            .coincides(&table! { ["A"]; [1], [Value::Null] }));

        let left = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        let right = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        let q3 = left.except(right, false);
        assert!(run(&q3, &db, Dialect::Standard).unwrap().coincides(&table! { ["A"]; [1] }));
    }

    #[test]
    fn correlation_depth_resolves_correct_frame() {
        // Two levels of correlation: innermost references both its own
        // scope and the two enclosing ones.
        let schema = Schema::builder()
            .table("R", ["A"])
            .table("S", ["B"])
            .table("T", ["C"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [2] }).unwrap();
        db.insert("S", table! { ["B"]; [1], [2] }).unwrap();
        db.insert("T", table! { ["C"]; [2] }).unwrap();
        // SELECT R.A FROM R WHERE EXISTS (
        //   SELECT * FROM S WHERE S.B = R.A AND EXISTS (
        //     SELECT * FROM T WHERE T.C = S.B AND T.C = R.A))
        let innermost = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("T", "T")]).filter(
                Condition::eq(Term::col("T", "C"), Term::col("S", "B"))
                    .and(Condition::eq(Term::col("T", "C"), Term::col("R", "A"))),
            ),
        );
        let middle = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("S", "S")]).filter(
                Condition::eq(Term::col("S", "B"), Term::col("R", "A"))
                    .and(Condition::exists(innermost)),
            ),
        );
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::exists(middle)),
        );
        let out = run(&q, &db, Dialect::Standard).unwrap();
        assert!(out.coincides(&table! { ["A"]; [2] }), "got:\n{out}");
    }

    #[test]
    fn product_multiplicities_multiply() {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["B"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [1] }).unwrap();
        db.insert("S", table! { ["B"]; [5], [5], [5] }).unwrap();
        let q = Query::Select(SelectQuery::new(
            SelectList::Star,
            vec![FromItem::base("R", "R"), FromItem::base("S", "S")],
        ));
        let out = run(&q, &db, Dialect::Standard).unwrap();
        assert_eq!(out.multiplicity(&row![1, 5]), 6);
    }

    #[test]
    fn postgres_star_passthrough_keeps_duplicate_columns() {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [3] }).unwrap();
        let inner = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A"), (Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        let q =
            Query::Select(SelectQuery::new(SelectList::Star, vec![FromItem::subquery(inner, "T")]));
        let out = run(&q, &db, Dialect::PostgreSql).unwrap();
        assert!(out.coincides(&table! { ["A", "A"]; [3, 3] }), "got:\n{out}");
        // Standard/Oracle reject the same query at compile time.
        assert!(run(&q, &db, Dialect::Oracle).unwrap_err().is_ambiguity());
    }

    #[test]
    fn set_operations_match_figure7() {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        db.insert("R", table! { ["A"]; [1], [1], [2] }).unwrap();
        db.insert("S", table! { ["A"]; [1], [3] }).unwrap();
        let sel = |t: &str| {
            Query::Select(SelectQuery::new(
                SelectList::items([(Term::col(t, "A"), "A")]),
                vec![FromItem::base(t, t)],
            ))
        };
        let db_ref = &db;
        let check = |q: Query, expected: sqlsem_core::Table| {
            let out = run(&q, db_ref, Dialect::Standard).unwrap();
            assert!(out.multiset_eq(&expected), "query {q}: got\n{out}");
        };
        check(sel("R").union(sel("S"), true), table! { ["A"]; [1], [1], [1], [2], [3] });
        check(sel("R").union(sel("S"), false), table! { ["A"]; [1], [2], [3] });
        check(sel("R").intersect(sel("S"), true), table! { ["A"]; [1] });
        check(sel("R").intersect(sel("S"), false), table! { ["A"]; [1] });
        check(sel("R").except(sel("S"), true), table! { ["A"]; [1], [2] });
        check(sel("R").except(sel("S"), false), table! { ["A"]; [2] });
    }

    #[test]
    fn logic_modes_are_supported() {
        let db = example1_db();
        let sub = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        let q1 = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .distinct()
            .filter(Condition::not_in([Term::col("R", "A")], sub)),
        );
        let preds = PredicateRegistry::new();
        let conflate =
            execute(&q1, &db, Dialect::Standard, LogicMode::TwoValuedConflate, &preds).unwrap();
        assert!(conflate.coincides(&table! { ["A"]; [1], [Value::Null] }));
        let syntactic =
            execute(&q1, &db, Dialect::Standard, LogicMode::TwoValuedSyntacticEq, &preds).unwrap();
        assert!(syntactic.coincides(&table! { ["A"]; [1] }));
    }
}
