//! Columnar batches: the vectorized executor's data representation.
//!
//! A [`Batch`] holds up to ~[`DEFAULT_BATCH_SIZE`] rows **column-major**:
//! one [`Column`] per attribute, each with a per-column null [`Bitmap`].
//! Filters never materialize their survivors — they refine the batch's
//! *selection vector* instead, so downstream operators iterate only the
//! live physical indices while the column storage is shared untouched
//! (columns are cheaply cloneable behind `Arc`, which also makes whole
//! batches `Send`/`Sync` for the executor's morsel parallelism).
//!
//! Joins never materialize their outputs either: a column can carry a
//! *gather view* — a shared index vector into the backing storage — so
//! a join output batch is `O(arity)` to assemble regardless of how many
//! rows matched. Values are resolved through the view lazily, and rows
//! are only built at the sink ([`Batch::row`] / [`Batch::append_rows`])
//! or when a kernel asks for dense storage ([`Column::dense`]).
//!
//! Predicate kernels evaluate a condition over a whole batch at once and
//! produce a [`TruthVec`] — Kleene truth values as a pair of bitmaps
//! (*true* bits and *unknown* bits), so three-valued `AND`/`OR`/`NOT`
//! are word-wise bit operations. The comparison kernels implement one
//! bitmap semantics per §6 logic mode, mirroring the row executor's
//! `compare` exactly: under [`LogicMode::ThreeValued`] a `NULL` operand
//! yields *unknown*, under [`LogicMode::TwoValuedConflate`] it collapses
//! to *false*, and under [`LogicMode::TwoValuedSyntacticEq`] equality is
//! syntactic (`NULL ≐ NULL` holds). Kernels are **speculative**: they
//! evaluate every physical row of the batch, including rows an earlier
//! filter already deselected, which is only sound because the vectorized
//! executor runs them solely on predicates the totality analysis
//! (`crate::analysis`) proved error-free for the whole column type set.

use std::sync::Arc;

use sqlsem_core::{CmpOp, EvalError, LogicMode, Row, Truth, Value};

use crate::exec::compare_values;

/// The default number of rows per batch — the granularity at which the
/// vectorized executor amortizes interpretation overhead.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A fixed-length bit vector backed by `u64` words. Bits past `len` are
/// kept zero (every operation re-masks the tail), so whole-word
/// operations never leak phantom rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zeros bitmap of `len` bits.
    pub fn zeros(len: usize) -> Bitmap {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// An all-ones bitmap of `len` bits.
    pub fn ones(len: usize) -> Bitmap {
        let mut b = Bitmap { words: vec![u64::MAX; len.div_ceil(64)], len };
        b.mask_tail();
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the bitmap has no bits at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets the bit at `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|w| *w != 0)
    }

    /// Zeroes the bits past `len` in the last word, restoring the
    /// canonical-tail invariant after a whole-word operation.
    fn mask_tail(&mut self) {
        let used = self.len % 64;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }

    fn zip_with(&self, other: &Bitmap, f: impl Fn(u64, u64) -> u64) -> Bitmap {
        debug_assert_eq!(self.len, other.len);
        let words = self.words.iter().zip(&other.words).map(|(a, b)| f(*a, *b)).collect();
        let mut out = Bitmap { words, len: self.len };
        out.mask_tail();
        out
    }
}

/// Column storage. Integer columns are unboxed (`NULL` slots hold a
/// placeholder `0`; the null bitmap is authoritative); everything else —
/// strings, booleans, mixed-type columns — stores [`Value`]s directly.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// All non-null values are integers.
    Int(Vec<i64>),
    /// The general representation (nulls stored as [`Value::Null`]).
    Mixed(Vec<Value>),
}

struct ColumnInner {
    data: ColumnData,
    nulls: Bitmap,
}

/// One column of a batch: typed storage plus the null bitmap, and an
/// optional *gather view* mapping logical positions to physical slots
/// of the backing storage. Cloning is `O(1)` — storage and view are
/// shared behind `Arc`s — which is what makes a vectorized projection
/// of plain column references (and a late-materialized join output)
/// free.
#[derive(Clone)]
pub struct Column {
    inner: Arc<ColumnInner>,
    /// Logical index → physical storage slot. `None` means the identity
    /// view (logical position `i` *is* storage slot `i`).
    view: Option<Arc<Vec<u32>>>,
}

impl Column {
    /// Builds a column from the values at position `index` of `rows`.
    /// The storage is unboxed iff every non-null value is an integer.
    pub fn from_rows(rows: &[Row], index: usize) -> Column {
        let mut nulls = Bitmap::zeros(rows.len());
        let all_int =
            rows.iter().all(|r| matches!(r.get(index), Some(Value::Int(_) | Value::Null)));
        let data = if all_int {
            let mut ints = Vec::with_capacity(rows.len());
            for (i, row) in rows.iter().enumerate() {
                match row.get(index) {
                    Some(Value::Int(n)) => ints.push(*n),
                    _ => {
                        nulls.set(i);
                        ints.push(0);
                    }
                }
            }
            ColumnData::Int(ints)
        } else {
            let mut values = Vec::with_capacity(rows.len());
            for (i, row) in rows.iter().enumerate() {
                let v = row.get(index).cloned().unwrap_or(Value::Null);
                if v.is_null() {
                    nulls.set(i);
                }
                values.push(v);
            }
            ColumnData::Mixed(values)
        };
        Column { inner: Arc::new(ColumnInner { data, nulls }), view: None }
    }

    /// A column broadcasting one constant over `len` rows (how the
    /// vectorized projection represents `Expr::Const`).
    pub fn broadcast(value: &Value, len: usize) -> Column {
        let (data, nulls) = match value {
            Value::Null => (ColumnData::Int(vec![0; len]), Bitmap::ones(len)),
            Value::Int(n) => (ColumnData::Int(vec![*n; len]), Bitmap::zeros(len)),
            other => (ColumnData::Mixed(vec![other.clone(); len]), Bitmap::zeros(len)),
        };
        Column { inner: Arc::new(ColumnInner { data, nulls }), view: None }
    }

    /// Number of logical rows (the view's length, when one is attached).
    pub fn len(&self) -> usize {
        match &self.view {
            None => self.inner.nulls.len(),
            Some(v) => v.len(),
        }
    }

    /// `true` iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The physical storage slot behind logical position `i`.
    fn phys(&self, i: usize) -> usize {
        match &self.view {
            None => i,
            Some(v) => v[i] as usize,
        }
    }

    /// `true` iff the value at logical position `i` is `NULL`.
    pub fn is_null(&self, i: usize) -> bool {
        self.inner.nulls.get(self.phys(i))
    }

    /// The null bitmap of the *backing storage* (indexed by physical
    /// slot, ignoring any gather view — see [`Column::dense`]).
    pub fn nulls(&self) -> &Bitmap {
        &self.inner.nulls
    }

    /// The typed *backing storage* (indexed by physical slot, ignoring
    /// any gather view — see [`Column::dense`]).
    pub fn data(&self) -> &ColumnData {
        &self.inner.data
    }

    /// The value at logical position `i`, as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        let p = self.phys(i);
        if self.inner.nulls.get(p) {
            return Value::Null;
        }
        match &self.inner.data {
            ColumnData::Int(v) => Value::Int(v[p]),
            ColumnData::Mixed(v) => v[p].clone(),
        }
    }

    /// The unboxed integer storage — only when this is an *unviewed*
    /// integer column, so the slice can be indexed by logical position
    /// directly. Viewed columns return `None`; callers that want the
    /// unboxed path over a join output go through [`Column::dense`]
    /// first.
    pub fn as_int(&self) -> Option<&[i64]> {
        if self.view.is_some() {
            return None;
        }
        match &self.inner.data {
            ColumnData::Int(v) => Some(v),
            ColumnData::Mixed(_) => None,
        }
    }

    /// `true` iff the backing storage is unboxed integers (viewed or
    /// not) — the gate for the kernels' integer fast paths.
    pub fn is_int(&self) -> bool {
        matches!(self.inner.data, ColumnData::Int(_))
    }

    /// A lazy column over the values at `indices` (logical positions of
    /// `self`), in order: `O(1)` when `self` is unviewed (the index
    /// vector becomes the view), one composition pass otherwise.
    pub fn with_view(&self, indices: Arc<Vec<u32>>) -> Column {
        let view = match &self.view {
            None => indices,
            Some(v) => Arc::new(indices.iter().map(|&i| v[i as usize]).collect()),
        };
        Column { inner: Arc::clone(&self.inner), view: Some(view) }
    }

    /// A lazy column over the values at `indices`, in order — the
    /// gather, deferred: no storage is copied until someone needs the
    /// column dense.
    pub fn gather(&self, indices: &[u32]) -> Column {
        self.with_view(Arc::new(indices.to_vec()))
    }

    /// Resolves any gather view into fresh dense storage (an `O(1)`
    /// clone when the column is already dense).
    pub fn dense(&self) -> Column {
        let Some(view) = &self.view else {
            return self.clone();
        };
        let mut nulls = Bitmap::zeros(view.len());
        let data = match &self.inner.data {
            ColumnData::Int(v) => {
                let mut ints = Vec::with_capacity(view.len());
                for (out, &i) in view.iter().enumerate() {
                    let i = i as usize;
                    if self.inner.nulls.get(i) {
                        nulls.set(out);
                    }
                    ints.push(v[i]);
                }
                ColumnData::Int(ints)
            }
            ColumnData::Mixed(v) => {
                let mut values = Vec::with_capacity(view.len());
                for (out, &i) in view.iter().enumerate() {
                    let i = i as usize;
                    if self.inner.nulls.get(i) {
                        nulls.set(out);
                    }
                    values.push(v[i].clone());
                }
                ColumnData::Mixed(values)
            }
        };
        Column { inner: Arc::new(ColumnInner { data, nulls }), view: None }
    }
}

/// A column-major chunk of rows with a selection vector. `sel: None`
/// means every physical row is live; `Some(indices)` lists the live
/// physical indices in ascending order. Filtering refines the selection
/// without touching the (shared) column storage.
#[derive(Clone)]
pub struct Batch {
    columns: Vec<Column>,
    rows: usize,
    sel: Option<Arc<Vec<u32>>>,
}

impl Batch {
    /// Builds one dense batch from a slice of rows. `arity` fixes the
    /// column count even when `rows` is empty.
    pub fn from_rows(arity: usize, rows: &[Row]) -> Batch {
        let columns = (0..arity).map(|j| Column::from_rows(rows, j)).collect();
        Batch { columns, rows: rows.len(), sel: None }
    }

    /// Assembles a batch directly from dense columns (all the same
    /// physical length).
    pub fn from_columns(columns: Vec<Column>, rows: usize) -> Batch {
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        Batch { columns, rows, sel: None }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Number of physical rows (selected or not).
    pub fn physical_rows(&self) -> usize {
        self.rows
    }

    /// Number of *selected* rows.
    pub fn selected(&self) -> usize {
        match &self.sel {
            None => self.rows,
            Some(s) => s.len(),
        }
    }

    /// The column at position `j`.
    pub fn column(&self, j: usize) -> &Column {
        &self.columns[j]
    }

    /// Iterates the selected physical row indices, in ascending order.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        let (range, slice) = match &self.sel {
            None => (Some(0..self.rows), None),
            Some(s) => (None, Some(s.iter().map(|&i| i as usize))),
        };
        range.into_iter().flatten().chain(slice.into_iter().flatten())
    }

    /// The selected row at physical index `i`, materialized.
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// A batch with the same columns but a new selection: the previously
    /// selected rows whose [`TruthVec`] verdict (indexed by *physical*
    /// row) is *true*.
    pub fn restrict(&self, verdicts: &TruthVec) -> Batch {
        let sel: Vec<u32> =
            self.indices().filter(|&i| verdicts.is_true(i)).map(|i| i as u32).collect();
        Batch { columns: self.columns.clone(), rows: self.rows, sel: Some(Arc::new(sel)) }
    }

    /// A batch with the same columns restricted to an explicit selection
    /// (physical indices, ascending).
    pub fn with_selection(&self, sel: Vec<u32>) -> Batch {
        Batch { columns: self.columns.clone(), rows: self.rows, sel: Some(Arc::new(sel)) }
    }

    /// A batch with the same selection but different columns — the
    /// vectorized projection (each column must span the same physical
    /// row count).
    pub fn with_columns(&self, columns: Vec<Column>) -> Batch {
        debug_assert!(columns.iter().all(|c| c.len() == self.rows));
        Batch { columns, rows: self.rows, sel: self.sel.clone() }
    }

    /// Appends the selected rows, in order, to `out`.
    pub fn append_rows(&self, out: &mut Vec<Row>) {
        for i in self.indices() {
            out.push(self.row(i));
        }
    }

    /// Concatenates the *selected* rows of many batches into one dense
    /// batch, column by column — no row round trip. `arity` fixes the
    /// column count when `batches` is empty. A column of the output is
    /// unboxed iff that column is integer-backed in every input batch.
    pub fn concat(arity: usize, batches: &[Batch]) -> Batch {
        let total: usize = batches.iter().map(Batch::selected).sum();
        let columns = (0..arity)
            .map(|j| {
                let mut nulls = Bitmap::zeros(total);
                let mut out = 0usize;
                let all_int = batches.iter().all(|b| b.column(j).is_int());
                let data = if all_int {
                    let mut ints = Vec::with_capacity(total);
                    for b in batches {
                        let c = b.column(j);
                        let ColumnData::Int(v) = &c.inner.data else { unreachable!() };
                        for i in b.indices() {
                            let p = c.phys(i);
                            if c.inner.nulls.get(p) {
                                nulls.set(out);
                            }
                            ints.push(v[p]);
                            out += 1;
                        }
                    }
                    ColumnData::Int(ints)
                } else {
                    let mut values = Vec::with_capacity(total);
                    for b in batches {
                        let c = b.column(j);
                        for i in b.indices() {
                            let v = c.value(i);
                            if v.is_null() {
                                nulls.set(out);
                            }
                            values.push(v);
                            out += 1;
                        }
                    }
                    ColumnData::Mixed(values)
                };
                Column { inner: Arc::new(ColumnInner { data, nulls }), view: None }
            })
            .collect();
        Batch { columns, rows: total, sel: None }
    }
}

/// Kleene truth values for every physical row of a batch, as two
/// bitmaps: *true* bits and *unknown* bits (a row with neither is
/// *false*). The §6 two-valued modes simply never set unknown bits.
#[derive(Clone, Debug)]
pub struct TruthVec {
    t: Bitmap,
    u: Bitmap,
}

impl TruthVec {
    /// All rows *false*.
    pub fn all_false(len: usize) -> TruthVec {
        TruthVec { t: Bitmap::zeros(len), u: Bitmap::zeros(len) }
    }

    /// All rows *true*.
    pub fn all_true(len: usize) -> TruthVec {
        TruthVec { t: Bitmap::ones(len), u: Bitmap::zeros(len) }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// `true` iff the vector covers no rows.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Sets row `i` to the given truth value (rows start *false*).
    pub fn set(&mut self, i: usize, truth: Truth) {
        match truth {
            Truth::True => self.t.set(i),
            Truth::Unknown => self.u.set(i),
            Truth::False => {}
        }
    }

    /// The verdict at row `i` is *true*.
    pub fn is_true(&self, i: usize) -> bool {
        self.t.get(i)
    }

    /// The Kleene conjunction, row-wise: false dominates, then unknown.
    pub fn and(&self, other: &TruthVec) -> TruthVec {
        let t = self.t.zip_with(&other.t, |a, b| a & b);
        // false(x) = !t(x) & !u(x); the result is unknown wherever
        // neither side is false but the conjunction is not true.
        let fa = self.t.zip_with(&self.u, |t, u| !(t | u));
        let fb = other.t.zip_with(&other.u, |t, u| !(t | u));
        let f = fa.zip_with(&fb, |a, b| a | b);
        let u = t.zip_with(&f, |t, f| !(t | f));
        TruthVec { t, u }
    }

    /// The Kleene disjunction, row-wise: true dominates, then unknown.
    pub fn or(&self, other: &TruthVec) -> TruthVec {
        let t = self.t.zip_with(&other.t, |a, b| a | b);
        let fa = self.t.zip_with(&self.u, |t, u| !(t | u));
        let fb = other.t.zip_with(&other.u, |t, u| !(t | u));
        let f = fa.zip_with(&fb, |a, b| a & b);
        let u = t.zip_with(&f, |t, f| !(t | f));
        TruthVec { t, u }
    }

    /// The Kleene negation: true and false swap, unknown is a fixpoint.
    pub fn not(&self) -> TruthVec {
        let t = self.t.zip_with(&self.u, |t, u| !(t | u));
        TruthVec { t, u: self.u.clone() }
    }
}

/// Integer comparison without boxing, matching [`Value::sql_cmp`] on two
/// non-null integers.
fn int_cmp(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Neq => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Leq => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Geq => a >= b,
    }
}

/// The whole-batch comparison kernel: evaluates `left op right` for
/// every physical row under the given logic mode. Two integer columns
/// take an unboxed path; otherwise each row goes through the same
/// `compare_values` the row executor uses, so the two paths cannot
/// drift. Errors can only surface on the general path and only when the
/// caller skipped the totality gate.
pub fn cmp_kernel(
    logic: LogicMode,
    left: &Column,
    op: CmpOp,
    right: &Column,
) -> Result<TruthVec, EvalError> {
    let len = left.len();
    debug_assert_eq!(len, right.len());
    let mut out = TruthVec::all_false(len);
    if let (Some(a), Some(b)) = (left.as_int(), right.as_int()) {
        for i in 0..len {
            let (ln, rn) = (left.is_null(i), right.is_null(i));
            let truth = match logic {
                LogicMode::ThreeValued if ln || rn => Truth::Unknown,
                LogicMode::TwoValuedSyntacticEq if op == CmpOp::Eq => {
                    Truth::from_bool(if ln || rn { ln && rn } else { a[i] == b[i] })
                }
                _ if ln || rn => Truth::False,
                _ => Truth::from_bool(int_cmp(op, a[i], b[i])),
            };
            out.set(i, truth);
        }
        return Ok(out);
    }
    for i in 0..len {
        out.set(i, compare_values(logic, &left.value(i), op, &right.value(i))?);
    }
    Ok(out)
}

/// The `IS [NOT] NULL` kernel: reads the null bitmap directly. Total in
/// every logic mode.
pub fn is_null_kernel(column: &Column, negated: bool) -> TruthVec {
    let len = column.len();
    let mut out = TruthVec::all_false(len);
    for i in 0..len {
        let truth = Truth::from_bool(column.is_null(i) != negated);
        out.set(i, truth);
    }
    out
}

/// The `IS [NOT] DISTINCT FROM` kernel: syntactic equality, where
/// `NULL ≐ NULL` holds in every logic mode. `negated` follows
/// [`Pred::IsDistinct`](crate::plan::Pred::IsDistinct): `true` means
/// `IS NOT DISTINCT FROM` (keep the syntactically equal rows).
pub fn is_distinct_kernel(left: &Column, right: &Column, negated: bool) -> TruthVec {
    let len = left.len();
    debug_assert_eq!(len, right.len());
    let mut out = TruthVec::all_false(len);
    if let (Some(a), Some(b)) = (left.as_int(), right.as_int()) {
        for i in 0..len {
            let (ln, rn) = (left.is_null(i), right.is_null(i));
            let same = if ln || rn { ln && rn } else { a[i] == b[i] };
            out.set(i, Truth::from_bool(same == negated));
        }
        return out;
    }
    for i in 0..len {
        let same = left.value(i).syntactic_eq(&right.value(i));
        out.set(i, if negated { same } else { same.not() });
    }
    out
}

/// The `LIKE` kernel: per-row [`Value::sql_like`] with the §6 logic-mode
/// adjustment (non-three-valued modes conflate *unknown* to *false*),
/// mirroring the row executor's `Pred::Like` arm.
pub fn like_kernel(
    logic: LogicMode,
    term: &Column,
    pattern: &Column,
    negated: bool,
) -> Result<TruthVec, EvalError> {
    let len = term.len();
    debug_assert_eq!(len, pattern.len());
    let mut out = TruthVec::all_false(len);
    for i in 0..len {
        let raw = term.value(i).sql_like(&pattern.value(i))?;
        let truth = match logic {
            LogicMode::ThreeValued => raw,
            _ => {
                if raw.is_true() {
                    Truth::True
                } else {
                    Truth::False
                }
            }
        };
        out.set(i, if negated { truth.not() } else { truth });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlsem_core::row;

    fn col(values: &[Value]) -> Column {
        let rows: Vec<Row> = values.iter().map(|v| Row::new(vec![v.clone()])).collect();
        Column::from_rows(&rows, 0)
    }

    #[test]
    fn bitmap_tail_stays_masked() {
        let mut b = Bitmap::ones(70);
        assert_eq!(b.count(), 70);
        b.set(69);
        assert_eq!(b.count(), 70);
        let z = Bitmap::zeros(70);
        assert!(!z.any());
        assert_eq!(b.zip_with(&z, |a, _| !a).count(), 0);
    }

    #[test]
    fn column_types_and_values_round_trip() {
        let ints = col(&[Value::Int(1), Value::Null, Value::Int(-3)]);
        assert!(ints.as_int().is_some());
        assert_eq!(ints.value(0), Value::Int(1));
        assert_eq!(ints.value(1), Value::Null);
        assert!(ints.is_null(1));
        let mixed = col(&[Value::Int(1), Value::from("x")]);
        assert!(mixed.as_int().is_none());
        assert_eq!(mixed.value(1), Value::from("x"));
    }

    #[test]
    fn selection_vectors_refine_without_copying_columns() {
        let rows: Vec<Row> = (0..10).map(|i| row![i]).collect();
        let batch = Batch::from_rows(1, &rows);
        assert_eq!(batch.selected(), 10);
        let mut even = TruthVec::all_false(10);
        for i in (0..10).step_by(2) {
            even.set(i, Truth::True);
        }
        let filtered = batch.restrict(&even);
        assert_eq!(filtered.selected(), 5);
        assert_eq!(filtered.physical_rows(), 10);
        let mut small = TruthVec::all_false(10);
        for i in 0..4 {
            small.set(i, Truth::True);
        }
        let twice = filtered.restrict(&small);
        assert_eq!(twice.indices().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn gather_views_compose_and_resolve_lazily() {
        let c = col(&[Value::Int(10), Value::Null, Value::Int(30), Value::Int(40)]);
        // A view reorders and repeats without touching storage.
        let v = c.gather(&[3, 0, 0, 1]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.value(0), Value::Int(40));
        assert_eq!(v.value(1), Value::Int(10));
        assert_eq!(v.value(2), Value::Int(10));
        assert!(v.is_null(3));
        // Viewed columns refuse the unboxed fast path until densified.
        assert!(c.as_int().is_some());
        assert!(v.as_int().is_none());
        assert!(v.is_int());
        // Composing a view over a view resolves through both.
        let vv = v.gather(&[1, 3]);
        assert_eq!(vv.value(0), Value::Int(10));
        assert!(vv.is_null(1));
        // Densifying restores the kernel path with the viewed order.
        let d = vv.dense();
        assert_eq!(d.as_int().unwrap(), &[10, 0]);
        assert_eq!(d.value(0), Value::Int(10));
        assert!(d.is_null(1));
    }

    #[test]
    fn empty_gather_views_are_well_formed() {
        let c = col(&[Value::Int(1), Value::from("x")]);
        let empty = c.gather(&[]);
        assert_eq!(empty.len(), 0);
        let d = empty.dense();
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn concat_is_columnar_and_view_aware() {
        let rows: Vec<Row> = (0..6).map(|i| row![i, i * 2]).collect();
        let batch = Batch::from_rows(2, &rows);
        // Restrict to odd rows, then concat with a viewed (gathered) batch.
        let mut odd = TruthVec::all_false(6);
        for i in (1..6).step_by(2) {
            odd.set(i, Truth::True);
        }
        let filtered = batch.restrict(&odd);
        let idx: Vec<u32> = vec![5, 0];
        let viewed =
            Batch::from_columns((0..2).map(|j| batch.column(j).gather(&idx)).collect(), idx.len());
        let joined = Batch::concat(2, &[filtered, viewed]);
        assert_eq!(joined.selected(), 5);
        let got: Vec<Row> = {
            let mut out = Vec::new();
            joined.append_rows(&mut out);
            out
        };
        let want: Vec<Row> = vec![row![1, 2], row![3, 6], row![5, 10], row![5, 10], row![0, 0]];
        assert_eq!(got, want);
        // The concatenated integer columns are dense again.
        assert!(joined.column(0).as_int().is_some());
    }

    #[test]
    fn truthvec_kleene_tables() {
        // Exhaustive 3×3 check against sqlsem_core::Truth.
        let all = [Truth::False, Truth::Unknown, Truth::True];
        for a in all {
            for b in all {
                let mut va = TruthVec::all_false(1);
                va.set(0, a);
                let mut vb = TruthVec::all_false(1);
                vb.set(0, b);
                let get = |v: &TruthVec| {
                    if v.t.get(0) {
                        Truth::True
                    } else if v.u.get(0) {
                        Truth::Unknown
                    } else {
                        Truth::False
                    }
                };
                assert_eq!(get(&va.and(&vb)), a.and(b), "{a:?} AND {b:?}");
                assert_eq!(get(&va.or(&vb)), a.or(b), "{a:?} OR {b:?}");
                assert_eq!(get(&va.not()), a.not(), "NOT {a:?}");
            }
        }
    }

    #[test]
    fn cmp_kernel_matches_row_compare_in_every_logic_mode() {
        let values =
            [Value::Null, Value::Int(0), Value::Int(1), Value::from("a"), Value::Bool(true)];
        let n = values.len();
        let mut lvals = Vec::new();
        let mut rvals = Vec::new();
        for l in &values {
            for r in &values {
                lvals.push(l.clone());
                rvals.push(r.clone());
            }
        }
        let (lcol, rcol) = (col(&lvals), col(&rvals));
        for logic in LogicMode::ALL {
            for op in [CmpOp::Eq, CmpOp::Neq, CmpOp::Lt, CmpOp::Leq, CmpOp::Gt, CmpOp::Geq] {
                let kernel = cmp_kernel(logic, &lcol, op, &rcol);
                for i in 0..n * n {
                    let reference = compare_values(logic, &lvals[i], op, &rvals[i]);
                    match (&kernel, reference) {
                        (Ok(k), Ok(t)) => {
                            let got = if k.is_true(i) { Truth::True } else { Truth::False };
                            // Only compare the is_true verdict the filter
                            // consumes; unknown vs false both drop rows.
                            assert_eq!(got.is_true(), t.is_true(), "{logic:?} {op:?} row {i}");
                        }
                        (Err(_), Err(_)) => {}
                        // A kernel error covers the whole batch: every
                        // mixed-type matrix errs somewhere, so reference
                        // errors on *some* row are fine. The totality
                        // gate keeps real runs off this path entirely.
                        (Err(_), Ok(_)) | (Ok(_), Err(_)) => {}
                    }
                }
            }
        }
        // Pure-integer columns: exact truth values, all modes, no errors.
        let li = col(&[Value::Int(1), Value::Null, Value::Int(2), Value::Null]);
        let ri = col(&[Value::Int(1), Value::Int(1), Value::Null, Value::Null]);
        for logic in LogicMode::ALL {
            for op in [CmpOp::Eq, CmpOp::Neq, CmpOp::Lt, CmpOp::Leq, CmpOp::Gt, CmpOp::Geq] {
                let k = cmp_kernel(logic, &li, op, &ri).unwrap();
                for i in 0..4 {
                    let reference = compare_values(logic, &li.value(i), op, &ri.value(i)).unwrap();
                    let got = if k.is_true(i) {
                        Truth::True
                    } else if k.u.get(i) {
                        Truth::Unknown
                    } else {
                        Truth::False
                    };
                    assert_eq!(got, reference, "{logic:?} {op:?} row {i}");
                }
            }
        }
    }

    #[test]
    fn null_kernels_follow_the_bitmaps() {
        let c = col(&[Value::Int(1), Value::Null]);
        let is_null = is_null_kernel(&c, false);
        assert!(!is_null.is_true(0) && is_null.is_true(1));
        let not_null = is_null_kernel(&c, true);
        assert!(not_null.is_true(0) && !not_null.is_true(1));

        let l = col(&[Value::Null, Value::Null, Value::Int(1), Value::Int(1)]);
        let r = col(&[Value::Null, Value::Int(1), Value::Int(1), Value::Int(2)]);
        // negated=true is IS NOT DISTINCT FROM: true where syntactically equal.
        let same = is_distinct_kernel(&l, &r, true);
        assert!(same.is_true(0) && !same.is_true(1) && same.is_true(2) && !same.is_true(3));
        let distinct = is_distinct_kernel(&l, &r, false);
        assert!(!distinct.is_true(0) && distinct.is_true(1));
    }
}
