//! One execution interface over the workspace's five evaluators.
//!
//! The paper's whole point is that a single formal semantics stands
//! behind many consumers; this module is the code-level rendering of
//! that idea. The five ways the workspace can run a query — the
//! denotational spec interpreter ([`sqlsem_core::Evaluator`]), the
//! engine with its optimizer disabled, the engine with it enabled, the
//! engine driving its plans through the columnar batch executor, and
//! the adaptive dispatcher choosing between the last two per query —
//! are unified behind the [`QueryBackend`] trait and selected by the
//! [`Backend`] enum, so that the `Session` API, the §4 harness and the
//! optimizer gauntlet can all swap evaluation strategies without
//! touching any other code.

use std::fmt;
use std::str::FromStr;

use sqlsem_core::{
    Database, Dialect, EvalError, Evaluator, LogicMode, PredicateRegistry, Query, Table,
};

use crate::Engine;

/// Anything that can execute an annotated query against a database: the
/// uniform `execute` the four evaluators hide behind.
pub trait QueryBackend {
    /// Executes a closed annotated query, producing a bag of rows or
    /// the evaluation error the §4 criterion compares on.
    fn execute(&self, query: &Query) -> Result<Table, EvalError>;
}

impl QueryBackend for Evaluator<'_> {
    fn execute(&self, query: &Query) -> Result<Table, EvalError> {
        self.eval(query)
    }
}

impl QueryBackend for Engine<'_> {
    fn execute(&self, query: &Query) -> Result<Table, EvalError> {
        Engine::execute(self, query)
    }
}

/// Which evaluation strategy a session (or harness) runs queries with.
///
/// All five implement the same semantics — the optimizer gauntlet's
/// standing result is that they are indistinguishable under the paper's
/// coincidence criterion — but they differ in pedigree and speed:
///
/// * [`Backend::SpecInterpreter`] is the executable specification
///   (Figures 4–7, environments and all), naive by design;
/// * [`Backend::NaiveEngine`] is the independent positional-plan engine
///   with its optimizer off — the §4 oracle stand-in;
/// * [`Backend::OptimizedEngine`] adds predicate pushdown, hash
///   equi-joins, subquery caching and `EXISTS` early exit;
/// * [`Backend::VectorizedEngine`] runs the optimized plans
///   batch-at-a-time through the columnar executor
///   ([`crate::vexec::VecExecutor`]);
/// * [`Backend::Adaptive`] (the default) dispatches per query: the
///   vectorized executor over big inputs, the row engine below the
///   calibrated [`crate::ADAPTIVE_ROW_CUTOFF`], where batch setup
///   overhead dominates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The denotational interpreter `⟦·⟧` of `sqlsem-core`.
    SpecInterpreter,
    /// The physical-plan engine, optimizations off.
    NaiveEngine,
    /// The physical-plan engine, optimizations on.
    OptimizedEngine,
    /// The physical-plan engine with optimizations on, executed
    /// batch-at-a-time over columnar batches.
    VectorizedEngine,
    /// Per-query dispatch between the optimized row engine and the
    /// vectorized executor, by estimated input size (the default).
    #[default]
    Adaptive,
    /// The optimized engine over a database that has made a full round
    /// trip through the durable storage subsystem: the input database is
    /// persisted into a throwaway on-disk store (WAL + checkpoint),
    /// recovered by reopening it, given a single-column secondary index
    /// on the first column of every table, and only then queried — so
    /// the gauntlet exercises recovery fidelity *and* the
    /// [`crate::plan::Plan::IndexScan`]/index-join rewrites at once.
    /// Deliberately not in [`Backend::ALL`]: it touches the filesystem,
    /// so sweeps opt in explicitly (`--backend persistent`).
    Persistent,
}

impl Backend {
    /// All backends, for exhaustive differential sweeps.
    pub const ALL: [Backend; 5] = [
        Backend::SpecInterpreter,
        Backend::NaiveEngine,
        Backend::OptimizedEngine,
        Backend::VectorizedEngine,
        Backend::Adaptive,
    ];

    /// An executor for this backend over `db`, configured with the given
    /// dialect, logic mode and predicate registry.
    pub fn executor<'a>(
        self,
        db: &'a Database,
        dialect: Dialect,
        logic: LogicMode,
        preds: &PredicateRegistry,
    ) -> Box<dyn QueryBackend + 'a> {
        match self {
            Backend::SpecInterpreter => Box::new(
                Evaluator::new(db)
                    .with_dialect(dialect)
                    .with_logic(logic)
                    .with_predicates(preds.clone()),
            ),
            Backend::NaiveEngine => Box::new(
                Engine::new(db)
                    .with_dialect(dialect)
                    .with_logic(logic)
                    .with_predicates(preds.clone())
                    .with_optimizations(false),
            ),
            Backend::OptimizedEngine => Box::new(
                Engine::new(db)
                    .with_dialect(dialect)
                    .with_logic(logic)
                    .with_predicates(preds.clone()),
            ),
            Backend::VectorizedEngine => Box::new(
                Engine::new(db)
                    .with_dialect(dialect)
                    .with_logic(logic)
                    .with_predicates(preds.clone())
                    .with_vectorized(true),
            ),
            Backend::Adaptive => Box::new(
                Engine::new(db)
                    .with_dialect(dialect)
                    .with_logic(logic)
                    .with_predicates(preds.clone())
                    .with_adaptive(true),
            ),
            Backend::Persistent => {
                Box::new(PersistentBackend::new(db, dialect, logic, preds.clone()))
            }
        }
    }

    /// One-shot convenience: builds the executor and runs `query`.
    pub fn execute(
        self,
        db: &Database,
        dialect: Dialect,
        logic: LogicMode,
        preds: &PredicateRegistry,
        query: &Query,
    ) -> Result<Table, EvalError> {
        self.executor(db, dialect, logic, preds).execute(query)
    }
}

/// The [`Backend::Persistent`] executor: owns the database recovered
/// from a throwaway on-disk store (written, fsynced, reopened and then
/// deleted in [`PersistentBackend::new`]) and runs the optimized engine
/// over it. Every table gets a secondary index on its first column, so
/// generated point/range predicates actually take the index paths.
///
/// Storage failures here are infrastructure faults, not semantics
/// results the §4 criterion could compare on, so they panic loudly
/// instead of masquerading as evaluation errors.
struct PersistentBackend {
    db: Database,
    dialect: Dialect,
    logic: LogicMode,
    preds: PredicateRegistry,
}

impl PersistentBackend {
    fn new(db: &Database, dialect: Dialect, logic: LogicMode, preds: PredicateRegistry) -> Self {
        PersistentBackend { db: persistent_database(db), dialect, logic, preds }
    }
}

/// Pushes `db` through the durable storage engine and back: writes it
/// to a throwaway on-disk store (checkpoint + fsync), reopens the store
/// to recover it, asserts the recovery is **exact**, deletes the store,
/// and finally gives every table a secondary index on its first column
/// so generated point/range predicates actually take the index paths.
///
/// This is the database [`Backend::Persistent`] executes over; the
/// validation harness also calls it directly so its `Session`-driven
/// sweeps exercise the same storage round trip per generated database.
/// Storage failures panic — they are infrastructure faults, not
/// semantics results the §4 criterion could compare on.
pub fn persistent_database(db: &Database) -> Database {
    let dir = sqlsem_storage::fresh_temp_dir("backend");
    let round_trip = (|| -> Result<Database, sqlsem_storage::StorageError> {
        let (mut storage, _) = sqlsem_storage::Storage::open(&dir)?;
        storage.save_all(db)?;
        drop(storage);
        let (_, recovered) = sqlsem_storage::Storage::open(&dir)?;
        Ok(recovered)
    })();
    let _ = std::fs::remove_dir_all(&dir);
    let mut recovered = round_trip.expect("persistent backend: storage round trip");
    assert_eq!(&recovered, db, "persistent backend: recovery must be exact");
    let firsts: Vec<(String, String)> = recovered
        .schema()
        .iter()
        .filter_map(|(t, attrs)| Some((t.to_string(), attrs.first()?.to_string())))
        .collect();
    for (i, (table, col)) in firsts.into_iter().enumerate() {
        // Index names must be distinct; column names may repeat
        // across tables, so the position disambiguates.
        recovered
            .create_index(format!("gauntlet_{i}_{col}_idx"), table.as_str(), [col.as_str()])
            .expect("persistent backend: index creation");
    }
    recovered
}

impl QueryBackend for PersistentBackend {
    fn execute(&self, query: &Query) -> Result<Table, EvalError> {
        Engine::new(&self.db)
            .with_dialect(self.dialect)
            .with_logic(self.logic)
            .with_predicates(self.preds.clone())
            .execute(query)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::SpecInterpreter => "spec",
            Backend::NaiveEngine => "naive",
            Backend::OptimizedEngine => "optimized",
            Backend::VectorizedEngine => "vectorized",
            Backend::Adaptive => "adaptive",
            Backend::Persistent => "persistent",
        })
    }
}

impl FromStr for Backend {
    type Err = String;

    /// Parses the `--backend` spelling used by the experiment binaries:
    /// `spec`, `naive`, `optimized`, `vectorized` or `adaptive`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "spec" | "spec-interpreter" | "interpreter" => Ok(Backend::SpecInterpreter),
            "naive" | "naive-engine" => Ok(Backend::NaiveEngine),
            "optimized" | "optimized-engine" | "engine" => Ok(Backend::OptimizedEngine),
            "vectorized" | "vectorized-engine" | "vec" => Ok(Backend::VectorizedEngine),
            "adaptive" | "auto" => Ok(Backend::Adaptive),
            "persistent" | "storage" | "durable" => Ok(Backend::Persistent),
            other => Err(format!(
                "unknown backend {other:?}: expected spec, naive, optimized, \
                 vectorized, adaptive or persistent"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlsem_core::{table, Schema, Value};

    fn example1() -> (Schema, Database) {
        let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema.clone());
        db.replace_table("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
        db.replace_table("S", table! { ["A"]; [Value::Null] }).unwrap();
        (schema, db)
    }

    #[test]
    fn all_backends_agree_on_example1() {
        let (schema, db) = example1();
        let q = sqlsem_parser::compile(
            "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
            &schema,
        )
        .unwrap();
        let preds = PredicateRegistry::new();
        for backend in Backend::ALL {
            let out = backend
                .execute(&db, Dialect::Standard, LogicMode::ThreeValued, &preds, &q)
                .unwrap();
            assert!(out.is_empty(), "{backend}: {out}");
        }
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("spec".parse::<Backend>().unwrap(), Backend::SpecInterpreter);
        assert_eq!("NAIVE".parse::<Backend>().unwrap(), Backend::NaiveEngine);
        assert_eq!("optimized".parse::<Backend>().unwrap(), Backend::OptimizedEngine);
        assert_eq!("vectorized".parse::<Backend>().unwrap(), Backend::VectorizedEngine);
        assert_eq!("vec".parse::<Backend>().unwrap(), Backend::VectorizedEngine);
        assert_eq!("adaptive".parse::<Backend>().unwrap(), Backend::Adaptive);
        assert_eq!("auto".parse::<Backend>().unwrap(), Backend::Adaptive);
        assert_eq!("persistent".parse::<Backend>().unwrap(), Backend::Persistent);
        assert_eq!("durable".parse::<Backend>().unwrap(), Backend::Persistent);
        assert!("postgres".parse::<Backend>().is_err());
        for b in Backend::ALL.into_iter().chain([Backend::Persistent]) {
            assert_eq!(b.to_string().parse::<Backend>().unwrap(), b);
        }
        // Filesystem-touching, so opt-in only — never part of the sweep.
        assert!(!Backend::ALL.contains(&Backend::Persistent));
        assert_eq!(Backend::default(), Backend::Adaptive);
    }

    #[test]
    fn persistent_backend_round_trips_and_uses_indexes() {
        let (schema, db) = example1();
        let preds = PredicateRegistry::new();
        let q = sqlsem_parser::compile(
            "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
            &schema,
        )
        .unwrap();
        let out = Backend::Persistent
            .execute(&db, Dialect::Standard, LogicMode::ThreeValued, &preds, &q)
            .unwrap();
        assert!(out.is_empty(), "{out}");
        // A point predicate on an indexed first column agrees with the
        // spec interpreter bit for bit.
        let q = sqlsem_parser::compile("SELECT R.A FROM R WHERE R.A = 1", &schema).unwrap();
        let spec = Backend::SpecInterpreter
            .execute(&db, Dialect::Standard, LogicMode::ThreeValued, &preds, &q)
            .unwrap();
        let persistent = Backend::Persistent
            .execute(&db, Dialect::Standard, LogicMode::ThreeValued, &preds, &q)
            .unwrap();
        assert_eq!(spec, persistent);
    }
}
