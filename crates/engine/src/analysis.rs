//! Static analyses that gate the optimizer.
//!
//! Every rewrite in [`crate::optimize`] must be invisible under the §4
//! coincidence criterion, and that criterion counts *error behaviour*:
//! an optimized plan that errors where the naive plan returns rows (or
//! vice versa) is a disagreement. Reordering or eliding predicate
//! evaluations can do exactly that — a pushed-down conjunct runs on
//! input rows the naive plan never reached (another product input was
//! empty), and a pushed filter can empty the product so a later
//! error-raising conjunct never runs. The analyses here make the
//! rewrites safe:
//!
//! * **Totality** ([`pred_total`], [`plan_total`]): proves a predicate or
//!   subplan can never raise a runtime error, using a conservative
//!   per-column type analysis seeded from the actual database instance
//!   (the engine compiles against a concrete `Database`, so column types
//!   are known). Only totally error-free filters are split, pushed, or
//!   turned into hash joins, and only totally error-free `EXISTS`
//!   subplans may stop early.
//! * **Correlation depth** ([`plan_is_correlated`]): decides whether a
//!   subplan reads any frame of the correlation stack outside itself. An
//!   uncorrelated subplan produces the same rows on every execution, so
//!   its result can be cached across outer rows.
//! * **Determinism** ([`plan_has_user_pred`]): user predicates are opaque
//!   host functions; plans invoking them are never cached or reordered.

use sqlsem_core::{AggFunc, Database, Value};

use crate::plan::{AggSpec, Expr, Plan, Pred};

/// A conservative set of runtime types a column (or expression) may take,
/// as a bitmask over `NULL`/`BOOL`/`INT`/`STR`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TypeSet(u8);

impl TypeSet {
    const NULL: u8 = 1;
    const BOOL: u8 = 2;
    const INT: u8 = 4;
    const STR: u8 = 8;

    /// No values at all (e.g. a column of an empty table).
    pub(crate) const EMPTY: TypeSet = TypeSet(0);
    /// All types: the conservative "don't know" answer.
    pub(crate) const ALL: TypeSet = TypeSet(0b1111);

    fn of_value(v: &Value) -> TypeSet {
        TypeSet(match v {
            Value::Null => TypeSet::NULL,
            Value::Bool(_) => TypeSet::BOOL,
            Value::Int(_) => TypeSet::INT,
            Value::Str(_) => TypeSet::STR,
        })
    }

    fn union(self, other: TypeSet) -> TypeSet {
        TypeSet(self.0 | other.0)
    }

    /// The set with `NULL` removed — the types that participate in typed
    /// comparisons (`NULL` short-circuits to *unknown* before any type
    /// check in [`Value::sql_cmp`]).
    pub(crate) fn non_null(self) -> TypeSet {
        TypeSet(self.0 & !TypeSet::NULL)
    }

    fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub(crate) fn count(self) -> u32 {
        self.0.count_ones()
    }

    fn is_subset(self, of: u8) -> bool {
        self.0 & !of == 0
    }
}

/// The compile-time image of the runtime correlation stack: one frame of
/// column type sets per enclosing block, innermost last.
pub(crate) type TypeFrames = Vec<Vec<TypeSet>>;

/// Per-column type sets of the rows `plan` produces, under the given
/// outer frames (correlated references resolve against `frames`).
pub(crate) fn col_types(plan: &Plan, frames: &mut TypeFrames, db: &Database) -> Vec<TypeSet> {
    match plan {
        // An `IndexScan` produces a subset of the scan's rows, so the
        // scan's column types are a sound (conservative) answer.
        Plan::Scan { table } | Plan::IndexScan { table, .. } => match db.table(table) {
            Ok(t) => {
                let mut cols = vec![TypeSet::EMPTY; t.arity()];
                for row in t.rows() {
                    for (c, v) in cols.iter_mut().zip(row.iter()) {
                        *c = c.union(TypeSet::of_value(v));
                    }
                }
                cols
            }
            Err(_) => Vec::new(),
        },
        Plan::IndexJoin { left, table, .. } => {
            let mut l = col_types(left, frames, db);
            l.extend(col_types(&Plan::Scan { table: table.clone() }, frames, db));
            l
        }
        Plan::Product { inputs } => inputs.iter().flat_map(|p| col_types(p, frames, db)).collect(),
        Plan::Filter { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::TopK { input, .. } => col_types(input, frames, db),
        Plan::Project { input, exprs } => {
            let inner = col_types(input, frames, db);
            frames.push(inner);
            let out = exprs.iter().map(|e| expr_types(e, frames).unwrap_or(TypeSet::ALL)).collect();
            frames.pop();
            out
        }
        // Union rows come from both sides; intersect/except output rows
        // are drawn from the left operand.
        Plan::SetOp { op: sqlsem_core::SetOp::Union, left, right, .. } => {
            let l = col_types(left, frames, db);
            let r = col_types(right, frames, db);
            l.iter().zip(r.iter()).map(|(a, b)| a.union(*b)).collect()
        }
        Plan::SetOp { left, .. } => col_types(left, frames, db),
        Plan::HashJoin { left, right, .. } => {
            let mut l = col_types(left, frames, db);
            l.extend(col_types(right, frames, db));
            l
        }
        // An outer join null-pads the dangling side's counterpart: every
        // column of a padded side may additionally be NULL.
        Plan::OuterJoin { kind, left, right, .. } => {
            let mut l = col_types(left, frames, db);
            let mut r = col_types(right, frames, db);
            if kind.keeps_right() {
                for c in &mut l {
                    *c = c.union(TypeSet(TypeSet::NULL));
                }
            }
            if kind.keeps_left() {
                for c in &mut r {
                    *c = c.union(TypeSet(TypeSet::NULL));
                }
            }
            l.extend(r);
            l
        }
        Plan::GroupAggregate { input, keys, aggs, output, .. } => {
            let group = group_frame_types(input, keys, aggs, frames, db);
            frames.push(group);
            let out =
                output.iter().map(|e| expr_types(e, frames).unwrap_or(TypeSet::ALL)).collect();
            frames.pop();
            out
        }
    }
}

/// The per-column type sets of a [`Plan::GroupAggregate`]'s group frame
/// `keys ++ aggs`, under the given outer frames.
pub(crate) fn group_frame_types(
    input: &Plan,
    keys: &[Expr],
    aggs: &[AggSpec],
    frames: &mut TypeFrames,
    db: &Database,
) -> Vec<TypeSet> {
    let inner = col_types(input, frames, db);
    frames.push(inner);
    let mut group: Vec<TypeSet> =
        keys.iter().map(|e| expr_types(e, frames).unwrap_or(TypeSet::ALL)).collect();
    for spec in aggs {
        group.push(agg_result_types(spec, frames));
    }
    frames.pop();
    group
}

/// The type set an aggregate's per-group result may take. `COUNT` is
/// always an integer; `SUM`/`AVG` are integer-or-`NULL` (`NULL` for the
/// empty or all-`NULL` group); `MIN`/`MAX` take the argument's non-null
/// types plus `NULL`.
fn agg_result_types(spec: &AggSpec, frames: &TypeFrames) -> TypeSet {
    match spec.func {
        AggFunc::Count => TypeSet(TypeSet::INT),
        AggFunc::Sum | AggFunc::Avg => TypeSet(TypeSet::INT | TypeSet::NULL),
        AggFunc::Min | AggFunc::Max => {
            let arg = spec.arg.as_ref().and_then(|e| expr_types(e, frames)).unwrap_or(TypeSet::ALL);
            TypeSet(arg.non_null().0 | TypeSet::NULL)
        }
    }
}

/// `true` iff computing this aggregate can never raise a runtime error,
/// for inputs consistent with the frames (`frames.last()` must be the
/// input-row frame). `SUM`/`AVG` are conservatively non-total: integer
/// overflow is a (deterministic) runtime error the type analysis cannot
/// bound.
pub(crate) fn agg_total(spec: &AggSpec, frames: &TypeFrames) -> bool {
    match &spec.arg {
        None => spec.func == AggFunc::Count,
        Some(arg) => {
            let Some(types) = expr_types(arg, frames) else { return false };
            match spec.func {
                AggFunc::Count => true,
                AggFunc::Sum | AggFunc::Avg => false,
                // MIN/MAX compare the argument's non-null values with
                // each other: total iff they all share one type.
                AggFunc::Min | AggFunc::Max => types.non_null().count() <= 1,
            }
        }
    }
}

/// Type sets an expression may evaluate to; `None` marks an expression
/// that can raise (a deferred resolution error).
pub(crate) fn expr_types(expr: &Expr, frames: &TypeFrames) -> Option<TypeSet> {
    match expr {
        Expr::Const(v) => Some(TypeSet::of_value(v)),
        Expr::Deferred(_) => None,
        Expr::Col { depth, index } => Some(
            frames
                .len()
                .checked_sub(1 + depth)
                .and_then(|i| frames.get(i))
                .and_then(|f| f.get(*index))
                .copied()
                .unwrap_or(TypeSet::ALL),
        ),
        // Conservatively error-capable: CASE branch predicates and the
        // NULLIF comparison can raise type errors (and may run subplans),
        // and COALESCE's laziness makes its error behaviour depend on
        // the data. None of the totality-gated rewrites apply to them.
        Expr::Case { .. } | Expr::Coalesce(_) | Expr::Nullif(..) => None,
    }
}

/// `true` iff a comparison between values drawn from `l` and `r` can
/// never hit [`Value::sql_cmp`]'s type-mismatch error: one side is
/// always `NULL` (unknown short-circuits first), or both sides share a
/// single non-null type.
fn cmp_total(l: TypeSet, r: TypeSet) -> bool {
    let (l, r) = (l.non_null(), r.non_null());
    l.is_empty() || r.is_empty() || (l.union(r).count() == 1)
}

/// `true` iff evaluating `pred` can never raise a runtime error, for any
/// row consistent with the type frames. `frames.last()` must be the
/// frame the predicate's depth-0 references resolve against.
pub(crate) fn pred_total(pred: &Pred, frames: &mut TypeFrames, db: &Database) -> bool {
    match pred {
        Pred::True | Pred::False => true,
        Pred::Cmp { left, op: _, right } => {
            match (expr_types(left, frames), expr_types(right, frames)) {
                (Some(l), Some(r)) => cmp_total(l, r),
                _ => false,
            }
        }
        Pred::Like { term, pattern, .. } => {
            match (expr_types(term, frames), expr_types(pattern, frames)) {
                (Some(t), Some(p)) => {
                    let (t, p) = (t.non_null(), p.non_null());
                    t.is_empty()
                        || p.is_empty()
                        || (t.is_subset(TypeSet::STR) && p.is_subset(TypeSet::STR))
                }
                _ => false,
            }
        }
        // User predicates are opaque host functions returning `Result`.
        Pred::User { .. } => false,
        Pred::IsNull { expr, .. } => expr_types(expr, frames).is_some(),
        Pred::IsDistinct { left, right, .. } => {
            expr_types(left, frames).is_some() && expr_types(right, frames).is_some()
        }
        Pred::In { exprs, plan, .. } => {
            let Some(tuple) =
                exprs.iter().map(|e| expr_types(e, frames)).collect::<Option<Vec<_>>>()
            else {
                return false;
            };
            if !plan_total(plan, frames, db) {
                return false;
            }
            // The per-row membership test compares the tuple against the
            // subquery's columns with `=` — those comparisons must be
            // total too.
            let sub = col_types(plan, frames, db);
            tuple.len() == sub.len() && tuple.iter().zip(sub.iter()).all(|(a, b)| cmp_total(*a, *b))
        }
        Pred::Exists { plan, .. } => plan_total(plan, frames, db),
        Pred::And(a, b) | Pred::Or(a, b) => pred_total(a, frames, db) && pred_total(b, frames, db),
        Pred::Not(p) => pred_total(p, frames, db),
    }
}

/// `true` iff executing `plan` can never raise a runtime error (no
/// deferred resolution failures, no type-mismatch comparisons, no user
/// predicates), under the given outer type frames.
pub(crate) fn plan_total(plan: &Plan, frames: &mut TypeFrames, db: &Database) -> bool {
    match plan {
        Plan::Scan { .. } => true,
        Plan::Product { inputs } => inputs.iter().all(|p| plan_total(p, frames, db)),
        Plan::Distinct { input } => plan_total(input, frames, db),
        Plan::Filter { input, pred } => {
            if !plan_total(input, frames, db) {
                return false;
            }
            let types = col_types(input, frames, db);
            frames.push(types);
            let ok = pred_total(pred, frames, db);
            frames.pop();
            ok
        }
        Plan::Project { input, exprs } => {
            if !plan_total(input, frames, db) {
                return false;
            }
            let types = col_types(input, frames, db);
            frames.push(types);
            let ok = exprs.iter().all(|e| expr_types(e, frames).is_some());
            frames.pop();
            ok
        }
        Plan::SetOp { left, right, .. } => {
            plan_total(left, frames, db) && plan_total(right, frames, db)
        }
        // Join keys are plain column references (total by construction).
        Plan::HashJoin { left, right, .. } => {
            plan_total(left, frames, db) && plan_total(right, frames, db)
        }
        // An index lookup evaluates nothing per row — it can only select
        // a subset of the stored rows — so totality reduces to the probe
        // input (and trivially holds for the scan).
        Plan::IndexScan { .. } => true,
        Plan::IndexJoin { left, .. } => plan_total(left, frames, db),
        // Total iff both inputs are and the ON condition is, under the
        // joined-row frame (the padded output types are a superset of
        // the candidate rows ON actually sees, so they are safe here).
        Plan::OuterJoin { left, right, on, .. } => {
            if !plan_total(left, frames, db) || !plan_total(right, frames, db) {
                return false;
            }
            let types = col_types(plan, frames, db);
            frames.push(types);
            let ok = pred_total(on, frames, db);
            frames.pop();
            ok
        }
        Plan::Limit { input, .. } => plan_total(input, frames, db),
        // A sort is total iff its keys resolve (no deferred errors) and
        // each key column is single-typed, so neither the comparison nor
        // the type discipline can raise.
        Plan::Sort { input, keys, .. } | Plan::TopK { input, keys, .. } => {
            if !plan_total(input, frames, db) {
                return false;
            }
            let types = col_types(input, frames, db);
            frames.push(types);
            let ok = keys
                .iter()
                .all(|k| expr_types(&k.expr, frames).is_some_and(|t| t.non_null().count() <= 1));
            frames.pop();
            ok
        }
        Plan::GroupAggregate { input, keys, aggs, having, output } => {
            if !plan_total(input, frames, db) {
                return false;
            }
            let inner = col_types(input, frames, db);
            frames.push(inner);
            let per_row = keys.iter().all(|e| expr_types(e, frames).is_some())
                && aggs.iter().all(|spec| agg_total(spec, frames));
            frames.pop();
            if !per_row {
                return false;
            }
            let group = group_frame_types(input, keys, aggs, frames, db);
            frames.push(group);
            let ok = having.as_ref().is_none_or(|p| pred_total(p, frames, db))
                && output.iter().all(|e| expr_types(e, frames).is_some());
            frames.pop();
            ok
        }
    }
}

/// `true` iff the subplan reads any correlation frame outside itself.
/// `local` counts the frames pushed *within* the subplan at the current
/// syntactic position (0 at the subplan root): a column reference with
/// `depth >= local` escapes to an enclosing block's row.
pub(crate) fn plan_is_correlated(plan: &Plan, local: usize) -> bool {
    match plan {
        Plan::Scan { .. } | Plan::IndexScan { .. } => false,
        Plan::IndexJoin { left, .. } => plan_is_correlated(left, local),
        Plan::Product { inputs } => inputs.iter().any(|p| plan_is_correlated(p, local)),
        Plan::Distinct { input } => plan_is_correlated(input, local),
        Plan::Filter { input, pred } => {
            plan_is_correlated(input, local) || pred_is_correlated(pred, local + 1)
        }
        Plan::Project { input, exprs } => {
            plan_is_correlated(input, local) || exprs.iter().any(|e| expr_escapes(e, local + 1))
        }
        Plan::SetOp { left, right, .. } | Plan::HashJoin { left, right, .. } => {
            plan_is_correlated(left, local) || plan_is_correlated(right, local)
        }
        // ON runs under the joined-row frame, one extra local frame.
        Plan::OuterJoin { left, right, on, .. } => {
            plan_is_correlated(left, local)
                || plan_is_correlated(right, local)
                || pred_is_correlated(on, local + 1)
        }
        Plan::Limit { input, .. } => plan_is_correlated(input, local),
        // Sort keys run under the output-row frame, one extra local
        // frame like `Project` expressions.
        Plan::Sort { input, keys, .. } | Plan::TopK { input, keys, .. } => {
            plan_is_correlated(input, local)
                || keys.iter().any(|k| expr_escapes(&k.expr, local + 1))
        }
        // Keys and aggregate arguments run under the input-row frame;
        // HAVING and the output run under the group frame — one extra
        // local frame either way.
        Plan::GroupAggregate { input, keys, aggs, having, output } => {
            plan_is_correlated(input, local)
                || keys.iter().any(|e| expr_escapes(e, local + 1))
                || aggs.iter().any(|s| s.arg.as_ref().is_some_and(|e| expr_escapes(e, local + 1)))
                || having.as_ref().is_some_and(|p| pred_is_correlated(p, local + 1))
                || output.iter().any(|e| expr_escapes(e, local + 1))
        }
    }
}

fn pred_is_correlated(pred: &Pred, local: usize) -> bool {
    match pred {
        Pred::True | Pred::False => false,
        Pred::Cmp { left, right, .. } | Pred::IsDistinct { left, right, .. } => {
            expr_escapes(left, local) || expr_escapes(right, local)
        }
        Pred::Like { term, pattern, .. } => {
            expr_escapes(term, local) || expr_escapes(pattern, local)
        }
        Pred::User { args, .. } => args.iter().any(|e| expr_escapes(e, local)),
        Pred::IsNull { expr, .. } => expr_escapes(expr, local),
        Pred::In { exprs, plan, .. } => {
            exprs.iter().any(|e| expr_escapes(e, local)) || plan_is_correlated(plan, local)
        }
        Pred::Exists { plan, .. } => plan_is_correlated(plan, local),
        Pred::And(a, b) | Pred::Or(a, b) => {
            pred_is_correlated(a, local) || pred_is_correlated(b, local)
        }
        Pred::Not(p) => pred_is_correlated(p, local),
    }
}

fn expr_escapes(expr: &Expr, local: usize) -> bool {
    match expr {
        Expr::Col { depth, .. } => *depth >= local,
        Expr::Const(_) | Expr::Deferred(_) => false,
        // Combinators evaluate in place — no frame of their own.
        Expr::Case { branches, else_ } => {
            branches.iter().any(|(p, e)| pred_is_correlated(p, local) || expr_escapes(e, local))
                || else_.as_ref().is_some_and(|e| expr_escapes(e, local))
        }
        Expr::Coalesce(exprs) => exprs.iter().any(|e| expr_escapes(e, local)),
        Expr::Nullif(a, b) => expr_escapes(a, local) || expr_escapes(b, local),
    }
}

/// `true` iff the plan invokes any user predicate (an opaque, possibly
/// non-deterministic host function): such plans are never cached.
pub(crate) fn plan_has_user_pred(plan: &Plan) -> bool {
    match plan {
        Plan::Scan { .. } | Plan::IndexScan { .. } => false,
        Plan::IndexJoin { left, .. } => plan_has_user_pred(left),
        Plan::Product { inputs } => inputs.iter().any(plan_has_user_pred),
        Plan::Distinct { input } => plan_has_user_pred(input),
        Plan::Filter { input, pred } => plan_has_user_pred(input) || pred_has_user_pred(pred),
        Plan::Project { input, .. } => plan_has_user_pred(input),
        Plan::SetOp { left, right, .. } | Plan::HashJoin { left, right, .. } => {
            plan_has_user_pred(left) || plan_has_user_pred(right)
        }
        Plan::OuterJoin { left, right, on, .. } => {
            plan_has_user_pred(left) || plan_has_user_pred(right) || pred_has_user_pred(on)
        }
        Plan::GroupAggregate { input, having, .. } => {
            plan_has_user_pred(input) || having.as_ref().is_some_and(pred_has_user_pred)
        }
        Plan::Sort { input, .. } | Plan::Limit { input, .. } | Plan::TopK { input, .. } => {
            plan_has_user_pred(input)
        }
    }
}

fn pred_has_user_pred(pred: &Pred) -> bool {
    match pred {
        Pred::User { .. } => true,
        Pred::In { exprs, plan, .. } => {
            exprs.iter().any(expr_has_user_pred) || plan_has_user_pred(plan)
        }
        Pred::Exists { plan, .. } => plan_has_user_pred(plan),
        Pred::And(a, b) | Pred::Or(a, b) => pred_has_user_pred(a) || pred_has_user_pred(b),
        Pred::Not(p) => pred_has_user_pred(p),
        Pred::Cmp { left, right, .. } | Pred::IsDistinct { left, right, .. } => {
            expr_has_user_pred(left) || expr_has_user_pred(right)
        }
        Pred::Like { term, pattern, .. } => expr_has_user_pred(term) || expr_has_user_pred(pattern),
        Pred::IsNull { expr, .. } => expr_has_user_pred(expr),
        Pred::True | Pred::False => false,
    }
}

/// Expressions can nest predicates (and through them, subplans) inside
/// `CASE` branches — the walk must descend into them.
fn expr_has_user_pred(expr: &Expr) -> bool {
    match expr {
        Expr::Const(_) | Expr::Col { .. } | Expr::Deferred(_) => false,
        Expr::Case { branches, else_ } => {
            branches.iter().any(|(p, e)| pred_has_user_pred(p) || expr_has_user_pred(e))
                || else_.as_ref().is_some_and(|e| expr_has_user_pred(e))
        }
        Expr::Coalesce(exprs) => exprs.iter().any(expr_has_user_pred),
        Expr::Nullif(a, b) => expr_has_user_pred(a) || expr_has_user_pred(b),
    }
}
