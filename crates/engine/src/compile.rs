//! Query compilation: annotated AST → positional physical plan.
//!
//! This is the engine's analogue of an RDBMS's bind/plan phase. All full
//! names are resolved here, against a compile-time stack of scopes that
//! mirrors the runtime correlation stack; ambiguous and unbound
//! references are rejected *before execution*, which is exactly how the
//! real systems the paper validates against behave (Example 2, §4).
//!
//! Compilation is executor-agnostic: the same [`Prepared`] plan feeds
//! the row engine and the vectorized executor, and the batch-vs-row
//! routing happens afterwards (`optimize::route_batches`), so nothing
//! here needs to know which executor will run the plan.

use std::collections::HashSet;

use sqlsem_core::ast::{
    Aggregate, Condition, FromExpr, FromItem, Query, SelectList, SelectQuery, TableRef, Term,
};
use sqlsem_core::{
    AggFunc, Database, Dialect, EvalError, FullName, Name, STAR_EXISTS_COLUMN, STAR_EXISTS_CONSTANT,
};

use crate::plan::{AggSpec, Expr, Plan, Pred, Prepared, SortKey};

/// Compiles a closed annotated query for execution over `db`.
pub fn compile(query: &Query, db: &Database, dialect: Dialect) -> Result<Prepared, EvalError> {
    let mut c = Compiler { db, dialect, stack: Vec::new(), group: None };
    c.query(query, false)
}

/// The grouped-resolution context of the block currently being compiled:
/// active exactly while its `SELECT` list and `HAVING` clause are
/// translated, when the top frame is the *group frame* `keys ++ aggs`.
struct GroupContext {
    /// The `GROUP BY` key terms, in clause order (frame positions
    /// `0..keys.len()`).
    keys: Vec<Term>,
    /// The block's aggregates, deduplicated (frame positions
    /// `keys.len()..`).
    aggs: Vec<Aggregate>,
    /// Aliases bound by the block's own `FROM` clause — references to
    /// them that are not keys are the "must appear in GROUP BY" error.
    local_aliases: HashSet<Name>,
}

struct Compiler<'a> {
    db: &'a Database,
    dialect: Dialect,
    /// Compile-time images of the runtime frames: innermost scope last.
    stack: Vec<Vec<FullName>>,
    /// Set while compiling the `SELECT`/`HAVING` of a grouped block.
    group: Option<GroupContext>,
}

impl Compiler<'_> {
    fn query(&mut self, query: &Query, exists: bool) -> Result<Prepared, EvalError> {
        match query {
            Query::Select(s) => self.select(s, exists),
            Query::SetOp { op, all, left, right } => {
                let l = self.query(left, false)?;
                let r = self.query(right, false)?;
                if l.columns.len() != r.columns.len() {
                    return Err(EvalError::ArityMismatch {
                        context: "set operation",
                        left: l.columns.len(),
                        right: r.columns.len(),
                    });
                }
                Ok(Prepared {
                    plan: Plan::SetOp {
                        op: *op,
                        all: *all,
                        left: Box::new(l.plan),
                        right: Box::new(r.plan),
                    },
                    columns: l.columns,
                    cache_slots: 0,
                })
            }
        }
    }

    fn select(&mut self, s: &SelectQuery, exists: bool) -> Result<Prepared, EvalError> {
        // Each block's grouped context is its own; a subquery compiled
        // inside a grouped SELECT/HAVING starts ungrouped.
        let saved_group = self.group.take();
        let result = self.select_inner(s, exists);
        self.group = saved_group;
        result
    }

    fn select_inner(&mut self, s: &SelectQuery, exists: bool) -> Result<Prepared, EvalError> {
        if s.from.is_empty() {
            return Err(EvalError::malformed("FROM clause must reference at least one table"));
        }
        if s.is_grouped() && s.select.is_star() {
            // Rejected before data access, like the unknown-table and
            // arity errors: there is no meaningful star over groups.
            return Err(EvalError::malformed(
                "SELECT * cannot be combined with GROUP BY, HAVING or aggregates",
            ));
        }
        sqlsem_core::sig::check_distinct_aliases(&s.from)?;

        // Compile FROM inputs in the *enclosing* scopes only.
        let mut inputs = Vec::with_capacity(s.from.len());
        let mut scope: Vec<FullName> = Vec::new();
        for fe in &s.from {
            let (plan, fe_scope) = self.from_expr(fe)?;
            scope.extend(fe_scope);
            inputs.push(plan);
        }
        let product = if inputs.len() == 1 {
            inputs.pop().expect("one input")
        } else {
            Plan::Product { inputs }
        };

        self.stack.push(scope);
        let result = if s.is_grouped() {
            self.grouped_tail(s, product)
        } else {
            self.select_tail(s, product, exists)
        };
        self.stack.pop();
        result
    }

    /// Compiles a grouped block: `FROM`–`WHERE` as usual, then a
    /// [`Plan::GroupAggregate`] whose `SELECT`/`HAVING` expressions are
    /// resolved against the *group frame* `keys ++ aggs` — which also
    /// replaces the block's scope on the compile-time stack, so
    /// correlated references from `HAVING` subqueries see exactly the
    /// names the grouped environment binds (the `GROUP BY` keys).
    fn grouped_tail(&mut self, s: &SelectQuery, product: Plan) -> Result<Prepared, EvalError> {
        let pred = self.condition(&s.where_)?;
        let filtered = match pred {
            Pred::True => product,
            pred => Plan::Filter { input: Box::new(product), pred },
        };

        // Keys and aggregate arguments are per-row expressions over the
        // block's own scope (still the top frame here). Aggregates in
        // either position are misplaced and rejected by `term`.
        let keys: Vec<Expr> = s.group_by.iter().map(|t| self.term(t)).collect::<Result<_, _>>()?;
        let aggs_ast: Vec<Aggregate> = s.aggregates().into_iter().cloned().collect();
        let mut aggs = Vec::with_capacity(aggs_ast.len());
        for a in &aggs_ast {
            let arg = match &a.arg {
                None if a.func != AggFunc::Count => {
                    // The semantics raises this per group; groups always
                    // process eagerly, so a compile-time rejection for
                    // the static dialects is faithful, and the Standard
                    // dialect defers it into the finalizer.
                    if self.dialect.checks_ambiguity_statically() {
                        return Err(EvalError::malformed("only COUNT may be applied to *"));
                    }
                    None
                }
                None => None,
                Some(t) => Some(self.term(t)?),
            };
            aggs.push(AggSpec { func: a.func, distinct: a.distinct, arg });
        }

        // Swap the block's scope for the group frame's name image: the
        // named keys at their key positions; aggregate (and duplicate-
        // key) positions get unreferencable placeholders.
        let mut group_scope: Vec<FullName> = Vec::with_capacity(keys.len() + aggs.len());
        for (i, key) in s.group_by.iter().enumerate() {
            let name = match key {
                Term::Col(n) if !group_scope.contains(n) => n.clone(),
                _ => placeholder(i),
            };
            group_scope.push(name);
        }
        for i in 0..aggs.len() {
            group_scope.push(placeholder(s.group_by.len() + i));
        }
        let local_aliases: HashSet<Name> =
            s.from.iter().flat_map(FromExpr::leaves).map(|f| f.alias.clone()).collect();
        *self.stack.last_mut().expect("local scope pushed") = group_scope;
        self.group = Some(GroupContext { keys: s.group_by.clone(), aggs: aggs_ast, local_aliases });

        let SelectList::Items(items) = &s.select else {
            unreachable!("grouped star rejected above");
        };
        if items.is_empty() {
            return Err(EvalError::ZeroArity);
        }
        let mut output = Vec::with_capacity(items.len());
        let mut columns = Vec::with_capacity(items.len());
        for item in items {
            output.push(self.term(&item.term)?);
            columns.push(item.alias.clone());
        }
        let having = match &s.having {
            Condition::True => None,
            cond => Some(self.condition(cond)?),
        };
        self.group = None;

        let plan = Plan::GroupAggregate { input: Box::new(filtered), keys, aggs, having, output };
        let plan = if s.distinct { Plan::Distinct { input: Box::new(plan) } } else { plan };
        let plan = self.attach_ordering(s, plan, &columns)?;
        Ok(Prepared { plan, columns, cache_slots: 0 })
    }

    /// The list layer: wraps the block's bag plan with `Sort` (when
    /// `ORDER BY` is present) and `Limit` (when `LIMIT`/`OFFSET` are).
    /// Keys resolve against the block's *output* columns (SQL-92);
    /// resolution failures are hard compile errors for the static
    /// dialects and deferred into the `Sort` node for the Standard,
    /// which raises them only when the block is actually evaluated.
    fn attach_ordering(
        &mut self,
        s: &SelectQuery,
        plan: Plan,
        columns: &[Name],
    ) -> Result<Plan, EvalError> {
        if !s.is_ordered() {
            return Ok(plan);
        }
        let plan = if s.order_by.is_empty() {
            plan
        } else {
            let mut keys = Vec::with_capacity(s.order_by.len());
            for key in &s.order_by {
                let expr = match sqlsem_core::order::resolve_key(&key.column, columns) {
                    Ok(index) => Expr::Col { depth: 0, index },
                    Err(err) => self.fail(err)?,
                };
                keys.push(SortKey {
                    expr,
                    desc: key.desc,
                    nulls_first: key.nulls_first_effective(),
                });
            }
            Plan::Sort { input: Box::new(plan), keys }
        };
        Ok(if s.limit.is_some() || s.offset.is_some() {
            Plan::Limit { input: Box::new(plan), limit: s.limit, offset: s.offset.unwrap_or(0) }
        } else {
            plan
        })
    }

    /// Everything after the FROM clause: WHERE filter and SELECT
    /// projection, compiled with the local scope pushed.
    fn select_tail(
        &mut self,
        s: &SelectQuery,
        product: Plan,
        exists: bool,
    ) -> Result<Prepared, EvalError> {
        let pred = self.condition(&s.where_)?;
        let filtered = match pred {
            Pred::True => product,
            pred => Plan::Filter { input: Box::new(product), pred },
        };

        let scope = self.stack.last().expect("local scope pushed").clone();
        let (exprs, columns): (Vec<Expr>, Vec<Name>) = match &s.select {
            SelectList::Items(items) => {
                if items.is_empty() {
                    return Err(EvalError::ZeroArity);
                }
                let mut exprs = Vec::with_capacity(items.len());
                let mut columns = Vec::with_capacity(items.len());
                for item in items {
                    exprs.push(self.term(&item.term)?);
                    columns.push(item.alias.clone());
                }
                (exprs, columns)
            }
            SelectList::Star if self.dialect.star_is_compositional() => {
                // PostgreSQL: pass the product row through unchanged.
                let exprs = (0..scope.len()).map(|i| Expr::Col { depth: 0, index: i }).collect();
                (exprs, scope.iter().map(|n| n.column.clone()).collect())
            }
            SelectList::Star if exists => {
                // The Figure 5 x = 1 rule: an arbitrary constant.
                (vec![Expr::Const(STAR_EXISTS_CONSTANT)], vec![Name::new(STAR_EXISTS_COLUMN)])
            }
            SelectList::Star => {
                // Standard/Oracle: * expands to a reference to every full
                // name of the local scope; repetitions are ambiguous.
                let mut exprs = Vec::with_capacity(scope.len());
                for name in &scope {
                    exprs.push(self.resolve(name)?);
                }
                (exprs, scope.iter().map(|n| n.column.clone()).collect())
            }
        };

        let projected = Plan::Project { input: Box::new(filtered), exprs };
        let plan =
            if s.distinct { Plan::Distinct { input: Box::new(projected) } } else { projected };
        let plan = self.attach_ordering(s, plan, &columns)?;
        Ok(Prepared { plan, columns, cache_slots: 0 })
    }

    /// Compiles one `FROM`-clause entry — a plain item or a join tree —
    /// returning its plan and the full names its row contributes to the
    /// block scope. `ON` conditions are compiled with the joined scope
    /// (left ++ right) temporarily pushed as the innermost frame, so
    /// depth-0 references inside them bind the candidate joined row and
    /// correlated references deepen by one — exactly how the executor
    /// evaluates them at run time.
    #[allow(clippy::wrong_self_convention)]
    fn from_expr(&mut self, fe: &FromExpr) -> Result<(Plan, Vec<FullName>), EvalError> {
        match fe {
            FromExpr::Item(item) => {
                let (plan, columns) = self.from_item(item)?;
                Ok((plan, item.alias.prefix(&columns)))
            }
            FromExpr::Join { kind, left, right, on } => {
                let (lp, lscope) = self.from_expr(left)?;
                let (rp, rscope) = self.from_expr(right)?;
                let mut scope = lscope;
                scope.extend(rscope);
                self.stack.push(scope);
                let on = self.condition(on);
                let scope = self.stack.pop().expect("joined scope pushed above");
                Ok((
                    Plan::OuterJoin {
                        kind: *kind,
                        left: Box::new(lp),
                        right: Box::new(rp),
                        on: on?,
                    },
                    scope,
                ))
            }
        }
    }

    // `from_*` here is the FROM clause, not a conversion constructor.
    #[allow(clippy::wrong_self_convention)]
    fn from_item(&mut self, item: &FromItem) -> Result<(Plan, Vec<Name>), EvalError> {
        let (plan, natural) = match &item.table {
            TableRef::Base(r) => {
                let Some(attrs) = self.db.schema().attributes(r) else {
                    return Err(EvalError::UnknownTable(r.clone()));
                };
                (Plan::Scan { table: r.clone() }, attrs.to_vec())
            }
            TableRef::Query(q) => {
                let prepared = self.query(q, false)?;
                (prepared.plan, prepared.columns)
            }
        };
        match &item.columns {
            None => Ok((plan, natural)),
            Some(renamed) => {
                if renamed.len() != natural.len() {
                    return Err(EvalError::ColumnRenameArity {
                        alias: item.alias.clone(),
                        expected: natural.len(),
                        got: renamed.len(),
                    });
                }
                // Renaming only changes compile-time names, not the plan.
                Ok((plan, renamed.clone()))
            }
        }
    }

    fn condition(&mut self, cond: &Condition) -> Result<Pred, EvalError> {
        Ok(match cond {
            Condition::True => Pred::True,
            Condition::False => Pred::False,
            Condition::Cmp { left, op, right } => {
                Pred::Cmp { left: self.term(left)?, op: *op, right: self.term(right)? }
            }
            Condition::Like { term, pattern, negated } => Pred::Like {
                term: self.term(term)?,
                pattern: self.term(pattern)?,
                negated: *negated,
            },
            Condition::Pred { name, args } => Pred::User {
                name: name.clone(),
                args: args.iter().map(|t| self.term(t)).collect::<Result<_, _>>()?,
            },
            Condition::IsNull { term, negated } => {
                Pred::IsNull { expr: self.term(term)?, negated: *negated }
            }
            Condition::IsDistinct { left, right, negated } => Pred::IsDistinct {
                left: self.term(left)?,
                right: self.term(right)?,
                negated: *negated,
            },
            Condition::In { terms, query, negated } => {
                let exprs: Vec<Expr> =
                    terms.iter().map(|t| self.term(t)).collect::<Result<_, _>>()?;
                let sub = self.query(query, false)?;
                if sub.columns.len() != exprs.len() {
                    return Err(EvalError::ArityMismatch {
                        context: "IN",
                        left: exprs.len(),
                        right: sub.columns.len(),
                    });
                }
                Pred::In { exprs, plan: Box::new(sub.plan), negated: *negated, cache: None }
            }
            Condition::Exists(query) => {
                let sub = self.query(query, true)?;
                Pred::Exists { plan: Box::new(sub.plan), early_exit: false, cache: None }
            }
            Condition::And(a, b) => {
                Pred::And(Box::new(self.condition(a)?), Box::new(self.condition(b)?))
            }
            Condition::Or(a, b) => {
                Pred::Or(Box::new(self.condition(a)?), Box::new(self.condition(b)?))
            }
            Condition::Not(c) => Pred::Not(Box::new(self.condition(c)?)),
        })
    }

    fn term(&mut self, term: &Term) -> Result<Expr, EvalError> {
        if let Some(group) = &self.group {
            // Grouped resolution: a term that *is* one of the GROUP BY
            // keys denotes the group frame's key column; an aggregate
            // denotes its precomputed column; any other reference to a
            // FROM-bound alias is the "must appear in GROUP BY" error.
            if let Some(i) = group.keys.iter().position(|k| k == term) {
                return Ok(Expr::Col { depth: 0, index: i });
            }
            match term {
                Term::Agg(a) => {
                    let i = group
                        .aggs
                        .iter()
                        .position(|seen| seen == &**a)
                        .expect("block aggregates were collected before compilation");
                    return Ok(Expr::Col { depth: 0, index: group.keys.len() + i });
                }
                Term::Col(n) if group.local_aliases.contains(&n.table) => {
                    return self.fail(EvalError::UngroupedColumn(n.clone()));
                }
                _ => {}
            }
        }
        match term {
            Term::Const(v) => Ok(Expr::Const(v.clone())),
            Term::Col(name) => self.resolve(name),
            Term::Case { branches, else_ } => {
                let mut compiled = Vec::with_capacity(branches.len());
                for (cond, result) in branches {
                    compiled.push((self.condition(cond)?, self.term(result)?));
                }
                let else_ = match else_ {
                    Some(t) => Some(Box::new(self.term(t)?)),
                    None => None,
                };
                Ok(Expr::Case { branches: compiled, else_ })
            }
            Term::Coalesce(terms) => {
                Ok(Expr::Coalesce(terms.iter().map(|t| self.term(t)).collect::<Result<_, _>>()?))
            }
            Term::Nullif(a, b) => {
                Ok(Expr::Nullif(Box::new(self.term(a)?), Box::new(self.term(b)?)))
            }
            // Aggregates outside a grouped SELECT/HAVING: WHERE clauses,
            // GROUP BY keys, nested aggregate arguments.
            Term::Agg(_) => self.fail(EvalError::MisplacedAggregate("this context")),
        }
    }

    /// A resolution failure: a hard compile error for the dialects that
    /// check statically, a deferred evaluation-time error otherwise
    /// (mirroring [`Compiler::resolve`]).
    fn fail(&self, err: EvalError) -> Result<Expr, EvalError> {
        if self.dialect.checks_ambiguity_statically() {
            Err(err)
        } else {
            Ok(Expr::Deferred(err))
        }
    }

    /// Positional resolution: the innermost scope containing the full
    /// name wins; multiple positions there make the reference ambiguous.
    ///
    /// Resolution failures are compile-time errors for the dialects that
    /// behave like real systems (PostgreSQL, Oracle); under the Standard
    /// dialect they are *deferred* into the plan, because Figures 4–7
    /// raise them only when the environment is actually consulted.
    fn resolve(&self, name: &FullName) -> Result<Expr, EvalError> {
        let failure = 'search: {
            for (depth, scope) in self.stack.iter().rev().enumerate() {
                let mut positions = scope.iter().enumerate().filter(|(_, n)| *n == name);
                let Some((index, _)) = positions.next() else { continue };
                if positions.next().is_some() {
                    break 'search EvalError::AmbiguousReference(name.clone());
                }
                return Ok(Expr::Col { depth, index });
            }
            EvalError::UnboundReference(name.clone())
        };
        if self.dialect.checks_ambiguity_statically() {
            Err(failure)
        } else {
            Ok(Expr::Deferred(failure))
        }
    }
}

/// An unreferencable full name for group-frame positions that carry no
/// name (aggregates, constant or duplicate keys). The empty alias cannot
/// be produced by the lexer, so no query term can resolve to it.
fn placeholder(position: usize) -> FullName {
    FullName::new(Name::new(""), Name::new(format!("#{position}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlsem_core::ast::{SelectList, SelectQuery};
    use sqlsem_core::{Schema, Value};

    fn db() -> Database {
        let schema = Schema::builder().table("R", ["A", "B"]).table("S", ["A"]).build().unwrap();
        Database::new(schema)
    }

    #[test]
    fn resolves_positionally_within_the_block() {
        // SELECT X.B AS B, Y.A AS A FROM R AS X, S AS Y → positions 1, 2.
        let q = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("X", "B"), "B"), (Term::col("Y", "A"), "A")]),
            vec![FromItem::base("R", "X"), FromItem::base("S", "Y")],
        ));
        let db = db();
        let p = compile(&q, &db, Dialect::Standard).unwrap();
        let Plan::Project { exprs, .. } = &p.plan else { panic!("{:?}", p.plan) };
        assert_eq!(exprs[0], Expr::Col { depth: 0, index: 1 });
        assert_eq!(exprs[1], Expr::Col { depth: 0, index: 2 });
    }

    #[test]
    fn correlated_references_get_positive_depth() {
        // SELECT R.A AS A FROM R AS R WHERE EXISTS
        //   (SELECT * FROM S AS S WHERE S.A = R.A)
        let sub = Query::Select(
            SelectQuery::new(SelectList::Star, vec![FromItem::base("S", "S")])
                .filter(Condition::eq(Term::col("S", "A"), Term::col("R", "A"))),
        );
        let q = Query::Select(
            SelectQuery::new(
                SelectList::items([(Term::col("R", "A"), "A")]),
                vec![FromItem::base("R", "R")],
            )
            .filter(Condition::exists(sub)),
        );
        let dbv = db();
        let p = compile(&q, &dbv, Dialect::Standard).unwrap();
        // Dig out the inner Filter's comparison.
        let Plan::Project { input, .. } = &p.plan else { panic!() };
        let Plan::Filter { pred: Pred::Exists { plan: sub, .. }, .. } = &**input else { panic!() };
        let Plan::Project { input: sub_in, exprs } = &**sub else { panic!() };
        // * under EXISTS became the arbitrary constant.
        assert_eq!(exprs, &vec![Expr::Const(Value::Int(1))]);
        let Plan::Filter { pred, .. } = &**sub_in else { panic!() };
        let Pred::Cmp { left, right, .. } = pred else { panic!() };
        assert_eq!(left, &Expr::Col { depth: 0, index: 0 }); // S.A, inner scope
        assert_eq!(right, &Expr::Col { depth: 1, index: 0 }); // R.A, one up
    }

    #[test]
    fn ambiguous_star_rejected_at_compile_time_on_oracle_deferred_on_standard() {
        let inner = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A"), (Term::col("R", "A"), "A")]),
            vec![FromItem::base("R", "R")],
        ));
        let q =
            Query::Select(SelectQuery::new(SelectList::Star, vec![FromItem::subquery(inner, "T")]));
        let dbv = db();
        // Oracle: hard compile error.
        assert!(compile(&q, &dbv, Dialect::Oracle).unwrap_err().is_ambiguity());
        // Standard: compiles, but the ambiguity is planted in the plan
        // (Figures 4–7 raise it only when the environment is consulted).
        let p = compile(&q, &dbv, Dialect::Standard).unwrap();
        let Plan::Project { exprs, .. } = &p.plan else { panic!("{:?}", p.plan) };
        assert!(exprs.iter().any(|e| matches!(e, Expr::Deferred(err) if err.is_ambiguity())));
        // PostgreSQL passes the rows through without dereferencing.
        assert!(compile(&q, &dbv, Dialect::PostgreSql).is_ok());
    }

    #[test]
    fn true_where_clause_elides_filter() {
        let q = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        let dbv = db();
        let p = compile(&q, &dbv, Dialect::Standard).unwrap();
        let Plan::Project { input, .. } = &p.plan else { panic!() };
        assert!(matches!(**input, Plan::Scan { .. }));
    }

    #[test]
    fn unknown_table_and_unbound_reference_error() {
        let dbv = db();
        let q = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("Z", "A"), "A")]),
            vec![FromItem::base("Z", "Z")],
        ));
        assert!(matches!(
            compile(&q, &dbv, Dialect::Standard).unwrap_err(),
            EvalError::UnknownTable(_)
        ));
        let q = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("Q", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        // Static dialects reject unbound references at compile time…
        assert!(matches!(
            compile(&q, &dbv, Dialect::Oracle).unwrap_err(),
            EvalError::UnboundReference(_)
        ));
        // …the Standard dialect defers them to evaluation.
        let p = compile(&q, &dbv, Dialect::Standard).unwrap();
        let Plan::Project { exprs, .. } = &p.plan else { panic!() };
        assert!(matches!(&exprs[0], Expr::Deferred(EvalError::UnboundReference(_))));
    }

    #[test]
    fn set_op_arity_mismatch_rejected() {
        let one = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("S", "A"), "A")]),
            vec![FromItem::base("S", "S")],
        ));
        let two = Query::Select(SelectQuery::new(
            SelectList::items([(Term::col("R", "A"), "A"), (Term::col("R", "B"), "B")]),
            vec![FromItem::base("R", "R")],
        ));
        let dbv = db();
        assert!(matches!(
            compile(&one.union(two, true), &dbv, Dialect::Standard).unwrap_err(),
            EvalError::ArityMismatch { .. }
        ));
    }
}
