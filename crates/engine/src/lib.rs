//! # sqlsem-engine
//!
//! An independent, RDBMS-style implementation of basic SQL, standing in
//! for the PostgreSQL and Oracle instances the paper validates its
//! semantics against (§4).
//!
//! The paper's validation is *differential*: the formal semantics is
//! trusted because an independent implementation — a real database —
//! always produces the same answers on 100,000 random queries. Real
//! RDBMSs are not available to this reproduction, so this crate plays
//! their role. To make the comparison meaningful, the engine shares no
//! evaluation code with the denotational interpreter in `sqlsem-core`:
//!
//! * names are resolved **once, at compile time**, to positional
//!   `(depth, index)` references — not looked up in per-row environments;
//! * queries run as **physical plans** (scan → product → filter →
//!   project → distinct / set-op) over row vectors;
//! * set operations use hash-count algorithms rather than the core
//!   crate's list subtraction;
//! * ambiguous and unbound references are **compile-time errors**, as in
//!   the real systems (Example 2's behaviour on Oracle).
//!
//! Per-dialect behaviour matches §4: [`Dialect::PostgreSql`] gives `*`
//! the compositional semantics, [`Dialect::Oracle`] (and
//! [`Dialect::Standard`]) expand `*` and reject ambiguous expansions
//! outside `EXISTS`.
//!
//! ```
//! use sqlsem_core::{table, Database, Dialect, Schema, Value};
//! use sqlsem_engine::Engine;
//! use sqlsem_parser::compile;
//!
//! let schema = Schema::builder().table("R", ["A"]).table("S", ["A"]).build().unwrap();
//! let mut db = Database::new(schema.clone());
//! db.replace_table("R", table! { ["A"]; [1], [Value::Null] }).unwrap();
//! db.replace_table("S", table! { ["A"]; [Value::Null] }).unwrap();
//!
//! let q = compile("SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", &schema)
//!     .unwrap();
//! let out = Engine::new(&db).execute(&q).unwrap();
//! assert!(out.is_empty()); // same verdict as the formal semantics
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
pub mod backend;
pub mod batch;
pub mod compile;
pub mod exec;
pub mod explain;
pub mod optimize;
pub mod plan;
pub mod vexec;

use sqlsem_core::{Database, Dialect, EvalError, LogicMode, PredicateRegistry, Query, Table};

pub use backend::{persistent_database, Backend, QueryBackend};
pub use batch::{Batch, Column, TruthVec, DEFAULT_BATCH_SIZE};
pub use compile::compile as compile_plan;
pub use exec::Executor;
pub use explain::{explain, explain_vectorized};
pub use optimize::optimize;
pub use plan::{Expr, JoinKey, Plan, Pred, Prepared};
pub use vexec::VecExecutor;

/// The adaptive dispatcher's row-count cutover: plans whose largest
/// referenced base table holds fewer rows than this run on the row
/// engine (batch setup overhead dominates small inputs — see
/// `tpch_calibration`, which records the per-backend basis for this
/// number); everything at or above it runs vectorized.
pub const ADAPTIVE_ROW_CUTOFF: usize = 256;

/// The engine facade: a database plus dialect/logic configuration,
/// mirroring [`sqlsem_core::Evaluator`]'s interface so the validation
/// harness can drive both uniformly.
#[derive(Clone, Debug)]
pub struct Engine<'a> {
    db: &'a Database,
    dialect: Dialect,
    logic: LogicMode,
    preds: PredicateRegistry,
    optimize: bool,
    vectorized: bool,
    adaptive: bool,
    batch_size: usize,
    threads: usize,
}

impl<'a> Engine<'a> {
    /// An engine with Standard dialect, three-valued logic and the
    /// optimizer enabled (row-at-a-time execution; see
    /// [`Engine::with_vectorized`] for the columnar executor and
    /// [`Engine::with_adaptive`] for per-query dispatch between the two).
    pub fn new(db: &'a Database) -> Self {
        Engine {
            db,
            dialect: Dialect::Standard,
            logic: LogicMode::ThreeValued,
            preds: PredicateRegistry::new(),
            optimize: true,
            vectorized: false,
            adaptive: false,
            batch_size: DEFAULT_BATCH_SIZE,
            threads: 0,
        }
    }

    /// Selects the dialect (§4 adjustments).
    #[must_use]
    pub fn with_dialect(mut self, dialect: Dialect) -> Self {
        self.dialect = dialect;
        self
    }

    /// Selects the logic mode (§6).
    #[must_use]
    pub fn with_logic(mut self, logic: LogicMode) -> Self {
        self.logic = logic;
        self
    }

    /// Provides user predicates.
    #[must_use]
    pub fn with_predicates(mut self, preds: PredicateRegistry) -> Self {
        self.preds = preds;
        self
    }

    /// Enables or disables the optimizing pass ([`optimize()`](optimize::optimize)): predicate
    /// pushdown, hash equi-joins, subquery caching and `EXISTS` early
    /// exit. On by default; turning it off gives the structurally naive
    /// plan, which is the baseline the optimizer is differentially
    /// validated against.
    #[must_use]
    pub fn with_optimizations(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }

    /// Selects batch-at-a-time execution through the columnar executor
    /// ([`VecExecutor`]) instead of the row-at-a-time [`Executor`]. Off
    /// by default. The plans are identical — only the execution strategy
    /// changes, and the vectorized path is differentially validated to
    /// coincide with the row engine on rows, multiplicities and error
    /// verdicts.
    #[must_use]
    pub fn with_vectorized(mut self, vectorized: bool) -> Self {
        self.vectorized = vectorized;
        self
    }

    /// Selects *adaptive* dispatch: each query runs through the
    /// vectorized executor when its largest referenced base table has at
    /// least [`ADAPTIVE_ROW_CUTOFF`] rows, and through the row engine
    /// below that (where per-query batch setup costs more than it
    /// saves). Off by default; takes precedence over
    /// [`Engine::with_vectorized`] only in the sense that the row engine
    /// may be chosen even when `vectorized` is unset.
    #[must_use]
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Sets the vectorized executor's batch granularity (rows per
    /// columnar batch; clamped to at least 1). Only observable through
    /// timing — every batch size computes the same results.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Sets the vectorized executor's morsel worker count: `0` (the
    /// default) means one worker per available CPU, `1` pins every stage
    /// to the calling thread. Only observable through timing — morsel
    /// results are stitched back in input order.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The dialect in effect.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// `true` when queries run through the vectorized executor.
    pub fn vectorized(&self) -> bool {
        self.vectorized
    }

    /// `true` when queries dispatch adaptively between the row engine
    /// and the vectorized executor.
    pub fn adaptive(&self) -> bool {
        self.adaptive
    }

    /// The vectorized executor's batch granularity.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The vectorized executor's morsel worker count (`0` = one per CPU).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Compiles a query to a physical plan without running it (optimized
    /// unless [`Engine::with_optimizations`] turned the pass off).
    pub fn prepare(&self, query: &Query) -> Result<Prepared, EvalError> {
        let prepared = compile::compile(query, self.db, self.dialect)?;
        Ok(if self.optimize { optimize::optimize(prepared, self.db) } else { prepared })
    }

    /// `EXPLAIN`: the compiled plan as an indented operator tree, with
    /// positional references rendered as `#depth.index` and optimizer
    /// decisions (hash joins, pushed filters, subquery caching and early
    /// exit) visible as operators and annotations. Under
    /// [`Engine::with_vectorized`] each batch-driven operator is
    /// additionally annotated `[vectorized, batch=N]` (or
    /// `[vectorized, guarded rows, batch=N]` for guarded fallbacks);
    /// under [`Engine::with_adaptive`] a `dispatch:` header records
    /// which engine this query would run on and why.
    pub fn explain(&self, query: &Query) -> Result<String, EvalError> {
        let prepared = self.prepare(query)?;
        Ok(self.explain_prepared(&prepared))
    }

    /// Renders an already-compiled plan (see [`Engine::explain`]),
    /// applying the same vectorized/adaptive presentation rules.
    pub fn explain_prepared(&self, prepared: &Prepared) -> String {
        if self.adaptive {
            if self.dispatch_vectorized(prepared) {
                format!("dispatch: [adaptive: vectorized, batch={}]\n", self.batch_size)
                    + &explain::explain_vectorized(prepared, self.db, self.batch_size)
            } else {
                format!("dispatch: [adaptive: row, n<{ADAPTIVE_ROW_CUTOFF}]\n")
                    + &explain::explain(prepared)
            }
        } else if self.vectorized {
            explain::explain_vectorized(prepared, self.db, self.batch_size)
        } else {
            explain::explain(prepared)
        }
    }

    /// The adaptive dispatch decision for one plan: vectorize iff the
    /// largest base table the main plan tree scans meets the calibrated
    /// cutoff. (Subplans inside predicates always run in the row engine,
    /// so they don't weigh in.)
    fn dispatch_vectorized(&self, prepared: &Prepared) -> bool {
        plan_scan_rows(&prepared.plan, self.db) >= ADAPTIVE_ROW_CUTOFF
    }

    /// Compiles and executes a closed query.
    pub fn execute(&self, query: &Query) -> Result<Table, EvalError> {
        let prepared = self.prepare(query)?;
        self.execute_prepared(&prepared)
    }

    /// Executes an already-compiled plan (from [`Engine::prepare`]),
    /// skipping the compile+optimize work — the execution half of a
    /// prepared statement.
    pub fn execute_prepared(&self, prepared: &Prepared) -> Result<Table, EvalError> {
        let vectorized = self.vectorized || (self.adaptive && self.dispatch_vectorized(prepared));
        let rows = if vectorized {
            let mut exec = VecExecutor::new(self.db, self.logic, &self.preds, self.batch_size)
                .with_threads(self.threads);
            exec.run(&prepared.plan)?
        } else {
            let mut exec = Executor::new(self.db, self.logic, &self.preds);
            exec.run(&prepared.plan)?
        };
        Table::with_rows(prepared.columns.clone(), rows)
    }
}

/// The adaptive dispatcher's cardinality estimate: the largest row
/// count among the base tables the main plan tree scans (unknown tables
/// count 0 — execution will raise before engine choice matters).
fn plan_scan_rows(plan: &Plan, db: &Database) -> usize {
    match plan {
        Plan::Scan { table } => db.stored_table(table).map_or(0, |t| t.len()),
        Plan::Product { inputs } => inputs.iter().map(|p| plan_scan_rows(p, db)).max().unwrap_or(0),
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Distinct { input }
        | Plan::GroupAggregate { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::TopK { input, .. } => plan_scan_rows(input, db),
        Plan::SetOp { left, right, .. }
        | Plan::HashJoin { left, right, .. }
        | Plan::OuterJoin { left, right, .. } => {
            plan_scan_rows(left, db).max(plan_scan_rows(right, db))
        }
        // An index scan reads only matching postings; count it like its
        // base table so dispatch stays conservative.
        Plan::IndexScan { table, .. } => db.stored_table(table).map_or(0, |t| t.len()),
        Plan::IndexJoin { left, table, .. } => {
            plan_scan_rows(left, db).max(db.stored_table(table).map_or(0, |t| t.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlsem_core::{table, Evaluator, Schema, Value};
    use sqlsem_parser::compile as sql;

    /// A handful of handwritten queries where engine and denotational
    /// semantics must agree bit-for-bit (the §4 criterion). The large
    /// randomised version of this test lives in `sqlsem-validation`.
    #[test]
    fn engine_agrees_with_denotational_semantics_on_handwritten_queries() {
        let schema = Schema::builder().table("R", ["A", "B"]).table("S", ["A"]).build().unwrap();
        let mut db = Database::new(schema.clone());
        db.replace_table(
            "R",
            table! { ["A", "B"]; [1, 2], [1, 2], [Value::Null, 3], [4, Value::Null] },
        )
        .unwrap();
        db.replace_table("S", table! { ["A"]; [1], [Value::Null], [4] }).unwrap();

        let queries = [
            "SELECT A, B FROM R",
            "SELECT DISTINCT A FROM R",
            "SELECT R.B AS x FROM R WHERE R.A = 1 OR R.B IS NULL",
            "SELECT * FROM R, S WHERE R.A = S.A",
            "SELECT A FROM S WHERE A IN (SELECT A FROM R)",
            "SELECT A FROM S WHERE A NOT IN (SELECT A FROM R)",
            "SELECT A FROM S WHERE EXISTS (SELECT * FROM R WHERE R.A = S.A)",
            "SELECT A FROM S WHERE NOT EXISTS (SELECT * FROM R WHERE R.A = S.A)",
            "SELECT A FROM S UNION ALL SELECT B AS A FROM R",
            "SELECT A FROM S UNION SELECT A FROM R",
            "SELECT A FROM S INTERSECT ALL SELECT A FROM R",
            "SELECT A FROM S EXCEPT SELECT A FROM R",
            "SELECT A FROM S EXCEPT ALL SELECT A FROM R",
            "SELECT T.A FROM (SELECT A FROM R WHERE R.B IS NOT NULL) AS T",
            "SELECT x.A FROM R x, R y WHERE x.A = y.A",
            "SELECT DISTINCT x.A FROM R x WHERE (x.A, x.B) IN (SELECT A, B FROM R)",
            // The aggregation fragment.
            "SELECT COUNT(*) AS n FROM R",
            "SELECT R.A AS k, COUNT(*) AS n, COUNT(R.B) AS m FROM R GROUP BY R.A",
            "SELECT R.A AS k, SUM(R.B) AS s, AVG(R.B) AS a, MIN(R.B) AS lo, MAX(R.B) AS hi \
             FROM R GROUP BY R.A",
            "SELECT R.A AS k FROM R GROUP BY R.A HAVING COUNT(*) > 1",
            "SELECT COUNT(DISTINCT R.A) AS u, SUM(DISTINCT R.A) AS sd FROM R",
            "SELECT R.A AS k, COUNT(*) AS n FROM R GROUP BY R.A \
             HAVING EXISTS (SELECT * FROM S WHERE S.A = R.A)",
            "SELECT DISTINCT R.A AS k FROM R GROUP BY R.A, R.B HAVING MAX(R.B) IS NOT NULL",
            "SELECT T.n AS n FROM (SELECT R.A AS k, COUNT(*) AS n FROM R GROUP BY R.A) AS T \
             WHERE T.n > 1",
            "SELECT A FROM S WHERE A IN (SELECT R.A FROM R GROUP BY R.A HAVING COUNT(*) > 1)",
            // The outer-join and combinator fragment.
            "SELECT * FROM R LEFT JOIN S ON R.A = S.A",
            "SELECT * FROM R RIGHT OUTER JOIN S ON R.A = S.A",
            "SELECT * FROM R FULL JOIN S ON R.A = S.A",
            "SELECT * FROM R LEFT JOIN S ON R.A < S.A",
            "SELECT x.B FROM R x LEFT JOIN R y ON x.A = y.A AND y.B IS NOT NULL",
            "SELECT S.A FROM S LEFT JOIN R ON EXISTS (SELECT * FROM R z WHERE z.A = S.A)",
            "SELECT CASE WHEN R.A = 1 THEN R.B ELSE R.A END AS c FROM R",
            "SELECT CASE WHEN R.A IS NULL THEN 0 END AS c FROM R",
            "SELECT COALESCE(R.B, R.A, 7) AS c FROM R",
            "SELECT NULLIF(R.A, 1) AS n FROM R",
            "SELECT R.A FROM R WHERE COALESCE(R.B, 0) > 1",
            "SELECT R.A AS k, COUNT(COALESCE(R.B, R.A)) AS n FROM R GROUP BY R.A",
        ];
        for text in queries {
            let q = sql(text, &schema).unwrap();
            for dialect in Dialect::ALL {
                let reference = Evaluator::new(&db).with_dialect(dialect).eval(&q);
                let mine = Engine::new(&db).with_dialect(dialect).execute(&q);
                match (reference, mine) {
                    (Ok(a), Ok(b)) => {
                        assert!(
                            a.coincides(&b),
                            "{text} [{dialect}]:\nsemantics:\n{a}\nengine:\n{b}"
                        );
                    }
                    (Err(e1), Err(e2)) => {
                        assert_eq!(e1.is_ambiguity(), e2.is_ambiguity(), "{text} [{dialect}]");
                    }
                    (a, b) => panic!("{text} [{dialect}]: verdicts differ: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn ambiguity_timing_matches_each_dialects_semantics() {
        // On Oracle the ambiguous-star query errors even over an empty
        // database (compile-time, like the real system). On Standard the
        // error is evaluation-time, so the empty instance succeeds and a
        // populated one errors — exactly like the denotational semantics.
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let empty = Database::new(schema.clone());
        let q = sql("SELECT * FROM (SELECT R.A, R.A FROM R) AS T", &schema).unwrap();
        assert!(Engine::new(&empty)
            .with_dialect(Dialect::Oracle)
            .execute(&q)
            .unwrap_err()
            .is_ambiguity());
        assert!(Engine::new(&empty).execute(&q).unwrap().is_empty());
        assert!(Engine::new(&empty).with_dialect(Dialect::PostgreSql).execute(&q).is_ok());

        let mut populated = Database::new(schema.clone());
        populated.replace_table("R", table! { ["A"]; [1] }).unwrap();
        assert!(Engine::new(&populated).execute(&q).unwrap_err().is_ambiguity());
    }

    #[test]
    fn ordered_queries_produce_the_specification_list_exactly() {
        // The list layer is compared as a *list*: same rows in the same
        // positions, not just the same bag.
        let schema = Schema::builder().table("R", ["A", "B"]).build().unwrap();
        let mut db = Database::new(schema.clone());
        db.replace_table(
            "R",
            table! { ["A", "B"]; [2, 10], [1, 20], [2, 30], [Value::Null, 40], [1, 50] },
        )
        .unwrap();
        let queries = [
            "SELECT R.A AS a, R.B AS b FROM R ORDER BY a",
            "SELECT R.A AS a, R.B AS b FROM R ORDER BY a DESC NULLS FIRST, b DESC",
            "SELECT R.A AS a, R.B AS b FROM R ORDER BY a NULLS FIRST LIMIT 3",
            "SELECT R.A AS a, R.B AS b FROM R ORDER BY b DESC LIMIT 2 OFFSET 1",
            "SELECT R.A AS a, R.B AS b FROM R ORDER BY a OFFSET 4",
            "SELECT R.A AS a, R.B AS b FROM R ORDER BY a OFFSET 99",
            "SELECT R.A AS a FROM R LIMIT 0",
            "SELECT DISTINCT R.A AS a FROM R ORDER BY a LIMIT 2",
            "SELECT R.A AS k, COUNT(*) AS n FROM R GROUP BY R.A ORDER BY n DESC, k LIMIT 2",
        ];
        for text in queries {
            let q = sql(text, &schema).unwrap();
            for dialect in Dialect::ALL {
                let spec = Evaluator::new(&db).with_dialect(dialect).eval(&q).unwrap();
                for (optimized, vectorized) in [(false, false), (true, false), (true, true)] {
                    let mine = Engine::new(&db)
                        .with_dialect(dialect)
                        .with_optimizations(optimized)
                        .with_vectorized(vectorized)
                        .with_batch_size(3)
                        .execute(&q)
                        .unwrap();
                    let a: Vec<_> = spec.rows().collect();
                    let b: Vec<_> = mine.rows().collect();
                    assert_eq!(
                        a, b,
                        "{text} [{dialect}, optimized={optimized}, vectorized={vectorized}]"
                    );
                }
            }
        }
    }

    #[test]
    fn order_key_resolution_errors_match_the_dialect_timing() {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let db = Database::new(schema.clone());
        // Unknown key: static dialects reject at compile time, the
        // Standard defers — but a top-level sort always runs, so the
        // error surfaces even over an empty table (as in the spec).
        let q = sql("SELECT R.A AS a FROM R ORDER BY nope", &schema).unwrap();
        for dialect in Dialect::ALL {
            let spec = Evaluator::new(&db).with_dialect(dialect).eval(&q).unwrap_err();
            let mine = Engine::new(&db).with_dialect(dialect).execute(&q).unwrap_err();
            assert_eq!(spec.is_ambiguity(), mine.is_ambiguity(), "{dialect}: {spec} vs {mine}");
        }
        // Ambiguous key (repeated output name): classified as ambiguity.
        let q = sql("SELECT R.A AS x, R.A AS x FROM R ORDER BY x", &schema).unwrap();
        for dialect in Dialect::ALL {
            let mine = Engine::new(&db).with_dialect(dialect).execute(&q).unwrap_err();
            assert!(mine.is_ambiguity(), "{dialect}: {mine}");
        }
        // …but inside a never-evaluated subquery, the Standard dialect
        // raises nothing, exactly like the semantics.
        let q = sql(
            "SELECT R.A AS a FROM R WHERE EXISTS (SELECT R.A AS a FROM R ORDER BY nope)",
            &schema,
        )
        .unwrap();
        let spec = Evaluator::new(&db).eval(&q).unwrap();
        let mine = Engine::new(&db).execute(&q).unwrap();
        assert!(spec.coincides(&mine));
        assert!(Engine::new(&db).with_dialect(Dialect::Oracle).execute(&q).is_err());
    }

    #[test]
    fn explain_shows_the_top_k_rewrite() {
        let schema = Schema::builder().table("R", ["A", "B"]).build().unwrap();
        let db = Database::new(schema.clone());
        let q = sql("SELECT R.A AS a FROM R ORDER BY a DESC LIMIT 5 OFFSET 2", &schema).unwrap();
        let optimized = Engine::new(&db).explain(&q).unwrap();
        assert!(optimized.contains("TopK k=5 offset=2"), "{optimized}");
        assert!(optimized.contains("DESC"), "{optimized}");
        assert!(!optimized.contains("Sort"), "{optimized}");
        // The naive plan keeps the Sort/Limit pair.
        let naive = {
            let prepared = compile_plan(&q, &db, Dialect::Standard).unwrap();
            explain(&prepared)
        };
        assert!(naive.contains("Sort keys=["), "{naive}");
        assert!(naive.contains("Limit n=5 offset=2"), "{naive}");
    }

    #[test]
    fn adaptive_dispatch_cuts_over_exactly_at_the_calibrated_row_count() {
        // The dispatch rule is `rows >= ADAPTIVE_ROW_CUTOFF`: one row
        // below the cutoff stays on the row engine, the cutoff itself
        // and one above it vectorize. Pinning the boundary keeps the
        // calibrated constant from silently drifting off-by-one.
        let schema = Schema::builder().table("T", ["A"]).build().unwrap();
        let q = sql("SELECT A FROM T WHERE A > 0", &schema).unwrap();
        for (rows, vectorized) in [
            (ADAPTIVE_ROW_CUTOFF - 1, false),
            (ADAPTIVE_ROW_CUTOFF, true),
            (ADAPTIVE_ROW_CUTOFF + 1, true),
        ] {
            let mut db = Database::new(schema.clone());
            let data: Vec<_> = (0..rows as i64).map(|i| sqlsem_core::row![i]).collect();
            db.replace_table("T", Table::with_rows(vec!["A".into()], data).unwrap()).unwrap();
            let engine = Engine::new(&db).with_adaptive(true);
            let plan = engine.explain(&q).unwrap();
            if vectorized {
                assert!(plan.starts_with("dispatch: [adaptive: vectorized"), "{rows}: {plan}");
            } else {
                assert!(plan.starts_with("dispatch: [adaptive: row"), "{rows}: {plan}");
            }
            // The dispatch decision only picks an executor; results are
            // identical on both sides of the boundary.
            let out = engine.execute(&q).unwrap();
            assert_eq!(out.len(), rows.saturating_sub(1));
        }
    }

    #[test]
    fn prepare_exposes_the_plan() {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let db = Database::new(schema.clone());
        let q = sql("SELECT A FROM R WHERE A = 1", &schema).unwrap();
        let prepared = Engine::new(&db).prepare(&q).unwrap();
        assert_eq!(prepared.columns, vec![sqlsem_core::Name::new("A")]);
        assert!(matches!(prepared.plan, Plan::Project { .. }));
    }
}
