//! The optimizing pass: naive plan → pushed-down, hash-joined, cached plan.
//!
//! The compiler ([`crate::compile`]) emits a structurally naive plan —
//! one `Product` per `FROM` clause with the whole `WHERE` in a single
//! `Filter` on top, and subquery predicates that re-execute their
//! subplans per outer row. This pass rewrites that plan into something an
//! RDBMS would run, while staying *invisible* under the §4 coincidence
//! criterion (same rows, same multiplicities, same error verdicts):
//!
//! 1. **Conjunct splitting + predicate pushdown.** A `Filter` over a
//!    `Product` is split into its top-level conjuncts; each conjunct
//!    whose depth-0 column references fall inside a single product input
//!    is pushed down to a `Filter` directly over that input (references
//!    are re-indexed, including those reaching the product row from
//!    inside nested subqueries).
//! 2. **Hash equi-joins.** Conjuncts of the form `col = col` (or the
//!    null-safe `col IS NOT DISTINCT FROM col`) spanning two different
//!    inputs become [`Plan::HashJoin`] keys; the product is rebuilt as a
//!    left-deep chain of hash joins (and residual cross products), in the
//!    original input order so the row layout is unchanged.
//! 3. **Subquery caching.** `IN`/`EXISTS` subplans that are uncorrelated
//!    (no references escaping the subplan) and deterministic (no user
//!    predicates) get a cache slot: they run once per query instead of
//!    once per candidate row.
//! 4. **`EXISTS` early exit.** Provably error-free `EXISTS` subplans are
//!    marked so the executor may stop after the first produced row
//!    instead of materializing the subquery.
//!
//! Steps 1, 2 and 4 change *when* (or whether) predicate sites get
//! evaluated, which is observable through runtime errors — so they only
//! apply where `crate::analysis` proves every affected conjunct and
//! subplan total. Step 3 only changes *how often* a deterministic subplan
//! runs, so it applies independently of totality. The differential
//! gauntlet (`optimizer_gauntlet`) and the `optimizer_equivalence`
//! property suite hold this pass to the coincidence criterion on
//! thousands of generated queries.

use sqlsem_core::{CmpOp, Database};

use crate::analysis::{
    agg_total, col_types, expr_types, group_frame_types, plan_has_user_pred, plan_is_correlated,
    plan_total, pred_total, TypeFrames,
};
use crate::plan::{AggSpec, Expr, IndexOp, JoinKey, Plan, Pred, Prepared, SortKey};

/// Optimizes a compiled plan. The result computes the same function as
/// the input — same rows, same multiplicities, same error verdicts —
/// under every dialect and logic mode.
pub fn optimize(prepared: Prepared, db: &Database) -> Prepared {
    let mut opt = Optimizer { db, frames: Vec::new(), slots: 0 };
    let plan = opt.plan(prepared.plan);
    Prepared { plan, columns: prepared.columns, cache_slots: opt.slots }
}

/// How the vectorized executor ([`crate::vexec`]) runs one operator:
/// `Kernel` evaluates whole batches speculatively (including rows an
/// earlier filter deselected), `Guarded` evaluates per *selected* row
/// through the embedded row executor so the first error raised is
/// identical to the row engine's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BatchMode {
    /// Speculative whole-batch evaluation — proven error-free.
    Kernel,
    /// Per-selected-row evaluation through the row executor.
    Guarded,
}

/// The batch-routing verdicts for one plan: which `Filter`, `Project`,
/// `GroupAggregate`, `Sort` and `TopK` nodes the vectorized executor
/// may run as speculative kernels, keyed by node address (stable while the
/// borrowed plan is alive — the same device as the executor's per-site
/// `IN` arity check).
pub(crate) struct BatchRoutes {
    modes: std::collections::HashMap<usize, BatchMode>,
}

impl BatchRoutes {
    /// The mode routed for `node`; unknown nodes are conservatively
    /// guarded.
    pub(crate) fn mode(&self, node: &Plan) -> BatchMode {
        let addr = node as *const Plan as usize;
        self.modes.get(&addr).copied().unwrap_or(BatchMode::Guarded)
    }
}

/// Routing analysis for the vectorized executor. Walks every node the
/// batch executor itself drives (subplans inside predicates always run
/// in the row engine and need no routing) and decides, per operator,
/// whether a speculative whole-batch kernel is sound:
///
/// * a `Filter` kernels iff its predicate is pure comparison /
///   null-test / boolean structure (no subqueries, no user predicates,
///   no deferred errors, depth-0 references only) **and**
///   [`pred_total`] proves it error-free for the input's column types —
///   so evaluating even deselected rows cannot raise an error the row
///   engine would not;
/// * a `Project` kernels iff every expression is a constant, a deferred
///   error, or a depth-0 column — a pure gather/broadcast (the executor
///   raises a deferred error iff at least one row is selected, exactly
///   like the row engine);
/// * a `GroupAggregate` kernels iff its keys and aggregate arguments
///   are constants or depth-0 columns (deferred errors fall back, so
///   error order stays the row engine's);
/// * a `Sort`/`TopK` kernels iff every key is a constant or depth-0
///   column *and* provably single-typed, so columnar key extraction
///   plus the shared [`sqlsem_core::order::key_ordering`] rule needs no
///   per-row type discipline.
pub(crate) fn route_batches(plan: &Plan, db: &Database) -> BatchRoutes {
    let mut routes = BatchRoutes { modes: std::collections::HashMap::new() };
    route_node(plan, db, &mut routes);
    routes
}

fn route_node(plan: &Plan, db: &Database, routes: &mut BatchRoutes) {
    let addr = plan as *const Plan as usize;
    match plan {
        Plan::Scan { .. } => {}
        Plan::Product { inputs } => {
            for input in inputs {
                route_node(input, db, routes);
            }
        }
        Plan::Filter { input, pred } => {
            route_node(input, db, routes);
            let kernel = kernel_pred(pred, input.arity(db)) && {
                let types = col_types(input, &mut Vec::new(), db);
                pred_total(pred, &mut vec![types], db)
            };
            routes.modes.insert(addr, if kernel { BatchMode::Kernel } else { BatchMode::Guarded });
        }
        Plan::Project { input, exprs } => {
            route_node(input, db, routes);
            let arity = input.arity(db);
            let kernel =
                exprs.iter().all(|e| matches!(e, Expr::Deferred(_)) || kernel_expr(e, arity));
            routes.modes.insert(addr, if kernel { BatchMode::Kernel } else { BatchMode::Guarded });
        }
        Plan::GroupAggregate { input, keys, aggs, .. } => {
            route_node(input, db, routes);
            let arity = input.arity(db);
            let kernel = keys.iter().all(|e| kernel_expr(e, arity))
                && aggs.iter().all(|s| s.arg.as_ref().is_none_or(|e| kernel_expr(e, arity)));
            routes.modes.insert(addr, if kernel { BatchMode::Kernel } else { BatchMode::Guarded });
        }
        // A `Sort`/`TopK` kernels iff every key is a constant or a
        // depth-0 column **and** the type analysis proves key comparison
        // total (one non-null type per key — the `rewrite_limit` gate):
        // then columnar key extraction with no per-row type discipline
        // raises exactly the row engine's (non-)errors.
        Plan::Sort { input, keys } | Plan::TopK { input, keys, .. } => {
            route_node(input, db, routes);
            let arity = input.arity(db);
            let kernel = keys.iter().all(|k| kernel_expr(&k.expr, arity)) && {
                let frames = vec![col_types(input, &mut Vec::new(), db)];
                keys.iter().all(|k| {
                    expr_types(&k.expr, &frames).is_some_and(|t| t.non_null().count() <= 1)
                })
            };
            routes.modes.insert(addr, if kernel { BatchMode::Kernel } else { BatchMode::Guarded });
        }
        Plan::Distinct { input } | Plan::Limit { input, .. } => route_node(input, db, routes),
        // Index operators have no batch kernels: the row executor runs
        // them and the batches are chunked from its output.
        Plan::IndexScan { .. } => {}
        Plan::IndexJoin { left, .. } => route_node(left, db, routes),
        Plan::SetOp { left, right, .. } | Plan::HashJoin { left, right, .. } => {
            route_node(left, db, routes);
            route_node(right, db, routes);
        }
        // An outer join kernels as a hash join with matched-row
        // bookkeeping iff its ON is a single in-range equi-comparison
        // that spans the two sides **and** the comparison is provably
        // total for the inputs' column types: the hash path never
        // evaluates the comparison value-by-value, so an error-capable
        // one (mixed-type columns) must take the nested-loop fallback.
        Plan::OuterJoin { left, right, on, .. } => {
            route_node(left, db, routes);
            route_node(right, db, routes);
            let (la, ra) = (left.arity(db), right.arity(db));
            let kernel = outer_equi_shape(on, la, ra).is_some() && {
                let mut types = col_types(left, &mut Vec::new(), db);
                types.extend(col_types(right, &mut Vec::new(), db));
                pred_total(on, &mut vec![types], db)
            };
            routes.modes.insert(addr, if kernel { BatchMode::Kernel } else { BatchMode::Guarded });
        }
    }
}

/// Matches an outer join's ON of the shape `#0.l = #0.r` where `l` falls
/// in the left input and `r` in the right (either written order),
/// returning the key positions *local to each side*. Only this shape may
/// take the vectorized hash path.
pub(crate) fn outer_equi_shape(
    on: &Pred,
    left_arity: usize,
    right_arity: usize,
) -> Option<JoinKey> {
    let Pred::Cmp {
        left: Expr::Col { depth: 0, index: a },
        op: CmpOp::Eq,
        right: Expr::Col { depth: 0, index: b },
    } = on
    else {
        return None;
    };
    let (l, r) = if a < b { (*a, *b) } else { (*b, *a) };
    (l < left_arity && (left_arity..left_arity + right_arity).contains(&r)).then(|| JoinKey {
        left: l,
        right: r - left_arity,
        null_safe: false,
    })
}

/// Structural half of the filter-kernel gate: only predicates built
/// from batch-evaluable pieces qualify. Subqueries and user predicates
/// never kernel (`IN` in particular stops comparing once its
/// accumulator is true, so a speculative evaluation could raise errors
/// the row engine skips).
fn kernel_pred(pred: &Pred, arity: usize) -> bool {
    match pred {
        Pred::True | Pred::False => true,
        Pred::Cmp { left, right, .. } | Pred::IsDistinct { left, right, .. } => {
            kernel_expr(left, arity) && kernel_expr(right, arity)
        }
        Pred::Like { term, pattern, .. } => kernel_expr(term, arity) && kernel_expr(pattern, arity),
        Pred::IsNull { expr, .. } => kernel_expr(expr, arity),
        Pred::And(a, b) | Pred::Or(a, b) => kernel_pred(a, arity) && kernel_pred(b, arity),
        Pred::Not(p) => kernel_pred(p, arity),
        Pred::User { .. } | Pred::In { .. } | Pred::Exists { .. } => false,
    }
}

/// `true` for expressions a kernel can evaluate over a batch: constants
/// (broadcast) and in-range depth-0 columns (gather). Combinators never
/// kernel — their branching and laziness are row-at-a-time semantics.
fn kernel_expr(expr: &Expr, arity: usize) -> bool {
    match expr {
        Expr::Const(_) => true,
        Expr::Col { depth: 0, index } => *index < arity,
        Expr::Col { .. }
        | Expr::Deferred(_)
        | Expr::Case { .. }
        | Expr::Coalesce(_)
        | Expr::Nullif(..) => false,
    }
}

struct Optimizer<'a> {
    db: &'a Database,
    /// Compile-time type frames mirroring the runtime correlation stack.
    frames: TypeFrames,
    /// Next free subquery cache slot.
    slots: usize,
}

impl Optimizer<'_> {
    fn plan(&mut self, plan: Plan) -> Plan {
        match plan {
            Plan::Scan { .. } => plan,
            Plan::Product { inputs } => {
                Plan::Product { inputs: inputs.into_iter().map(|p| self.plan(p)).collect() }
            }
            Plan::Distinct { input } => Plan::Distinct { input: Box::new(self.plan(*input)) },
            Plan::SetOp { op, all, left, right } => Plan::SetOp {
                op,
                all,
                left: Box::new(self.plan(*left)),
                right: Box::new(self.plan(*right)),
            },
            Plan::HashJoin { left, right, keys } => Plan::HashJoin {
                left: Box::new(self.plan(*left)),
                right: Box::new(self.plan(*right)),
                keys,
            },
            // The join itself stays put (its canonical row order is the
            // operator's contract), but ON subqueries get the usual
            // treatment — cache slots and early exit — under the
            // joined-row frame.
            Plan::OuterJoin { kind, left, right, on } => {
                let left = Box::new(self.plan(*left));
                let right = Box::new(self.plan(*right));
                let mut types = col_types(&left, &mut self.frames, self.db);
                types.extend(col_types(&right, &mut self.frames, self.db));
                self.frames.push(types);
                let on = self.pred(on);
                self.frames.pop();
                Plan::OuterJoin { kind, left, right, on }
            }
            Plan::Project { input, exprs } => {
                Plan::Project { input: Box::new(self.plan(*input)), exprs }
            }
            Plan::Filter { input, pred } => {
                let input = self.plan(*input);
                let input_types = col_types(&input, &mut self.frames, self.db);
                // Annotate the predicate's subqueries (and optimize their
                // plans) under the filter's own frame.
                self.frames.push(input_types);
                let pred = self.pred(pred);
                self.frames.pop();
                match input {
                    Plan::Product { inputs } => self.reorder(inputs, pred),
                    input => self.index_filter(input, pred),
                }
            }
            Plan::GroupAggregate { input, keys, aggs, having, output } => {
                let input = self.plan(*input);
                // Optimize HAVING subqueries under the group frame, the
                // frame their depth-0 references resolve against.
                let having = having.map(|pred| {
                    let group = group_frame_types(&input, &keys, &aggs, &mut self.frames, self.db);
                    self.frames.push(group);
                    let pred = self.pred(pred);
                    self.frames.pop();
                    pred
                });
                self.push_having(input, keys, aggs, having, output)
            }
            Plan::Sort { input, keys } => Plan::Sort { input: Box::new(self.plan(*input)), keys },
            // Not produced by the compiler, but keep the pass idempotent.
            Plan::TopK { input, keys, limit, offset } => {
                Plan::TopK { input: Box::new(self.plan(*input)), keys, limit, offset }
            }
            Plan::Limit { input, limit, offset } => {
                let input = self.plan(*input);
                self.rewrite_limit(input, limit, offset)
            }
            // Produced by this pass, not the compiler; keep idempotent.
            Plan::IndexScan { .. } => plan,
            Plan::IndexJoin { left, table, index, keys } => {
                Plan::IndexJoin { left: Box::new(self.plan(*left)), table, index, keys }
            }
        }
    }

    /// `Filter` directly over `Scan` becomes an [`Plan::IndexScan`] (+
    /// residual filter) when a secondary index covers filtered columns.
    /// Gated like `reorder`: **every** conjunct must be provably total
    /// before any is consumed — `AND` never short-circuits, so removing
    /// a conjunct changes which comparisons run, which is observable
    /// through errors unless none can raise. The totality proof is
    /// data-seeded ([`col_types`] reads the stored rows), so it also
    /// subsumes the index's type discipline: a poisoned index implies a
    /// mixed-type column, which already fails `cmp_total`. The
    /// `poisoned` check below is defense in depth.
    fn index_filter(&mut self, input: Plan, pred: Pred) -> Plan {
        let Plan::Scan { table } = &input else {
            return Plan::Filter { input: Box::new(input), pred };
        };
        if self.db.indexes_on(table.as_str()).next().is_none() {
            return Plan::Filter { input: Box::new(input), pred };
        }
        let table = table.clone();
        let conjuncts = split_and(pred);
        let refold = |input: Plan, conjuncts: Vec<Pred>| Plan::Filter {
            input: Box::new(input),
            pred: and_all(conjuncts).expect("split of a predicate is non-empty"),
        };

        let types = col_types(&input, &mut self.frames, self.db);
        self.frames.push(types);
        let total = conjuncts.iter().all(|c| pred_total(c, &mut self.frames, self.db));
        self.frames.pop();
        if !total {
            return refold(input, conjuncts);
        }

        // The comparisons an index can serve: `#0.col op const` (or
        // flipped) with a non-NULL constant.
        let shapes: Vec<Option<(usize, CmpOp, &sqlsem_core::Value)>> =
            conjuncts.iter().map(index_cmp_shape).collect();

        // Point lookups first (they consume the most conjuncts), then
        // prefix ranges (equalities pinning leading key columns, one
        // ordered comparison on the next); indexes are tried in
        // creation order, so the choice is deterministic.
        let mut chosen: Option<(sqlsem_core::Name, IndexOp, Vec<usize>)> = None;
        for index in self.db.indexes_on(table.as_str()) {
            if index.poisoned() {
                continue;
            }
            let eq_pick = |col: usize| {
                shapes.iter().position(|s| s.is_some_and(|(c, op, _)| c == col && op == CmpOp::Eq))
            };
            let eq_picks: Option<Vec<usize>> = index.cols().iter().map(|&c| eq_pick(c)).collect();
            if let Some(picks) = eq_picks {
                let values = picks
                    .iter()
                    .map(|&i| shapes[i].expect("picked shape").2.clone())
                    .collect::<Vec<_>>();
                chosen = Some((index.def().name.clone(), IndexOp::Point(values), picks));
                break;
            }
        }
        if chosen.is_none() {
            for index in self.db.indexes_on(table.as_str()) {
                if index.poisoned() {
                    continue;
                }
                // Equality conjuncts pin a leading prefix of the key
                // columns (possibly empty)…
                let mut picks = Vec::new();
                for &col in index.cols() {
                    let eq = shapes
                        .iter()
                        .position(|s| s.is_some_and(|(c, op, _)| c == col && op == CmpOp::Eq));
                    match eq {
                        Some(i) => picks.push(i),
                        None => break,
                    }
                }
                if picks.len() == index.cols().len() {
                    // Full-key equality — the point pass already
                    // rejected every index, so this cannot be reached;
                    // skip rather than range over a missing column.
                    continue;
                }
                // …and the next key column takes one ordered comparison.
                let col = index.cols()[picks.len()];
                let pick = shapes
                    .iter()
                    .position(|s| s.is_some_and(|(c, op, _)| c == col && is_range_op(op)));
                let Some(i) = pick else {
                    continue;
                };
                let prefix: Vec<sqlsem_core::Value> =
                    picks.iter().map(|&p| shapes[p].expect("picked shape").2.clone()).collect();
                let (_, op, value) = shapes[i].expect("picked shape");
                picks.push(i);
                chosen = Some((
                    index.def().name.clone(),
                    IndexOp::Range { prefix, op, value: value.clone() },
                    picks,
                ));
                break;
            }
        }

        let Some((index, op, consumed)) = chosen else {
            return refold(input, conjuncts);
        };
        let keys: Vec<sqlsem_core::Name> = {
            let attrs = self.db.schema().attributes(&table).expect("indexed table exists");
            let cols = self.db.index(&index).expect("chosen index exists").cols();
            cols.iter().map(|&c| attrs[c].clone()).collect()
        };
        let scan = Plan::IndexScan { table, index, keys, op };
        let residual: Vec<Pred> = conjuncts
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !consumed.contains(i))
            .map(|(_, c)| c)
            .collect();
        match and_all(residual) {
            Some(pred) => Plan::Filter { input: Box::new(scan), pred },
            None => scan,
        }
    }

    /// The list-layer rewrites:
    ///
    /// * `Limit k` over `Sort` becomes a [`Plan::TopK`] — a bounded
    ///   binary-heap selection that never keeps more than
    ///   `offset + limit` rows in its sort buffer. Gated, PR-2 style, on
    ///   the *sort keys* being total (resolvable, single-typed): the
    ///   naive pair runs the whole input before touching any key, while
    ///   the streaming top-k interleaves key evaluation with input
    ///   production — with error-capable keys the two raise *different*
    ///   errors (a deferred ambiguous key vs the input's own error),
    ///   and Ok-vs-Err aside, error *character* flips are §4
    ///   disagreements too. Total keys cannot raise, so only input
    ///   errors remain, in identical order.
    /// * a bare `Limit` over a `Project` moves below the projection, so
    ///   dropped rows are never projected — gated on the projection
    ///   being total (a deferred or erroring output expression on a
    ///   dropped row must still raise, PR-2 style).
    fn rewrite_limit(&mut self, input: Plan, limit: Option<u64>, offset: u64) -> Plan {
        match input {
            Plan::Sort { input, keys } => match limit {
                Some(k) if self.sort_keys_total(&input, &keys) => {
                    Plan::TopK { input, keys, limit: k, offset }
                }
                // OFFSET without LIMIT (no bound to exploit) or
                // error-capable keys: the full sort stays.
                _ => Plan::Limit { input: Box::new(Plan::Sort { input, keys }), limit, offset },
            },
            Plan::Project { input, exprs } => {
                let total = {
                    let types = col_types(&input, &mut self.frames, self.db);
                    self.frames.push(types);
                    let ok = exprs.iter().all(|e| expr_types(e, &self.frames).is_some());
                    self.frames.pop();
                    ok
                };
                if total {
                    Plan::Project { input: Box::new(Plan::Limit { input, limit, offset }), exprs }
                } else {
                    Plan::Limit { input: Box::new(Plan::Project { input, exprs }), limit, offset }
                }
            }
            input => Plan::Limit { input: Box::new(input), limit, offset },
        }
    }

    /// `true` iff evaluating the sort keys over the input's rows can
    /// never raise: every key resolves (no deferred errors) and reads a
    /// single-typed column, so neither the comparison nor the key type
    /// discipline can fire. Mirrors the `Sort`/`TopK` arm of
    /// [`plan_total`](crate::analysis).
    fn sort_keys_total(&mut self, input: &Plan, keys: &[SortKey]) -> bool {
        let types = col_types(input, &mut self.frames, self.db);
        self.frames.push(types);
        let ok = keys
            .iter()
            .all(|k| expr_types(&k.expr, &self.frames).is_some_and(|t| t.non_null().count() <= 1));
        self.frames.pop();
        ok
    }

    /// HAVING-conjunct pushdown: a conjunct that reads only `GROUP BY`
    /// key positions holds the same value for every member of a group,
    /// so it may be evaluated once per input row *before* grouping —
    /// becoming an ordinary `WHERE`-style filter that predicate pushdown
    /// and hash joins can then chew on.
    ///
    /// The move eliminates whole groups early, which skips their
    /// per-row aggregate accumulation and their residual-HAVING
    /// evaluation. It is therefore gated like the PR 2 rewrites: every
    /// key and aggregate must be provably error-free per row, and every
    /// *residual* conjunct must be total over the group frame, so no
    /// error verdict can be suppressed. Conjuncts containing subqueries
    /// are never moved.
    fn push_having(
        &mut self,
        input: Plan,
        keys: Vec<Expr>,
        aggs: Vec<AggSpec>,
        having: Option<Pred>,
        output: Vec<Expr>,
    ) -> Plan {
        let rebuild = |input: Plan, having: Option<Pred>| Plan::GroupAggregate {
            input: Box::new(input),
            keys: keys.clone(),
            aggs: aggs.clone(),
            having,
            output: output.clone(),
        };
        let Some(pred) = having else {
            return rebuild(input, None);
        };
        if keys.is_empty() {
            // The implicit single group exists even over an *empty*
            // input: eliminating rows cannot eliminate it, so a false
            // HAVING pushed as a row filter would resurrect the group
            // (`SELECT COUNT(*) FROM R HAVING FALSE` must return no
            // rows, not one). Keyless aggregations keep their HAVING.
            return rebuild(input, Some(pred));
        }

        let conjuncts = split_and(pred);
        let key_only = |c: &Pred| {
            !pred_has_subplan(c) && product_refs(c, 0).iter().all(|col| *col < keys.len())
        };
        if !conjuncts.iter().any(&key_only) {
            return rebuild(input, and_all(conjuncts));
        }

        // Gate: per-row evaluation (the input itself, the keys, the
        // aggregate arguments and folds) must be total, and so must the
        // residual conjuncts the eliminated groups would no longer
        // evaluate.
        let per_row_total = {
            let inner = col_types(&input, &mut self.frames, self.db);
            self.frames.push(inner);
            let ok = keys.iter().all(|e| expr_types(e, &self.frames).is_some())
                && aggs.iter().all(|spec| agg_total(spec, &self.frames));
            self.frames.pop();
            ok && plan_total(&input, &mut self.frames, self.db)
        };
        let group_types = group_frame_types(&input, &keys, &aggs, &mut self.frames, self.db);
        self.frames.push(group_types);
        let residual_total = conjuncts
            .iter()
            .filter(|c| !key_only(c))
            .all(|c| pred_total(c, &mut self.frames, self.db));
        self.frames.pop();
        if !per_row_total || !residual_total {
            return rebuild(input, and_all(conjuncts));
        }

        let mut pushed = Vec::new();
        let mut residual = Vec::new();
        for c in conjuncts {
            if key_only(&c) {
                pushed.push(subst_key_refs(c, &keys));
            } else {
                residual.push(c);
            }
        }
        // The input is already optimized, so only the *new* filter level
        // is placed (re-running the whole pass would re-traverse the
        // subtree and orphan its cache slots): over a surviving raw
        // product the pushed conjuncts enter the ordinary reorder
        // machinery (sinking into inputs and hash joins); over anything
        // else they sit in a plain filter directly above it.
        let pred = and_all(pushed).expect("at least one key-only conjunct");
        let input = match input {
            Plan::Product { inputs } => self.reorder(inputs, pred),
            input => self.index_filter(input, pred),
        };
        rebuild(input, and_all(residual))
    }

    /// Rewrites `IN`/`EXISTS` subqueries inside a predicate: optimizes
    /// their subplans, assigns cache slots to uncorrelated deterministic
    /// ones, and marks error-free `EXISTS` subplans for early exit.
    /// `self.frames` must already include the enclosing filter's frame.
    fn pred(&mut self, pred: Pred) -> Pred {
        match pred {
            Pred::In { exprs, plan, negated, cache: _ } => {
                let plan = self.plan(*plan);
                let cache = self.cache_slot(&plan);
                Pred::In { exprs, plan: Box::new(plan), negated, cache }
            }
            Pred::Exists { plan, early_exit: _, cache: _ } => {
                let plan = self.plan(*plan);
                let cache = self.cache_slot(&plan);
                let early_exit = plan_total(&plan, &mut self.frames, self.db);
                Pred::Exists { plan: Box::new(plan), early_exit, cache }
            }
            Pred::And(a, b) => Pred::And(Box::new(self.pred(*a)), Box::new(self.pred(*b))),
            Pred::Or(a, b) => Pred::Or(Box::new(self.pred(*a)), Box::new(self.pred(*b))),
            Pred::Not(p) => Pred::Not(Box::new(self.pred(*p))),
            leaf => leaf,
        }
    }

    /// A fresh cache slot if the subplan may be materialized once and
    /// reused across outer rows: it must not read enclosing frames and
    /// must not invoke user predicates (determinism).
    fn cache_slot(&mut self, plan: &Plan) -> Option<usize> {
        if plan_is_correlated(plan, 0) || plan_has_user_pred(plan) {
            return None;
        }
        let slot = self.slots;
        self.slots += 1;
        Some(slot)
    }

    /// One equi-join link of the chain: a hash join, or — when the build
    /// side is a bare `Scan` whose table has an index keyed on exactly
    /// the join's right-side columns — an index nested-loop join.
    ///
    /// Both operators match by *syntactic value identity* (the hash
    /// join's `HashMap` key equality; the index's `key_ordering`-equal),
    /// so the swap is sound even for mixed-type or poisoned columns: no
    /// comparison in either path can raise, and a type-mismatched pair
    /// simply fails to match in both. Output order is identical too —
    /// left rows probe in order, and postings (ascending row ids) mirror
    /// the build lists' insertion order.
    fn equi_join(&mut self, left: Plan, right: Plan, keys: Vec<JoinKey>) -> Plan {
        if let Plan::Scan { table } = &right {
            let rights: std::collections::HashSet<usize> = keys.iter().map(|k| k.right).collect();
            if rights.len() == keys.len() {
                let chosen = self
                    .db
                    .indexes_on(table.as_str())
                    .find(|index| {
                        index.cols().len() == keys.len()
                            && index.cols().iter().all(|c| rights.contains(c))
                    })
                    .map(|index| index.def().name.clone());
                if let Some(index) = chosen {
                    return Plan::IndexJoin {
                        left: Box::new(left),
                        table: table.clone(),
                        index,
                        keys,
                    };
                }
            }
        }
        Plan::HashJoin { left: Box::new(left), right: Box::new(right), keys }
    }

    /// The heart of the pass: `Filter` over `Product` becomes pushed
    /// filters + a left-deep hash-join chain + a residual filter.
    fn reorder(&mut self, inputs: Vec<Plan>, pred: Pred) -> Plan {
        let widths: Vec<usize> = inputs.iter().map(|p| p.arity(self.db)).collect();
        let offsets: Vec<usize> = widths
            .iter()
            .scan(0, |acc, w| {
                let off = *acc;
                *acc += w;
                Some(off)
            })
            .collect();

        let conjuncts = split_and(pred);

        // The whole conjunction must be provably error-free before any
        // reordering: a pushed conjunct may run on rows the naive plan
        // never filtered (another input empty), and pushed filtering may
        // starve a later error-raising conjunct of the row that would
        // have made it error. Either way an error verdict flips.
        let product_types: Vec<_> =
            inputs.iter().flat_map(|p| col_types(p, &mut self.frames, self.db)).collect();
        self.frames.push(product_types);
        let total = conjuncts.iter().all(|c| pred_total(c, &mut self.frames, self.db));
        self.frames.pop();
        if !total {
            let pred = and_all(conjuncts).expect("split of a predicate is non-empty");
            return Plan::Filter { input: Box::new(Plan::Product { inputs }), pred };
        }

        let input_of = |col: usize| offsets.iter().rposition(|off| *off <= col).unwrap_or(0);

        let mut pushed: Vec<Vec<Pred>> = inputs.iter().map(|_| Vec::new()).collect();
        let mut joins: Vec<(usize, JoinKey)> = Vec::new(); // (later input, key w/ global cols)
        let mut residual: Vec<Pred> = Vec::new();

        for conjunct in conjuncts {
            // Join candidate: an equality between plain columns of two
            // different inputs.
            if let Some((l, r, null_safe)) = equi_join_shape(&conjunct) {
                let (li, ri) = (input_of(l), input_of(r));
                if li != ri {
                    let (first, later) = if li < ri { (l, r) } else { (r, l) };
                    let later_input = input_of(later);
                    joins.push((
                        later_input,
                        JoinKey { left: first, right: later - offsets[later_input], null_safe },
                    ));
                    continue;
                }
            }
            let refs = product_refs(&conjunct, 0);
            let covering: Vec<usize> = {
                let mut is: Vec<usize> = refs.iter().map(|c| input_of(*c)).collect();
                is.dedup();
                is
            };
            match covering.as_slice() {
                // No reference to the product row: evaluate as early as
                // possible, on the first input.
                [] => pushed[0].push(conjunct),
                [i] => {
                    let i = *i;
                    pushed[i].push(remap_pred(conjunct, 0, offsets[i]));
                }
                _ => residual.push(conjunct),
            }
        }

        if joins.is_empty() && pushed.iter().all(Vec::is_empty) {
            // Nothing moved: keep the naive shape.
            let pred = and_all(residual).expect("all conjuncts residual");
            return Plan::Filter { input: Box::new(Plan::Product { inputs }), pred };
        }

        // Apply the pushed filters, then fold inputs left to right:
        // hash-join where keys exist, cross product otherwise. The chain
        // preserves the original concatenation layout, so residual
        // predicates and the projection above need no re-indexing.
        let mut filtered: Vec<Plan> = Vec::with_capacity(inputs.len());
        for (input, preds) in inputs.into_iter().zip(pushed) {
            filtered.push(match and_all(preds) {
                // Conjunct totality was proven above for the whole
                // conjunction, but `index_filter` re-checks against the
                // single input's frame (same column types, remapped).
                Some(pred) => self.index_filter(input, pred),
                None => input,
            });
        }

        if joins.is_empty() {
            let product = Plan::Product { inputs: filtered };
            return match and_all(residual) {
                Some(pred) => Plan::Filter { input: Box::new(product), pred },
                None => product,
            };
        }

        let mut chain: Option<Plan> = None;
        for (i, input) in filtered.into_iter().enumerate() {
            chain = Some(match chain {
                None => input,
                Some(left) => {
                    let keys: Vec<JoinKey> =
                        joins.iter().filter(|(at, _)| *at == i).map(|(_, k)| *k).collect();
                    if keys.is_empty() {
                        Plan::Product { inputs: vec![left, input] }
                    } else {
                        self.equi_join(left, input, keys)
                    }
                }
            });
        }
        let chain = chain.expect("FROM clause has at least one input");
        match and_all(residual) {
            Some(pred) => Plan::Filter { input: Box::new(chain), pred },
            None => chain,
        }
    }
}

/// `true` iff the predicate contains an `IN`/`EXISTS` subplan anywhere —
/// including inside `CASE` branch predicates nested in expressions.
fn pred_has_subplan(pred: &Pred) -> bool {
    match pred {
        Pred::In { .. } | Pred::Exists { .. } => true,
        Pred::And(a, b) | Pred::Or(a, b) => pred_has_subplan(a) || pred_has_subplan(b),
        Pred::Not(p) => pred_has_subplan(p),
        Pred::Cmp { left, right, .. } | Pred::IsDistinct { left, right, .. } => {
            expr_has_subplan(left) || expr_has_subplan(right)
        }
        Pred::Like { term, pattern, .. } => expr_has_subplan(term) || expr_has_subplan(pattern),
        Pred::User { args, .. } => args.iter().any(expr_has_subplan),
        Pred::IsNull { expr, .. } => expr_has_subplan(expr),
        Pred::True | Pred::False => false,
    }
}

fn expr_has_subplan(expr: &Expr) -> bool {
    match expr {
        Expr::Const(_) | Expr::Col { .. } | Expr::Deferred(_) => false,
        Expr::Case { branches, else_ } => {
            branches.iter().any(|(p, e)| pred_has_subplan(p) || expr_has_subplan(e))
                || else_.as_ref().is_some_and(|e| expr_has_subplan(e))
        }
        Expr::Coalesce(exprs) => exprs.iter().any(expr_has_subplan),
        Expr::Nullif(a, b) => expr_has_subplan(a) || expr_has_subplan(b),
    }
}

/// Rewrites a key-only HAVING conjunct into an input-row predicate:
/// every depth-0 reference (a group-frame key position) is replaced by
/// that key's input-row expression. Deeper references keep their depths
/// — the group frame and the input-row frame sit at the same stack
/// height. Only called on subplan-free conjuncts.
fn subst_key_refs(pred: Pred, keys: &[Expr]) -> Pred {
    let expr = |e: Expr| subst_key_expr(e, keys);
    match pred {
        Pred::True | Pred::False => pred,
        Pred::Cmp { left, op, right } => Pred::Cmp { left: expr(left), op, right: expr(right) },
        Pred::Like { term, pattern, negated } => {
            Pred::Like { term: expr(term), pattern: expr(pattern), negated }
        }
        Pred::User { name, args } => {
            Pred::User { name, args: args.into_iter().map(expr).collect() }
        }
        Pred::IsNull { expr: e, negated } => Pred::IsNull { expr: expr(e), negated },
        Pred::IsDistinct { left, right, negated } => {
            Pred::IsDistinct { left: expr(left), right: expr(right), negated }
        }
        Pred::And(a, b) => {
            Pred::And(Box::new(subst_key_refs(*a, keys)), Box::new(subst_key_refs(*b, keys)))
        }
        Pred::Or(a, b) => {
            Pred::Or(Box::new(subst_key_refs(*a, keys)), Box::new(subst_key_refs(*b, keys)))
        }
        Pred::Not(p) => Pred::Not(Box::new(subst_key_refs(*p, keys))),
        Pred::In { .. } | Pred::Exists { .. } => {
            unreachable!("subplan conjuncts are never pushed")
        }
    }
}

/// The expression half of [`subst_key_refs`]: combinators substitute
/// recursively (they add no frame, so depth 0 still means the group
/// frame inside them).
fn subst_key_expr(e: Expr, keys: &[Expr]) -> Expr {
    match e {
        Expr::Col { depth: 0, index } => keys[index].clone(),
        Expr::Case { branches, else_ } => Expr::Case {
            branches: branches
                .into_iter()
                .map(|(p, r)| (subst_key_refs(p, keys), subst_key_expr(r, keys)))
                .collect(),
            else_: else_.map(|e| Box::new(subst_key_expr(*e, keys))),
        },
        Expr::Coalesce(exprs) => {
            Expr::Coalesce(exprs.into_iter().map(|e| subst_key_expr(e, keys)).collect())
        }
        Expr::Nullif(a, b) => {
            Expr::Nullif(Box::new(subst_key_expr(*a, keys)), Box::new(subst_key_expr(*b, keys)))
        }
        e => e,
    }
}

/// Flattens the top-level conjunction, preserving evaluation order.
fn split_and(pred: Pred) -> Vec<Pred> {
    match pred {
        Pred::And(a, b) => {
            let mut out = split_and(*a);
            out.extend(split_and(*b));
            out
        }
        p => vec![p],
    }
}

/// Re-folds conjuncts left-associatively; `None` for an empty list.
fn and_all(conjuncts: Vec<Pred>) -> Option<Pred> {
    conjuncts.into_iter().reduce(|a, b| Pred::And(Box::new(a), Box::new(b)))
}

/// Matches `#0.col op const` (or the flipped `const op #0.col`, with the
/// operator mirrored) against a non-`NULL` constant — the comparisons a
/// secondary index can serve.
fn index_cmp_shape(pred: &Pred) -> Option<(usize, CmpOp, &sqlsem_core::Value)> {
    let Pred::Cmp { left, op, right } = pred else { return None };
    match (left, right) {
        (Expr::Col { depth: 0, index }, Expr::Const(v)) if !v.is_null() => Some((*index, *op, v)),
        (Expr::Const(v), Expr::Col { depth: 0, index }) if !v.is_null() => {
            Some((*index, op.flipped(), v))
        }
        _ => None,
    }
}

/// `true` for the ordered comparisons a single-column index can answer
/// as one B-tree range.
fn is_range_op(op: CmpOp) -> bool {
    matches!(op, CmpOp::Lt | CmpOp::Leq | CmpOp::Gt | CmpOp::Geq)
}

/// Matches `#0.l = #0.r` (null_safe = false) and
/// `#0.l IS NOT DISTINCT FROM #0.r` (null_safe = true).
fn equi_join_shape(pred: &Pred) -> Option<(usize, usize, bool)> {
    match pred {
        Pred::Cmp {
            left: Expr::Col { depth: 0, index: l },
            op: CmpOp::Eq,
            right: Expr::Col { depth: 0, index: r },
        } => Some((*l, *r, false)),
        Pred::IsDistinct {
            left: Expr::Col { depth: 0, index: l },
            right: Expr::Col { depth: 0, index: r },
            negated: true,
        } => Some((*l, *r, true)),
        _ => None,
    }
}

/// All product-row columns the conjunct reads, i.e. every column
/// reference whose depth resolves to the filter frame — including
/// references made from inside nested subqueries, whose depths are
/// correspondingly larger. `target` is the depth at which the current
/// context sees the filter frame (0 at the conjunct's top level).
fn product_refs(pred: &Pred, target: usize) -> Vec<usize> {
    let mut out = Vec::new();
    collect_pred_refs(pred, target, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

fn collect_pred_refs(pred: &Pred, target: usize, out: &mut Vec<usize>) {
    let mut expr = |e: &Expr| collect_expr_refs(e, target, out);
    match pred {
        Pred::True | Pred::False => {}
        Pred::Cmp { left, right, .. } | Pred::IsDistinct { left, right, .. } => {
            expr(left);
            expr(right);
        }
        Pred::Like { term, pattern, .. } => {
            expr(term);
            expr(pattern);
        }
        Pred::User { args, .. } => args.iter().for_each(&mut expr),
        Pred::IsNull { expr: e, .. } => expr(e),
        Pred::In { exprs, plan, .. } => {
            exprs.iter().for_each(&mut expr);
            collect_plan_refs(plan, target, out);
        }
        Pred::Exists { plan, .. } => collect_plan_refs(plan, target, out),
        Pred::And(a, b) | Pred::Or(a, b) => {
            collect_pred_refs(a, target, out);
            collect_pred_refs(b, target, out);
        }
        Pred::Not(p) => collect_pred_refs(p, target, out),
    }
}

/// Collects an expression's references at the target depth, descending
/// into combinators (which add no frame of their own — their branch
/// predicates see the same stack as the expression itself).
fn collect_expr_refs(expr: &Expr, target: usize, out: &mut Vec<usize>) {
    match expr {
        Expr::Col { depth, index } if *depth == target => out.push(*index),
        Expr::Col { .. } | Expr::Const(_) | Expr::Deferred(_) => {}
        Expr::Case { branches, else_ } => {
            for (p, e) in branches {
                collect_pred_refs(p, target, out);
                collect_expr_refs(e, target, out);
            }
            if let Some(e) = else_ {
                collect_expr_refs(e, target, out);
            }
        }
        Expr::Coalesce(exprs) => exprs.iter().for_each(|e| collect_expr_refs(e, target, out)),
        Expr::Nullif(a, b) => {
            collect_expr_refs(a, target, out);
            collect_expr_refs(b, target, out);
        }
    }
}

/// Walks a subplan looking for references that resolve to the filter
/// frame. Each `Filter`/`Project` inside the subplan pushes one more
/// runtime frame around its expressions, so the target depth grows by
/// one when descending into them.
fn collect_plan_refs(plan: &Plan, target: usize, out: &mut Vec<usize>) {
    match plan {
        Plan::Scan { .. } => {}
        Plan::Product { inputs } => {
            inputs.iter().for_each(|p| collect_plan_refs(p, target, out));
        }
        Plan::Distinct { input } => collect_plan_refs(input, target, out),
        Plan::Filter { input, pred } => {
            collect_plan_refs(input, target, out);
            collect_pred_refs(pred, target + 1, out);
        }
        Plan::Project { input, exprs } => {
            collect_plan_refs(input, target, out);
            for e in exprs {
                collect_expr_refs(e, target + 1, out);
            }
        }
        Plan::SetOp { left, right, .. } | Plan::HashJoin { left, right, .. } => {
            collect_plan_refs(left, target, out);
            collect_plan_refs(right, target, out);
        }
        // The ON condition runs under the joined-row frame, one extra
        // frame like a `Filter` predicate.
        Plan::OuterJoin { left, right, on, .. } => {
            collect_plan_refs(left, target, out);
            collect_plan_refs(right, target, out);
            collect_pred_refs(on, target + 1, out);
        }
        Plan::Limit { input, .. } => collect_plan_refs(input, target, out),
        // An index scan's operands are constants; an index join's keys
        // are positional columns of its own inputs — neither reads the
        // filter frame.
        Plan::IndexScan { .. } => {}
        Plan::IndexJoin { left, .. } => collect_plan_refs(left, target, out),
        // Sort keys see the output-row frame: one extra frame, like
        // `Project` expressions.
        Plan::Sort { input, keys } | Plan::TopK { input, keys, .. } => {
            collect_plan_refs(input, target, out);
            for k in keys {
                collect_expr_refs(&k.expr, target + 1, out);
            }
        }
        // Keys/arguments see the input-row frame, HAVING and the output
        // see the group frame: one extra frame either way.
        Plan::GroupAggregate { input, keys, aggs, having, output } => {
            collect_plan_refs(input, target, out);
            let mut expr = |e: &Expr| collect_expr_refs(e, target + 1, out);
            keys.iter().for_each(&mut expr);
            aggs.iter().filter_map(|s| s.arg.as_ref()).for_each(&mut expr);
            output.iter().for_each(&mut expr);
            if let Some(pred) = having {
                collect_pred_refs(pred, target + 1, out);
            }
        }
    }
}

/// Rewrites a conjunct being pushed from the product's filter down to a
/// single input's filter: every reference to the product row (at the
/// tracked target depth) has the input's column offset subtracted.
/// References to enclosing blocks keep their depths — the correlation
/// stack below the filter frame is identical in both positions.
fn remap_pred(pred: Pred, target: usize, offset: usize) -> Pred {
    let expr = |e: Expr| remap_expr(e, target, offset);
    match pred {
        Pred::True | Pred::False => pred,
        Pred::Cmp { left, op, right } => Pred::Cmp { left: expr(left), op, right: expr(right) },
        Pred::Like { term, pattern, negated } => {
            Pred::Like { term: expr(term), pattern: expr(pattern), negated }
        }
        Pred::User { name, args } => {
            Pred::User { name, args: args.into_iter().map(expr).collect() }
        }
        Pred::IsNull { expr: e, negated } => Pred::IsNull { expr: expr(e), negated },
        Pred::IsDistinct { left, right, negated } => {
            Pred::IsDistinct { left: expr(left), right: expr(right), negated }
        }
        Pred::In { exprs, plan, negated, cache } => Pred::In {
            exprs: exprs.into_iter().map(expr).collect(),
            plan: Box::new(remap_plan(*plan, target, offset)),
            negated,
            cache,
        },
        Pred::Exists { plan, early_exit, cache } => {
            Pred::Exists { plan: Box::new(remap_plan(*plan, target, offset)), early_exit, cache }
        }
        Pred::And(a, b) => Pred::And(
            Box::new(remap_pred(*a, target, offset)),
            Box::new(remap_pred(*b, target, offset)),
        ),
        Pred::Or(a, b) => Pred::Or(
            Box::new(remap_pred(*a, target, offset)),
            Box::new(remap_pred(*b, target, offset)),
        ),
        Pred::Not(p) => Pred::Not(Box::new(remap_pred(*p, target, offset))),
    }
}

fn remap_plan(plan: Plan, target: usize, offset: usize) -> Plan {
    match plan {
        Plan::Scan { .. } => plan,
        Plan::Product { inputs } => Plan::Product {
            inputs: inputs.into_iter().map(|p| remap_plan(p, target, offset)).collect(),
        },
        Plan::Distinct { input } => {
            Plan::Distinct { input: Box::new(remap_plan(*input, target, offset)) }
        }
        Plan::Filter { input, pred } => Plan::Filter {
            input: Box::new(remap_plan(*input, target, offset)),
            pred: remap_pred(pred, target + 1, offset),
        },
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(remap_plan(*input, target, offset)),
            exprs: exprs.into_iter().map(|e| remap_expr(e, target + 1, offset)).collect(),
        },
        Plan::SetOp { op, all, left, right } => Plan::SetOp {
            op,
            all,
            left: Box::new(remap_plan(*left, target, offset)),
            right: Box::new(remap_plan(*right, target, offset)),
        },
        Plan::HashJoin { left, right, keys } => Plan::HashJoin {
            left: Box::new(remap_plan(*left, target, offset)),
            right: Box::new(remap_plan(*right, target, offset)),
            keys,
        },
        Plan::OuterJoin { kind, left, right, on } => Plan::OuterJoin {
            kind,
            left: Box::new(remap_plan(*left, target, offset)),
            right: Box::new(remap_plan(*right, target, offset)),
            on: remap_pred(on, target + 1, offset),
        },
        Plan::GroupAggregate { input, keys, aggs, having, output } => Plan::GroupAggregate {
            input: Box::new(remap_plan(*input, target, offset)),
            keys: keys.into_iter().map(|e| remap_expr(e, target + 1, offset)).collect(),
            aggs: aggs
                .into_iter()
                .map(|s| AggSpec { arg: s.arg.map(|e| remap_expr(e, target + 1, offset)), ..s })
                .collect(),
            having: having.map(|p| remap_pred(p, target + 1, offset)),
            output: output.into_iter().map(|e| remap_expr(e, target + 1, offset)).collect(),
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(remap_plan(*input, target, offset)),
            keys: remap_sort_keys(keys, target, offset),
        },
        Plan::TopK { input, keys, limit, offset: skip } => Plan::TopK {
            input: Box::new(remap_plan(*input, target, offset)),
            keys: remap_sort_keys(keys, target, offset),
            limit,
            offset: skip,
        },
        Plan::Limit { input, limit, offset: skip } => {
            Plan::Limit { input: Box::new(remap_plan(*input, target, offset)), limit, offset: skip }
        }
        Plan::IndexScan { .. } => plan,
        Plan::IndexJoin { left, table, index, keys } => Plan::IndexJoin {
            left: Box::new(remap_plan(*left, target, offset)),
            table,
            index,
            keys,
        },
    }
}

fn remap_sort_keys(keys: Vec<SortKey>, target: usize, offset: usize) -> Vec<SortKey> {
    keys.into_iter()
        .map(|k| SortKey { expr: remap_expr(k.expr, target + 1, offset), ..k })
        .collect()
}

fn remap_expr(expr: Expr, target: usize, offset: usize) -> Expr {
    match expr {
        Expr::Col { depth, index } if depth == target => Expr::Col { depth, index: index - offset },
        // Combinators add no frame: branch predicates and nested
        // expressions remap at the same target depth.
        Expr::Case { branches, else_ } => Expr::Case {
            branches: branches
                .into_iter()
                .map(|(p, e)| (remap_pred(p, target, offset), remap_expr(e, target, offset)))
                .collect(),
            else_: else_.map(|e| Box::new(remap_expr(*e, target, offset))),
        },
        Expr::Coalesce(exprs) => {
            Expr::Coalesce(exprs.into_iter().map(|e| remap_expr(e, target, offset)).collect())
        }
        Expr::Nullif(a, b) => Expr::Nullif(
            Box::new(remap_expr(*a, target, offset)),
            Box::new(remap_expr(*b, target, offset)),
        ),
        e => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlsem_core::{table, Dialect, Schema, Value};
    use sqlsem_parser::compile as sql;

    fn db() -> Database {
        let schema =
            Schema::builder().table("R", ["A", "B"]).table("S", ["A", "C"]).build().unwrap();
        let mut db = Database::new(schema);
        db.replace_table("R", table! { ["A", "B"]; [1, 2], [Value::Null, 3] }).unwrap();
        db.replace_table("S", table! { ["A", "C"]; [1, 9], [4, 8] }).unwrap();
        db
    }

    fn prepare(text: &str, db: &Database) -> Prepared {
        let schema = db.schema().clone();
        let q = sql(text, &schema).unwrap();
        let naive = crate::compile::compile(&q, db, Dialect::Standard).unwrap();
        optimize(naive, db)
    }

    fn count_ops(plan: &Plan, pred: &mut dyn FnMut(&Plan) -> bool) -> usize {
        let mut n = usize::from(pred(plan));
        match plan {
            Plan::Scan { .. } => {}
            Plan::Product { inputs } => {
                n += inputs.iter().map(|p| count_ops(p, pred)).sum::<usize>();
            }
            Plan::Filter { input, .. }
            | Plan::Distinct { input }
            | Plan::GroupAggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::TopK { input, .. } => {
                n += count_ops(input, pred);
            }
            Plan::Project { input, .. } => n += count_ops(input, pred),
            Plan::SetOp { left, right, .. }
            | Plan::HashJoin { left, right, .. }
            | Plan::OuterJoin { left, right, .. } => {
                n += count_ops(left, pred) + count_ops(right, pred);
            }
            Plan::IndexScan { .. } => {}
            Plan::IndexJoin { left, .. } => n += count_ops(left, pred),
        }
        n
    }

    #[test]
    fn equality_conjunct_becomes_hash_join_and_rest_is_pushed() {
        let db = db();
        let p = prepare("SELECT R.B, S.C FROM R, S WHERE R.A = S.A AND R.B = 2 AND S.C > 0", &db);
        assert_eq!(count_ops(&p.plan, &mut |p| matches!(p, Plan::HashJoin { .. })), 1);
        assert_eq!(count_ops(&p.plan, &mut |p| matches!(p, Plan::Product { .. })), 0);
        // Both single-input conjuncts were pushed below the join.
        let Plan::Project { input, .. } = &p.plan else { panic!("{:?}", p.plan) };
        let Plan::HashJoin { left, right, keys } = &**input else { panic!("{input:?}") };
        assert_eq!(keys, &vec![JoinKey { left: 0, right: 0, null_safe: false }]);
        assert!(matches!(&**left, Plan::Filter { .. }), "{left:?}");
        assert!(matches!(&**right, Plan::Filter { .. }), "{right:?}");
    }

    #[test]
    fn is_not_distinct_from_becomes_null_safe_key() {
        let db = db();
        let p = prepare("SELECT R.A FROM R, S WHERE R.A IS NOT DISTINCT FROM S.A", &db);
        let Plan::Project { input, .. } = &p.plan else { panic!() };
        let Plan::HashJoin { keys, .. } = &**input else { panic!("{input:?}") };
        assert_eq!(keys, &vec![JoinKey { left: 0, right: 0, null_safe: true }]);
    }

    #[test]
    fn uncorrelated_subqueries_get_cache_slots_correlated_do_not() {
        let db = db();
        let p = prepare(
            "SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S) \
             AND EXISTS (SELECT * FROM S WHERE S.A = R.A)",
            &db,
        );
        assert_eq!(p.cache_slots, 1);
        let Plan::Project { input, .. } = &p.plan else { panic!() };
        let Plan::Filter { pred, .. } = &**input else { panic!("{input:?}") };
        let Pred::And(a, b) = pred else { panic!("{pred:?}") };
        let Pred::In { cache, .. } = &**a else { panic!("{a:?}") };
        assert_eq!(*cache, Some(0));
        let Pred::Exists { cache, early_exit, .. } = &**b else { panic!("{b:?}") };
        assert_eq!(*cache, None, "correlated EXISTS must not be cached");
        assert!(*early_exit, "error-free EXISTS subplan may stop early");
    }

    #[test]
    fn error_prone_conjunctions_are_not_reordered() {
        // `R.A = 'x'` can raise a type-mismatch error at runtime (R.A
        // holds integers), so nothing in this WHERE may move: pushing
        // `R.A = S.A` could starve the error of the row that raises it.
        let db = db();
        let p = prepare("SELECT R.A FROM R, S WHERE R.A = S.A AND R.A = 'x'", &db);
        assert_eq!(count_ops(&p.plan, &mut |p| matches!(p, Plan::HashJoin { .. })), 0);
        assert_eq!(count_ops(&p.plan, &mut |p| matches!(p, Plan::Product { .. })), 1);
        let Plan::Project { input, .. } = &p.plan else { panic!() };
        assert!(
            matches!(&**input, Plan::Filter { input, .. } if matches!(&**input, Plan::Product { .. })),
            "{input:?}"
        );
    }

    #[test]
    fn like_over_integer_columns_disables_early_exit() {
        let db = db();
        let p = prepare("SELECT R.A FROM R WHERE EXISTS (SELECT * FROM S WHERE S.A LIKE 'x')", &db);
        let Plan::Project { input, .. } = &p.plan else { panic!() };
        let Plan::Filter { pred, .. } = &**input else { panic!("{input:?}") };
        let Pred::Exists { early_exit, cache, .. } = pred else { panic!("{pred:?}") };
        assert!(!*early_exit, "LIKE on an integer column can error row-by-row");
        // … but caching is still sound: the subplan is uncorrelated and
        // deterministic, so every execution raises the same verdict.
        assert_eq!(*cache, Some(0));
    }

    #[test]
    fn correlated_conjuncts_push_into_the_covering_input() {
        // The correlated comparison only reads T (the subquery's second
        // input), so it must sink into T's own filter even though it also
        // reads the outer row.
        let db = db();
        let p = prepare(
            "SELECT R.A FROM R WHERE EXISTS (SELECT * FROM S, R T WHERE T.B = R.B AND S.A = T.A)",
            &db,
        );
        let Plan::Project { input, .. } = &p.plan else { panic!() };
        let Plan::Filter { pred, .. } = &**input else { panic!("{input:?}") };
        let Pred::Exists { plan, .. } = pred else { panic!("{pred:?}") };
        // Inside the subplan: HashJoin(S, Filter(T)) with no residual.
        let Plan::Project { input: sub, .. } = &**plan else { panic!("{plan:?}") };
        let Plan::HashJoin { left, right, keys } = &**sub else { panic!("{sub:?}") };
        assert!(matches!(&**left, Plan::Scan { .. }), "{left:?}");
        let Plan::Filter { pred: pushed, input: t } = &**right else { panic!("{right:?}") };
        assert!(matches!(&**t, Plan::Scan { .. }));
        // T.B sits at product column 3; after the push it is T's column 1,
        // and the outer reference R.B keeps its depth.
        let Pred::Cmp { left: l, right: r, .. } = pushed else { panic!("{pushed:?}") };
        assert_eq!(l, &Expr::Col { depth: 0, index: 1 });
        assert_eq!(r, &Expr::Col { depth: 1, index: 1 });
        assert_eq!(keys, &vec![JoinKey { left: 0, right: 0, null_safe: false }]);
    }

    #[test]
    fn key_only_having_conjuncts_push_below_the_aggregation() {
        let db = db();
        // `R.A = 1` reads only the grouping key: it becomes a filter on
        // the input (COUNT and MIN are total, so the gate opens); the
        // aggregate conjunct stays in HAVING.
        let p = prepare(
            "SELECT R.A AS k, COUNT(*) AS n FROM R GROUP BY R.A \
             HAVING R.A = 1 AND COUNT(*) > 0 AND MIN(R.B) IS NULL",
            &db,
        );
        let Plan::GroupAggregate { input: ga_input, having, .. } = &p.plan else {
            panic!("{:?}", p.plan)
        };
        assert!(matches!(&**ga_input, Plan::Filter { .. }), "pushed filter missing: {ga_input:?}");
        let having = having.as_ref().expect("aggregate conjuncts remain");
        assert!(
            matches!(having, Pred::And(..)),
            "both aggregate conjuncts stay in HAVING: {having:?}"
        );
    }

    #[test]
    fn keyless_having_is_never_pushed() {
        // Regression: the implicit single group survives an empty input,
        // so pushing the (vacuously key-only) HAVING conjunct as a row
        // filter resurrected the group — the optimized engine returned
        // `[2]` where the spec and the naive engine return no rows.
        use sqlsem_core::{Evaluator, LogicMode, PredicateRegistry};
        let db = db();
        let schema = db.schema().clone();
        let p = prepare("SELECT COUNT(*) AS n FROM R HAVING 1 = 2", &db);
        let Plan::GroupAggregate { input, having, .. } = &p.plan else { panic!("{:?}", p.plan) };
        assert!(matches!(&**input, Plan::Scan { .. }), "no filter may appear: {input:?}");
        assert!(having.is_some(), "the conjunct must stay in HAVING");

        let preds = PredicateRegistry::new();
        for sql in [
            "SELECT COUNT(*) AS n FROM R HAVING 1 = 2",
            "SELECT S.A FROM S WHERE EXISTS (SELECT COUNT(*) AS n FROM R HAVING S.A = 99)",
        ] {
            let q = sqlsem_parser::compile(sql, &schema).unwrap();
            let spec = Evaluator::new(&db).eval(&q).unwrap();
            for logic in LogicMode::ALL {
                let optimized = crate::Engine::new(&db).with_logic(logic).execute(&q).unwrap();
                let naive =
                    crate::exec::execute(&q, &db, sqlsem_core::Dialect::Standard, logic, &preds)
                        .unwrap();
                assert!(naive.coincides(&optimized), "{sql} [{logic:?}]");
                if logic == LogicMode::ThreeValued {
                    assert!(spec.coincides(&optimized), "{sql}:\n{spec}\nvs\n{optimized}");
                }
            }
        }
    }

    #[test]
    fn having_pushdown_is_blocked_when_per_row_evaluation_may_error() {
        let db = db();
        // SUM can overflow, so eliminating groups early could suppress
        // its (deterministic) runtime error: nothing moves.
        let p = prepare("SELECT R.A AS k, SUM(R.B) AS s FROM R GROUP BY R.A HAVING R.A = 1", &db);
        let Plan::GroupAggregate { input: ga_input, having, .. } = &p.plan else {
            panic!("{:?}", p.plan)
        };
        assert!(matches!(&**ga_input, Plan::Scan { .. }), "{ga_input:?}");
        assert!(having.is_some(), "conjunct must stay in HAVING");
    }

    #[test]
    fn having_conjuncts_with_subplans_never_move() {
        let db = db();
        let p = prepare(
            "SELECT R.A AS k, COUNT(*) AS n FROM R GROUP BY R.A \
             HAVING R.A IN (SELECT S.A FROM S)",
            &db,
        );
        let Plan::GroupAggregate { input: ga_input, having, .. } = &p.plan else {
            panic!("{:?}", p.plan)
        };
        assert!(matches!(&**ga_input, Plan::Scan { .. }), "{ga_input:?}");
        // … but the uncorrelated subquery inside HAVING still gets its
        // cache slot.
        assert!(matches!(having, Some(Pred::In { cache: Some(0), .. })), "{having:?}");
        assert_eq!(p.cache_slots, 1);
    }

    #[test]
    fn pushed_having_conjuncts_reach_product_inputs() {
        // The pushed key conjunct re-enters the ordinary pushdown
        // machinery and sinks below the product, next to the WHERE
        // conjuncts.
        let db = db();
        let p = prepare(
            "SELECT R.A AS k, COUNT(*) AS n FROM R, S WHERE R.A = S.A \
             GROUP BY R.A HAVING R.A = 1",
            &db,
        );
        assert_eq!(count_ops(&p.plan, &mut |p| matches!(p, Plan::HashJoin { .. })), 1);
        assert_eq!(count_ops(&p.plan, &mut |p| matches!(p, Plan::Product { .. })), 0);
        let Plan::GroupAggregate { having, .. } = &p.plan else { panic!("{:?}", p.plan) };
        assert!(having.is_none(), "the key conjunct left HAVING entirely");
    }

    #[test]
    fn sort_limit_becomes_top_k_and_bare_limit_sinks_below_projection() {
        let db = db();
        // ORDER BY + LIMIT → TopK (the Sort disappears).
        let p = prepare("SELECT R.A AS a FROM R ORDER BY a LIMIT 3 OFFSET 1", &db);
        let Plan::TopK { limit: 3, offset: 1, ref keys, .. } = p.plan else {
            panic!("{:?}", p.plan)
        };
        assert_eq!(keys[0].expr, Expr::Col { depth: 0, index: 0 });
        // ORDER BY + OFFSET only: no bound to exploit, Sort stays.
        let p = prepare("SELECT R.A AS a FROM R ORDER BY a OFFSET 1", &db);
        assert!(
            matches!(&p.plan, Plan::Limit { input, .. } if matches!(**input, Plan::Sort { .. })),
            "{:?}",
            p.plan
        );
        // Bare LIMIT over a total projection sinks below it.
        let p = prepare("SELECT R.A FROM R LIMIT 2", &db);
        assert!(
            matches!(&p.plan, Plan::Project { input, .. } if matches!(**input, Plan::Limit { .. })),
            "{:?}",
            p.plan
        );
        // A projection that can error (deferred ambiguous reference)
        // blocks the push: dropped rows must still raise.
        let p = prepare("SELECT * FROM (SELECT R.A, R.A FROM R) AS T LIMIT 1", &db);
        assert!(
            matches!(&p.plan, Plan::Limit { input, .. } if matches!(**input, Plan::Project { .. })),
            "{:?}",
            p.plan
        );
    }

    #[test]
    fn error_capable_sort_keys_block_the_top_k_rewrite() {
        use sqlsem_core::{Evaluator, LogicMode, PredicateRegistry};
        let db = db();
        // A deferred (ambiguous, Standard-dialect) sort key can raise:
        // the streaming top-k would raise it *before* the input's own
        // errors, flipping the error character — so the rewrite is
        // gated off and the Sort/Limit pair stays.
        let p = prepare("SELECT R.A AS x, R.A AS x FROM R ORDER BY x LIMIT 1", &db);
        assert!(
            matches!(&p.plan, Plan::Limit { input, .. } if matches!(**input, Plan::Sort { .. })),
            "{:?}",
            p.plan
        );
        // End-to-end: the WHERE's type error must win over the ambiguous
        // key on every backend (the review's regression shape).
        let schema = db.schema().clone();
        let q = sqlsem_parser::compile(
            "SELECT R.A AS x, R.A AS x FROM R WHERE R.A > 'foo' ORDER BY x LIMIT 1",
            &schema,
        )
        .unwrap();
        let spec = Evaluator::new(&db).eval(&q).unwrap_err();
        let naive = crate::exec::execute(
            &q,
            &db,
            Dialect::Standard,
            LogicMode::ThreeValued,
            &PredicateRegistry::new(),
        )
        .unwrap_err();
        let optimized = crate::Engine::new(&db).execute(&q).unwrap_err();
        assert_eq!(spec.is_ambiguity(), optimized.is_ambiguity(), "{spec} vs {optimized}");
        assert_eq!(naive.is_ambiguity(), optimized.is_ambiguity(), "{naive} vs {optimized}");
        assert!(!optimized.is_ambiguity(), "the WHERE type error fires first: {optimized}");
    }

    #[test]
    fn optimized_plans_execute_identically_on_the_motivating_shapes() {
        use sqlsem_core::{LogicMode, PredicateRegistry};
        let db = db();
        let schema = db.schema().clone();
        let queries = [
            "SELECT R.B, S.C FROM R, S WHERE R.A = S.A",
            "SELECT R.A FROM R, S WHERE R.A IS NOT DISTINCT FROM S.A",
            "SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)",
            "SELECT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
            "SELECT R.A FROM R WHERE EXISTS (SELECT * FROM S WHERE S.A = R.A)",
            "SELECT DISTINCT R.A FROM R, S WHERE R.A = S.A AND R.B = 2",
        ];
        let preds = PredicateRegistry::new();
        for text in queries {
            let q = sql(text, &schema).unwrap();
            for logic in LogicMode::ALL {
                let naive = crate::exec::execute(&q, &db, Dialect::Standard, logic, &preds);
                let engine = crate::Engine::new(&db).with_logic(logic);
                let opt = engine.execute(&q);
                match (naive, opt) {
                    (Ok(a), Ok(b)) => {
                        assert!(a.coincides(&b), "{text} [{logic:?}]:\n{a}\nvs\n{b}");
                    }
                    (a, b) => panic!("{text} [{logic:?}]: {a:?} vs {b:?}"),
                }
            }
        }
    }

    /// `db()` plus a single-column index on R(A) and a composite on
    /// S(A, C).
    fn indexed_db() -> Database {
        let mut db = db();
        db.create_index("r_a_idx", "R", ["A"]).unwrap();
        db.create_index("s_ac_idx", "S", ["A", "C"]).unwrap();
        db
    }

    #[test]
    fn equality_filter_over_scan_becomes_index_point_scan() {
        let db = indexed_db();
        let p = prepare("SELECT R.B FROM R WHERE R.A = 1", &db);
        let Plan::Project { input, .. } = &p.plan else { panic!("{:?}", p.plan) };
        let Plan::IndexScan { index, keys, op, .. } = &**input else { panic!("{input:?}") };
        assert_eq!(index.as_str(), "r_a_idx");
        assert_eq!(keys.iter().map(|k| k.as_str()).collect::<Vec<_>>(), ["A"]);
        assert_eq!(op, &IndexOp::Point(vec![Value::from(1)]));
    }

    #[test]
    fn composite_index_point_scan_consumes_both_conjuncts() {
        let db = indexed_db();
        // Conjunct order is reversed relative to key order, and one
        // comparison is flipped — both normalize into the key tuple.
        let p = prepare("SELECT S.A FROM S WHERE S.C = 9 AND 1 = S.A", &db);
        let Plan::Project { input, .. } = &p.plan else { panic!("{:?}", p.plan) };
        let Plan::IndexScan { index, op, .. } = &**input else { panic!("{input:?}") };
        assert_eq!(index.as_str(), "s_ac_idx");
        assert_eq!(op, &IndexOp::Point(vec![Value::from(1), Value::from(9)]));
    }

    #[test]
    fn range_filter_becomes_index_range_scan_with_residual() {
        let db = indexed_db();
        let p = prepare("SELECT R.B FROM R WHERE R.A >= 1 AND R.B = 3", &db);
        let Plan::Project { input, .. } = &p.plan else { panic!("{:?}", p.plan) };
        let Plan::Filter { input: scan, pred } = &**input else { panic!("{input:?}") };
        let Plan::IndexScan { index, op, .. } = &**scan else { panic!("{scan:?}") };
        assert_eq!(index.as_str(), "r_a_idx");
        assert_eq!(op, &IndexOp::Range { prefix: vec![], op: CmpOp::Geq, value: Value::from(1) });
        // The non-indexed conjunct stays as the residual filter.
        assert!(
            matches!(pred, Pred::Cmp { left: Expr::Col { depth: 0, index: 1 }, .. }),
            "{pred:?}"
        );
    }

    #[test]
    fn composite_prefix_range_consumes_equality_and_comparison() {
        let db = indexed_db();
        // Equality pins the leading key column of s_ac_idx, the ordered
        // comparison ranges over the next — both conjuncts are consumed,
        // so no residual filter remains.
        let p = prepare("SELECT S.C FROM S WHERE S.A = 1 AND S.C > 2", &db);
        let Plan::Project { input, .. } = &p.plan else { panic!("{:?}", p.plan) };
        let Plan::IndexScan { index, op, .. } = &**input else { panic!("{input:?}") };
        assert_eq!(index.as_str(), "s_ac_idx");
        assert_eq!(
            op,
            &IndexOp::Range { prefix: vec![Value::from(1)], op: CmpOp::Gt, value: Value::from(2) }
        );
    }

    #[test]
    fn bare_range_on_composite_index_first_column_is_served() {
        let db = indexed_db();
        // PR 9 refused multi-column indexes for ranges outright; an
        // empty prefix now serves `S.A >= 1` from s_ac_idx.
        let p = prepare("SELECT S.C FROM S WHERE S.A >= 1", &db);
        let Plan::Project { input, .. } = &p.plan else { panic!("{:?}", p.plan) };
        let Plan::IndexScan { index, op, .. } = &**input else { panic!("{input:?}") };
        assert_eq!(index.as_str(), "s_ac_idx");
        assert_eq!(op, &IndexOp::Range { prefix: vec![], op: CmpOp::Geq, value: Value::from(1) });
    }

    #[test]
    fn error_capable_conjunction_refuses_the_index_rewrite() {
        // `R.A = 'x'` can raise (R.A holds integers), so neither conjunct
        // may be served from the index: consuming `R.A = 1` would change
        // which comparisons execute, which is observable through errors.
        let db = indexed_db();
        let p = prepare("SELECT R.B FROM R WHERE R.A = 1 AND R.A = 'x'", &db);
        assert_eq!(count_ops(&p.plan, &mut |p| matches!(p, Plan::IndexScan { .. })), 0);
        assert_eq!(count_ops(&p.plan, &mut |p| matches!(p, Plan::Filter { .. })), 1);
    }

    #[test]
    fn mixed_type_column_refuses_the_index_rewrite() {
        // A column holding both Int and Str fails `cmp_total` (and the
        // index is poisoned) — the filter stays a heap scan.
        let mut db = db();
        db.replace_table("R", table! { ["A", "B"]; [1, 2], ["x", 3] }).unwrap();
        db.create_index("r_a_idx", "R", ["A"]).unwrap();
        assert!(db.index("r_a_idx").unwrap().poisoned());
        let p = prepare("SELECT R.B FROM R WHERE R.A = 1", &db);
        assert_eq!(count_ops(&p.plan, &mut |p| matches!(p, Plan::IndexScan { .. })), 0);
    }

    #[test]
    fn equi_join_against_an_indexed_scan_becomes_index_join() {
        let mut db = db();
        db.create_index("s_a_idx", "S", ["A"]).unwrap();
        let p = prepare("SELECT R.B, S.C FROM R, S WHERE R.A = S.A", &db);
        let Plan::Project { input, .. } = &p.plan else { panic!("{:?}", p.plan) };
        let Plan::IndexJoin { left, table, index, keys } = &**input else { panic!("{input:?}") };
        assert!(matches!(&**left, Plan::Scan { .. }), "{left:?}");
        assert_eq!(table.as_str(), "S");
        assert_eq!(index.as_str(), "s_a_idx");
        assert_eq!(keys, &vec![JoinKey { left: 0, right: 0, null_safe: false }]);
    }

    #[test]
    fn index_plans_execute_identically_to_unindexed_plans() {
        use sqlsem_core::{LogicMode, PredicateRegistry};
        let plain = db();
        let indexed = indexed_db();
        let schema = plain.schema().clone();
        let queries = [
            "SELECT R.B FROM R WHERE R.A = 1",
            "SELECT R.B FROM R WHERE R.A = 99",
            "SELECT R.B FROM R WHERE R.A >= 1",
            "SELECT R.B FROM R WHERE R.A < 4 AND R.B = 3",
            "SELECT S.A FROM S WHERE S.C = 9 AND S.A = 1",
            "SELECT S.C FROM S WHERE S.A = 1 AND S.C > 2",
            "SELECT S.C FROM S WHERE S.A = 1 AND S.C <= 9",
            "SELECT S.C FROM S WHERE S.A >= 1",
            "SELECT S.C FROM S WHERE S.A = 99 AND S.C < 5",
            "SELECT R.B, S.C FROM R, S WHERE R.A = S.A",
            "SELECT R.A FROM R, S WHERE R.A IS NOT DISTINCT FROM S.A",
        ];
        let preds = PredicateRegistry::new();
        for text in queries {
            let q = sql(text, &schema).unwrap();
            for logic in LogicMode::ALL {
                let naive =
                    crate::exec::execute(&q, &plain, Dialect::Standard, logic, &preds).expect(text);
                let opt = crate::Engine::new(&indexed).with_logic(logic).execute(&q).expect(text);
                // Bit-for-bit: index postings restore insertion order.
                assert_eq!(naive, opt, "{text} [{logic:?}]");
            }
        }
    }
}
