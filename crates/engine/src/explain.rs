//! `EXPLAIN`-style rendering of physical plans.
//!
//! Real systems expose their compiled plans for inspection; the engine
//! does the same, which also makes the positional name resolution
//! visible: every column reference prints as `#depth.index`.

use std::fmt::Write as _;

use crate::optimize::{route_batches, BatchMode, BatchRoutes};
use crate::plan::{AggSpec, Expr, IndexOp, Plan, Pred, Prepared};

/// Renders a prepared query as an indented operator tree.
pub fn explain(prepared: &Prepared) -> String {
    render(prepared, None)
}

/// Renders a prepared query as the vectorized executor would run it:
/// every batch-driven operator carries a `[vectorized, batch=N]`
/// annotation, with `guarded rows` added where the routing analysis
/// fell back to per-selected-row evaluation through the row engine.
/// Subplans inside predicates always run in the row engine, so they
/// print unannotated.
pub fn explain_vectorized(
    prepared: &Prepared,
    db: &sqlsem_core::Database,
    batch_size: usize,
) -> String {
    let routes = route_batches(&prepared.plan, db);
    render(prepared, Some(&VecCtx { routes, batch: batch_size.max(1) }))
}

fn render(prepared: &Prepared, ctx: Option<&VecCtx>) -> String {
    let mut out = String::new();
    let cols: Vec<String> = prepared.columns.iter().map(|c| c.to_string()).collect();
    let _ = writeln!(out, "output: [{}]", cols.join(", "));
    explain_plan(&prepared.plan, 0, &mut out, ctx);
    out
}

/// The vectorized-rendering context: the routing verdicts for the root
/// plan plus the batch granularity to print.
struct VecCtx {
    routes: BatchRoutes,
    batch: usize,
}

/// The `[vectorized…]` annotation for one operator, empty outside
/// vectorized rendering. Batch-kernel operators (scans, joins, routed
/// filters/projections/aggregations, and sorts/top-k with provably
/// total structural keys) print `[vectorized, batch=N]`; guarded
/// filters/projections/aggregations print `[vectorized, guarded rows,
/// batch=N]`; the remaining row-ordered operators (set operations,
/// slicing, guarded sorts) print nothing — they consume the batch
/// pipeline's materialized rows.
fn vec_note(plan: &Plan, ctx: Option<&VecCtx>) -> String {
    let Some(ctx) = ctx else { return String::new() };
    match plan {
        Plan::Scan { .. } | Plan::HashJoin { .. } => {
            format!(" [vectorized, batch={}]", ctx.batch)
        }
        Plan::Filter { .. } | Plan::Project { .. } | Plan::GroupAggregate { .. } => {
            match ctx.routes.mode(plan) {
                BatchMode::Kernel => format!(" [vectorized, batch={}]", ctx.batch),
                BatchMode::Guarded => {
                    format!(" [vectorized, guarded rows, batch={}]", ctx.batch)
                }
            }
        }
        Plan::Sort { .. } | Plan::TopK { .. } => match ctx.routes.mode(plan) {
            BatchMode::Kernel => format!(" [vectorized, batch={}]", ctx.batch),
            BatchMode::Guarded => String::new(),
        },
        // An equi-ON outer join takes the hash fast path; other shapes
        // fall back to the row engine's nested loop and print nothing.
        Plan::OuterJoin { .. } => match ctx.routes.mode(plan) {
            BatchMode::Kernel => format!(" [vectorized, hash, batch={}]", ctx.batch),
            BatchMode::Guarded => String::new(),
        },
        _ => String::new(),
    }
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn explain_plan(plan: &Plan, level: usize, out: &mut String, ctx: Option<&VecCtx>) {
    indent(level, out);
    let note = vec_note(plan, ctx);
    match plan {
        Plan::Scan { table } => {
            let _ = writeln!(out, "Scan {table}{note}");
        }
        Plan::Product { inputs } => {
            let _ = writeln!(out, "Product ({} inputs)", inputs.len());
            for input in inputs {
                explain_plan(input, level + 1, out, ctx);
            }
        }
        Plan::Filter { input, pred } => {
            let _ = writeln!(out, "Filter {}{note}", render_pred(pred));
            explain_plan(input, level + 1, out, ctx);
            explain_subplans(pred, level + 1, out);
        }
        Plan::Project { input, exprs } => {
            let rendered: Vec<String> = exprs.iter().map(render_expr).collect();
            let _ = writeln!(out, "Project [{}]{note}", rendered.join(", "));
            explain_plan(input, level + 1, out, ctx);
        }
        Plan::Distinct { input } => {
            let _ = writeln!(out, "Distinct");
            explain_plan(input, level + 1, out, ctx);
        }
        Plan::SetOp { op, all, left, right } => {
            let _ = writeln!(out, "{}{}", op.keyword(), if *all { " ALL" } else { "" });
            explain_plan(left, level + 1, out, ctx);
            explain_plan(right, level + 1, out, ctx);
        }
        Plan::GroupAggregate { input, keys, aggs, having, output } => {
            let keys: Vec<String> = keys.iter().map(render_expr).collect();
            let aggs_rendered: Vec<String> = aggs.iter().map(render_agg).collect();
            let out_rendered: Vec<String> = output.iter().map(render_expr).collect();
            let _ = write!(
                out,
                "GroupAggregate keys=[{}] aggs=[{}] output=[{}]",
                keys.join(", "),
                aggs_rendered.join(", "),
                out_rendered.join(", ")
            );
            if let Some(pred) = having {
                let _ = write!(out, " having={}", render_pred(pred));
            }
            out.push_str(&note);
            out.push('\n');
            explain_plan(input, level + 1, out, ctx);
            if let Some(pred) = having {
                explain_subplans(pred, level + 1, out);
            }
        }
        Plan::Sort { input, keys } => {
            let _ = writeln!(out, "Sort keys=[{}]{note}", render_sort_keys(keys));
            explain_plan(input, level + 1, out, ctx);
        }
        Plan::Limit { input, limit, offset } => {
            match limit {
                Some(n) => {
                    let _ = write!(out, "Limit n={n}");
                }
                None => {
                    let _ = write!(out, "Limit n=∞");
                }
            }
            if *offset > 0 {
                let _ = write!(out, " offset={offset}");
            }
            out.push('\n');
            explain_plan(input, level + 1, out, ctx);
        }
        Plan::TopK { input, keys, limit, offset } => {
            let _ = write!(out, "TopK k={limit}");
            if *offset > 0 {
                let _ = write!(out, " offset={offset}");
            }
            let _ = writeln!(
                out,
                " keys=[{}] [bounded heap, ≤ {} rows]{note}",
                render_sort_keys(keys),
                offset + limit
            );
            explain_plan(input, level + 1, out, ctx);
        }
        Plan::OuterJoin { kind, left, right, on } => {
            let _ = writeln!(out, "{} on {}{note}", kind.keyword(), render_pred(on));
            explain_plan(left, level + 1, out, ctx);
            explain_plan(right, level + 1, out, ctx);
            explain_subplans(on, level + 1, out);
        }
        Plan::HashJoin { left, right, keys } => {
            let rendered: Vec<String> = keys
                .iter()
                .map(|k| {
                    format!(
                        "left.{} {} right.{}",
                        k.left,
                        if k.null_safe { "<=>" } else { "=" },
                        k.right
                    )
                })
                .collect();
            let _ = writeln!(out, "HashJoin on [{}]{note}", rendered.join(", "));
            explain_plan(left, level + 1, out, ctx);
            explain_plan(right, level + 1, out, ctx);
        }
        Plan::IndexScan { table: _, index, keys, op } => {
            let key_names: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
            let lookup = match op {
                IndexOp::Point(values) => {
                    let eqs: Vec<String> =
                        keys.iter().zip(values).map(|(k, v)| format!("{k} = {v}")).collect();
                    format!("point {}", eqs.join(", "))
                }
                IndexOp::Range { prefix, op, value } => {
                    let mut parts: Vec<String> =
                        keys.iter().zip(prefix).map(|(k, v)| format!("{k} = {v}")).collect();
                    parts.push(format!("{} {op} {value}", keys[prefix.len()]));
                    format!("range {}", parts.join(", "))
                }
            };
            let _ =
                writeln!(out, "IndexScan idx={index} keys=[{}] [{lookup}]", key_names.join(", "));
        }
        Plan::IndexJoin { left, table: _, index, keys } => {
            let rendered: Vec<String> = keys
                .iter()
                .map(|k| {
                    format!(
                        "left.{} {} right.{}",
                        k.left,
                        if k.null_safe { "<=>" } else { "=" },
                        k.right
                    )
                })
                .collect();
            let _ = writeln!(out, "IndexJoin idx={index} on [{}]", rendered.join(", "));
            explain_plan(left, level + 1, out, ctx);
        }
    }
}

/// The optimizer annotations of a subquery predicate, rendered after its
/// label: whether the subplan result is cached across outer rows, and
/// (for `EXISTS`) whether execution may stop at the first row.
fn annotations(early_exit: bool, cache: Option<usize>) -> String {
    let mut notes = Vec::new();
    if early_exit {
        notes.push("early-exit".to_string());
    }
    if let Some(slot) = cache {
        notes.push(format!("cached #{slot}"));
    }
    if notes.is_empty() {
        String::new()
    } else {
        format!(", {}", notes.join(", "))
    }
}

/// Subplans referenced by a predicate (IN/EXISTS) are printed beneath
/// the filter, labelled.
fn explain_subplans(pred: &Pred, level: usize, out: &mut String) {
    match pred {
        Pred::In { plan, cache, .. } => {
            indent(level, out);
            let _ = writeln!(out, "[IN subplan{}]", annotations(false, *cache));
            explain_plan(plan, level + 1, out, None);
        }
        Pred::Exists { plan, early_exit, cache } => {
            indent(level, out);
            let _ = writeln!(out, "[EXISTS subplan{}]", annotations(*early_exit, *cache));
            explain_plan(plan, level + 1, out, None);
        }
        Pred::And(a, b) | Pred::Or(a, b) => {
            explain_subplans(a, level, out);
            explain_subplans(b, level, out);
        }
        Pred::Not(p) => explain_subplans(p, level, out),
        _ => {}
    }
}

fn render_sort_keys(keys: &[crate::plan::SortKey]) -> String {
    keys.iter()
        .map(|k| {
            format!(
                "{}{}{}",
                render_expr(&k.expr),
                if k.desc { " DESC" } else { "" },
                if k.nulls_first { " NULLS FIRST" } else { "" }
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_agg(spec: &AggSpec) -> String {
    match &spec.arg {
        None => format!("{}(*)", spec.func.keyword()),
        Some(e) => format!(
            "{}({}{})",
            spec.func.keyword(),
            if spec.distinct { "DISTINCT " } else { "" },
            render_expr(e)
        ),
    }
}

fn render_expr(expr: &Expr) -> String {
    match expr {
        Expr::Const(v) => v.to_string(),
        Expr::Col { depth, index } => format!("#{depth}.{index}"),
        Expr::Deferred(err) => format!("⟂({err})"),
        Expr::Case { branches, else_ } => {
            let mut s = String::from("CASE");
            for (pred, result) in branches {
                let _ = write!(s, " WHEN {} THEN {}", render_pred(pred), render_expr(result));
            }
            if let Some(e) = else_ {
                let _ = write!(s, " ELSE {}", render_expr(e));
            }
            s.push_str(" END");
            s
        }
        Expr::Coalesce(exprs) => {
            let rendered: Vec<String> = exprs.iter().map(render_expr).collect();
            format!("COALESCE({})", rendered.join(", "))
        }
        Expr::Nullif(a, b) => format!("NULLIF({}, {})", render_expr(a), render_expr(b)),
    }
}

fn render_pred(pred: &Pred) -> String {
    match pred {
        Pred::True => "TRUE".into(),
        Pred::False => "FALSE".into(),
        Pred::Cmp { left, op, right } => {
            format!("{} {op} {}", render_expr(left), render_expr(right))
        }
        Pred::Like { term, pattern, negated } => format!(
            "{} {}LIKE {}",
            render_expr(term),
            if *negated { "NOT " } else { "" },
            render_expr(pattern)
        ),
        Pred::User { name, args } => {
            let rendered: Vec<String> = args.iter().map(render_expr).collect();
            format!("{name}({})", rendered.join(", "))
        }
        Pred::IsNull { expr, negated } => {
            format!("{} IS {}NULL", render_expr(expr), if *negated { "NOT " } else { "" })
        }
        Pred::IsDistinct { left, right, negated } => format!(
            "{} IS {}DISTINCT FROM {}",
            render_expr(left),
            if *negated { "NOT " } else { "" },
            render_expr(right)
        ),
        Pred::In { exprs, negated, .. } => {
            let rendered: Vec<String> = exprs.iter().map(render_expr).collect();
            format!("({}) {}IN <subplan>", rendered.join(", "), if *negated { "NOT " } else { "" })
        }
        Pred::Exists { .. } => "EXISTS <subplan>".into(),
        Pred::And(a, b) => format!("({} AND {})", render_pred(a), render_pred(b)),
        Pred::Or(a, b) => format!("({} OR {})", render_pred(a), render_pred(b)),
        Pred::Not(p) => format!("NOT {}", render_pred(p)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlsem_core::{Database, Dialect, Schema};
    use sqlsem_parser::compile;

    #[test]
    fn explain_shows_the_operator_tree() {
        let schema = Schema::builder().table("R", ["A", "B"]).table("S", ["A"]).build().unwrap();
        let db = Database::new(schema.clone());
        let q = compile(
            "SELECT DISTINCT R.A FROM R WHERE R.B = 1 AND \
             EXISTS (SELECT * FROM S WHERE S.A = R.A)",
            &schema,
        )
        .unwrap();
        let prepared = crate::compile::compile(&q, &db, Dialect::Standard).unwrap();
        let text = explain(&prepared);
        assert!(text.contains("Distinct"), "{text}");
        assert!(text.contains("Project [#0.0]"), "{text}");
        assert!(text.contains("Filter"), "{text}");
        assert!(text.contains("[EXISTS subplan]"), "{text}");
        assert!(text.contains("Scan R"), "{text}");
        assert!(text.contains("Scan S"), "{text}");
        // The correlated reference prints with its depth.
        assert!(text.contains("#1.0"), "{text}");
    }

    #[test]
    fn explain_renders_optimizer_decisions() {
        let schema = Schema::builder().table("R", ["A", "B"]).table("S", ["A"]).build().unwrap();
        let db = Database::new(schema.clone());
        let q = compile(
            "SELECT R.B FROM R, S WHERE R.A = S.A AND R.B = 1 AND \
             R.A IN (SELECT S.A FROM S)",
            &schema,
        )
        .unwrap();
        let text = crate::Engine::new(&db).explain(&q).unwrap();
        assert!(text.contains("HashJoin on [left.0 = right.0]"), "{text}");
        // The single-input conjuncts were pushed below the join…
        assert!(text.contains("Filter (#0.1 = 1 AND (#0.0) IN <subplan>)"), "{text}");
        // …and the uncorrelated IN subquery is cached.
        assert!(text.contains("[IN subplan, cached #0]"), "{text}");
    }

    #[test]
    fn explain_vectorized_annotates_batch_operators() {
        let schema = Schema::builder().table("R", ["A", "B"]).table("S", ["A"]).build().unwrap();
        let db = Database::new(schema.clone());
        let q = compile("SELECT R.B FROM R, S WHERE R.A = S.A AND R.B = 1", &schema).unwrap();
        let text = crate::Engine::new(&db)
            .with_vectorized(true)
            .with_batch_size(1024)
            .explain(&q)
            .unwrap();
        assert!(text.contains("Scan R [vectorized, batch=1024]"), "{text}");
        assert!(text.contains("HashJoin on [left.0 = right.0] [vectorized, batch=1024]"), "{text}");
        // R.B = 1 over integer-typed columns kernels; the projection of
        // a plain column reference kernels too.
        assert!(text.contains("Filter #0.1 = 1 [vectorized, batch=1024]"), "{text}");
        assert!(text.contains("Project [#0.1] [vectorized, batch=1024]"), "{text}");
        // A correlated EXISTS never kernels: guarded fallback, and the
        // subplan prints unannotated.
        let q2 =
            compile("SELECT R.A FROM R WHERE EXISTS (SELECT * FROM S WHERE S.A = R.A)", &schema)
                .unwrap();
        let text2 = crate::Engine::new(&db).with_vectorized(true).explain(&q2).unwrap();
        assert!(text2.contains("guarded rows, batch=1024"), "{text2}");
        assert!(text2.contains("Scan S\n") || text2.contains("Scan S "), "{text2}");
        // The row-engine explain stays annotation-free.
        let plain = crate::Engine::new(&db).explain(&q).unwrap();
        assert!(!plain.contains("vectorized"), "{plain}");
    }

    #[test]
    fn explain_renders_index_scans_and_index_joins() {
        use sqlsem_core::table;
        let schema = Schema::builder().table("t", ["a", "b"]).table("u", ["a"]).build().unwrap();
        let mut db = Database::new(schema.clone());
        db.replace_table("t", table! { ["a", "b"]; [1, 2], [7, 3] }).unwrap();
        db.replace_table("u", table! { ["a"]; [7] }).unwrap();
        db.create_index("t_a_idx", "t", ["a"]).unwrap();

        let q = compile("SELECT b FROM t WHERE a >= 5", &schema).unwrap();
        let text = crate::Engine::new(&db).explain(&q).unwrap();
        assert!(text.contains("IndexScan idx=t_a_idx keys=[a] [range a >= 5]"), "{text}");

        let q = compile("SELECT b FROM t WHERE a = 7", &schema).unwrap();
        let text = crate::Engine::new(&db).explain(&q).unwrap();
        assert!(text.contains("IndexScan idx=t_a_idx keys=[a] [point a = 7]"), "{text}");

        let q = compile("SELECT t.b FROM u, t WHERE u.a = t.a", &schema).unwrap();
        let text = crate::Engine::new(&db).explain(&q).unwrap();
        assert!(text.contains("IndexJoin idx=t_a_idx on [left.0 = right.0]"), "{text}");
        assert!(text.contains("Scan u"), "{text}");
    }

    #[test]
    fn explain_renders_composite_prefix_ranges() {
        use sqlsem_core::table;
        let schema = Schema::builder().table("t", ["a", "b", "c"]).build().unwrap();
        let mut db = Database::new(schema.clone());
        db.replace_table("t", table! { ["a", "b", "c"]; [1, 2, 3], [1, 5, 9] }).unwrap();
        db.create_index("t_ab_idx", "t", ["a", "b"]).unwrap();

        // Equality on the leading key column + range on the next: the
        // prefix is pinned in the rendering.
        let q = compile("SELECT c FROM t WHERE a = 1 AND b > 2", &schema).unwrap();
        let text = crate::Engine::new(&db).explain(&q).unwrap();
        assert!(text.contains("IndexScan idx=t_ab_idx keys=[a, b] [range a = 1, b > 2]"), "{text}");

        // A bare range on the first column of a composite index works
        // too (empty prefix).
        let q = compile("SELECT c FROM t WHERE a <= 1", &schema).unwrap();
        let text = crate::Engine::new(&db).explain(&q).unwrap();
        assert!(text.contains("IndexScan idx=t_ab_idx keys=[a, b] [range a <= 1]"), "{text}");
    }

    #[test]
    fn explain_renders_deferred_errors() {
        let schema = Schema::builder().table("R", ["A"]).build().unwrap();
        let db = Database::new(schema.clone());
        let q = compile("SELECT * FROM (SELECT R.A, R.A FROM R) AS T", &schema).unwrap();
        let prepared = crate::compile::compile(&q, &db, Dialect::Standard).unwrap();
        let text = explain(&prepared);
        assert!(text.contains('⟂'), "{text}");
    }
}
