//! The vectorized executor: batch-at-a-time plan execution.
//!
//! [`VecExecutor`] drives the same [`Plan`] trees as the row engine
//! ([`crate::exec::Executor`]), but moves data as columnar [`Batch`]es
//! (see [`crate::batch`]): scans chunk base tables into column-major
//! batches, filters refine selection vectors instead of materializing
//! survivors, projections of plain column references are `O(1)` column
//! clones, and hash joins and group-aggregates run unboxed fast paths
//! over integer columns.
//!
//! The coincidence contract (§4 of the paper) is preserved by
//! construction:
//!
//! * **Rows and multiplicities** — every operator produces the same bag
//!   in the same order as the row engine (probe order, first-occurrence
//!   group order, stable sorts over identical inputs).
//! * **Error verdicts** — batch kernels are *speculative* (they evaluate
//!   deselected rows too), so they run only where the routing analysis
//!   (`crate::optimize::route_batches`) combined the structural gate
//!   with the PR-2 totality proof (`crate::analysis`): the expression
//!   cannot raise on any value of the column type set, selected or not.
//!   Everything error-capable falls back to *guarded* per-selected-row
//!   evaluation through an embedded row [`Executor`] — the same frames,
//!   the same `eval_pred`/`eval_expr`, hence the same first error. The
//!   only permitted divergence is the §4 comparison relation itself:
//!   per-aggregate accumulation passes may reorder *which* overflow
//!   fires first, and [`compare`](sqlsem_core::Table) treats any two
//!   non-ambiguity errors as coinciding.
//!
//! Set operations, `DISTINCT` and `LIMIT` feed through the row engine's
//! own implementations over materialized batches — they are row-order
//! transformations with no per-row expression work to vectorize. `Sort`
//! and `TopK` vectorize when routing proved their keys structural *and*
//! total: key tuples are extracted column-at-a-time and rows are
//! materialized only in output order (for `TopK`, only the `≤ offset +
//! limit` winners ever become rows).
//!
//! **Morsel parallelism.** Stages the routing marked speculation-safe
//! *and* that profile compute-bound — scan batching, kernel filters,
//! and the general hash-join build — fan out over scoped worker
//! threads in contiguous morsels, and their results are stitched back
//! in morsel order, so output order (and which error would surface
//! first) is independent of scheduling. Allocation-heavy stages (the
//! join probe, the row-materializing sink) measured slower under
//! concurrent allocation and stay single-threaded. Guarded
//! (error-capable) stages stay pinned to the sequential row path: they
//! need the executor's mutable frame stack, and keeping them
//! single-threaded is what makes error verdicts race-free by
//! construction.

use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use sqlsem_core::ast::JoinKind;
use sqlsem_core::order;
use sqlsem_core::{Database, EvalError, LogicMode, PredicateRegistry, Row, Truth, Value};

use crate::batch::{self, Batch, Column, TruthVec, DEFAULT_BATCH_SIZE};
use crate::exec::{self, AggAcc, Executor, SortToken};
use crate::optimize::{route_batches, BatchMode, BatchRoutes};
use crate::plan::{AggSpec, Expr, JoinKey, Plan, Pred, SortKey};

/// Stages working over fewer rows than this stay single-threaded:
/// spawning scoped workers costs hundreds of microseconds, so fanning
/// out only pays off on large inputs (a per-worker hash-table merge
/// pass raises the bar further for the join build).
const PARALLEL_MIN_ROWS: usize = 1 << 16;

/// The batch-at-a-time executor. Wraps a row [`Executor`] for guarded
/// fallbacks (and for every subplan inside a predicate), so both
/// execution paths share one semantics.
pub struct VecExecutor<'a> {
    rows: Executor<'a>,
    batch_size: usize,
    /// Resolved once at configuration time: probing
    /// `available_parallelism` per operator call is a syscall that
    /// dominates sub-millisecond queries.
    workers: usize,
}

impl<'a> VecExecutor<'a> {
    /// Creates a vectorized executor with the given batch granularity
    /// (clamped to at least one row per batch) and automatic thread
    /// count (one worker per available CPU).
    pub fn new(
        db: &'a Database,
        logic: LogicMode,
        preds: &'a PredicateRegistry,
        batch_size: usize,
    ) -> Self {
        VecExecutor {
            rows: Executor::new(db, logic, preds),
            batch_size: batch_size.max(1),
            workers: effective_threads(0),
        }
    }

    /// Creates a vectorized executor with [`DEFAULT_BATCH_SIZE`].
    pub fn with_default_batch(
        db: &'a Database,
        logic: LogicMode,
        preds: &'a PredicateRegistry,
    ) -> Self {
        VecExecutor::new(db, logic, preds, DEFAULT_BATCH_SIZE)
    }

    /// Sets the morsel worker count: `0` (the default) means one worker
    /// per available CPU, `1` pins every stage to the calling thread.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.workers = effective_threads(threads);
        self
    }

    /// The resolved worker count for parallel stages.
    fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a plan to completion, returning its bag of rows — the same
    /// bag, in the same order, with the same error verdict as
    /// [`Executor::run`] over the same plan.
    pub fn run(&mut self, plan: &Plan) -> Result<Vec<Row>, EvalError> {
        let routes = route_batches(plan, self.rows.db);
        self.run_rows(plan, &routes)
    }

    /// Runs a subtree and materializes its batches into rows. Operators
    /// that are inherently row-ordered (sorts, set operations, slicing)
    /// live here, on top of the batch pipeline.
    fn run_rows(&mut self, plan: &Plan, routes: &BatchRoutes) -> Result<Vec<Row>, EvalError> {
        match plan {
            // A kernel-routed sort (structural, provably total keys)
            // extracts key tuples straight from the columns and
            // materializes rows only in output order.
            Plan::Sort { input, keys } => {
                if routes.mode(plan) == BatchMode::Kernel {
                    let batches = self.batches(input, routes)?;
                    Ok(sort_batches(&batches, keys))
                } else {
                    let rows = self.run_rows(input, routes)?;
                    self.rows.sort_rows(rows, keys)
                }
            }
            // A kernel-routed `TopK` streams batches into the bounded
            // heap, keeping (batch, row) handles: only the `≤ offset +
            // limit` winners are ever materialized. The guarded
            // fallback mirrors the heap with a full stable sort — the
            // optimizer builds `TopK` only for provably total sort
            // keys, so the sorted prefix equals the heap's list.
            Plan::TopK { input, keys, limit, offset } => {
                if routes.mode(plan) == BatchMode::Kernel {
                    let batches = self.batches(input, routes)?;
                    Ok(topk_batches(&batches, keys, *limit, *offset))
                } else {
                    let rows = self.run_rows(input, routes)?;
                    let sorted = self.rows.sort_rows(rows, keys)?;
                    Ok(order::slice_rows(sorted, Some(*limit), Some(*offset)))
                }
            }
            Plan::Limit { input, limit, offset } => {
                let rows = self.run_rows(input, routes)?;
                Ok(order::slice_rows(rows, *limit, Some(*offset)))
            }
            Plan::Distinct { input } => Ok(exec::dedup(self.run_rows(input, routes)?)),
            Plan::SetOp { op, all, left, right } => {
                let l = self.run_rows(left, routes)?;
                let r = self.run_rows(right, routes)?;
                Ok(exec::set_op(*op, *all, l, r))
            }
            // Products survive optimization only when no equi-join key
            // was found; mirror the row engine's nested loops.
            Plan::Product { inputs } => {
                let mut acc: Vec<Row> = vec![Row::empty()];
                for input in inputs {
                    let rows = self.run_rows(input, routes)?;
                    let mut next = Vec::with_capacity(acc.len() * rows.len());
                    for left in &acc {
                        for right in &rows {
                            next.push(left.concat(right));
                        }
                    }
                    acc = next;
                }
                Ok(acc)
            }
            // The sink: this is where gather views finally become rows,
            // batch by batch. Materialization is one heap allocation
            // per row, and concurrent allocation measures slower than
            // sequential here, so the sink stays on one thread — the
            // morsel workers are for the compute-bound stages upstream.
            _ => {
                let batches = self.batches(plan, routes)?;
                let mut out = Vec::with_capacity(batches.iter().map(Batch::selected).sum());
                for b in &batches {
                    b.append_rows(&mut out);
                }
                Ok(out)
            }
        }
    }

    /// Chunks materialized rows into dense batches, one chunk per
    /// morsel worker once the input is big enough to amortize spawns.
    fn chunk(&self, arity: usize, rows: &[Row]) -> Vec<Batch> {
        let chunks: Vec<&[Row]> = rows.chunks(self.batch_size).collect();
        let workers = if rows.len() >= PARALLEL_MIN_ROWS { self.workers() } else { 1 };
        parallel_map(workers, &chunks, |_, c| Batch::from_rows(arity, c))
    }

    /// Runs a subtree batch-at-a-time. Operators without a batch
    /// implementation are executed through [`Self::run_rows`] and their
    /// output chunked back into batches.
    fn batches(&mut self, plan: &Plan, routes: &BatchRoutes) -> Result<Vec<Batch>, EvalError> {
        match plan {
            Plan::Scan { table } => {
                let arity = plan.arity(self.rows.db);
                match self.rows.db.stored_table(table) {
                    Some(t) => Ok(self.chunk(arity, t.rows().as_slice())),
                    None => {
                        // Unknown tables must still raise; a declared but
                        // never-populated table is empty.
                        self.rows.db.table(table)?;
                        Ok(Vec::new())
                    }
                }
            }
            Plan::Filter { input, pred } => {
                let inputs = self.batches(input, routes)?;
                let mut out = Vec::with_capacity(inputs.len());
                match routes.mode(plan) {
                    // Kernels are total for the whole column type set,
                    // so fanning batches out over workers cannot change
                    // which error surfaces (none can); results rejoin
                    // in batch order.
                    BatchMode::Kernel => {
                        let logic = self.rows.logic;
                        let total: usize = inputs.iter().map(Batch::physical_rows).sum();
                        let workers = if total >= PARALLEL_MIN_ROWS { self.workers() } else { 1 };
                        let verdicts = parallel_map(workers, &inputs, |_, b| {
                            pred_kernel(logic, pred, b).map(|v| b.restrict(&v))
                        });
                        for v in verdicts {
                            out.push(v?);
                        }
                    }
                    BatchMode::Guarded => {
                        for b in inputs {
                            let mut sel = Vec::new();
                            for i in b.indices() {
                                self.rows.push_frame(b.row(i));
                                let verdict = self.rows.eval_pred(pred);
                                self.rows.pop_frame();
                                if verdict?.is_true() {
                                    sel.push(i as u32);
                                }
                            }
                            out.push(b.with_selection(sel));
                        }
                    }
                }
                Ok(out)
            }
            Plan::Project { input, exprs } => {
                let inputs = self.batches(input, routes)?;
                match routes.mode(plan) {
                    BatchMode::Kernel => self.project_kernel(inputs, exprs),
                    BatchMode::Guarded => {
                        let mut out = Vec::new();
                        for b in &inputs {
                            for i in b.indices() {
                                self.rows.push_frame(b.row(i));
                                let projected: Result<Row, EvalError> =
                                    exprs.iter().map(|e| self.rows.eval_expr(e)).collect();
                                self.rows.pop_frame();
                                out.push(projected?);
                            }
                        }
                        Ok(self.chunk(exprs.len(), &out))
                    }
                }
            }
            Plan::HashJoin { left, right, keys } => self.hash_join(left, right, keys, routes),
            Plan::OuterJoin { kind, left, right, on } => {
                let arity = plan.arity(self.rows.db);
                let out = self.outer_join(plan, *kind, left, right, on, routes)?;
                Ok(self.chunk(arity, &out))
            }
            Plan::GroupAggregate { input, keys, aggs, having, output } => {
                let mode = routes.mode(plan);
                let inputs = self.batches(input, routes)?;
                match mode {
                    BatchMode::Kernel => {
                        self.group_kernel(&inputs, keys, aggs, having.as_ref(), output)
                    }
                    BatchMode::Guarded => {
                        let mut rows = Vec::new();
                        for b in &inputs {
                            b.append_rows(&mut rows);
                        }
                        let out =
                            self.rows.group_rows(rows, keys, aggs, having.as_ref(), output)?;
                        Ok(self.chunk(output.len(), &out))
                    }
                }
            }
            // Index operators have no batch kernels: posting-list
            // gathers are row-id driven already, so the row engine runs
            // the whole subtree and the output is chunked back into
            // batches. (An explicit arm — the `other` fallback below
            // would bounce through `run_rows` and recurse forever.)
            Plan::IndexScan { .. } | Plan::IndexJoin { .. } => {
                let arity = plan.arity(self.rows.db);
                let rows = self.rows.run(plan)?;
                Ok(self.chunk(arity, &rows))
            }
            other => {
                let arity = other.arity(self.rows.db);
                let rows = self.run_rows(other, routes)?;
                Ok(self.chunk(arity, &rows))
            }
        }
    }

    /// The kernel projection: every output expression is a constant
    /// (broadcast), a depth-0 column (an `O(1)` shared-column clone) or
    /// a deferred resolution error — which the row engine raises iff at
    /// least one row reaches the projection, in select-list order.
    fn project_kernel(
        &mut self,
        inputs: Vec<Batch>,
        exprs: &[Expr],
    ) -> Result<Vec<Batch>, EvalError> {
        if inputs.iter().any(|b| b.selected() > 0) {
            for e in exprs {
                if let Expr::Deferred(err) = e {
                    return Err(err.clone());
                }
            }
        }
        let mut out = Vec::with_capacity(inputs.len());
        for b in inputs {
            let columns = exprs
                .iter()
                .map(|e| match e {
                    Expr::Const(v) => Column::broadcast(v, b.physical_rows()),
                    Expr::Col { depth: 0, index } => b.column(*index).clone(),
                    // Deferred over an all-deselected input: a placeholder
                    // no row will ever read. (Routing admits nothing else.)
                    _ => Column::broadcast(&Value::Null, b.physical_rows()),
                })
                .collect();
            out.push(b.with_columns(columns));
        }
        Ok(out)
    }

    /// The batch hash join. Build on the right, probe with the left —
    /// the left subtree runs first, like the row engine's, so input
    /// error order is unchanged. Single integer keys take an unboxed
    /// `Option<i64>` hash table; everything else hashes `Vec<Value>`
    /// keys. `NULL` handling follows [`Executor::run`]'s join: under the
    /// syntactic-equality 2VL nulls participate like constants, under
    /// the other modes a null non-null-safe key never matches.
    fn hash_join(
        &mut self,
        left: &Plan,
        right: &Plan,
        keys: &[JoinKey],
        routes: &BatchRoutes,
    ) -> Result<Vec<Batch>, EvalError> {
        let lbatches = self.batches(left, routes)?;
        let rbatches = self.batches(right, routes)?;
        let rarity = right.arity(self.rows.db);
        // Columnar concat: the build side never round-trips through rows.
        let build = Batch::concat(rarity, &rbatches);
        drop(rbatches);
        let null_matches = matches!(self.rows.logic, LogicMode::TwoValuedSyntacticEq);
        let workers = self.workers();

        let single_int = keys.len() == 1
            && build.column(keys[0].right).is_int()
            && lbatches.iter().all(|b| b.column(keys[0].left).is_int());

        if single_int {
            let k = keys[0];
            let bc = build.column(k.right).dense();
            let bvals = bc.as_int().expect("checked above");
            let n = build.physical_rows();
            // A chained-index table: `head` maps each key to its first
            // build row, `next` threads equal-key rows in ascending
            // order (`NO_ROW` terminates a chain; the reverse build
            // scan is what makes the chains ascend). One flat array
            // replaces a `Vec<u32>` allocation per distinct key, and
            // the multiplicative [`IntHasher`] replaces SipHash —
            // together they take the million-row build from seconds to
            // tens of milliseconds. Null keys only ever chain off
            // `null_head`, which only null probes consult.
            const NO_ROW: u32 = u32::MAX;
            let mut head: HashMap<i64, u32, std::hash::BuildHasherDefault<IntHasher>> =
                HashMap::with_capacity_and_hasher(n, Default::default());
            let mut next: Vec<u32> = vec![NO_ROW; n];
            let mut null_head: u32 = NO_ROW;
            for i in (0..n).rev() {
                if bc.is_null(i) {
                    if null_matches || k.null_safe {
                        next[i] = null_head;
                        null_head = i as u32;
                    }
                } else {
                    match head.entry(bvals[i]) {
                        std::collections::hash_map::Entry::Occupied(mut o) => {
                            next[i] = *o.get();
                            o.insert(i as u32);
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(i as u32);
                        }
                    }
                }
            }
            // The probe emits growing index vectors and gathered output
            // batches — allocation-heavy work that concurrent threads
            // only slow down here (see the sink note in `run_rows`), so
            // it runs batch by batch on one thread.
            Ok(lbatches
                .iter()
                .map(|b| {
                    let lc = b.column(k.left).dense();
                    let lvals = lc.as_int().expect("checked above");
                    // Reserving one slot per probe row skips the realloc
                    // ladder; near-total joins fill most of it anyway.
                    let mut lidx = Vec::with_capacity(b.selected());
                    let mut ridx = Vec::with_capacity(b.selected());
                    for i in b.indices() {
                        let mut m = if lc.is_null(i) {
                            if !null_matches && !k.null_safe {
                                continue;
                            }
                            null_head
                        } else {
                            head.get(&lvals[i]).copied().unwrap_or(NO_ROW)
                        };
                        while m != NO_ROW {
                            lidx.push(i as u32);
                            ridx.push(m);
                            m = next[m as usize];
                        }
                    }
                    join_gather(b, lidx, &build, ridx)
                })
                .collect())
        } else {
            // The general path: a key is `None` when the row is excluded
            // outright (a null under a non-null-safe `=` key). `side`
            // picks the key's column position for the batch at hand.
            let key_of = |cols: &Batch, i: usize, side: fn(&JoinKey) -> usize| {
                if !null_matches
                    && keys.iter().any(|k| !k.null_safe && cols.column(side(k)).is_null(i))
                {
                    return None;
                }
                Some(keys.iter().map(|k| cols.column(side(k)).value(i)).collect::<Vec<Value>>())
            };
            // Key extraction is pure (`Column::value` cannot error), so
            // big builds are speculation-safe to split into contiguous
            // morsels whose partial tables merge in morsel order —
            // every per-key index list stays ascending, keeping the
            // probe's match order scheduling-free.
            let insert_range = |lo: usize, hi: usize| {
                let mut t: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
                for i in lo..hi {
                    if let Some(key) = key_of(&build, i, |k| k.right) {
                        t.entry(key).or_default().push(i as u32);
                    }
                }
                t
            };
            let n = build.physical_rows();
            let table = if workers > 1 && n >= PARALLEL_MIN_ROWS {
                let ranges = split_ranges(n, workers);
                let partials = parallel_map(workers, &ranges, |_, &(lo, hi)| insert_range(lo, hi));
                let mut merged: HashMap<Vec<Value>, Vec<u32>> = HashMap::with_capacity(n);
                for part in partials {
                    for (key, mut idxs) in part {
                        merged.entry(key).or_default().append(&mut idxs);
                    }
                }
                merged
            } else {
                insert_range(0, n)
            };
            // Like the single-`Int` fast path, the allocation-heavy
            // probe stays sequential; only the build fans out.
            Ok(lbatches
                .iter()
                .map(|b| {
                    let mut lidx = Vec::with_capacity(b.selected());
                    let mut ridx = Vec::with_capacity(b.selected());
                    for i in b.indices() {
                        if let Some(key) = key_of(b, i, |k| k.left) {
                            if let Some(matches) = table.get(&key) {
                                for &r in matches {
                                    lidx.push(i as u32);
                                    ridx.push(r);
                                }
                            }
                        }
                    }
                    join_gather(b, lidx, &build, ridx)
                })
                .collect())
        }
    }

    /// The outer join over vectorized inputs. Both subtrees run
    /// batch-at-a-time; the join itself produces the row engine's
    /// canonical order — each left row's matches in right order (with
    /// an inline null-padded row when the left row is dangling and the
    /// kind keeps it), then the trailing null-padded dangling right
    /// rows. Kernel routing (a single depth-0 equi `ON` proved total)
    /// replaces the nested loop with a hash table; per-key build lists
    /// ascend, so match order is unchanged. A row is dangling iff `ON`
    /// is *true* for no counterpart, so under three-valued and
    /// conflating logics a null key never matches, while under the
    /// syntactic-equality 2VL nulls participate like constants —
    /// exactly [`Self::hash_join`]'s rule.
    fn outer_join(
        &mut self,
        plan: &Plan,
        kind: JoinKind,
        left: &Plan,
        right: &Plan,
        on: &Pred,
        routes: &BatchRoutes,
    ) -> Result<Vec<Row>, EvalError> {
        let (larity, rarity) = (left.arity(self.rows.db), right.arity(self.rows.db));
        let lrows = self.run_rows(left, routes)?;
        let rrows = self.run_rows(right, routes)?;
        let lpad = Row::new(vec![Value::Null; larity]);
        let rpad = Row::new(vec![Value::Null; rarity]);
        let mut right_matched = vec![false; rrows.len()];
        let mut out = Vec::new();
        if routes.mode(plan) == BatchMode::Kernel {
            let key = crate::optimize::outer_equi_shape(on, larity, rarity)
                .expect("kernel routing implies the equi shape");
            let null_matches = matches!(self.rows.logic, LogicMode::TwoValuedSyntacticEq);
            let mut table: HashMap<&Value, Vec<u32>> = HashMap::new();
            for (i, rrow) in rrows.iter().enumerate() {
                let v = &rrow[key.right];
                if v.is_null() && !null_matches {
                    continue; // `NULL = x` is never true; stays dangling.
                }
                table.entry(v).or_default().push(i as u32);
            }
            for lrow in &lrows {
                let v = &lrow[key.left];
                let matches = if v.is_null() && !null_matches { None } else { table.get(v) };
                match matches {
                    Some(idxs) => {
                        for &ri in idxs {
                            right_matched[ri as usize] = true;
                            out.push(lrow.concat(&rrows[ri as usize]));
                        }
                    }
                    None if kind.keeps_left() => out.push(lrow.concat(&rpad)),
                    None => {}
                }
            }
        } else {
            // The guarded nested loop: the `ON` predicate runs through
            // the embedded row executor under the candidate joined
            // frame, so subqueries, user predicates and error verdicts
            // behave exactly as in [`Executor::run`].
            for lrow in &lrows {
                let mut matched = false;
                for (i, rrow) in rrows.iter().enumerate() {
                    self.rows.push_frame(lrow.concat(rrow));
                    let verdict = self.rows.eval_pred(on);
                    let joined = self.rows.pop_frame();
                    if verdict?.is_true() {
                        matched = true;
                        right_matched[i] = true;
                        out.push(joined);
                    }
                }
                if !matched && kind.keeps_left() {
                    out.push(lrow.concat(&rpad));
                }
            }
        }
        if kind.keeps_right() {
            for (i, rrow) in rrows.iter().enumerate() {
                if !right_matched[i] {
                    out.push(lpad.concat(rrow));
                }
            }
        }
        Ok(out)
    }

    /// The vectorized group-aggregate, used when routing proved every
    /// key and aggregate argument a constant or depth-0 column:
    ///
    /// 1. one pass assigns each selected row a group id, in row order
    ///    (so group order is first-occurrence, like the row engine's);
    /// 2. one pass **per aggregate** folds the argument column into the
    ///    per-group states — column-at-a-time rather than
    ///    row-at-a-time, which reorders accumulation *across*
    ///    aggregates but keeps each aggregate's step sequence identical,
    ///    so an error (integer overflow, a mixed-type extremum) is
    ///    raised iff the row engine raises one, with the same
    ///    non-ambiguity classification (the §4 relation compared);
    /// 3. one pass per group, in group order, finalizes the aggregates,
    ///    filters through `HAVING` and projects — through the embedded
    ///    row executor under the same group frame `keys ++ aggs`.
    fn group_kernel(
        &mut self,
        inputs: &[Batch],
        keys: &[Expr],
        aggs: &[AggSpec],
        having: Option<&Pred>,
        output: &[Expr],
    ) -> Result<Vec<Batch>, EvalError> {
        // Pass 1: group ids per selected row, first-occurrence order.
        let selected: usize = inputs.iter().map(Batch::selected).sum();
        let mut group_of: Vec<u32> = Vec::with_capacity(selected);
        let mut group_keys: Vec<Vec<Value>> = Vec::new();
        if keys.is_empty() {
            // The implicit single group — present even over no rows.
            group_keys.push(Vec::new());
            group_of.resize(selected, 0);
        } else {
            let single_int_key = match keys {
                [Expr::Col { depth: 0, index }] => {
                    inputs.iter().all(|b| b.column(*index).as_int().is_some()).then_some(*index)
                }
                _ => None,
            };
            if let Some(j) = single_int_key {
                let mut ids: HashMap<Option<i64>, u32> = HashMap::new();
                for b in inputs {
                    let c = b.column(j);
                    let vals = c.as_int().expect("checked above");
                    for i in b.indices() {
                        let key = if c.is_null(i) { None } else { Some(vals[i]) };
                        let next = group_keys.len() as u32;
                        let id = *ids.entry(key).or_insert_with(|| {
                            group_keys.push(vec![key.map_or(Value::Null, Value::Int)]);
                            next
                        });
                        group_of.push(id);
                    }
                }
            } else {
                let mut ids: HashMap<Vec<Value>, u32> = HashMap::new();
                for b in inputs {
                    for i in b.indices() {
                        let key: Vec<Value> = keys
                            .iter()
                            .map(|e| match e {
                                Expr::Const(v) => v.clone(),
                                Expr::Col { depth: 0, index } => b.column(*index).value(i),
                                // Routing admits nothing else.
                                _ => Value::Null,
                            })
                            .collect();
                        let next = group_keys.len() as u32;
                        let id = *ids.entry(key.clone()).or_insert_with(|| {
                            group_keys.push(key);
                            next
                        });
                        group_of.push(id);
                    }
                }
            }
        }
        let n_groups = group_keys.len();

        // Pass 2: one column-at-a-time sweep per aggregate.
        let mut results: Vec<AggResult> = Vec::with_capacity(aggs.len());
        for spec in aggs {
            results.push(self.fold_agg(inputs, &group_of, n_groups, spec)?);
        }

        // Pass 3: per group, finalize + HAVING + output under the group
        // frame, exactly like `Executor::group_rows`'s second loop.
        let mut out_rows = Vec::new();
        for (g, key) in group_keys.into_iter().enumerate() {
            let mut frame = key;
            for res in &mut results {
                frame.push(res.finalize(g)?);
            }
            self.rows.push_frame(Row::new(frame));
            let verdict = match having {
                Some(pred) => self.rows.eval_pred(pred),
                None => Ok(Truth::True),
            };
            let result: Result<Option<Row>, EvalError> = match verdict {
                Err(e) => Err(e),
                Ok(t) if !t.is_true() => Ok(None),
                Ok(_) => output
                    .iter()
                    .map(|e| self.rows.eval_expr(e))
                    .collect::<Result<Row, _>>()
                    .map(Some),
            };
            self.rows.pop_frame();
            if let Some(row) = result? {
                out_rows.push(row);
            }
        }
        Ok(self.chunk(output.len(), &out_rows))
    }

    /// Folds one aggregate over every selected row, column-at-a-time.
    /// `COUNT(*)`, plain `COUNT(col)` and all-integer plain `SUM(col)`
    /// run unboxed; everything else steps the row engine's [`AggAcc`]
    /// with the same value sequence the row engine would feed it.
    fn fold_agg(
        &self,
        inputs: &[Batch],
        group_of: &[u32],
        n_groups: usize,
        spec: &AggSpec,
    ) -> Result<AggResult, EvalError> {
        use sqlsem_core::AggFunc;
        let col_arg = match &spec.arg {
            Some(Expr::Col { depth: 0, index }) => Some(*index),
            _ => None,
        };
        // COUNT(*): one unconditional increment per row, DISTINCT or not
        // (the row engine's `step_row` ignores the DISTINCT filter too).
        if spec.arg.is_none() && spec.func == AggFunc::Count {
            let mut counts = vec![0i64; n_groups];
            let mut at = 0;
            for b in inputs {
                for _ in b.indices() {
                    counts[group_of[at] as usize] += 1;
                    at += 1;
                }
            }
            return Ok(AggResult::Finals(counts.into_iter().map(Value::Int).collect()));
        }
        if let (Some(j), false) = (col_arg, spec.distinct) {
            match spec.func {
                AggFunc::Count => {
                    let mut counts = vec![0i64; n_groups];
                    let mut at = 0;
                    for b in inputs {
                        let c = b.column(j);
                        for i in b.indices() {
                            if !c.is_null(i) {
                                counts[group_of[at] as usize] += 1;
                            }
                            at += 1;
                        }
                    }
                    return Ok(AggResult::Finals(counts.into_iter().map(Value::Int).collect()));
                }
                AggFunc::Sum if inputs.iter().all(|b| b.column(j).as_int().is_some()) => {
                    let mut sums = vec![0i64; n_groups];
                    let mut any = vec![false; n_groups];
                    let mut at = 0;
                    for b in inputs {
                        let c = b.column(j);
                        let vals = c.as_int().expect("checked above");
                        for i in b.indices() {
                            let g = group_of[at] as usize;
                            at += 1;
                            if c.is_null(i) {
                                continue;
                            }
                            sums[g] = exec::add_int_raw("SUM", sums[g], vals[i])?;
                            any[g] = true;
                        }
                    }
                    let finals = sums
                        .into_iter()
                        .zip(any)
                        .map(|(s, a)| if a { Value::Int(s) } else { Value::Null })
                        .collect();
                    return Ok(AggResult::Finals(finals));
                }
                _ => {}
            }
        }
        // The general path: the row engine's own accumulator, fed the
        // identical per-group value sequence.
        let mut accs: Vec<Option<AggAcc>> =
            (0..n_groups).map(|_| Some(AggAcc::new(spec))).collect();
        let mut at = 0;
        for b in inputs {
            for i in b.indices() {
                let g = group_of[at] as usize;
                at += 1;
                let acc = accs[g].as_mut().expect("finalized only in pass 3");
                match &spec.arg {
                    None => acc.step_row(),
                    Some(Expr::Const(v)) => acc.step_value(v.clone())?,
                    Some(Expr::Col { index, .. }) => acc.step_value(b.column(*index).value(i))?,
                    // Routing admits nothing else.
                    Some(_) => {}
                }
            }
        }
        Ok(AggResult::Accs(accs))
    }
}

/// One aggregate's per-group outcome after the accumulation pass:
/// either already-final values (the unboxed kernels, whose finalization
/// cannot error) or the row engine's accumulators, finalized lazily in
/// group order so finalization errors fire exactly where the row engine
/// fires them.
enum AggResult {
    Finals(Vec<Value>),
    Accs(Vec<Option<AggAcc>>),
}

impl AggResult {
    fn finalize(&mut self, group: usize) -> Result<Value, EvalError> {
        match self {
            AggResult::Finals(v) => Ok(std::mem::replace(&mut v[group], Value::Null)),
            AggResult::Accs(a) => a[group].take().expect("each group finalized once").finalize(),
        }
    }
}

/// Evaluates a routed-total predicate over every physical row of a
/// batch. The logical connectives evaluate *both* operands — exactly
/// like the row engine, which never short-circuits `AND`/`OR`. A free
/// function (no executor state) so kernel filters can fan out over
/// morsel workers.
fn pred_kernel(logic: LogicMode, pred: &Pred, b: &Batch) -> Result<TruthVec, EvalError> {
    let len = b.physical_rows();
    match pred {
        Pred::True => Ok(TruthVec::all_true(len)),
        Pred::False => Ok(TruthVec::all_false(len)),
        Pred::Cmp { left, op, right } => {
            batch::cmp_kernel(logic, &operand(left, b), *op, &operand(right, b))
        }
        Pred::IsNull { expr, negated } => Ok(batch::is_null_kernel(&operand(expr, b), *negated)),
        Pred::IsDistinct { left, right, negated } => {
            Ok(batch::is_distinct_kernel(&operand(left, b), &operand(right, b), *negated))
        }
        Pred::Like { term, pattern, negated } => {
            batch::like_kernel(logic, &operand(term, b), &operand(pattern, b), *negated)
        }
        Pred::And(a, c) => Ok(pred_kernel(logic, a, b)?.and(&pred_kernel(logic, c, b)?)),
        Pred::Or(a, c) => Ok(pred_kernel(logic, a, b)?.or(&pred_kernel(logic, c, b)?)),
        Pred::Not(p) => Ok(pred_kernel(logic, p, b)?.not()),
        // Routing never kernels subqueries or user predicates; this
        // arm is defensive (the gauntlet would surface it as a
        // disagreement, not silently wrong rows).
        _ => Err(EvalError::malformed("subquery predicate reached the batch kernel")),
    }
}

/// A kernel operand as a column over the batch's physical rows. Viewed
/// (join-output) columns are resolved dense here so the comparison
/// kernels keep their unboxed integer paths; dense columns cost an
/// `O(1)` clone.
fn operand(expr: &Expr, b: &Batch) -> Column {
    match expr {
        Expr::Const(v) => Column::broadcast(v, b.physical_rows()),
        Expr::Col { depth: 0, index } => b.column(*index).dense(),
        // Unreachable under the routing gate (see `pred_kernel`).
        _ => Column::broadcast(&Value::Null, b.physical_rows()),
    }
}

/// Assembles one join output batch *lazily*: every probe-side column
/// shares one gather view (the probe indices), every build-side column
/// shares the other — `O(arity)`, not `O(rows × arity)`. Rows
/// materialize only at the sink.
fn join_gather(probe: &Batch, lidx: Vec<u32>, build: &Batch, ridx: Vec<u32>) -> Batch {
    debug_assert_eq!(lidx.len(), ridx.len());
    let rows = lidx.len();
    let (lidx, ridx) = (Arc::new(lidx), Arc::new(ridx));
    let mut columns = Vec::with_capacity(probe.arity() + build.arity());
    for j in 0..probe.arity() {
        columns.push(probe.column(j).with_view(Arc::clone(&lidx)));
    }
    for j in 0..build.arity() {
        columns.push(build.column(j).with_view(Arc::clone(&ridx)));
    }
    Batch::from_columns(columns, rows)
}

/// One sort key's value at a batch position. Routing admits only
/// constants and depth-0 columns here (and proved them total), so this
/// cannot raise.
fn key_value(expr: &Expr, b: &Batch, i: usize) -> Value {
    match expr {
        Expr::Const(v) => v.clone(),
        Expr::Col { depth: 0, index } => b.column(*index).value(i),
        // Unreachable under the routing gate.
        _ => Value::Null,
    }
}

/// The vectorized sort: extracts the (provably total, single-typed) key
/// tuples column-at-a-time, stable-sorts lightweight `(keys, batch,
/// row)` handles with the shared [`order::key_ordering`] rule, and
/// materializes rows only in output order. No per-row type discipline
/// is needed — the routing gate is exactly the `rewrite_limit` totality
/// proof, under which [`order::KeyTypeCheck`] can never fire.
fn sort_batches(batches: &[Batch], keys: &[SortKey]) -> Vec<Row> {
    let selected: usize = batches.iter().map(Batch::selected).sum();
    let mut handles: Vec<(Vec<Value>, u32, u32)> = Vec::with_capacity(selected);
    for (bi, b) in batches.iter().enumerate() {
        for i in b.indices() {
            let vals = keys.iter().map(|k| key_value(&k.expr, b, i)).collect();
            handles.push((vals, bi as u32, i as u32));
        }
    }
    handles.sort_by(|(a, ..), (b, ..)| {
        keys.iter()
            .zip(a.iter().zip(b.iter()))
            .map(|(k, (x, y))| order::key_ordering(x, y, k.desc, k.nulls_first))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    handles.into_iter().map(|(_, bi, i)| batches[bi as usize].row(i as usize)).collect()
}

/// A bounded-heap entry over batch handles: ordered like the row
/// engine's `HeapEntry` (key tokens, then input sequence), but carrying
/// a `(batch, row)` address instead of a materialized row.
struct VecHeapEntry {
    tokens: Vec<SortToken>,
    seq: usize,
    batch: u32,
    row: u32,
}

impl Ord for VecHeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.tokens.cmp(&other.tokens).then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for VecHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for VecHeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for VecHeapEntry {}

/// The vectorized `TopK`: streams batch positions through the bounded
/// max-heap (top = worst retained row, ties broken by input sequence so
/// the retained prefix is exactly the stable sort's) and materializes
/// only the `≤ offset + limit` winning rows, in output order.
fn topk_batches(batches: &[Batch], keys: &[SortKey], limit: u64, offset: u64) -> Vec<Row> {
    let m = usize::try_from(offset.saturating_add(limit)).unwrap_or(usize::MAX);
    let mut heap: BinaryHeap<VecHeapEntry> = BinaryHeap::new();
    let mut seq = 0usize;
    for (bi, b) in batches.iter().enumerate() {
        for i in b.indices() {
            seq += 1;
            if m == 0 {
                // LIMIT 0 (+ no offset): nothing can be kept; the keys
                // are provably total, so unlike the row engine's
                // streaming top-k there is no error left to surface.
                continue;
            }
            let tokens = keys.iter().map(|k| SortToken::new(key_value(&k.expr, b, i), k)).collect();
            heap.push(VecHeapEntry { tokens, seq, batch: bi as u32, row: i as u32 });
            if heap.len() > m {
                heap.pop();
            }
        }
    }
    let skip = usize::try_from(offset).unwrap_or(usize::MAX);
    heap.into_sorted_vec()
        .into_iter()
        .skip(skip)
        .map(|e| batches[e.batch as usize].row(e.row as usize))
        .collect()
}

/// Resolved morsel worker count: `0` means one worker per available
/// CPU. The CPU count is probed once per process — the probe is a
/// syscall that can cost as much as a whole small query.
fn effective_threads(threads: usize) -> usize {
    static CPUS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    if threads == 0 {
        *CPUS.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    } else {
        threads
    }
}

/// A multiplicative hasher for the single-`Int`-key join table.
///
/// SipHash's per-insert cost dominates a million-row build; one
/// Fibonacci multiply plus a shift-xor finish is several times cheaper
/// and mixes well enough for non-adversarial benchmark keys. The byte
/// fallback (never hit by `HashMap<i64, _>`, which calls `write_i64`)
/// is FNV-1a so the hasher stays a total `Hasher` implementation.
#[derive(Default)]
struct IntHasher(u64);

impl std::hash::Hasher for IntHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_i64(&mut self, i: i64) {
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 29);
    }
}

/// Splits `n` items into at most `workers` contiguous, nearly equal
/// `(lo, hi)` ranges.
fn split_ranges(n: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.clamp(1, n.max(1));
    let chunk = n.div_ceil(workers);
    (0..n).step_by(chunk.max(1)).map(|lo| (lo, (lo + chunk).min(n))).collect()
}

/// Maps `f` over `items` on up to `workers` scoped threads in
/// contiguous chunks, returning results in item order — so callers see
/// output identical to a sequential loop regardless of scheduling. One
/// worker (or one item) short-circuits to the plain loop; `f` receives
/// the item index alongside the item.
fn parallel_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<R> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(w, part)| {
                s.spawn(move || {
                    part.iter().enumerate().map(|(i, t)| f(w * chunk + i, t)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("morsel worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::optimize::optimize;
    use sqlsem_core::{row, table, Dialect, Schema, Table};

    fn db_rs() -> (Schema, Database) {
        let schema =
            Schema::builder().table("R", ["A", "B"]).table("S", ["A", "C"]).build().unwrap();
        let mut db = Database::new(schema.clone());
        db.replace_table(
            "R",
            table! { ["A", "B"]; [1, 10], [2, 20], [Value::Null, 30], [2, Value::Null] },
        )
        .unwrap();
        db.replace_table("S", table! { ["A", "C"]; [2, 100], [3, 200], [Value::Null, 300] })
            .unwrap();
        (schema, db)
    }

    /// Runs one SQL query through the row engine (optimized plan) and
    /// the vectorized executor at several batch sizes, asserting bag
    /// equality (same rows, same multiplicities, same order).
    fn check(sql: &str, logic: LogicMode) {
        let (schema, db) = db_rs();
        let q = sqlsem_parser::compile(sql, &schema).unwrap();
        let prepared = optimize(compile(&q, &db, Dialect::PostgreSql).unwrap(), &db);
        let preds = PredicateRegistry::new();
        let mut rowexec = Executor::new(&db, logic, &preds);
        let expected = rowexec.run(&prepared.plan);
        for batch_size in [1, 2, 3, 1024] {
            let mut vexec = VecExecutor::new(&db, logic, &preds, batch_size);
            let got = vexec.run(&prepared.plan);
            match (&expected, got) {
                (Ok(want), Ok(got)) => {
                    assert_eq!(want, &got, "{sql} [{logic:?}, batch={batch_size}]");
                }
                (Err(want), Err(got)) => {
                    assert_eq!(
                        want.is_ambiguity(),
                        got.is_ambiguity(),
                        "{sql} [{logic:?}, batch={batch_size}]: {want:?} vs {got:?}"
                    );
                }
                (want, got) => {
                    panic!("{sql} [{logic:?}, batch={batch_size}]: {want:?} vs {got:?}")
                }
            }
        }
    }

    #[test]
    fn filters_and_projections_match_the_row_engine() {
        for logic in LogicMode::ALL {
            check("SELECT R.A AS A FROM R WHERE R.A = 2", logic);
            check("SELECT R.B AS B FROM R WHERE R.A IS NULL", logic);
            check("SELECT R.A AS A, 7 AS K FROM R WHERE R.A < 3 OR R.B IS NOT NULL", logic);
            check("SELECT R.A AS A FROM R WHERE NOT (R.A IS DISTINCT FROM 2)", logic);
        }
    }

    #[test]
    fn joins_match_the_row_engine_per_logic_mode() {
        for logic in LogicMode::ALL {
            check("SELECT * FROM R x, S y WHERE x.A = y.A", logic);
            check("SELECT * FROM R x, S y WHERE x.A IS NOT DISTINCT FROM y.A", logic);
        }
    }

    #[test]
    fn outer_joins_match_the_row_engine_per_logic_mode() {
        for logic in LogicMode::ALL {
            // The single-equi shape kernels (hash path) — including the
            // null keys whose match behaviour is logic-mode-dependent.
            check("SELECT * FROM R LEFT JOIN S ON R.A = S.A", logic);
            check("SELECT * FROM R RIGHT JOIN S ON R.A = S.A", logic);
            check("SELECT * FROM R FULL OUTER JOIN S ON R.A = S.A", logic);
            // Non-equi and compound `ON`s take the guarded nested loop.
            check("SELECT * FROM R LEFT JOIN S ON R.A < S.A", logic);
            check("SELECT * FROM R FULL JOIN S ON R.A = S.A AND S.C > 100", logic);
            // Combinators over padded (null) columns.
            check("SELECT COALESCE(y.C, 0) AS c FROM R x LEFT JOIN S y ON x.A = y.A", logic);
            check(
                "SELECT CASE WHEN y.A IS NULL THEN 'dangling' ELSE 'matched' END AS t \
                 FROM R x LEFT JOIN S y ON x.A = y.A",
                logic,
            );
        }
    }

    #[test]
    fn outer_join_kernel_routing_requires_the_total_equi_shape() {
        // `R.A = S.A` over Int∪Null columns is total → hash kernel;
        // `R.A < S.A` is not the equi shape → guarded fallback. The
        // EXPLAIN annotations pin both decisions.
        let (schema, db) = db_rs();
        let hash =
            sqlsem_parser::compile("SELECT * FROM R LEFT JOIN S ON R.A = S.A", &schema).unwrap();
        let prepared = optimize(compile(&hash, &db, Dialect::PostgreSql).unwrap(), &db);
        let plan = crate::explain::explain_vectorized(&prepared, &db, DEFAULT_BATCH_SIZE);
        assert!(plan.contains("[vectorized, hash, batch="), "{plan}");
        let loop_ =
            sqlsem_parser::compile("SELECT * FROM R LEFT JOIN S ON R.A < S.A", &schema).unwrap();
        let prepared = optimize(compile(&loop_, &db, Dialect::PostgreSql).unwrap(), &db);
        let plan = crate::explain::explain_vectorized(&prepared, &db, DEFAULT_BATCH_SIZE);
        assert!(!plan.contains("hash"), "{plan}");
    }

    #[test]
    fn aggregates_match_the_row_engine() {
        for logic in LogicMode::ALL {
            check("SELECT COUNT(*) AS n FROM R", logic);
            check(
                "SELECT R.A AS a, COUNT(*) AS n, SUM(R.B) AS s, MIN(R.B) AS lo FROM R GROUP BY R.A",
                logic,
            );
            check("SELECT R.A AS a, AVG(R.B) AS m FROM R GROUP BY R.A HAVING COUNT(*) >= 1", logic);
            check("SELECT COUNT(DISTINCT R.A) AS d FROM R", logic);
        }
    }

    #[test]
    fn ordering_distinct_and_set_ops_match() {
        for logic in LogicMode::ALL {
            check("SELECT DISTINCT R.A AS A FROM R", logic);
            check("SELECT R.A AS A FROM R ORDER BY A DESC LIMIT 2", logic);
            check("SELECT R.A AS A FROM R UNION ALL SELECT S.A AS A FROM S", logic);
            check("SELECT R.A AS A FROM R EXCEPT SELECT S.A AS A FROM S", logic);
        }
    }

    #[test]
    fn guarded_fallback_preserves_error_verdicts() {
        // A correlated subquery never kernels: the guarded path must
        // produce the row engine's rows *and* errors.
        for logic in LogicMode::ALL {
            check("SELECT R.A AS A FROM R WHERE EXISTS (SELECT * FROM S WHERE S.A = R.A)", logic);
            check("SELECT R.A AS A FROM R WHERE R.A IN (SELECT S.A AS A FROM S)", logic);
        }
        // A mixed-type comparison errors identically (guarded: the
        // totality analysis sees B as Int ∪ Null here, so this kernels —
        // build a genuinely erroring one via a string literal).
        check("SELECT R.A AS A FROM R WHERE R.A = 'x'", LogicMode::ThreeValued);
    }

    #[test]
    fn scan_chunks_respect_batch_size() {
        let schema = Schema::builder().table("T", ["A"]).build().unwrap();
        let mut db = Database::new(schema);
        let rows: Vec<Row> = (0..10).map(|i| row![i]).collect();
        db.replace_table("T", Table::with_rows(vec!["A".into()], rows).unwrap()).unwrap();
        let preds = PredicateRegistry::new();
        let plan = Plan::Scan { table: "T".into() };
        for batch_size in [1, 3, 10, 1024] {
            let mut vexec = VecExecutor::new(&db, LogicMode::ThreeValued, &preds, batch_size);
            let out = vexec.run(&plan).unwrap();
            assert_eq!(out.len(), 10);
            assert_eq!(out[7], row![7]);
        }
    }

    #[test]
    fn parallel_morsels_match_the_sequential_path_at_scale() {
        // A join whose build side exceeds PARALLEL_MIN_ROWS, so the
        // morsel-parallel hash build, probe, filter and sink paths all
        // actually run — results must be identical (same rows, same
        // order) at every thread count, including oversubscribed.
        let n = PARALLEL_MIN_ROWS + 4096;
        let schema =
            Schema::builder().table("T", ["A", "B"]).table("U", ["A", "B"]).build().unwrap();
        let mut db = Database::new(schema.clone());
        let rows = |seed: i64| -> Vec<Row> {
            (0..n)
                .map(|i| {
                    let a = if i % 9 == 8 { Value::Null } else { Value::Int(i as i64) };
                    Row::new(vec![a, Value::Int((i as i64).wrapping_mul(seed) % 13)])
                })
                .collect()
        };
        db.replace_table("T", Table::with_rows(vec!["A".into(), "B".into()], rows(3)).unwrap())
            .unwrap();
        db.replace_table("U", Table::with_rows(vec!["A".into(), "B".into()], rows(5)).unwrap())
            .unwrap();
        let q = sqlsem_parser::compile(
            "SELECT x.B, y.B FROM T x, U y WHERE x.A = y.A AND x.B < 11",
            &schema,
        )
        .unwrap();
        let prepared = optimize(compile(&q, &db, Dialect::PostgreSql).unwrap(), &db);
        let preds = PredicateRegistry::new();
        let expected =
            Executor::new(&db, LogicMode::ThreeValued, &preds).run(&prepared.plan).unwrap();
        for threads in [1, 2, 8] {
            let mut vexec =
                VecExecutor::new(&db, LogicMode::ThreeValued, &preds, 1024).with_threads(threads);
            let got = vexec.run(&prepared.plan).unwrap();
            assert_eq!(expected, got, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_unknown_tables() {
        let schema = Schema::builder().table("E", ["A"]).build().unwrap();
        let db = Database::new(schema);
        let preds = PredicateRegistry::new();
        let mut vexec = VecExecutor::with_default_batch(&db, LogicMode::ThreeValued, &preds);
        assert!(vexec.run(&Plan::Scan { table: "E".into() }).unwrap().is_empty());
        assert!(matches!(
            vexec.run(&Plan::Scan { table: "Z".into() }).unwrap_err(),
            EvalError::UnknownTable(_)
        ));
        // The implicit group over an empty scan still yields one row.
        let plan = Plan::GroupAggregate {
            input: Box::new(Plan::Scan { table: "E".into() }),
            keys: vec![],
            aggs: vec![AggSpec { func: sqlsem_core::AggFunc::Count, distinct: false, arg: None }],
            having: None,
            output: vec![Expr::Col { depth: 0, index: 0 }],
        };
        assert_eq!(vexec.run(&plan).unwrap(), vec![row![0]]);
    }
}
