//! Physical plans: the engine's compiled representation of queries.
//!
//! Unlike the denotational evaluator — which interprets the AST directly
//! and resolves full names against *environments* at every step — the
//! engine compiles each query block into a tree of plan operators whose
//! column references are **positional**: a reference is a pair
//! `(depth, index)` meaning "column `index` of the row being produced
//! `depth` blocks up the correlation stack". All name resolution happens
//! once, at plan time, exactly like an RDBMS binds names when compiling a
//! statement. This makes the engine a structurally independent
//! implementation, which is what gives the §4 differential validation its
//! force.

use sqlsem_core::{CmpOp, Name, Value};

/// A compiled scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal constant (or `NULL`).
    Const(Value),
    /// A positional column reference: column `index` of the frame `depth`
    /// levels up the correlation stack (0 = the current block's row).
    Col {
        /// How many blocks up the correlation stack.
        depth: usize,
        /// Column position within that frame.
        index: usize,
    },
    /// A reference that failed to resolve under the *Standard* dialect.
    /// The Figures 4–7 semantics surfaces ambiguous/unbound references
    /// only when the environment is consulted, so for that dialect the
    /// engine defers the error to evaluation time: the query succeeds if
    /// the expression is never reached (e.g. the table is empty). The
    /// PostgreSQL/Oracle dialects reject at compile time instead.
    Deferred(sqlsem_core::EvalError),
}

/// A compiled condition.
#[derive(Clone, Debug, PartialEq)]
pub enum Pred {
    /// `TRUE`
    True,
    /// `FALSE`
    False,
    /// `e₁ op e₂`
    Cmp {
        /// Left expression.
        left: Expr,
        /// Operator.
        op: CmpOp,
        /// Right expression.
        right: Expr,
    },
    /// `e [NOT] LIKE p`
    Like {
        /// Matched expression.
        term: Expr,
        /// Pattern expression.
        pattern: Expr,
        /// `NOT LIKE`?
        negated: bool,
    },
    /// A user predicate from the registry.
    User {
        /// Registered name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `e IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Expr,
        /// Negated?
        negated: bool,
    },
    /// `e₁ IS [NOT] DISTINCT FROM e₂` — syntactic (in)equality.
    IsDistinct {
        /// Left expression.
        left: Expr,
        /// Right expression.
        right: Expr,
        /// `true` for `IS NOT DISTINCT FROM`.
        negated: bool,
    },
    /// `ē [NOT] IN (subplan)`
    In {
        /// The tuple of expressions.
        exprs: Vec<Expr>,
        /// The compiled subquery.
        plan: Box<Plan>,
        /// Negated?
        negated: bool,
    },
    /// `EXISTS (subplan)`
    Exists(Box<Plan>),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

/// A plan operator. Every operator produces a bag of rows.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Scan a base table.
    Scan {
        /// The base table name.
        table: Name,
    },
    /// N-ary Cartesian product (the `FROM` clause of one block).
    Product {
        /// The inputs, in clause order.
        inputs: Vec<Plan>,
    },
    /// Keep rows satisfying the predicate. Evaluating the predicate
    /// pushes the candidate row onto the correlation stack, so `depth 0`
    /// references inside it (and inside its subplans) see that row.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate.
        pred: Pred,
    },
    /// Map each input row through the expressions. Like `Filter`, pushes
    /// the input row while evaluating.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output expressions, one per output column.
        exprs: Vec<Expr>,
    },
    /// Duplicate elimination `ε`.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// A set operation between two subplans.
    SetOp {
        /// Which operation.
        op: sqlsem_core::SetOp,
        /// Bag (`ALL`) flavour?
        all: bool,
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
}

impl Plan {
    /// Number of columns this plan produces. Plans are always built with
    /// consistent arities by the compiler, so this is total.
    pub fn arity(&self, db: &sqlsem_core::Database) -> usize {
        match self {
            Plan::Scan { table } => db.schema().attributes(table).map_or(0, |attrs| attrs.len()),
            Plan::Product { inputs } => inputs.iter().map(|p| p.arity(db)).sum(),
            Plan::Filter { input, .. } | Plan::Distinct { input } => input.arity(db),
            Plan::Project { exprs, .. } => exprs.len(),
            Plan::SetOp { left, .. } => left.arity(db),
        }
    }
}

/// A fully compiled query: the root plan plus its output column names.
#[derive(Clone, Debug, PartialEq)]
pub struct Prepared {
    /// The root operator.
    pub plan: Plan,
    /// Output column names, in order (possibly repeated).
    pub columns: Vec<Name>,
}
