//! Physical plans: the engine's compiled representation of queries.
//!
//! Unlike the denotational evaluator — which interprets the AST directly
//! and resolves full names against *environments* at every step — the
//! engine compiles each query block into a tree of plan operators whose
//! column references are **positional**: a reference is a pair
//! `(depth, index)` meaning "column `index` of the row being produced
//! `depth` blocks up the correlation stack". All name resolution happens
//! once, at plan time, exactly like an RDBMS binds names when compiling a
//! statement. This makes the engine a structurally independent
//! implementation, which is what gives the §4 differential validation its
//! force.
//!
//! One plan tree serves two executors: the row-at-a-time
//! [`Executor`](crate::exec::Executor) interprets every operator
//! tuple-by-tuple, while the vectorized
//! [`VecExecutor`](crate::vexec::VecExecutor) executes `Scan`,
//! `Filter`, `Project`, `HashJoin` and `GroupAggregate` over columnar
//! batches (kernel or guarded per-row, as decided by
//! `route_batches` in `crate::optimize`) and the
//! order-sensitive operators on materialized rows. The positional,
//! flat-expression discipline here is what makes the columnar kernels
//! possible at all: a `Col { depth: 0, index }` *is* a column of the
//! batch, with no name resolution left to do per value.

use sqlsem_core::ast::JoinKind;
use sqlsem_core::{AggFunc, CmpOp, EvalError, Name, Value};

/// A compiled scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal constant (or `NULL`).
    Const(Value),
    /// A positional column reference: column `index` of the frame `depth`
    /// levels up the correlation stack (0 = the current block's row).
    Col {
        /// How many blocks up the correlation stack.
        depth: usize,
        /// Column position within that frame.
        index: usize,
    },
    /// A searched `CASE`: the first branch whose predicate is *true*
    /// (under the active logic mode) yields its expression; otherwise the
    /// `ELSE` expression, or `NULL` when it is absent. Branch predicates
    /// are full [`Pred`]s and may contain subplans, which is why an
    /// expression containing a `Case` is evaluated through the same
    /// mutable executor state as predicates.
    Case {
        /// `WHEN p THEN e` branches, in source order.
        branches: Vec<(Pred, Expr)>,
        /// The `ELSE` expression, `None` when omitted (yields `NULL`).
        else_: Option<Box<Expr>>,
    },
    /// `COALESCE(e₁, …, eₙ)`: the first non-`NULL` operand, evaluated
    /// lazily left to right — operands after the first non-`NULL` one are
    /// not evaluated, so their errors are not raised.
    Coalesce(Vec<Expr>),
    /// `NULLIF(e₁, e₂)`: `NULL` when `e₁ = e₂` is *true* under the active
    /// logic mode, otherwise `e₁`. Both operands are always evaluated,
    /// and the comparison can raise a type error.
    Nullif(Box<Expr>, Box<Expr>),
    /// A reference that failed to resolve under the *Standard* dialect.
    /// The Figures 4–7 semantics surfaces ambiguous/unbound references
    /// only when the environment is consulted, so for that dialect the
    /// engine defers the error to evaluation time: the query succeeds if
    /// the expression is never reached (e.g. the table is empty). The
    /// PostgreSQL/Oracle dialects reject at compile time instead.
    Deferred(sqlsem_core::EvalError),
}

/// A compiled condition.
#[derive(Clone, Debug, PartialEq)]
pub enum Pred {
    /// `TRUE`
    True,
    /// `FALSE`
    False,
    /// `e₁ op e₂`
    Cmp {
        /// Left expression.
        left: Expr,
        /// Operator.
        op: CmpOp,
        /// Right expression.
        right: Expr,
    },
    /// `e [NOT] LIKE p`
    Like {
        /// Matched expression.
        term: Expr,
        /// Pattern expression.
        pattern: Expr,
        /// `NOT LIKE`?
        negated: bool,
    },
    /// A user predicate from the registry.
    User {
        /// Registered name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `e IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Expr,
        /// Negated?
        negated: bool,
    },
    /// `e₁ IS [NOT] DISTINCT FROM e₂` — syntactic (in)equality.
    IsDistinct {
        /// Left expression.
        left: Expr,
        /// Right expression.
        right: Expr,
        /// `true` for `IS NOT DISTINCT FROM`.
        negated: bool,
    },
    /// `ē [NOT] IN (subplan)`
    In {
        /// The tuple of expressions.
        exprs: Vec<Expr>,
        /// The compiled subquery.
        plan: Box<Plan>,
        /// Negated?
        negated: bool,
        /// Cache slot for the materialized subquery rows, assigned by the
        /// optimizer when the subplan is uncorrelated and deterministic
        /// (so it executes once per query rather than once per outer row).
        /// `None` in naive plans.
        cache: Option<usize>,
    },
    /// `EXISTS (subplan)`
    Exists {
        /// The compiled subquery.
        plan: Box<Plan>,
        /// When `true`, execution may stop after the first produced row
        /// instead of materializing the whole subquery. Set by the
        /// optimizer only when the subplan is provably error-free, so
        /// skipping later rows cannot suppress a runtime error the naive
        /// execution would raise.
        early_exit: bool,
        /// Cache slot for the subquery's non-emptiness verdict (same
        /// eligibility rules as [`Pred::In::cache`]).
        cache: Option<usize>,
    },
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

/// A plan operator. Every operator produces a bag of rows.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Scan a base table.
    Scan {
        /// The base table name.
        table: Name,
    },
    /// N-ary Cartesian product (the `FROM` clause of one block).
    Product {
        /// The inputs, in clause order.
        inputs: Vec<Plan>,
    },
    /// Keep rows satisfying the predicate. Evaluating the predicate
    /// pushes the candidate row onto the correlation stack, so `depth 0`
    /// references inside it (and inside its subplans) see that row.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate.
        pred: Pred,
    },
    /// Map each input row through the expressions. Like `Filter`, pushes
    /// the input row while evaluating.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output expressions, one per output column.
        exprs: Vec<Expr>,
    },
    /// Duplicate elimination `ε`.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// A set operation between two subplans.
    SetOp {
        /// Which operation.
        op: sqlsem_core::SetOp,
        /// Bag (`ALL`) flavour?
        all: bool,
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Hash-based grouping and aggregation (the `GROUP BY`/`HAVING`
    /// fragment). Input rows are bucketed by the (null-safe) `keys`
    /// tuple; each bucket accumulates every aggregate of `aggs`
    /// incrementally; then, per group, `having` is evaluated (if
    /// present) and `output` projects the result row — both against the
    /// *group frame* `keys ++ aggs`, which is pushed on the correlation
    /// stack in place of the input-row frame.
    ///
    /// With empty `keys` the operator computes the implicit single
    /// group: exactly one group exists even over an empty input, which
    /// is how `COUNT(*)` over an empty table yields `0`.
    GroupAggregate {
        /// Input plan (the `FROM`–`WHERE` part of the block).
        input: Box<Plan>,
        /// Grouping key expressions, evaluated per input row.
        keys: Vec<Expr>,
        /// The block's aggregates (select list + having, deduplicated).
        aggs: Vec<AggSpec>,
        /// The `HAVING` predicate, evaluated per group against the group
        /// frame; `None` when the clause is absent.
        having: Option<Pred>,
        /// Output expressions, one per output column, against the group
        /// frame.
        output: Vec<Expr>,
    },
    /// An outer join `left JOIN right ON on` (one `FROM`-clause join
    /// tree node). Produces, in the canonical order of the semantics:
    /// for each left row (in order) its joining right rows (in order),
    /// with a null-padded row inline when a kept left row has no
    /// counterpart; then the dangling right rows (in order), null-padded
    /// on the left, when the kind keeps the right side. A row is
    /// *dangling* iff `on` is **true** for no counterpart — an *unknown*
    /// verdict neither joins the pair nor blocks the padding. The output
    /// row layout is `left ++ right`. Evaluating `on` pushes the
    /// candidate joined row onto the correlation stack, exactly like
    /// [`Plan::Filter`] does.
    OuterJoin {
        /// Which sides keep dangling rows.
        kind: JoinKind,
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// The `ON` condition, over the joined row at depth 0.
        on: Pred,
    },
    /// Hash equi-join: the rows of `left × right` whose key columns join,
    /// produced by building a hash table on `right` and probing it with
    /// `left`. Introduced by the optimizer for equality conjuncts that
    /// span two inputs of a [`Plan::Product`]; the output row layout is
    /// `left ++ right`, identical to the product it replaces.
    HashJoin {
        /// Left (probe) input.
        left: Box<Plan>,
        /// Right (build) input.
        right: Box<Plan>,
        /// The join keys, all of which must match for a pair to join.
        keys: Vec<JoinKey>,
    },
    /// Full stable sort: the list layer's `ORDER BY`, compiled over the
    /// block's output (above projection and `Distinct`). Tied rows keep
    /// the input's production order.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys, outermost first.
        keys: Vec<SortKey>,
    },
    /// `OFFSET`/`LIMIT` on an ordered (or bare) list: skip `offset`
    /// rows, keep at most `limit`.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// `LIMIT n`; `None` when only an `OFFSET` was written.
        limit: Option<u64>,
        /// `OFFSET m` (0 when absent).
        offset: u64,
    },
    /// The optimizer's rewrite of `Sort` + `Limit k`: a bounded
    /// binary-heap top-k that keeps at most `offset + limit` rows in
    /// memory while streaming its input, then drops the first `offset`.
    /// Computes exactly the same list as the pair it replaces. The
    /// rewrite is gated on the sort keys being provably total
    /// (resolvable, single-typed): the streaming top-k interleaves key
    /// evaluation with input production, so an error-capable key could
    /// otherwise fire before the input's own error and flip the error
    /// character.
    TopK {
        /// Input plan (streamed through a cursor).
        input: Box<Plan>,
        /// Sort keys, outermost first.
        keys: Vec<SortKey>,
        /// `LIMIT n`.
        limit: u64,
        /// `OFFSET m` (0 when absent).
        offset: u64,
    },
    /// The optimizer's rewrite of `Filter` over `Scan` when a secondary
    /// index covers the filtered columns: read only the matching row ids
    /// out of the index instead of testing every stored row. Posting
    /// lists are kept in ascending row-id order, so the operator emits
    /// rows in *insertion order* — byte-identical to the filtered heap
    /// scan it replaces, never in index-key order. The rewrite is gated
    /// on the consumed comparisons being provably total (single-typed
    /// column, matching constant, unpoisoned index), so index lookup can
    /// never silently skip a row whose evaluation would have raised.
    IndexScan {
        /// The scanned base table.
        table: Name,
        /// The chosen index.
        index: Name,
        /// The index's key column names in key order, carried so
        /// `EXPLAIN` can print the lookup without schema access.
        keys: Vec<Name>,
        /// How matching row ids are selected from the index.
        op: IndexOp,
    },
    /// Index nested-loop equi-join: [`Plan::HashJoin`] with the build
    /// side replaced by point lookups into a base table's index. Probes
    /// the left rows in order; each probe's postings come back in
    /// ascending row-id (= insertion) order, so the output is exactly
    /// the hash join's. Match rule is syntactic value identity on both
    /// paths, so null/`IS NOT DISTINCT FROM` handling carries over
    /// unchanged.
    IndexJoin {
        /// Left (probe) input.
        left: Box<Plan>,
        /// The right side: a base table reached through its index.
        table: Name,
        /// The index probed once per left row; its key columns are
        /// exactly the `right` positions of `keys`.
        index: Name,
        /// The join keys (`left` = probe column in the left rows,
        /// `right` = column position in the indexed table).
        keys: Vec<JoinKey>,
    },
}

/// How a [`Plan::IndexScan`] selects row ids from its index.
#[derive(Clone, Debug, PartialEq)]
pub enum IndexOp {
    /// Equality on the full key tuple, values in index key order — the
    /// rewrite of one `=` conjunct per key column. Constants are
    /// non-`NULL` by construction (a `col = NULL` comparison is never
    /// *true*, and the rewrite leaves it alone).
    Point(Vec<Value>),
    /// The rewrite of equality conjuncts pinning a leading *prefix* of
    /// the key columns plus one ordered comparison `col op value` on
    /// the next key column (`a = 1 AND b > 5` on an index over
    /// `(a, b)`; an empty prefix is a plain range on the first column).
    /// Kept as the original operator so `EXPLAIN` can print the source
    /// predicate; the executor hands it to
    /// [`sqlsem_core::Index::prefix_range`], which exploits the
    /// NULLS-last key order (`NULL` keys rank above every constant
    /// within the prefix region, so iteration stops there, exactly like
    /// the comparison's *unknown* verdict).
    Range {
        /// Non-`NULL` constants equality-pinning the leading key
        /// columns; the ranged column is the one at `prefix.len()`.
        prefix: Vec<Value>,
        /// The comparison operator (`<`, `<=`, `>`, `>=`).
        op: CmpOp,
        /// The non-`NULL` constant bound.
        value: Value,
    },
}

/// One compiled `ORDER BY` key of a [`Plan::Sort`]/[`Plan::TopK`]: an
/// expression over the block's output row (depth 0) plus direction and
/// `NULL` placement. Under the Standard dialect an unresolved key is an
/// [`Expr::Deferred`], raised when the sort operator first runs —
/// mirroring the semantics, which resolves keys whenever the block is
/// evaluated, even over an empty bag.
#[derive(Clone, Debug, PartialEq)]
pub struct SortKey {
    /// The key expression (a depth-0 output column, or deferred).
    pub expr: Expr,
    /// `DESC`?
    pub desc: bool,
    /// Effective `NULL` placement (the NULLS-last default applied).
    pub nulls_first: bool,
}

/// One compiled aggregate of a [`Plan::GroupAggregate`].
#[derive(Clone, Debug, PartialEq)]
pub struct AggSpec {
    /// Which function.
    pub func: AggFunc,
    /// `true` for `F(DISTINCT t)`.
    pub distinct: bool,
    /// The argument, evaluated per input row; `None` is `COUNT(*)`.
    pub arg: Option<Expr>,
}

/// One equality column pair of a [`Plan::HashJoin`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinKey {
    /// Column position in the left input's rows.
    pub left: usize,
    /// Column position in the right input's rows.
    pub right: usize,
    /// `true` for keys compiled from `IS NOT DISTINCT FROM`: the match is
    /// syntactic, so `NULL` joins with `NULL`. Plain `=` keys (`false`)
    /// never match on `NULL` under three-valued logic.
    pub null_safe: bool,
}

impl Plan {
    /// Number of columns this plan produces. Plans are always built with
    /// consistent arities by the compiler, so this is total.
    pub fn arity(&self, db: &sqlsem_core::Database) -> usize {
        match self {
            Plan::Scan { table } => db.schema().attributes(table).map_or(0, |attrs| attrs.len()),
            Plan::Product { inputs } => inputs.iter().map(|p| p.arity(db)).sum(),
            Plan::Filter { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::TopK { input, .. } => input.arity(db),
            Plan::Project { exprs, .. } => exprs.len(),
            Plan::GroupAggregate { output, .. } => output.len(),
            Plan::SetOp { left, .. } => left.arity(db),
            Plan::HashJoin { left, right, .. } | Plan::OuterJoin { left, right, .. } => {
                left.arity(db) + right.arity(db)
            }
            Plan::IndexScan { table, .. } => {
                db.schema().attributes(table).map_or(0, |attrs| attrs.len())
            }
            Plan::IndexJoin { left, table, .. } => {
                left.arity(db) + db.schema().attributes(table).map_or(0, |attrs| attrs.len())
            }
        }
    }

    /// Like [`Plan::arity`], but additionally verifies that the plan is
    /// internally arity-consistent (both set-operation operands produce
    /// the same number of columns). The compiler only builds consistent
    /// plans, so this exists for hand-constructed ones: it lets the
    /// executor validate a subplan's arity *once*, up front, instead of
    /// sniffing each produced row — which made error behaviour depend on
    /// row order.
    pub fn arity_checked(&self, db: &sqlsem_core::Database) -> Result<usize, EvalError> {
        match self {
            Plan::Scan { .. } => Ok(self.arity(db)),
            Plan::Project { input, exprs } => {
                // A projection fixes its own arity, but its input must
                // still be consistent for the guarantee to hold below it.
                input.arity_checked(db)?;
                Ok(exprs.len())
            }
            Plan::Product { inputs } => {
                let mut sum = 0;
                for input in inputs {
                    sum += input.arity_checked(db)?;
                }
                Ok(sum)
            }
            Plan::Filter { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::TopK { input, .. } => input.arity_checked(db),
            Plan::GroupAggregate { input, output, .. } => {
                input.arity_checked(db)?;
                Ok(output.len())
            }
            Plan::SetOp { left, right, .. } => {
                let l = left.arity_checked(db)?;
                let r = right.arity_checked(db)?;
                if l != r {
                    return Err(EvalError::ArityMismatch {
                        context: "set operation",
                        left: l,
                        right: r,
                    });
                }
                Ok(l)
            }
            Plan::HashJoin { left, right, .. } | Plan::OuterJoin { left, right, .. } => {
                Ok(left.arity_checked(db)? + right.arity_checked(db)?)
            }
            Plan::IndexScan { .. } => Ok(self.arity(db)),
            Plan::IndexJoin { left, table, .. } => Ok(left.arity_checked(db)?
                + db.schema().attributes(table).map_or(0, |attrs| attrs.len())),
        }
    }
}

/// A fully compiled query: the root plan plus its output column names.
#[derive(Clone, Debug, PartialEq)]
pub struct Prepared {
    /// The root operator.
    pub plan: Plan,
    /// Output column names, in order (possibly repeated).
    pub columns: Vec<Name>,
    /// Number of subquery cache slots the optimizer allocated (0 for
    /// naive plans); the executor sizes its cache accordingly.
    pub cache_slots: usize,
}
